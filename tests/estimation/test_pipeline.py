"""Integration tests for the end-to-end estimation pipeline (paper Fig. 2)."""

from __future__ import annotations

import pytest

from repro.core.selection.altr import select_jury_altr
from repro.core.selection.pay import select_jury_pay
from repro.errors import EstimationError
from repro.estimation.pipeline import estimate_candidates
from repro.estimation.tweets import Tweet, TweetCorpus
from repro.microblog.dataset import make_demo_corpus


class TestEstimateCandidates:
    def test_demo_corpus_hits(self):
        result = estimate_candidates(make_demo_corpus(), ranking="hits")
        assert result.ranking == "hits"
        assert result.jurors[0].juror_id == "alice"  # the designed authority
        assert len(result.jurors) == len(result.scores)

    def test_demo_corpus_pagerank(self):
        result = estimate_candidates(make_demo_corpus(), ranking="pagerank")
        assert result.jurors[0].juror_id == "alice"

    def test_unknown_ranking_rejected(self):
        with pytest.raises(EstimationError):
            estimate_candidates(make_demo_corpus(), ranking="astrology")

    def test_top_k_cut(self):
        result = estimate_candidates(make_demo_corpus(), top_k=3)
        assert len(result.jurors) == 3
        assert len(result.scores) == 3

    def test_top_k_invalid(self):
        with pytest.raises(EstimationError):
            estimate_candidates(make_demo_corpus(), top_k=0)

    def test_top_method(self):
        result = estimate_candidates(make_demo_corpus())
        assert [j.juror_id for j in result.top(2)] == [
            j.juror_id for j in result.jurors[:2]
        ]

    def test_error_rates_ordered_by_score(self):
        """Better-ranked users must receive lower error rates."""
        result = estimate_candidates(make_demo_corpus())
        eps = [j.error_rate for j in result.jurors]
        assert all(a <= b + 1e-12 for a, b in zip(eps, eps[1:]))

    def test_error_rates_in_open_interval(self):
        result = estimate_candidates(make_demo_corpus())
        for juror in result.jurors:
            assert 0.0 < juror.error_rate < 1.0

    def test_requirements_zero_without_ages(self):
        result = estimate_candidates(make_demo_corpus())
        assert all(j.requirement == 0.0 for j in result.jurors)

    def test_requirements_from_ages(self):
        ages = {u: float(i) for i, u in enumerate(
            sorted({"alice", "bob", "carol", "dave", "erin", "frank", "grace"})
        )}
        result = estimate_candidates(make_demo_corpus(), account_ages=ages)
        reqs = {j.juror_id: j.requirement for j in result.jurors}
        assert reqs["alice"] == pytest.approx(0.0)  # youngest in this map
        assert max(reqs.values()) == pytest.approx(1.0)

    def test_missing_ages_default_to_zero(self):
        result = estimate_candidates(
            make_demo_corpus(), account_ages={"alice": 100.0}
        )
        reqs = {j.juror_id: j.requirement for j in result.jurors}
        assert reqs["alice"] == pytest.approx(1.0)
        assert reqs["bob"] == pytest.approx(0.0)

    def test_alpha_beta_change_spread(self):
        gentle = estimate_candidates(make_demo_corpus(), alpha=1.0, beta=2.0)
        harsh = estimate_candidates(make_demo_corpus(), alpha=10.0, beta=10.0)
        # Harsher normalisation pins the best user's error rate much lower.
        assert harsh.jurors[0].error_rate < gentle.jurors[0].error_rate

    def test_candidates_feed_altr_selection(self):
        result = estimate_candidates(make_demo_corpus())
        selection = select_jury_altr(result.jurors)
        assert selection.size % 2 == 1
        assert 0.0 <= selection.jer <= 1.0

    def test_candidates_feed_pay_selection(self):
        ages = {u: float(i + 1) for i, u in enumerate(
            sorted({"alice", "bob", "carol", "dave", "erin", "frank", "grace"})
        )}
        result = estimate_candidates(make_demo_corpus(), account_ages=ages)
        selection = select_jury_pay(result.jurors, budget=1.0)
        assert selection.total_cost <= 1.0

    def test_deterministic_tie_break(self):
        corpus = TweetCorpus(
            [Tweet("x", "RT @a same"), Tweet("y", "RT @b same")]
        )
        first = estimate_candidates(corpus)
        second = estimate_candidates(corpus)
        assert [j.juror_id for j in first.jurors] == [
            j.juror_id for j in second.jurors
        ]

    def test_graph_exposed(self):
        result = estimate_candidates(make_demo_corpus())
        assert result.graph.num_nodes == len(
            {"alice", "bob", "carol", "dave", "erin", "frank", "grace"}
        )
