"""Property tests for the estimation substrate (graphs, rankers, pipeline)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.graph import UserGraph, build_user_graph
from repro.estimation.ranking import hits, pagerank
from repro.estimation.tweets import Tweet, TweetCorpus, extract_retweet_pairs

usernames = st.text(
    alphabet="abcdefghij", min_size=1, max_size=3
)
tweet_texts = st.lists(usernames, min_size=0, max_size=4).map(
    lambda users: " ".join(f"RT @{u} msg" for u in users) or "plain message"
)
tweets = st.builds(Tweet, author=usernames, text=tweet_texts)
corpora = st.lists(tweets, min_size=1, max_size=30).map(TweetCorpus)


def random_graph(n: int, p: float, seed: int) -> UserGraph:
    rng = np.random.default_rng(seed)
    g = UserGraph()
    for i in range(n):
        g.add_node(f"u{i}")
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                g.add_edge(f"u{i}", f"u{j}")
    return g


class TestGraphProperties:
    @given(corpora)
    @settings(max_examples=60, deadline=None)
    def test_nodes_cover_all_chain_usernames(self, corpus):
        graph = build_user_graph(corpus)
        assert corpus.usernames == set(graph.nodes())

    @given(corpora)
    @settings(max_examples=60, deadline=None)
    def test_edges_are_exactly_deduplicated_nonself_pairs(self, corpus):
        graph = build_user_graph(corpus)
        expected = {
            pair for pair in corpus.retweet_pairs() if pair[0] != pair[1]
        }
        assert set(graph.edges()) == expected

    @given(corpora)
    @settings(max_examples=40, deadline=None)
    def test_rebuild_is_idempotent(self, corpus):
        first = build_user_graph(corpus)
        second = build_user_graph(corpus)
        assert set(first.edges()) == set(second.edges())
        assert set(first.nodes()) == set(second.nodes())

    @given(corpora)
    @settings(max_examples=40, deadline=None)
    def test_degree_sums_match_edge_count(self, corpus):
        graph = build_user_graph(corpus)
        total_in = sum(graph.in_degree(u) for u in graph.nodes())
        total_out = sum(graph.out_degree(u) for u in graph.nodes())
        assert total_in == total_out == graph.num_edges

    @given(tweets)
    @settings(max_examples=60, deadline=None)
    def test_pair_count_equals_marker_count(self, tweet):
        from repro.estimation.tweets import RETWEET_PATTERN

        markers = len(RETWEET_PATTERN.findall(tweet.text))
        assert len(extract_retweet_pairs(tweet)) == markers


class TestRankerProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pagerank_is_probability_distribution(self, seed):
        g = random_graph(25, 0.15, seed)
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-8)
        assert all(v > 0 for v in scores.values())

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_relabelling_invariance(self, seed):
        """Renaming nodes permutes scores but never changes their values."""
        g = random_graph(20, 0.2, seed)
        renamed = UserGraph()
        mapping = {u: f"x-{u}" for u in g.nodes()}
        for u in g.nodes():
            renamed.add_node(mapping[u])
        for a, b in g.edges():
            renamed.add_edge(mapping[a], mapping[b])
        original = pagerank(g)
        relabelled = pagerank(renamed)
        for user, score in original.items():
            assert relabelled[mapping[user]] == pytest.approx(score, abs=1e-10)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_hits_relabelling_invariance(self, seed):
        g = random_graph(20, 0.2, seed)
        renamed = UserGraph()
        mapping = {u: f"y-{u}" for u in g.nodes()}
        for u in g.nodes():
            renamed.add_node(mapping[u])
        for a, b in g.edges():
            renamed.add_edge(mapping[a], mapping[b])
        original = hits(g).authorities
        relabelled = hits(renamed).authorities
        for user, score in original.items():
            assert relabelled[mapping[user]] == pytest.approx(score, abs=1e-9)

    def test_adding_an_endorsement_raises_target_rank(self):
        """An extra independent retweeter never hurts the retweeted user."""
        base = random_graph(15, 0.15, 7)
        before = pagerank(base)["u3"]
        boosted = random_graph(15, 0.15, 7)
        boosted.add_node("newfan")
        boosted.add_edge("newfan", "u3")
        after = pagerank(boosted)["u3"]
        assert after > before * 0.9  # normalisation shifts mass slightly

    def test_isolated_node_gets_minimum_pagerank(self):
        g = random_graph(10, 0.3, 9)
        g.add_node("lurker")
        scores = pagerank(g)
        assert scores["lurker"] == pytest.approx(min(scores.values()), rel=1e-6)
