"""Tests for error-rate (Sec 4.1.3) and requirement (Sec 4.2) normalisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.estimation.error_rate import (
    normalise_scores_to_error_rates,
    scores_to_error_rates,
)
from repro.estimation.requirement import (
    ages_to_requirements,
    normalise_ages_to_requirements,
)

score_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


class TestErrorRateNormalisation:
    def test_extremes(self):
        eps = normalise_scores_to_error_rates([0.0, 1.0], alpha=10, beta=10)
        # min score -> beta^0 = 1, clipped just below 1; max -> beta^-10 ~ 0.
        assert eps[0] == pytest.approx(1.0, abs=1e-6)
        assert eps[1] == pytest.approx(0.0, abs=1e-6)

    def test_monotone_decreasing_in_score(self):
        scores = [0.0, 0.25, 0.5, 0.75, 1.0]
        eps = normalise_scores_to_error_rates(scores)
        assert all(a > b for a, b in zip(eps, eps[1:]))

    def test_formula_midpoint(self):
        eps = normalise_scores_to_error_rates([0.0, 0.5, 1.0], alpha=10, beta=10)
        assert eps[1] == pytest.approx(10.0 ** (-5.0))

    def test_alpha_beta_defaults_match_paper(self):
        """Section 5.2 sets alpha = beta = 10."""
        default = normalise_scores_to_error_rates([0.0, 0.3, 1.0])
        explicit = normalise_scores_to_error_rates([0.0, 0.3, 1.0], alpha=10, beta=10)
        np.testing.assert_allclose(default, explicit)

    def test_identical_scores_get_midpoint(self):
        eps = normalise_scores_to_error_rates([3.0, 3.0, 3.0])
        expected = 10.0 ** (-5.0)
        np.testing.assert_allclose(eps, expected)

    def test_empty_input(self):
        assert normalise_scores_to_error_rates([]).size == 0

    def test_invalid_alpha(self):
        with pytest.raises(EstimationError):
            normalise_scores_to_error_rates([1.0], alpha=0.0)

    def test_invalid_beta(self):
        with pytest.raises(EstimationError):
            normalise_scores_to_error_rates([1.0], beta=1.0)

    def test_invalid_clip(self):
        with pytest.raises(EstimationError):
            normalise_scores_to_error_rates([1.0], clip=0.7)

    def test_nonfinite_scores_rejected(self):
        with pytest.raises(EstimationError):
            normalise_scores_to_error_rates([1.0, float("nan")])

    @given(score_lists)
    @settings(max_examples=80, deadline=None)
    def test_output_in_open_interval(self, scores):
        eps = normalise_scores_to_error_rates(scores)
        assert np.all(eps > 0.0)
        assert np.all(eps < 1.0)

    @given(score_lists)
    @settings(max_examples=60, deadline=None)
    def test_order_reversal(self, scores):
        """Higher score -> lower (or equal, after clipping) error rate."""
        eps = normalise_scores_to_error_rates(scores)
        order = np.argsort(scores)
        sorted_eps = eps[order]
        assert all(a >= b - 1e-15 for a, b in zip(sorted_eps, sorted_eps[1:]))

    def test_dict_wrapper(self):
        rates = scores_to_error_rates({"low": 0.0, "high": 1.0})
        assert rates["high"] < rates["low"]
        assert set(rates) == {"low", "high"}


class TestRequirementNormalisation:
    def test_minmax(self):
        reqs = normalise_ages_to_requirements([0.0, 5.0, 10.0])
        np.testing.assert_allclose(reqs, [0.0, 0.5, 1.0])

    def test_identical_ages_midpoint(self):
        np.testing.assert_allclose(normalise_ages_to_requirements([7.0, 7.0]), 0.5)

    def test_empty(self):
        assert normalise_ages_to_requirements([]).size == 0

    def test_negative_age_rejected(self):
        with pytest.raises(EstimationError):
            normalise_ages_to_requirements([-1.0, 2.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(EstimationError):
            normalise_ages_to_requirements([float("inf")])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_output_in_unit_interval(self, ages):
        reqs = normalise_ages_to_requirements(ages)
        assert np.all(reqs >= 0.0)
        assert np.all(reqs <= 1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_age(self, ages):
        """Older account -> higher requirement (paper's assumption)."""
        reqs = normalise_ages_to_requirements(ages)
        order = np.argsort(ages)
        sorted_reqs = reqs[order]
        assert all(a <= b + 1e-12 for a, b in zip(sorted_reqs, sorted_reqs[1:]))

    def test_dict_wrapper(self):
        reqs = ages_to_requirements({"old": 100.0, "new": 1.0})
        assert reqs["old"] == 1.0
        assert reqs["new"] == 0.0
