"""Tests for the retweet user-graph builder (paper Algorithm 5)."""

from __future__ import annotations

import pytest

from repro.errors import EmptyGraphError, EstimationError
from repro.estimation.graph import UserGraph, build_user_graph
from repro.estimation.tweets import Tweet, TweetCorpus


class TestUserGraph:
    def test_add_nodes_idempotent(self):
        g = UserGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = UserGraph()
        assert g.add_edge("a", "b")
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_duplicate_edge_collapsed(self):
        """Algorithm 5: link each ordered pair once and only once."""
        g = UserGraph()
        assert g.add_edge("a", "b")
        assert not g.add_edge("a", "b")
        assert g.num_edges == 1

    def test_self_loop_ignored(self):
        g = UserGraph()
        assert not g.add_edge("a", "a")
        assert g.num_edges == 0

    def test_bad_node_name(self):
        g = UserGraph()
        with pytest.raises(EstimationError):
            g.add_node("")

    def test_degrees_and_neighbours(self):
        g = UserGraph()
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        assert g.in_degree("c") == 2
        assert g.out_degree("c") == 1
        assert g.predecessors("c") == {"a", "b"}
        assert g.successors("c") == {"d"}

    def test_unknown_user_raises(self):
        g = UserGraph()
        with pytest.raises(EstimationError):
            g.in_degree("ghost")

    def test_contains_and_len(self):
        g = UserGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g and "c" not in g
        assert len(g) == 2

    def test_edges_iteration(self):
        g = UserGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert set(g.edges()) == {("a", "b"), ("b", "c")}

    def test_subgraph(self):
        g = UserGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        sub = g.subgraph(["a", "b", "zzz"])
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "c")

    def test_adjacency_arrays(self):
        g = UserGraph()
        g.add_edge("a", "b")
        nodes, edges = g.adjacency_arrays()
        assert set(nodes) == {"a", "b"}
        assert edges == [(nodes.index("a"), nodes.index("b"))]

    def test_degree_histogram(self):
        g = UserGraph()
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        histogram = g.degree_histogram()
        assert histogram[2] == 1  # c
        assert histogram[0] == 2  # a, b


class TestBuildUserGraph:
    def test_empty_corpus_rejected(self):
        with pytest.raises(EmptyGraphError):
            build_user_graph(TweetCorpus())

    def test_plain_tweets_make_isolated_authors(self):
        corpus = TweetCorpus([Tweet("a", "no markers"), Tweet("b", "none here")])
        g = build_user_graph(corpus)
        assert g.num_nodes == 2
        assert g.num_edges == 0

    def test_case1_single_pair(self):
        corpus = TweetCorpus([Tweet("user1", "cool RT @user2 content")])
        g = build_user_graph(corpus)
        assert g.has_edge("user1", "user2")
        assert g.num_edges == 1

    def test_case2_chain_pairs(self):
        """Paper's chain prototype: userN original, user1 last retweeter."""
        corpus = TweetCorpus([Tweet("u1", "RT @u2 RT @u3 RT @u4 origin")])
        g = build_user_graph(corpus)
        assert g.has_edge("u1", "u2")
        assert g.has_edge("u2", "u3")
        assert g.has_edge("u3", "u4")
        assert not g.has_edge("u1", "u3")
        assert g.num_edges == 3

    def test_repeated_pairs_across_tweets_deduplicated(self):
        corpus = TweetCorpus(
            [Tweet("a", "RT @b x"), Tweet("a", "RT @b y"), Tweet("a", "RT @b z")]
        )
        g = build_user_graph(corpus)
        assert g.num_edges == 1

    def test_self_retweet_ignored(self):
        corpus = TweetCorpus([Tweet("a", "RT @a recycling myself")])
        g = build_user_graph(corpus)
        assert g.num_edges == 0
        assert g.num_nodes == 1

    def test_mentioned_users_become_nodes(self):
        corpus = TweetCorpus([Tweet("a", "RT @celebrity wow")])
        g = build_user_graph(corpus)
        assert "celebrity" in g

    def test_demo_corpus_structure(self):
        from repro.microblog.dataset import make_demo_corpus

        g = build_user_graph(make_demo_corpus())
        # alice is the most-retweeted user in the demo dataset.
        best = max(g.nodes(), key=g.in_degree)
        assert best == "alice"
        assert g.in_degree("frank") == 0
