"""Tests for the from-scratch HITS and PageRank rankers.

networkx is used here ONLY as an oracle: the library's rankers are pure
NumPy; these tests confirm they converge to the same scores.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConvergenceError, EmptyGraphError
from repro.estimation.graph import UserGraph
from repro.estimation.ranking import hits, pagerank


def star_graph(spokes: int = 4) -> UserGraph:
    """spoke_i -> hub for all i: the hub is the sole authority."""
    g = UserGraph()
    for i in range(spokes):
        g.add_edge(f"spoke{i}", "hub")
    return g


def random_user_graph(n: int, p: float, seed: int) -> UserGraph:
    rng = np.random.default_rng(seed)
    g = UserGraph()
    names = [f"u{i}" for i in range(n)]
    for name in names:
        g.add_node(name)
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                g.add_edge(names[i], names[j])
    return g


def to_networkx(g: UserGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.nodes())
    nxg.add_edges_from(g.edges())
    return nxg


class TestHits:
    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            hits(UserGraph())

    def test_star_authority(self):
        result = hits(star_graph())
        assert max(result.authorities, key=result.authorities.get) == "hub"
        # All spokes are equal hubs.
        spoke_hub_scores = {result.hubs[f"spoke{i}"] for i in range(4)}
        assert max(spoke_hub_scores) - min(spoke_hub_scores) < 1e-9

    def test_scores_l1_normalised(self):
        result = hits(star_graph())
        assert sum(result.authorities.values()) == pytest.approx(1.0)
        assert sum(result.hubs.values()) == pytest.approx(1.0)

    def test_edgeless_graph_uniform(self):
        g = UserGraph()
        g.add_node("a")
        g.add_node("b")
        result = hits(g)
        assert result.authorities["a"] == pytest.approx(0.5)
        assert result.hubs["b"] == pytest.approx(0.5)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        g = random_user_graph(30, 0.15, seed)
        ours = hits(g)
        ref_hubs, ref_auth = nx.hits(to_networkx(g), max_iter=500, tol=1e-12)
        for user, score in ours.authorities.items():
            assert score == pytest.approx(ref_auth[user], abs=1e-6)
        for user, score in ours.hubs.items():
            assert score == pytest.approx(ref_hubs[user], abs=1e-6)

    def test_convergence_error_when_budget_too_small(self):
        g = random_user_graph(40, 0.2, 3)
        with pytest.raises(ConvergenceError):
            hits(g, max_iter=1, tol=0.0)

    def test_non_strict_returns_best_effort(self):
        g = random_user_graph(40, 0.2, 3)
        result = hits(g, max_iter=1, tol=0.0, strict=False)
        assert len(result.authorities) == 40

    def test_iterations_recorded(self):
        result = hits(star_graph())
        assert result.iterations >= 1


class TestPagerank:
    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            pagerank(UserGraph())

    def test_star_target_wins(self):
        scores = pagerank(star_graph())
        assert max(scores, key=scores.get) == "hub"

    def test_scores_sum_to_one_with_redistribution(self):
        scores = pagerank(star_graph())
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-9)

    def test_drop_mode_leaks_dangling_mass(self):
        # "hub" has no out-edges; literal Algorithm 7 leaks its mass.
        scores = pagerank(star_graph(), dangling="drop")
        assert sum(scores.values()) < 1.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        g = random_user_graph(30, 0.15, seed)
        ours = pagerank(g, damping=0.85)
        ref = nx.pagerank(to_networkx(g), alpha=0.85, max_iter=500, tol=1e-12)
        for user, score in ours.items():
            assert score == pytest.approx(ref[user], abs=1e-8)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(star_graph(), damping=1.5)

    def test_invalid_dangling_mode(self):
        with pytest.raises(ValueError):
            pagerank(star_graph(), dangling="teleport-nowhere")

    def test_convergence_error(self):
        g = random_user_graph(40, 0.2, 5)
        with pytest.raises(ConvergenceError):
            pagerank(g, max_iter=1, tol=0.0)

    def test_non_strict_best_effort(self):
        g = random_user_graph(40, 0.2, 5)
        scores = pagerank(g, max_iter=1, tol=0.0, strict=False)
        assert len(scores) == 40

    def test_edgeless_graph_uniform(self):
        g = UserGraph()
        for name in ("a", "b", "c"):
            g.add_node(name)
        scores = pagerank(g)
        for value in scores.values():
            assert value == pytest.approx(1 / 3, abs=1e-9)


class TestRankersAgreeOnAuthority:
    def test_top_users_overlap(self):
        """Paper Section 4.1.2: 'most top ranking users discovered by
        Pagerank overlaps with the ones identified by HITS'."""
        g = random_user_graph(60, 0.08, 11)
        auth = hits(g).authorities
        pr = pagerank(g)
        top_hits = set(sorted(auth, key=auth.get, reverse=True)[:10])
        top_pr = set(sorted(pr, key=pr.get, reverse=True)[:10])
        assert len(top_hits & top_pr) >= 5
