"""Tests for tweet records and retweet-chain extraction (Algorithm 5 input)."""

from __future__ import annotations

import pytest

from repro.errors import EstimationError
from repro.estimation.tweets import (
    RETWEET_PATTERN,
    Tweet,
    TweetCorpus,
    extract_retweet_chain,
    extract_retweet_pairs,
)


class TestTweet:
    def test_basic(self):
        t = Tweet("alice", "hello world", "t1", 2.0)
        assert t.author == "alice"
        assert t.created_at == 2.0

    def test_empty_author_rejected(self):
        with pytest.raises(EstimationError):
            Tweet("", "hello")

    def test_non_string_text_rejected(self):
        with pytest.raises(EstimationError):
            Tweet("alice", 42)  # type: ignore[arg-type]

    def test_mentions_retweet(self):
        assert Tweet("a", "RT @b hi").mentions_retweet
        assert not Tweet("a", "plain tweet").mentions_retweet

    def test_frozen(self):
        t = Tweet("a", "text")
        with pytest.raises(AttributeError):
            t.text = "other"


class TestRetweetPattern:
    def test_matches_simple_marker(self):
        assert RETWEET_PATTERN.findall("RT @bob hello") == ["bob"]

    def test_matches_underscore_and_digits(self):
        assert RETWEET_PATTERN.findall("RT @user_42 hi") == ["user_42"]

    def test_requires_space_and_at(self):
        assert RETWEET_PATTERN.findall("RT bob") == []
        assert RETWEET_PATTERN.findall("@bob hi") == []

    def test_multiple_markers_in_order(self):
        text = "wow RT @second nice RT @third origin"
        assert RETWEET_PATTERN.findall(text) == ["second", "third"]


class TestChainExtraction:
    def test_no_retweet(self):
        assert extract_retweet_chain(Tweet("a", "plain")) == ["a"]
        assert extract_retweet_pairs(Tweet("a", "plain")) == []

    def test_single_retweet_case1(self):
        """Section 4.1.1 case 1: one marker -> one pair."""
        t = Tweet("user1", "interesting RT @user2 original content")
        assert extract_retweet_pairs(t) == [("user1", "user2")]

    def test_chain_case2(self):
        """Section 4.1.1 case 2: N markers -> N pairs along the chain."""
        t = Tweet("user1", "RT @user2 RT @user3 RT @user4 source")
        assert extract_retweet_pairs(t) == [
            ("user1", "user2"),
            ("user2", "user3"),
            ("user3", "user4"),
        ]

    def test_self_retweet_preserved_in_chain(self):
        t = Tweet("a", "RT @a my old tweet")
        assert extract_retweet_chain(t) == ["a", "a"]
        assert extract_retweet_pairs(t) == [("a", "a")]

    def test_marker_mid_text(self):
        t = Tweet("x", "I agree with this take RT @y the take")
        assert extract_retweet_pairs(t) == [("x", "y")]


class TestTweetCorpus:
    def test_append_and_len(self):
        corpus = TweetCorpus()
        corpus.append(Tweet("a", "hi"))
        assert len(corpus) == 1

    def test_rejects_non_tweet(self):
        with pytest.raises(EstimationError):
            TweetCorpus(["not a tweet"])  # type: ignore[list-item]
        corpus = TweetCorpus()
        with pytest.raises(EstimationError):
            corpus.append("nope")  # type: ignore[arg-type]

    def test_extend_and_iter(self):
        corpus = TweetCorpus()
        corpus.extend([Tweet("a", "1"), Tweet("b", "2")])
        assert [t.author for t in corpus] == ["a", "b"]
        assert corpus[1].author == "b"

    def test_authors_and_usernames(self):
        corpus = TweetCorpus([Tweet("a", "RT @b x"), Tweet("c", "plain")])
        assert corpus.authors == {"a", "c"}
        assert corpus.usernames == {"a", "b", "c"}

    def test_retweet_pairs_stream(self):
        corpus = TweetCorpus([Tweet("a", "RT @b x"), Tweet("b", "RT @c RT @d y")])
        assert list(corpus.retweet_pairs()) == [("a", "b"), ("b", "c"), ("c", "d")]

    def test_retweet_count(self):
        corpus = TweetCorpus([Tweet("a", "RT @b x"), Tweet("b", "RT @c RT @d y")])
        assert corpus.retweet_count() == 3

    def test_jsonl_roundtrip(self, tmp_path):
        corpus = TweetCorpus(
            [Tweet("a", "RT @b hello", "t1", 0.5), Tweet("b", "plain", "t2", 1.0)]
        )
        path = tmp_path / "corpus.jsonl"
        corpus.save_jsonl(path)
        loaded = TweetCorpus.load_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0].author == "a"
        assert loaded[0].text == "RT @b hello"
        assert loaded[1].created_at == 1.0

    def test_load_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"author": "a"}\n')  # missing "text"
        with pytest.raises(EstimationError):
            TweetCorpus.load_jsonl(path)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"author": "a", "text": "x"}\n\n{"author": "b", "text": "y"}\n')
        assert len(TweetCorpus.load_jsonl(path)) == 2
