"""Tests for the estimation pipeline's incremental mode (pool sync)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Juror, jurors_from_arrays
from repro.errors import EstimationError
from repro.estimation.pipeline import sync_pool_with_estimate
from repro.estimation.tweets import Tweet, TweetCorpus
from repro.estimation import estimate_candidates
from repro.service import CandidatePool, LivePool


def _corpus(extra: list[Tweet] = ()):  # type: ignore[assignment]
    base = [
        Tweet("fan1", "RT @guru insight"),
        Tweet("fan2", "RT @guru more insight"),
        Tweet("fan2", "RT @sage wisdom"),
        Tweet("guru", "original thought"),
        Tweet("sage", "calm thought"),
    ]
    return TweetCorpus(base + list(extra))


class TestSyncPoolWithEstimate:
    def test_initial_sync_populates_empty_pool(self):
        result = estimate_candidates(_corpus(), ranking="pagerank")
        pool = LivePool(pool_id="est")
        report = sync_pool_with_estimate(pool, result)
        assert report.removed == () and report.updated == ()
        assert set(report.added) == {j.juror_id for j in result.jurors}
        assert pool.size == len(result.jurors)
        assert report.version == pool.version == report.churn

    def test_resync_with_identical_estimate_is_a_noop(self):
        result = estimate_candidates(_corpus(), ranking="pagerank")
        pool = LivePool(result.jurors)
        version = pool.version
        report = sync_pool_with_estimate(pool, result)
        assert report.churn == 0
        assert report.unchanged == pool.size
        assert pool.version == version  # no mutation, no version bump

    def test_drifted_estimate_applies_only_the_diff(self):
        result = estimate_candidates(_corpus(), ranking="pagerank")
        pool = LivePool(result.jurors)
        # A fresh corpus shifts the graph: fan3 arrives, fan1 goes quiet.
        drifted = estimate_candidates(
            _corpus([Tweet("fan3", "RT @guru late insight")]),
            ranking="pagerank",
        )
        report = sync_pool_with_estimate(pool, drifted)
        assert "fan3" in report.added
        assert report.churn == pool.version
        # Pool now mirrors the drifted estimate exactly.
        expected = {j.juror_id: j for j in drifted.jurors}
        assert {j.juror_id: j for j in pool.ordered} == expected

    def test_top_k_cut_drops_the_tail(self):
        result = estimate_candidates(_corpus(), ranking="pagerank")
        pool = LivePool(result.jurors)
        report = sync_pool_with_estimate(pool, result, top_k=2)
        assert pool.size == 2
        assert len(report.removed) == len(result.jurors) - 2

    def test_bare_juror_sequences_are_accepted(self):
        pool = LivePool(jurors_from_arrays([0.2, 0.3, 0.4]))
        target = [
            Juror(0.2, juror_id="j1"),
            Juror(0.35, juror_id="j2"),
            Juror(0.1, juror_id="j9"),
        ]
        report = sync_pool_with_estimate(pool, target)
        assert report.added == ("j9",)
        assert report.removed == ("j3",)
        assert report.updated == ("j2",)
        assert report.unchanged == 1
        assert pool.get("j2").error_rate == 0.35

    def test_duplicate_target_ids_rejected(self):
        pool = LivePool(jurors_from_arrays([0.2]))
        with pytest.raises(EstimationError, match="duplicate"):
            sync_pool_with_estimate(
                pool, [Juror(0.2, juror_id="x"), Juror(0.3, juror_id="x")]
            )

    def test_synced_pool_selections_match_fresh_pool(self, rng):
        """After a sync, the live pool is indistinguishable from a cold
        rebuild — profile included."""
        pool = LivePool(jurors_from_arrays(rng.uniform(0.1, 0.9, size=15)))
        target = jurors_from_arrays(rng.uniform(0.1, 0.9, size=18), id_prefix="t")
        sync_pool_with_estimate(pool, target)
        fresh = CandidatePool(target)
        assert pool.fingerprint == fresh.fingerprint
        ns, jers = pool.sweep_profile()
        from repro.core.jer import batch_prefix_jer_sweep

        _, ref = batch_prefix_jer_sweep(np.asarray(fresh.error_rates)[np.newaxis, :])
        np.testing.assert_array_equal(np.asarray(jers), ref[0])

    def test_report_summary_reads_well(self):
        pool = LivePool(jurors_from_arrays([0.2, 0.3]))
        report = sync_pool_with_estimate(pool, [Juror(0.2, juror_id="j1")])
        assert report.summary() == "pool sync: +0 -1 ~0 =1 -> version 1"
