"""Tests for EM-based error-rate estimation from voting history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation.history import (
    estimate_error_rates_em,
    jurors_from_history,
)


def synthetic_votes(true_eps, n_tasks, seed, prior=0.5):
    rng = np.random.default_rng(seed)
    eps = np.asarray(true_eps)
    truth = (rng.random(n_tasks) < prior).astype(int)
    wrong = rng.random((n_tasks, eps.size)) < eps
    votes = np.where(wrong, 1 - truth[:, None], truth[:, None])
    return votes, truth


class TestEstimateErrorRatesEM:
    def test_recovers_known_error_rates(self):
        true_eps = [0.05, 0.15, 0.25, 0.35, 0.45]
        votes, _ = synthetic_votes(true_eps, 800, seed=0)
        fit = estimate_error_rates_em(votes)
        np.testing.assert_allclose(fit.error_rates, true_eps, atol=0.06)

    def test_recovers_truth_labels(self):
        true_eps = [0.1, 0.15, 0.2, 0.25, 0.1]
        votes, truth = synthetic_votes(true_eps, 400, seed=1)
        fit = estimate_error_rates_em(votes)
        decoded = (fit.truth_posteriors > 0.5).astype(int)
        accuracy = float(np.mean(decoded == truth))
        # Five jurors with these error rates give a majority-vote JER of
        # ~4%, and EM decoding cannot beat the information in the votes —
        # require it to match that ceiling, not exceed it.
        assert accuracy > 0.94

    def test_recovers_skewed_prior(self):
        votes, _ = synthetic_votes([0.1, 0.2, 0.15], 1000, seed=2, prior=0.8)
        fit = estimate_error_rates_em(votes)
        assert fit.prior == pytest.approx(0.8, abs=0.06)

    def test_label_flip_symmetry_resolved(self):
        # Even when initialised badly, the convention mean(eps) < 0.5 holds.
        votes, _ = synthetic_votes([0.1, 0.2, 0.3], 500, seed=3)
        fit = estimate_error_rates_em(votes)
        assert fit.error_rates.mean() < 0.5

    def test_missing_votes_mask(self):
        true_eps = [0.1, 0.2, 0.3]
        votes, _ = synthetic_votes(true_eps, 900, seed=4)
        rng = np.random.default_rng(5)
        mask = rng.random(votes.shape) < 0.7  # 30% missing
        # Guarantee every juror keeps some votes.
        mask[:5, :] = True
        fit = estimate_error_rates_em(votes, mask=mask)
        np.testing.assert_allclose(fit.error_rates, true_eps, atol=0.08)

    def test_rejects_non_binary(self):
        with pytest.raises(EstimationError):
            estimate_error_rates_em(np.array([[0, 2], [1, 0]]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(EstimationError):
            estimate_error_rates_em(np.array([0, 1, 1]))

    def test_rejects_empty_juror_column(self):
        votes = np.array([[1, 0], [0, 1]])
        mask = np.array([[True, False], [True, False]])
        with pytest.raises(EstimationError):
            estimate_error_rates_em(votes, mask=mask)

    def test_mask_shape_mismatch(self):
        with pytest.raises(EstimationError):
            estimate_error_rates_em(
                np.array([[1, 0]]), mask=np.array([[True]])
            )

    def test_log_likelihood_finite_and_iterations_positive(self):
        votes, _ = synthetic_votes([0.2, 0.3], 100, seed=6)
        fit = estimate_error_rates_em(votes)
        assert np.isfinite(fit.log_likelihood)
        assert fit.iterations >= 1


class TestJurorsFromHistory:
    def test_end_to_end_selection(self):
        true_eps = [0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.25]
        votes, _ = synthetic_votes(true_eps, 1200, seed=7)
        candidates = jurors_from_history(votes)
        from repro.core.selection.altr import select_jury_altr

        result = select_jury_altr(candidates)
        # The best jurors by true eps should dominate the selection.
        chosen = set(result.juror_ids)
        assert "hist-1" in chosen and "hist-2" in chosen

    def test_custom_ids_and_requirements(self):
        votes, _ = synthetic_votes([0.1, 0.3], 200, seed=8)
        candidates = jurors_from_history(
            votes, juror_ids=["a", "b"], requirements=np.array([0.5, 0.25])
        )
        assert [c.juror_id for c in candidates] == ["a", "b"]
        assert candidates[1].requirement == 0.25

    def test_id_length_mismatch(self):
        votes, _ = synthetic_votes([0.1, 0.3], 50, seed=9)
        with pytest.raises(EstimationError):
            jurors_from_history(votes, juror_ids=["only-one"])

    def test_requirement_length_mismatch(self):
        votes, _ = synthetic_votes([0.1, 0.3], 50, seed=10)
        with pytest.raises(EstimationError):
            jurors_from_history(votes, requirements=np.array([0.1]))
