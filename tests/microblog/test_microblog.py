"""Tests for the synthetic micro-blog service (users, network, cascades)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.estimation.graph import build_user_graph
from repro.microblog.activity import (
    CascadeConfig,
    generate_microblog_service,
    simulate_corpus,
)
from repro.microblog.dataset import (
    load_population,
    make_demo_corpus,
    save_population,
)
from repro.microblog.network import FollowerNetwork, generate_follower_network
from repro.microblog.users import UserProfile, account_age_map, generate_population


class TestUserProfile:
    def test_valid(self):
        u = UserProfile("alice", 10.0, 0.7, 1.0)
        assert u.account_age(15.0) == pytest.approx(5.0)

    def test_age_clipped_at_zero(self):
        u = UserProfile("alice", 10.0, 0.7, 1.0)
        assert u.account_age(5.0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"username": "", "registration_day": 0, "quality": 0.5, "activity": 1},
            {"username": "a", "registration_day": -1, "quality": 0.5, "activity": 1},
            {"username": "a", "registration_day": 0, "quality": 0.0, "activity": 1},
            {"username": "a", "registration_day": 0, "quality": 1.0, "activity": 1},
            {"username": "a", "registration_day": 0, "quality": 0.5, "activity": -1},
        ],
    )
    def test_invalid_profiles(self, kwargs):
        with pytest.raises(SimulationError):
            UserProfile(**kwargs)


class TestGeneratePopulation:
    def test_size_and_uniqueness(self, rng):
        population = generate_population(100, rng=rng)
        assert len(population) == 100
        assert len({u.username for u in population}) == 100

    def test_qualities_in_open_interval(self, rng):
        population = generate_population(200, rng=rng)
        assert all(0.0 < u.quality < 1.0 for u in population)

    def test_invalid_size(self):
        with pytest.raises(SimulationError):
            generate_population(0)

    def test_deterministic_with_seeded_rng(self):
        a = generate_population(10, rng=np.random.default_rng(5))
        b = generate_population(10, rng=np.random.default_rng(5))
        assert a == b

    def test_account_age_map(self, rng):
        population = generate_population(5, rng=rng, service_age_days=100.0)
        ages = account_age_map(population, observation_day=100.0)
        assert set(ages) == {u.username for u in population}
        assert all(age >= 0.0 for age in ages.values())


class TestFollowerNetwork:
    def test_follow_and_query(self):
        net = FollowerNetwork(["a", "b", "c"])
        assert net.follow("a", "b")
        assert net.followers_of("b") == {"a"}
        assert net.following_of("a") == {"b"}
        assert net.follower_count("b") == 1

    def test_duplicate_follow_ignored(self):
        net = FollowerNetwork(["a", "b"])
        assert net.follow("a", "b")
        assert not net.follow("a", "b")
        assert net.num_follow_edges == 1

    def test_self_follow_ignored(self):
        net = FollowerNetwork(["a"])
        assert not net.follow("a", "a")

    def test_unknown_user_rejected(self):
        net = FollowerNetwork(["a"])
        with pytest.raises(SimulationError):
            net.follow("a", "stranger")

    def test_duplicate_usernames_rejected(self):
        with pytest.raises(SimulationError):
            FollowerNetwork(["a", "a"])


class TestGenerateFollowerNetwork:
    def test_every_late_joiner_follows(self, rng):
        population = generate_population(50, rng=rng)
        net = generate_follower_network(population, rng=rng, follows_per_user=3)
        assert net.num_follow_edges >= 3 * (50 - 3)

    def test_heavy_tail_of_followers(self, rng):
        """Preferential attachment must concentrate followers on few users."""
        population = generate_population(400, rng=rng)
        net = generate_follower_network(population, rng=rng, follows_per_user=5)
        counts = sorted(
            (net.follower_count(u.username) for u in population), reverse=True
        )
        top_share = sum(counts[:40]) / max(sum(counts), 1)
        assert top_share > 0.35  # top 10% of users hold >35% of followers

    def test_quality_correlates_with_followers(self, rng):
        population = generate_population(300, rng=rng)
        net = generate_follower_network(population, rng=rng)
        qualities = np.array([u.quality for u in population])
        followers = np.array(
            [net.follower_count(u.username) for u in population], dtype=float
        )
        correlation = np.corrcoef(qualities, followers)[0, 1]
        assert correlation > 0.2

    def test_invalid_parameters(self, rng):
        population = generate_population(10, rng=rng)
        with pytest.raises(SimulationError):
            generate_follower_network(population, follows_per_user=0)
        with pytest.raises(SimulationError):
            generate_follower_network(population, fitness_exponent=-1.0)


class TestCascadeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"days": 0},
            {"retweet_base": 1.5},
            {"max_cascade_depth": 0},
            {"max_retweeters_per_hop": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(SimulationError):
            CascadeConfig(**kwargs)


class TestSimulateCorpus:
    def test_corpus_contains_retweet_markers(self, rng):
        population = generate_population(80, rng=rng)
        net = generate_follower_network(population, rng=rng)
        corpus = simulate_corpus(population, net, rng=rng)
        assert corpus.retweet_count() > 0

    def test_corpus_parses_into_graph(self, rng):
        population = generate_population(80, rng=rng)
        net = generate_follower_network(population, rng=rng)
        corpus = simulate_corpus(population, net, rng=rng)
        graph = build_user_graph(corpus)
        assert graph.num_edges > 0
        # Retweet edges can only exist between population members.
        names = {u.username for u in population}
        for source, target in graph.edges():
            assert source in names and target in names

    def test_population_network_size_mismatch(self, rng):
        population = generate_population(10, rng=rng)
        net = FollowerNetwork(["x", "y"])
        with pytest.raises(SimulationError):
            simulate_corpus(population, net, rng=rng)

    def test_chain_depth_bounded(self, rng):
        population = generate_population(60, rng=rng)
        net = generate_follower_network(population, rng=rng)
        cfg = CascadeConfig(max_cascade_depth=2)
        corpus = simulate_corpus(population, net, config=cfg, rng=rng)
        from repro.estimation.tweets import RETWEET_PATTERN

        for tweet in corpus:
            assert len(RETWEET_PATTERN.findall(tweet.text)) <= 2

    def test_deterministic_with_seed(self):
        _, _, corpus_a = generate_microblog_service(60, seed=3)
        _, _, corpus_b = generate_microblog_service(60, seed=3)
        assert len(corpus_a) == len(corpus_b)
        assert [t.text for t in corpus_a] == [t.text for t in corpus_b]

    def test_quality_drives_retweets(self):
        """High-quality users must collect more retweet in-links."""
        population, _, corpus = generate_microblog_service(300, seed=9)
        graph = build_user_graph(corpus)
        quality = {u.username: u.quality for u in population}
        in_deg = [
            (graph.in_degree(u), quality[u]) for u in graph.nodes() if u in quality
        ]
        degrees = np.array([d for d, _ in in_deg], dtype=float)
        qualities = np.array([q for _, q in in_deg])
        if degrees.std() > 0:
            correlation = np.corrcoef(degrees, qualities)[0, 1]
            assert correlation > 0.1


class TestDataset:
    def test_population_roundtrip(self, tmp_path, rng):
        population = generate_population(12, rng=rng)
        path = tmp_path / "pop.jsonl"
        save_population(population, path)
        loaded = load_population(path)
        assert loaded == population

    def test_load_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"username": "x"}\n')
        with pytest.raises(SimulationError):
            load_population(path)

    def test_demo_corpus_shape(self):
        corpus = make_demo_corpus()
        assert len(corpus) == 16
        assert "alice" in corpus.authors
        assert corpus.retweet_count() >= 10
