"""Spam-ring robustness tests for the estimation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.estimation.graph import build_user_graph
from repro.estimation.pipeline import estimate_candidates
from repro.microblog.activity import generate_microblog_service
from repro.microblog.adversarial import SpamRingConfig, inject_spam_ring
from repro.microblog.dataset import make_demo_corpus


class TestSpamRingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_spammers": 1},
            {"tweets_per_spammer": 0},
            {"ring_retweet_probability": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(SimulationError):
            SpamRingConfig(**kwargs)


class TestInjectSpamRing:
    def test_corpus_grows_and_original_untouched(self):
        organic = make_demo_corpus()
        original_len = len(organic)
        augmented, ring = inject_spam_ring(
            organic, rng=np.random.default_rng(0)
        )
        assert len(organic) == original_len
        assert len(augmented) > original_len
        assert len(ring) == 10

    def test_ring_users_enter_the_graph(self):
        augmented, ring = inject_spam_ring(
            make_demo_corpus(), rng=np.random.default_rng(1)
        )
        graph = build_user_graph(augmented)
        for spammer in ring:
            assert spammer in graph
        # The ring fabricates in-links for its members.
        assert any(graph.in_degree(s) > 0 for s in ring)

    def test_username_collision_rejected(self):
        organic = make_demo_corpus()
        cfg = SpamRingConfig(username_prefix="alic")  # alic000... fine
        inject_spam_ring(organic, cfg, rng=np.random.default_rng(2))
        from repro.estimation.tweets import Tweet, TweetCorpus

        colliding = TweetCorpus([Tweet("spam000", "hello")])
        with pytest.raises(SimulationError):
            inject_spam_ring(colliding, rng=np.random.default_rng(3))

    def test_full_clique_density(self):
        cfg = SpamRingConfig(
            n_spammers=4, tweets_per_spammer=2, ring_retweet_probability=1.0
        )
        augmented, ring = inject_spam_ring(
            make_demo_corpus(), cfg, rng=np.random.default_rng(4)
        )
        graph = build_user_graph(augmented)
        # Every ordered spammer pair ends up linked.
        for a in ring:
            for b in ring:
                if a != b:
                    assert graph.has_edge(a, b)


class TestPipelineRobustness:
    @pytest.fixture(scope="class")
    def attacked_service(self):
        _, _, corpus = generate_microblog_service(400, seed=101)
        cfg = SpamRingConfig(n_spammers=8, tweets_per_spammer=4)
        augmented, ring = inject_spam_ring(
            corpus, cfg, rng=np.random.default_rng(5)
        )
        return augmented, set(ring)

    def test_pagerank_keeps_ring_out_of_top(self, attacked_service):
        """Damped PageRank confines the ring's fabricated authority: no
        spammer may crack the organic top 10."""
        corpus, ring = attacked_service
        result = estimate_candidates(corpus, ranking="pagerank", top_k=10)
        top_ids = {j.juror_id for j in result.jurors}
        assert not (top_ids & ring)

    def test_spammers_not_selected_into_jury(self, attacked_service):
        from repro.core.selection.altr import select_jury_altr

        corpus, ring = attacked_service
        result = estimate_candidates(corpus, ranking="pagerank", top_k=50)
        selection = select_jury_altr(result.jurors)
        assert not (set(selection.juror_ids) & ring)

    def test_ring_members_rank_below_organic_authorities(self, attacked_service):
        corpus, ring = attacked_service
        result = estimate_candidates(corpus, ranking="pagerank")
        scores = result.scores
        organic_top = max(
            score for user, score in scores.items() if user not in ring
        )
        best_spam = max(scores[s] for s in ring if s in scores)
        assert best_spam < organic_top
