"""Planner/backend agreement: every cost-model choice matches the oracles.

Three layers of agreement are asserted:

* **Backend choices** — the backend the cost model *reports* for a pool
  size must be the one the auto dispatchers actually use, checked
  bit-for-bit across the pmf ``dp``/``conv`` and jer ``dp``/``cba``
  crossover sizes.
* **Operator choices** — whatever physical operator the planner picks, the
  selection must match the ``jer_naive`` + ``enumerate_optimal`` oracles
  (hypothesis property tests over random instances).
* **Vectorized operators** — the columnar PayALG greedy must admit exactly
  the pairs a scalar replay of the paper's Algorithm 4 admits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import (
    AUTO_CBA_THRESHOLD,
    batch_jury_jer,
    extend_pmf,
    jer_naive,
    jury_error_rate,
)
from repro.core.juror import Juror
from repro.core.poisson_binomial import (
    FFT_CROSSOVER,
    PoissonBinomial,
    tail_probability,
)
from repro.core.selection.exact import enumerate_optimal
from repro.errors import InfeasibleSelectionError
from repro.plan import execute_plan, plan_query
from repro.plan.cost import jer_backend_for, pmf_backend_for
from repro.testing import ORACLE_ATOL

instances = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=9,
)
budgets = st.floats(min_value=0.1, max_value=3.0)


def make_candidates(pairs):
    return [Juror(eps, req, juror_id=f"c{i}") for i, (eps, req) in enumerate(pairs)]


class TestBackendChoiceMatchesDispatcher:
    @pytest.mark.parametrize(
        "n",
        [1, 5, AUTO_CBA_THRESHOLD - 1, AUTO_CBA_THRESHOLD, AUTO_CBA_THRESHOLD + 1],
    )
    def test_jer_backend_choice_is_bit_identical_to_auto(self, n, rng):
        """``jury_error_rate(..., "auto")`` must equal the backend the cost
        model reports for this size — exactly, not approximately."""
        size = n if n % 2 == 1 else n + 1  # JER needs an odd jury
        eps = rng.uniform(0.01, 0.99, size=size)
        chosen = jer_backend_for(size)
        assert jury_error_rate(eps, method="auto") == jury_error_rate(
            eps, method=chosen
        )

    @pytest.mark.parametrize(
        "n", [1, FFT_CROSSOVER - 1, FFT_CROSSOVER, FFT_CROSSOVER + 1]
    )
    def test_pmf_backend_choice_is_bit_identical_to_auto(self, n, rng):
        eps = rng.uniform(0.01, 0.99, size=n)
        chosen = pmf_backend_for(n)
        auto = PoissonBinomial(eps, method="auto").pmf()
        forced = PoissonBinomial(eps, method=chosen).pmf()
        assert np.array_equal(np.asarray(auto), np.asarray(forced))

    def test_jer_backend_agrees_with_naive_oracle(self, rng, oracle_atol):
        for size in (3, 7, 15):
            eps = rng.uniform(0.05, 0.95, size=size)
            chosen = jer_backend_for(size)
            assert jury_error_rate(eps, method=chosen) == pytest.approx(
                jer_naive(eps), abs=oracle_atol
            )


class TestBatchJuryJerKernel:
    def test_bit_identical_to_scalar_extension_chain(self, rng):
        """The enumeration operator's block kernel must reproduce the
        historical one-factor-at-a-time pmf extension exactly."""
        for k in (1, 3, 7, 13):
            matrix = rng.uniform(0.01, 0.99, size=(11, k))
            jers = batch_jury_jer(matrix)
            for row in range(matrix.shape[0]):
                pmf = np.ones(1, dtype=np.float64)
                for e in matrix[row]:
                    pmf = extend_pmf(pmf, e)
                assert jers[row] == tail_probability(pmf, (k + 1) // 2)

    def test_matches_naive_oracle(self, rng, oracle_atol):
        matrix = rng.uniform(0.05, 0.95, size=(5, 9))
        jers = batch_jury_jer(matrix)
        for row in range(5):
            assert jers[row] == pytest.approx(jer_naive(matrix[row]), abs=oracle_atol)


class TestPlannedExactMatchesEnumerationOracle:
    @given(instances, budgets)
    @settings(max_examples=60, deadline=None)
    def test_planned_exact_equals_enumerate_oracle(self, pairs, budget):
        """Whatever operator the cost model picks, the planned exact path
        must select the oracle's jury, bit for bit."""
        cands = make_candidates(pairs)
        try:
            oracle = enumerate_optimal(cands, budget=budget)
        except InfeasibleSelectionError:
            with pytest.raises(InfeasibleSelectionError):
                execute_plan(
                    plan_query(candidates=cands, model="exact", budget=budget)
                )
            return
        planned = execute_plan(
            plan_query(candidates=cands, model="exact", budget=budget)
        )
        assert planned.juror_ids == oracle.juror_ids
        assert planned.jer == oracle.jer

    @given(instances, budgets)
    @settings(max_examples=40, deadline=None)
    def test_forced_operators_agree_bit_for_bit(self, pairs, budget):
        """``enumerate`` and ``branch-and-bound`` are interchangeable
        physical operators for the same logical plan."""
        cands = make_candidates(pairs)
        try:
            enum = execute_plan(
                plan_query(
                    candidates=cands, model="exact", budget=budget,
                    method="enumerate",
                )
            )
        except InfeasibleSelectionError:
            return
        bb = execute_plan(
            plan_query(
                candidates=cands, model="exact", budget=budget,
                method="branch-and-bound",
            )
        )
        assert bb.juror_ids == enum.juror_ids
        assert bb.jer == enum.jer

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_planned_altr_matches_unconstrained_oracle(self, pairs):
        cands = make_candidates(pairs)
        planned = execute_plan(plan_query(candidates=cands, model="altr"))
        oracle = enumerate_optimal(cands)
        assert planned.jer == pytest.approx(oracle.jer, abs=ORACLE_ATOL)
        assert planned.jer == pytest.approx(
            jer_naive([j.error_rate for j in planned.jury]), abs=ORACLE_ATOL
        )


def _scalar_paper_greedy(candidates, budget):
    """Literal replay of paper Algorithm 4 (the pre-refactor scalar loop)."""
    ordered = sorted(
        candidates,
        key=lambda j: (j.error_rate * j.requirement, j.error_rate, j.juror_id),
    )
    seed_index = next(
        (i for i, j in enumerate(ordered) if j.requirement <= budget), None
    )
    if seed_index is None:
        raise InfeasibleSelectionError("infeasible")
    selected = [ordered[seed_index]]
    accumulated = ordered[seed_index].requirement
    current = jury_error_rate([j.error_rate for j in selected])
    partner = None
    for juror in ordered[seed_index + 1 :]:
        if partner is None:
            if juror.requirement + accumulated <= budget:
                partner = juror
            continue
        enlarged = juror.requirement + partner.requirement + accumulated
        if enlarged > budget:
            continue
        trial = jury_error_rate(
            [j.error_rate for j in selected] + [partner.error_rate, juror.error_rate]
        )
        if trial <= current:
            selected = selected + [partner, juror]
            accumulated = enlarged
            current = trial
            partner = None
    return tuple(j.juror_id for j in selected), current


class TestVectorizedPayMatchesScalarReplay:
    @given(instances, budgets)
    @settings(max_examples=60, deadline=None)
    def test_planned_pay_admits_the_same_pairs(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            ref_ids, ref_jer = _scalar_paper_greedy(cands, budget)
        except InfeasibleSelectionError:
            with pytest.raises(InfeasibleSelectionError):
                execute_plan(
                    plan_query(candidates=cands, model="pay", budget=budget)
                )
            return
        planned = execute_plan(
            plan_query(candidates=cands, model="pay", budget=budget)
        )
        assert planned.juror_ids == ref_ids
        assert planned.jer == pytest.approx(ref_jer, abs=ORACLE_ATOL)

    def test_block_boundary_admissions(self):
        """Pools larger than the trial block must scan identically across
        the block seam."""
        rng = np.random.default_rng(7)
        eps = rng.uniform(0.05, 0.6, size=300)
        reqs = rng.uniform(0.0, 0.1, size=300)
        cands = [
            Juror(float(e), float(r), juror_id=f"w{i}")
            for i, (e, r) in enumerate(zip(eps, reqs))
        ]
        ref_ids, ref_jer = _scalar_paper_greedy(cands, 3.0)
        planned = execute_plan(plan_query(candidates=cands, model="pay", budget=3.0))
        assert planned.juror_ids == ref_ids
        assert planned.jer == pytest.approx(ref_jer, abs=1e-10)
