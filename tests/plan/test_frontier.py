"""Answer frontier unit tests: probe/build/repair vs ``best_odd_prefix``.

The frontier's one correctness obligation is *bit-identity with the oracle
tie-break*: for every profile and every ``max_size``, ``probe()`` must return
exactly what :func:`repro.core.jer.best_odd_prefix` returns — same winning
size, bitwise-equal JER, same ``ValueError`` when nothing fits — whether the
frontier was built fresh or delta-repaired from an older version.  The rest
is cache mechanics (LRU, counters, the disable switch) and the cost model's
build-vs-probe crossover.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import best_odd_prefix, prefix_jer_profile
from repro.plan.cost import (
    FRONTIER_MIN_POOL,
    estimate_plan_cost,
    frontier_break_even,
    frontier_build_ops,
    frontier_eligible,
    frontier_probe_ops,
    frontier_scan_ops,
)
from repro.plan.frontier import (
    DEFAULT_FRONTIER_CACHE_SIZE,
    FRONTIER_ENV_FLAG,
    AnswerFrontier,
    FrontierCache,
    frontier_cache_enabled,
    frontier_cache_size_from_env,
)

eps_lists = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=40
)


def _profile(eps_values):
    return prefix_jer_profile(np.sort(np.asarray(eps_values, dtype=np.float64)))


class TestProbeOracle:
    @given(eps=eps_lists)
    @settings(max_examples=80, deadline=None)
    def test_probe_matches_best_odd_prefix_at_every_cap(self, eps):
        ns, jers = _profile(eps)
        frontier = AnswerFrontier.build(ns, jers, fingerprint="fp")
        for cap in [None, *range(1, len(eps) + 3)]:
            n, jer, considered = frontier.probe(cap)
            oracle_n, oracle_jer = best_odd_prefix(ns, jers, max_size=cap)
            assert n == oracle_n
            assert jer == oracle_jer  # bitwise float equality, not approx
            expected = int(np.sum(ns <= cap)) if cap is not None else int(ns.size)
            assert considered == expected

    @given(eps=eps_lists, cap=st.integers(min_value=-3, max_value=0))
    @settings(max_examples=30, deadline=None)
    def test_unsatisfiable_cap_raises_the_oracle_error(self, eps, cap):
        ns, jers = _profile(eps)
        frontier = AnswerFrontier.build(ns, jers, fingerprint="fp")
        with pytest.raises(ValueError, match="empty sweep profile"):
            frontier.probe(cap)
        with pytest.raises(ValueError, match="empty sweep profile"):
            best_odd_prefix(ns, jers, max_size=cap)

    def test_columns_are_read_only(self):
        ns, jers = _profile([0.3, 0.1, 0.2, 0.4, 0.25])
        frontier = AnswerFrontier.build(ns, jers, fingerprint="fp")
        for column in (frontier.ns, frontier.best_ns, frontier.best_jers):
            with pytest.raises(ValueError):
                column[0] = 0


class TestRepair:
    @given(
        eps=st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=2, max_size=40),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_repaired_equals_fresh_build(self, eps, data):
        """A repair from *any* clean watermark of *any* older profile must
        equal a fresh build bit for bit — the old dirty entries carry no
        information the running argmin is allowed to keep."""
        old = data.draw(eps_lists)
        old_ns, old_jers = _profile(old)
        stale = AnswerFrontier.build(old_ns, old_jers, fingerprint="old")

        ns, jers = _profile(eps)
        # Only entries whose inputs are unchanged may be declared clean.
        shared = 0
        limit = min(stale.ns.size, ns.size)
        while shared < limit and old_jers[shared] == jers[shared]:
            shared += 1
        clean = data.draw(st.integers(min_value=0, max_value=shared))

        repaired = stale.repaired(ns, jers, clean, fingerprint="new", version=7)
        fresh = AnswerFrontier.build(ns, jers, fingerprint="new", version=7)
        np.testing.assert_array_equal(repaired.best_ns, fresh.best_ns)
        np.testing.assert_array_equal(repaired.best_jers, fresh.best_jers)
        assert repaired.fingerprint == "new" and repaired.version == 7

    def test_repair_clamps_out_of_range_watermarks(self):
        ns, jers = _profile([0.1, 0.2, 0.3])
        frontier = AnswerFrontier.build(ns, jers, fingerprint="fp")
        # A watermark past either profile's length must not crash or read
        # out of bounds; declaring everything clean reproduces the source.
        repaired = frontier.repaired(ns, jers, 999, fingerprint="fp2")
        np.testing.assert_array_equal(repaired.best_jers, frontier.best_jers)


class TestFrontierCache:
    def _frontier(self, fingerprint, k=5):
        ns, jers = _profile([0.1 + 0.05 * i for i in range(k)])
        return AnswerFrontier.build(ns, jers, fingerprint=fingerprint)

    def test_lru_eviction_and_counters(self):
        cache = FrontierCache(maxsize=2)
        cache.put(self._frontier("a"), mode="built")
        cache.put(self._frontier("b"), mode="built")
        assert cache.get("a") is not None  # refresh "a"
        cache.put(self._frontier("c"), mode="built")  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.evictions == 1
        assert cache.builds == 3
        assert (cache.hits, cache.misses) == (3, 1)

    def test_lifecycle_modes_counted(self):
        cache = FrontierCache()
        cache.put(self._frontier("a"), mode="built")
        cache.put(self._frontier("a"), mode="repaired")
        cache.put(self._frontier("a"), mode="rebuilt")
        cache.put(self._frontier("a"), mode="cached")  # re-store, not counted
        assert (cache.builds, cache.repairs, cache.rebuilds) == (1, 1, 1)
        with pytest.raises(ValueError, match="unknown frontier mode"):
            cache.put(self._frontier("a"), mode="bogus")

    def test_invalidate_and_clear(self):
        cache = FrontierCache()
        cache.put(self._frontier("a"))
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.evictions == 1
        cache.put(self._frontier("b"))
        cache.clear()
        assert len(cache) == 0 and cache.builds == 0 and cache.evictions == 0

    def test_maxsize_zero_disables_storage_and_counting(self):
        cache = FrontierCache(maxsize=0)
        assert not cache.enabled
        cache.put(self._frontier("a"))
        assert cache.get("a") is None
        assert len(cache) == 0
        # A disabled cache reports all-zero counters: it never *attempted*
        # anything, which is what the REPRO_FRONTIER_CACHE=0 CI job pins.
        snapshot = cache.snapshot()
        assert snapshot["enabled"] is False
        assert all(
            snapshot[key] == 0
            for key in ("hits", "misses", "evictions", "repairs", "rebuilds")
        )

    def test_snapshot_is_json_ready(self):
        import json

        cache = FrontierCache()
        cache.put(self._frontier("a"))
        assert json.loads(json.dumps(cache.snapshot()))["entries"] == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FrontierCache(maxsize=-1)


class TestEnvFlag:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(FRONTIER_ENV_FLAG, raising=False)
        assert frontier_cache_enabled() is True
        assert frontier_cache_size_from_env() == DEFAULT_FRONTIER_CACHE_SIZE

    @pytest.mark.parametrize("value", ["0", "false", "FALSE", " no ", "off"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(FRONTIER_ENV_FLAG, value)
        assert frontier_cache_enabled() is False
        assert frontier_cache_size_from_env() == 0

    @pytest.mark.parametrize("value", ["1", "true", "on", "banana"])
    def test_other_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(FRONTIER_ENV_FLAG, value)
        assert frontier_cache_enabled() is True


class TestCostModel:
    def test_eligibility_is_altr_only_and_gated_by_pool_size(self):
        assert frontier_eligible("altr", FRONTIER_MIN_POOL)
        assert not frontier_eligible("altr", FRONTIER_MIN_POOL - 1)
        assert not frontier_eligible("pay", 100)
        assert not frontier_eligible("exact", 100)

    def test_break_even_is_finite_for_every_eligible_pool(self):
        # Eligibility implies the probe is *strictly* cheaper than the scan,
        # so building always amortises after finitely many repeats.
        assert frontier_probe_ops(FRONTIER_MIN_POOL) < frontier_scan_ops(
            FRONTIER_MIN_POOL
        )
        assert frontier_break_even(FRONTIER_MIN_POOL) < 10**6
        # Away from the boundary the payoff is immediate: a handful of
        # repeat probes recoups the one-pass build.
        for n in (10, 100, 10_000):
            assert frontier_probe_ops(n) < frontier_scan_ops(n)
            assert 1 <= frontier_break_even(n) <= 3

    def test_break_even_never_amortises_below_the_crossover(self):
        # One odd prefix: scanning IS probing, so building never pays; the
        # same holds right up to the eligibility boundary.
        assert frontier_break_even(1) >= 10**6
        assert frontier_break_even(FRONTIER_MIN_POOL - 1) >= 10**6
        assert frontier_build_ops(1) == frontier_scan_ops(1) == 1.0

    def test_altr_estimates_expose_the_probe_alternative(self):
        cost = estimate_plan_cost(model="altr", pool_size=25, affordable=25)
        operators = [operator for operator, _ in cost.estimates]
        assert operators == ["altr-sweep", "frontier-probe"]
        sweep_ops = dict(cost.estimates)["altr-sweep"]
        probe_ops = dict(cost.estimates)["frontier-probe"]
        assert probe_ops < sweep_ops

    def test_small_pools_omit_the_probe_estimate(self):
        cost = estimate_plan_cost(model="altr", pool_size=1, affordable=1)
        assert [operator for operator, _ in cost.estimates] == ["altr-sweep"]

    def test_non_altr_estimates_unchanged(self):
        pay = estimate_plan_cost(model="pay", pool_size=25, affordable=20)
        assert all(op != "frontier-probe" for op, _ in pay.estimates)
        exact = estimate_plan_cost(model="exact", pool_size=25, affordable=20)
        assert all(op != "frontier-probe" for op, _ in exact.estimates)
