"""Tests for the plan_query front door: normalisation, views, explain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Juror, jurors_from_arrays
from repro.errors import (
    BudgetError,
    EmptyCandidateSetError,
    InvalidJuryError,
)
from repro.plan import (
    PoolView,
    as_view,
    execute_plan,
    normalize_model,
    plan_query,
    planner_cache_info,
)
from repro.service.pool import CandidatePool


class TestNormalizeModel:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("altr", "altr"),
            ("AltrM", "altr"),
            ("ALTRUISM", "altr"),
            ("pay", "pay"),
            ("PayM", "pay"),
            ("pay-as-you-go", "pay"),
            ("exact", "exact"),
            ("opt", "exact"),
            ("Optimal", "exact"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert normalize_model(alias) == canonical

    @pytest.mark.parametrize("bad", ["greedy", "", None, 7, "alt r"])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError, match="unknown model"):
            normalize_model(bad)


class TestPoolView:
    def test_sorts_into_lemma3_order(self):
        view = PoolView.from_jurors(
            [Juror(0.3, juror_id="c"), Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b")]
        )
        assert view.eps.tolist() == [0.1, 0.2, 0.3]
        assert view.ids == ("a", "b", "c")

    def test_arrays_are_read_only(self):
        view = PoolView.from_jurors(jurors_from_arrays([0.2, 0.1]))
        with pytest.raises(ValueError):
            view.eps[0] = 0.5
        with pytest.raises(ValueError):
            view.reqs[0] = 0.5

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(EmptyCandidateSetError):
            PoolView.from_jurors([])
        with pytest.raises(InvalidJuryError):
            PoolView.from_jurors([Juror(0.1, juror_id="x"), Juror(0.2, juror_id="x")])

    def test_candidate_pool_view_shares_arrays(self):
        pool = CandidatePool(jurors_from_arrays([0.3, 0.1, 0.2]))
        view = pool.view
        assert view is pool.view  # cached
        assert view.ordered == pool.ordered
        np.testing.assert_array_equal(view.eps, np.asarray(pool.error_rates))
        assert view.fingerprint == pool.fingerprint

    def test_as_view_passthrough_and_coercion(self):
        jurors = jurors_from_arrays([0.2, 0.1])
        view = PoolView.from_jurors(jurors)
        assert as_view(view) is view
        pool = CandidatePool(jurors)
        assert as_view(pool) is pool.view
        assert as_view(jurors).eps.tolist() == [0.1, 0.2]

    def test_take_preserves_order_and_members(self):
        view = PoolView.from_jurors(
            jurors_from_arrays([0.1, 0.2, 0.3, 0.4], [1.0, 0.1, 1.0, 0.2])
        )
        sub = view.take(view.reqs <= 0.5)
        assert sub.eps.tolist() == [0.2, 0.4]
        assert [j.error_rate for j in sub.ordered] == [0.2, 0.4]


class TestPlanQuery:
    def test_altr_plan_shape(self):
        plan = plan_query(candidates=jurors_from_arrays([0.1, 0.2, 0.3]))
        assert plan.model == "altr"
        assert plan.operator == "altr-sweep"
        assert plan.jer_backend == "dp"
        assert plan.pmf_backend == "dp"
        assert plan.cost.pool_size == 3
        assert plan.cost.affordable == 3

    def test_model_parsed_once_accepts_aliases(self):
        cands = jurors_from_arrays([0.1, 0.2, 0.3], [0.1, 0.1, 0.1])
        plan = plan_query(candidates=cands, model="PayM", budget=1.0)
        assert plan.model == "pay"
        assert plan.operator == "pay-greedy"
        result = execute_plan(plan)
        assert result.model == "PayM"

    def test_pay_requires_budget(self):
        with pytest.raises(ValueError, match="requires a budget"):
            plan_query(candidates=jurors_from_arrays([0.1]), model="pay")

    def test_budget_validated(self):
        with pytest.raises(BudgetError):
            plan_query(
                candidates=jurors_from_arrays([0.1]), model="pay", budget=-1.0
            )

    def test_unknown_variant_and_method(self):
        cands = jurors_from_arrays([0.1], [0.0])
        with pytest.raises(ValueError, match="unknown variant"):
            plan_query(candidates=cands, model="pay", budget=1.0, variant="oracle")
        with pytest.raises(ValueError, match="unknown method"):
            plan_query(candidates=cands, model="exact", method="clairvoyant")

    def test_exactly_one_source(self):
        cands = jurors_from_arrays([0.1])
        with pytest.raises(ValueError, match="exactly one"):
            plan_query()
        with pytest.raises(ValueError, match="exactly one"):
            plan_query(candidates=cands, pool=PoolView.from_jurors(cands))

    def test_budget_tightness_drives_exact_operator(self):
        # 16 candidates, but only 10 individually affordable: the planner
        # enumerates over the effective pool instead of branching.
        reqs = [0.1] * 10 + [9.0] * 6
        cands = jurors_from_arrays([0.2 + 0.01 * i for i in range(16)], reqs)
        tight = plan_query(candidates=cands, model="exact", budget=1.0)
        assert tight.cost.affordable == 10
        assert tight.operator == "exact-enumerate"
        loose = plan_query(candidates=cands, model="exact", budget=100.0)
        assert loose.cost.affordable == 16
        assert loose.operator == "exact-branch-and-bound"
        # Operator choice must not change the answer: force the other
        # operator on the tight query and compare selections exactly.
        forced = plan_query(
            candidates=cands, model="exact", budget=1.0, method="branch-and-bound"
        )
        assert execute_plan(tight).juror_ids == execute_plan(forced).juror_ids

    def test_pay_reports_the_backend_it_actually_uses(self):
        # The PayM operator maintains pmfs by sequential convolution at
        # every size; the plan must not advertise the CBA crossover for it.
        eps = [0.2 + i * 1e-3 for i in range(300)]
        cands = jurors_from_arrays(eps, [0.01] * 300)
        plan = plan_query(candidates=cands, model="pay", budget=1.0)
        assert plan.jer_backend == "dp"
        altr = plan_query(candidates=cands, model="altr")
        assert altr.jer_backend == "cba"  # the dispatcher's rule, reported

    def test_improved_variant_estimate_labeled(self):
        cands = jurors_from_arrays([0.1, 0.2, 0.3], [0.1, 0.1, 0.1])
        plan = plan_query(
            candidates=cands, model="pay", budget=1.0, variant="improved"
        )
        assert plan.operator == "pay-greedy-improved"
        assert plan.cost.estimates[0][0] == "pay-greedy-improved"

    def test_explicit_method_overrides_cost_model(self):
        cands = jurors_from_arrays([0.2] * 4, [0.1] * 4)
        plan = plan_query(
            candidates=cands, model="exact", budget=1.0, method="branch-and-bound"
        )
        assert plan.operator == "exact-branch-and-bound"

    def test_describe_is_json_friendly(self):
        import json

        plan = plan_query(
            candidates=jurors_from_arrays([0.1, 0.2], [0.3, 0.4]),
            model="exact",
            budget=0.5,
        )
        info = json.loads(json.dumps(plan.describe()))
        assert info["operator"] == "exact-enumerate"
        assert info["cost"]["affordable"] == 2
        assert info["cost"]["estimates"][0]["operator"] == "exact-enumerate"


class TestPlanCacheDeterminism:
    def test_same_query_plans_identically(self):
        cands = jurors_from_arrays([0.1, 0.2, 0.3], [0.2, 0.3, 0.4])
        first = plan_query(candidates=cands, model="exact", budget=1.0)
        second = plan_query(candidates=cands, model="exact", budget=1.0)
        assert first.describe() == second.describe()

    def test_repeat_planning_hits_the_choice_cache(self):
        cands = jurors_from_arrays([0.15, 0.25], [0.1, 0.2])
        plan_query(candidates=cands, model="pay", budget=1.0)
        hits_before = planner_cache_info().hits
        plan_query(candidates=cands, model="pay", budget=1.0)
        assert planner_cache_info().hits > hits_before

    def test_cached_choice_is_bit_identical_execution(self):
        cands = jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3], [0.1] * 5)
        results = [
            execute_plan(plan_query(candidates=cands, model="pay", budget=0.5))
            for _ in range(2)
        ]
        assert results[0].juror_ids == results[1].juror_ids
        assert results[0].jer == results[1].jer
