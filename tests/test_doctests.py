"""Run every docstring example in the library as a test.

Keeps the documented examples honest: if an API changes, the docs fail here
before a user hits them.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
