"""Tests for the Section 5.1 synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.synth.generators import (
    generate_error_rates,
    generate_requirements,
    generate_workload,
)


class TestGenerateErrorRates:
    def test_in_open_interval(self, rng):
        eps = generate_error_rates(5000, 0.5, 0.3, rng)
        assert np.all(eps > 0.0)
        assert np.all(eps < 1.0)

    def test_mean_roughly_respected(self, rng):
        eps = generate_error_rates(20_000, 0.4, 0.01, rng)
        assert eps.mean() == pytest.approx(0.4, abs=0.01)

    def test_variance_is_variance_not_std(self, rng):
        """Paper gives variances; generator must interpret them as such."""
        eps = generate_error_rates(50_000, 0.5, 0.04, rng)
        # With mean 0.5 and variance 0.04 (std 0.2), clipping is mild.
        assert eps.std() == pytest.approx(0.2, abs=0.02)

    def test_clipping_at_extreme_mean(self, rng):
        eps = generate_error_rates(1000, 0.95, 0.1, rng)
        assert np.all(eps <= 1.0 - 1e-3 + 1e-12)

    def test_invalid_args(self, rng):
        with pytest.raises(SimulationError):
            generate_error_rates(0, 0.5, 0.1, rng)
        with pytest.raises(SimulationError):
            generate_error_rates(10, 0.5, -0.1, rng)


class TestGenerateRequirements:
    def test_non_negative(self, rng):
        reqs = generate_requirements(5000, 0.1, 0.2, rng)
        assert np.all(reqs >= 0.0)

    def test_mean_roughly_respected(self, rng):
        reqs = generate_requirements(20_000, 2.0, 0.01, rng)
        assert reqs.mean() == pytest.approx(2.0, abs=0.02)

    def test_invalid_args(self, rng):
        with pytest.raises(SimulationError):
            generate_requirements(-5, 0.5, 0.1, rng)


class TestGenerateWorkload:
    def test_basic_shape(self):
        wl = generate_workload(50, eps_mean=0.2, eps_variance=0.05, seed=1)
        assert wl.size == 50
        assert len(wl.error_rates()) == 50
        assert wl.seed == 1

    def test_altruistic_by_default(self):
        wl = generate_workload(20, eps_mean=0.2, eps_variance=0.05, seed=2)
        assert np.all(wl.requirements() == 0.0)

    def test_paym_requirements(self):
        wl = generate_workload(
            20, eps_mean=0.2, eps_variance=0.05, req_mean=0.5, req_variance=0.2,
            seed=3,
        )
        assert np.any(wl.requirements() > 0.0)

    def test_deterministic_by_seed(self):
        a = generate_workload(30, eps_mean=0.3, eps_variance=0.1, seed=7)
        b = generate_workload(30, eps_mean=0.3, eps_variance=0.1, seed=7)
        np.testing.assert_array_equal(a.error_rates(), b.error_rates())

    def test_external_rng_wins_over_seed(self):
        rng = np.random.default_rng(0)
        wl = generate_workload(
            10, eps_mean=0.3, eps_variance=0.1, seed=99, rng=rng
        )
        assert wl.seed is None

    def test_jurors_usable_by_selectors(self):
        from repro.core.selection.altr import select_jury_altr

        wl = generate_workload(31, eps_mean=0.25, eps_variance=0.05, seed=5)
        result = select_jury_altr(list(wl.jurors))
        assert result.size % 2 == 1

    def test_id_prefix(self):
        wl = generate_workload(
            3, eps_mean=0.5, eps_variance=0.05, seed=1, id_prefix="w"
        )
        assert [j.juror_id for j in wl.jurors] == ["w1", "w2", "w3"]
