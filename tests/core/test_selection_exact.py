"""Tests for the exact JSP solvers (enumeration and branch-and-bound)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.exact import (
    branch_and_bound_optimal,
    enumerate_optimal,
    select_jury_optimal,
)
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError

paym_instances = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=8,
)


def make_candidates(pairs):
    return [Juror(eps, req, juror_id=f"c{i}") for i, (eps, req) in enumerate(pairs)]


class TestEnumerateOptimal:
    def test_paper_motivating_example(self, table2_jurors):
        result = enumerate_optimal(table2_jurors, budget=1.0)
        assert sorted(result.juror_ids) == ["A", "B", "C"]
        assert result.jer == pytest.approx(0.072)

    def test_unconstrained_matches_altr(self, table2_jurors):
        result = enumerate_optimal(table2_jurors)
        altr = select_jury_altr(table2_jurors)
        assert result.jer == pytest.approx(altr.jer, abs=1e-12)
        assert result.model == "AltrM"

    def test_empty_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            enumerate_optimal([])

    def test_size_guard(self):
        cands = jurors_from_arrays([0.3] * 21)
        with pytest.raises(ValueError):
            enumerate_optimal(cands)

    def test_infeasible(self):
        cands = jurors_from_arrays([0.2, 0.3], [2.0, 3.0])
        with pytest.raises(InfeasibleSelectionError):
            enumerate_optimal(cands, budget=1.0)

    def test_max_size_cap(self, table2_jurors):
        result = enumerate_optimal(table2_jurors, max_size=3)
        assert result.size <= 3
        assert result.jer == pytest.approx(0.072)

    def test_tie_breaks_toward_smaller_jury(self):
        # Both {a} and {a, b, c} with eps 0.5 have JER exactly 0.5.
        cands = jurors_from_arrays([0.5, 0.5, 0.5])
        result = enumerate_optimal(cands)
        assert result.size == 1

    def test_budget_zero_picks_best_free_juror(self):
        cands = [
            Juror(0.4, 0.0, juror_id="free-ok"),
            Juror(0.2, 0.0, juror_id="free-good"),
            Juror(0.05, 1.0, juror_id="paid-great"),
        ]
        result = enumerate_optimal(cands, budget=0.0)
        assert result.juror_ids == ("free-good",)


class TestBranchAndBound:
    def test_paper_motivating_example(self, table2_jurors):
        result = branch_and_bound_optimal(table2_jurors, budget=1.0)
        assert sorted(result.juror_ids) == ["A", "B", "C"]
        assert result.jer == pytest.approx(0.072)

    @given(paym_instances, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_enumeration(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            enum = enumerate_optimal(cands, budget=budget)
        except InfeasibleSelectionError:
            with pytest.raises(InfeasibleSelectionError):
                branch_and_bound_optimal(cands, budget=budget)
            return
        bb = branch_and_bound_optimal(cands, budget=budget)
        assert bb.jer == pytest.approx(enum.jer, abs=1e-10)
        assert bb.total_cost <= budget + 1e-9

    @given(paym_instances)
    @settings(max_examples=40, deadline=None)
    def test_unconstrained_agrees_with_altr(self, pairs):
        cands = make_candidates(pairs)
        bb = branch_and_bound_optimal(cands)
        altr = select_jury_altr(cands)
        assert bb.jer == pytest.approx(altr.jer, abs=1e-10)

    def test_bound_pruning_reduces_nodes(self):
        rng = np.random.default_rng(41)
        eps = rng.uniform(0.1, 0.6, size=14)
        reqs = rng.uniform(0.0, 0.5, size=14)
        cands = jurors_from_arrays(eps, reqs)
        with_bound = branch_and_bound_optimal(cands, budget=1.5, use_jer_bound=True)
        without = branch_and_bound_optimal(cands, budget=1.5, use_jer_bound=False)
        assert with_bound.jer == pytest.approx(without.jer, abs=1e-12)
        assert with_bound.stats.nodes_visited <= without.stats.nodes_visited

    def test_handles_paper_scale_n22(self):
        """The paper's ground-truth setting: N=22, eps~N(0.2,.05), r~N(0.05,.2)."""
        rng = np.random.default_rng(2012)
        eps = np.clip(rng.normal(0.2, np.sqrt(0.05), size=22), 0.01, 0.99)
        reqs = np.clip(rng.normal(0.05, np.sqrt(0.2), size=22), 0.0, None)
        cands = jurors_from_arrays(eps, reqs)
        result = branch_and_bound_optimal(cands, budget=1.0)
        assert result.size % 2 == 1
        assert result.total_cost <= 1.0 + 1e-9

    def test_infeasible(self):
        cands = jurors_from_arrays([0.2, 0.3], [2.0, 3.0])
        with pytest.raises(InfeasibleSelectionError):
            branch_and_bound_optimal(cands, budget=1.0)

    def test_stats_record_search_effort(self, table2_jurors):
        result = branch_and_bound_optimal(table2_jurors, budget=1.0)
        assert result.stats.nodes_visited > 0


class TestSelectJuryOptimalDispatcher:
    def test_auto_small_uses_enumeration(self, table2_jurors):
        result = select_jury_optimal(table2_jurors, budget=1.0)
        assert result.algorithm == "OPT-enumerate"

    def test_auto_large_uses_branch_and_bound(self):
        cands = jurors_from_arrays([0.3] * 16, [0.1] * 16)
        result = select_jury_optimal(cands, budget=1.0)
        assert result.algorithm == "OPT-branch-and-bound"

    def test_explicit_methods_agree(self, table2_jurors):
        enum = select_jury_optimal(table2_jurors, budget=1.0, method="enumerate")
        bb = select_jury_optimal(table2_jurors, budget=1.0, method="branch-and-bound")
        assert enum.jer == pytest.approx(bb.jer, abs=1e-12)

    def test_unknown_method(self, table2_jurors):
        with pytest.raises(ValueError):
            select_jury_optimal(table2_jurors, method="clairvoyant")

    def test_max_size_forwarded(self, table2_jurors):
        result = select_jury_optimal(table2_jurors, budget=5.0, max_size=1)
        assert result.size == 1
