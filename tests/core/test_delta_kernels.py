"""Tests for the batch delta kernels in repro.core.jer.

``convolve_pmf`` / ``deconvolve_pmf`` generalise IncrementalJury's
single-juror maintenance to k-juror batches; ``resume_prefix_sweep`` repairs
a prefix pmf matrix from a clean watermark.  The hard guarantee under test:
resumed sweeps are *bit-identical* to ``batch_prefix_jer_sweep`` from
scratch, because the live-pool oracle property builds on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jer import (
    batch_prefix_jer_sweep,
    convolve_pmf,
    deconvolve_pmf,
    resume_prefix_sweep,
)
from repro.core.poisson_binomial import pmf_dp
from repro.errors import InvalidErrorRateError
from repro.testing import DECONV_ATOL, PMF_ATOL


class TestConvolvePmf:
    def test_matches_from_scratch_dp(self, rng):
        base = rng.uniform(0.05, 0.95, size=9)
        extra = rng.uniform(0.05, 0.95, size=4)
        grown = convolve_pmf(pmf_dp(base), extra)
        np.testing.assert_allclose(
            grown, pmf_dp(np.concatenate([base, extra])), atol=PMF_ATOL
        )

    def test_empty_batch_is_identity(self):
        pmf = pmf_dp([0.2, 0.3])
        np.testing.assert_array_equal(convolve_pmf(pmf, []), pmf)

    def test_single_factor_equals_sequential(self, rng):
        eps = rng.uniform(0.05, 0.95, size=6)
        one_shot = convolve_pmf(np.ones(1), eps)
        step_wise = np.ones(1)
        for e in eps:
            step_wise = convolve_pmf(step_wise, [e])
        np.testing.assert_array_equal(one_shot, step_wise)

    def test_result_is_a_distribution(self, rng):
        pmf = convolve_pmf(np.ones(1), rng.uniform(0.05, 0.95, size=20))
        assert np.all(pmf >= 0.0)
        assert float(pmf.sum()) == pytest.approx(1.0, abs=1e-10)

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(InvalidErrorRateError):
            convolve_pmf(np.ones(1), [0.2, 1.5])

    def test_rejects_bad_pmf_shape(self):
        with pytest.raises(ValueError, match="1-D"):
            convolve_pmf(np.ones((2, 2)), [0.2])


class TestDeconvolvePmf:
    def test_inverts_convolve(self, rng):
        base = rng.uniform(0.05, 0.95, size=11)
        extra = rng.uniform(0.05, 0.95, size=5)
        pmf = pmf_dp(np.concatenate([base, extra]))
        np.testing.assert_allclose(
            deconvolve_pmf(pmf, extra), pmf_dp(base), atol=DECONV_ATOL
        )

    def test_stable_near_one_half(self, rng):
        """Both recurrence directions are exercised right around 0.5, where
        deconvolution has the least damping."""
        base = rng.uniform(0.45, 0.55, size=15)
        drop = [base[3], base[7], base[11]]
        keep = np.delete(base, [3, 7, 11])
        np.testing.assert_allclose(
            deconvolve_pmf(pmf_dp(base), drop), pmf_dp(keep), atol=DECONV_ATOL
        )

    def test_remove_everything_leaves_empty_pmf(self, rng):
        eps = rng.uniform(0.1, 0.9, size=7)
        np.testing.assert_allclose(
            deconvolve_pmf(pmf_dp(eps), eps), [1.0], atol=DECONV_ATOL
        )

    def test_rejects_removing_more_factors_than_present(self):
        with pytest.raises(ValueError, match="deconvolve"):
            deconvolve_pmf(pmf_dp([0.2, 0.3]), [0.2, 0.3, 0.4])

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(InvalidErrorRateError):
            deconvolve_pmf(pmf_dp([0.2, 0.3]), [-0.1])


class TestResumePrefixSweep:
    def _fresh_state(self, capacity: int) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.zeros((capacity, capacity), dtype=np.float64),
            np.zeros((capacity + 1) // 2, dtype=np.float64),
        )

    def test_full_sweep_bit_identical_to_batch_kernel(self, rng):
        for n in (1, 2, 8, 33):
            eps = rng.uniform(0.05, 0.95, size=n)
            matrix, jers = self._fresh_state(n + 1)
            resume_prefix_sweep(eps, matrix, jers, start=0)
            ns, reference = batch_prefix_jer_sweep(eps[np.newaxis, :])
            np.testing.assert_array_equal(jers[: ns.size], reference[0])

    def test_partial_repair_bit_identical(self, rng):
        """Perturbing a suffix and repairing from the watermark must agree
        with a scratch sweep bit for bit, for every watermark position."""
        n = 21
        eps = np.sort(rng.uniform(0.05, 0.95, size=n))
        matrix, jers = self._fresh_state(n + 4)  # oversized capacity on purpose
        resume_prefix_sweep(eps, matrix, jers, start=0)
        for watermark in (0, 1, 5, 10, 20, 21):
            churned = eps.copy()
            churned[watermark:] = np.sort(rng.uniform(0.05, 0.95, size=n - watermark))
            resume_prefix_sweep(churned, matrix, jers, start=watermark)
            ns, reference = batch_prefix_jer_sweep(churned[np.newaxis, :])
            np.testing.assert_array_equal(jers[: ns.size], reference[0])
            eps = churned

    def test_prefix_rows_hold_prefix_pmfs(self, rng):
        eps = rng.uniform(0.05, 0.95, size=9)
        matrix, jers = self._fresh_state(10)
        resume_prefix_sweep(eps, matrix, jers, start=0)
        for m in (1, 4, 9):
            np.testing.assert_allclose(
                matrix[m, : m + 1], pmf_dp(eps[:m]), atol=PMF_ATOL
            )
            assert np.all(matrix[m, m + 1 :] == 0.0)

    def test_rejects_empty_and_bad_watermark(self):
        matrix, jers = self._fresh_state(4)
        with pytest.raises(ValueError, match="empty"):
            resume_prefix_sweep(np.array([]), matrix, jers, start=0)
        with pytest.raises(ValueError, match="start"):
            resume_prefix_sweep(np.array([0.2]), matrix, jers, start=2)

    def test_rejects_undersized_state(self):
        eps = np.full(6, 0.3)
        with pytest.raises(ValueError, match="pmf_matrix"):
            resume_prefix_sweep(eps, np.zeros((3, 3)), np.zeros(3), start=0)
        with pytest.raises(ValueError, match="jers"):
            resume_prefix_sweep(eps, np.zeros((7, 7)), np.zeros(1), start=0)
