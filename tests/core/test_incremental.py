"""Tests for the incrementally maintained jury."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalJury
from repro.core.jer import jer_dp
from repro.core.juror import Juror
from repro.core.poisson_binomial import pmf_dp
from repro.errors import EvenJurySizeError, InvalidJuryError


def jurors(eps_list):
    return [Juror(e, juror_id=f"j{i}") for i, e in enumerate(eps_list)]


class TestIncrementalJury:
    def test_empty_start(self):
        builder = IncrementalJury()
        assert builder.size == 0
        np.testing.assert_allclose(builder.pmf(), [1.0])

    def test_add_and_jer_matches_batch(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.2]))
        assert builder.jer() == pytest.approx(jer_dp([0.1, 0.2, 0.2]))

    def test_duplicate_add_rejected(self):
        builder = IncrementalJury()
        builder.add(Juror(0.2, juror_id="x"))
        with pytest.raises(InvalidJuryError):
            builder.add(Juror(0.3, juror_id="x"))

    def test_non_juror_rejected(self):
        with pytest.raises(InvalidJuryError):
            IncrementalJury().add(0.3)  # type: ignore[arg-type]

    def test_remove_restores_pmf(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.3, 0.4, 0.5]))
        removed = builder.remove("j2")
        assert removed.error_rate == 0.3
        expected = pmf_dp([0.1, 0.2, 0.4, 0.5])
        np.testing.assert_allclose(builder.pmf(), expected, atol=1e-9)

    def test_remove_unknown(self):
        with pytest.raises(InvalidJuryError):
            IncrementalJury().remove("ghost")

    def test_even_size_jer_raises(self):
        builder = IncrementalJury(jurors([0.1, 0.2]))
        with pytest.raises(EvenJurySizeError):
            builder.jer()

    def test_swap(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.3]))
        removed = builder.swap("j1", Juror(0.05, juror_id="new"))
        assert removed.juror_id == "j1"
        assert builder.jer() == pytest.approx(jer_dp([0.1, 0.05, 0.3]))

    def test_swap_duplicate_incoming_restores_state(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.3]))
        with pytest.raises(InvalidJuryError):
            builder.swap("j0", Juror(0.5, juror_id="j1"))  # j1 already member
        # The original member must be back.
        assert "j0" in builder
        assert builder.size == 3

    def test_what_if_add_no_mutation(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.2]))
        hypothetical = builder.what_if_add(
            Juror(0.3, juror_id="d"), Juror(0.3, juror_id="e")
        )
        assert hypothetical == pytest.approx(jer_dp([0.1, 0.2, 0.2, 0.3, 0.3]))
        assert builder.size == 3

    def test_what_if_add_duplicate(self):
        builder = IncrementalJury(jurors([0.1]))
        with pytest.raises(InvalidJuryError):
            builder.what_if_add(Juror(0.3, juror_id="j0"))

    def test_what_if_add_even_target_raises(self):
        builder = IncrementalJury(jurors([0.1]))
        with pytest.raises(EvenJurySizeError):
            builder.what_if_add(Juror(0.3, juror_id="x"))

    def test_what_if_swap(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.3]))
        hypothetical = builder.what_if_swap("j2", Juror(0.05, juror_id="x"))
        assert hypothetical == pytest.approx(jer_dp([0.1, 0.2, 0.05]))
        assert "j2" in builder  # untouched

    def test_what_if_swap_unknown(self):
        builder = IncrementalJury(jurors([0.1]))
        with pytest.raises(InvalidJuryError):
            builder.what_if_swap("nope", Juror(0.2, juror_id="x"))

    def test_total_cost(self):
        builder = IncrementalJury(
            [Juror(0.1, 0.5, juror_id="a"), Juror(0.2, 0.25, juror_id="b")]
        )
        assert builder.total_cost == pytest.approx(0.75)

    def test_freeze(self):
        builder = IncrementalJury(jurors([0.1, 0.2, 0.3]))
        jury = builder.freeze()
        assert jury.size == 3
        assert jury.juror_ids == ("j0", "j1", "j2")

    @given(
        st.lists(st.floats(min_value=0.02, max_value=0.98), min_size=1, max_size=15),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_edit_sequences_match_batch(self, eps, data):
        """After any add/remove sequence, the pmf equals batch recomputation."""
        builder = IncrementalJury()
        live: dict[str, float] = {}
        for i, e in enumerate(eps):
            builder.add(Juror(e, juror_id=f"r{i}"))
            live[f"r{i}"] = e
            if len(live) > 1 and data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(sorted(live)))
                builder.remove(victim)
                del live[victim]
        expected = pmf_dp(list(live.values()))
        np.testing.assert_allclose(builder.pmf(), expected, atol=1e-8)
