"""Property tests: delta-maintained pmfs cannot drift from scratch rebuilds.

Long random add/remove/swap sequences on :class:`IncrementalJury` must stay
within the shared ``DECONV_ATOL`` of a from-scratch ``pmf_dp`` rebuild of
the surviving members — including error rates pinned near 0.5, where
deconvolution amplifies round-off the most.  For the jury this holds for
*arbitrarily long* sequences because of its rebuild hygiene
(``REBUILD_AFTER_REMOVALS``); the bare kernels are additionally tested
against their documented contract, which only covers bounded removal
chains.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalJury
from repro.core.jer import convolve_pmf, deconvolve_pmf
from repro.core.juror import Juror
from repro.core.poisson_binomial import pmf_dp
from repro.testing import DECONV_ATOL

# Deliberately includes the worst-conditioned regime around 0.5 (the
# deconvolution recurrences divide by ~0.5 there) alongside tame rates.
eps_values = st.one_of(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.47, max_value=0.53),
)

# An operation is ("add", eps), ("remove", index_seed) or ("swap",
# index_seed, eps); index seeds are reduced modulo the live membership.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), eps_values),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(
            st.just("swap"),
            st.integers(min_value=0, max_value=10**6),
            eps_values,
        ),
    ),
    min_size=1,
    max_size=60,
)


def _rebuilt_pmf(jury: IncrementalJury) -> np.ndarray:
    eps = [j.error_rate for j in jury.members]
    return pmf_dp(eps) if eps else np.ones(1)


class TestIncrementalJuryStability:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_long_mutation_sequences_track_scratch_rebuild(self, ops):
        jury = IncrementalJury()
        counter = 0
        for op in ops:
            if op[0] == "add" or jury.size == 0:
                eps = op[1] if op[0] == "add" else 0.5
                jury.add(Juror(eps, juror_id=f"j{counter}"))
                counter += 1
            elif op[0] == "remove":
                victim = jury.members[op[1] % jury.size]
                jury.remove(victim.juror_id)
            else:
                victim = jury.members[op[1] % jury.size]
                jury.swap(victim.juror_id, Juror(op[2], juror_id=f"j{counter}"))
                counter += 1
        np.testing.assert_allclose(jury.pmf(), _rebuilt_pmf(jury), atol=DECONV_ATOL)
        if jury.size % 2 == 1 and jury.size > 0:
            threshold = (jury.size + 1) // 2
            expected = float(np.sum(_rebuilt_pmf(jury)[threshold:]))
            assert jury.jer() == pytest.approx(expected, abs=DECONV_ATOL)

    @given(st.lists(eps_values, min_size=2, max_size=30), st.data())
    @settings(max_examples=60, deadline=None)
    def test_batch_add_then_batch_remove_round_trips(self, eps, data):
        jury = IncrementalJury()
        jury.add_all([Juror(e, juror_id=f"j{i}") for i, e in enumerate(eps)])
        k = data.draw(st.integers(min_value=1, max_value=len(eps) - 1))
        jury.remove_all([f"j{i}" for i in range(k)])
        np.testing.assert_allclose(jury.pmf(), _rebuilt_pmf(jury), atol=DECONV_ATOL)

    def test_failed_batch_mutation_leaves_state_untouched(self):
        jury = IncrementalJury([Juror(0.2, juror_id="a"), Juror(0.3, juror_id="b")])
        before = jury.pmf()
        with pytest.raises(Exception):
            jury.add_all([Juror(0.4, juror_id="c"), Juror(0.5, juror_id="a")])
        with pytest.raises(Exception):
            jury.remove_all(["a", "ghost"])
        assert jury.size == 2
        np.testing.assert_array_equal(jury.pmf(), before)


class TestKernelStability:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_kernel_level_churn_with_bounded_removal_chains(self, ops):
        """The same property one layer down, on bare pmfs and error rates.

        The kernel contract only covers *short* deconvolution chains (error
        grows like ``(2n)^r`` with chain length ``r`` near eps = 0.5), so
        this test applies the same hygiene IncrementalJury uses: after
        REBUILD_AFTER_REMOVALS removals the pmf restarts from ``pmf_dp``.
        """
        from repro.core.incremental import REBUILD_AFTER_REMOVALS

        pmf = np.ones(1)
        live: list[float] = []
        removals = 0

        def drop(current: np.ndarray, eps: float) -> np.ndarray:
            nonlocal removals
            removals += 1
            if removals > REBUILD_AFTER_REMOVALS:
                removals = 0
                return pmf_dp(live) if live else np.ones(1)
            return deconvolve_pmf(current, [eps])

        for op in ops:
            if op[0] == "add" or not live:
                eps = op[1] if op[0] == "add" else 0.5
                pmf = convolve_pmf(pmf, [eps])
                live.append(eps)
            elif op[0] == "remove":
                eps = live.pop(op[1] % len(live))
                pmf = drop(pmf, eps)
            else:
                outgoing = live.pop(op[1] % len(live))
                pmf = drop(pmf, outgoing)
                pmf = convolve_pmf(pmf, [op[2]])
                live.append(op[2])
        expected = pmf_dp(live) if live else np.ones(1)
        np.testing.assert_allclose(pmf, expected, atol=DECONV_ATOL)
