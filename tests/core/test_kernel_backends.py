"""Cross-backend bit-identity and registry behaviour for ``repro.core.kernels``.

Every available backend (numpy reference, numba JIT, cc-built native) is
parametrized through the same oracle comparisons in one pytest session;
backends that fail activation on this host are *skipped with the recorded
reason*, never silently dropped.  The equivalence contract is bit-identity
(:data:`repro.testing.KERNEL_EQUIVALENCE_ULPS` is pinned to zero): a
backend that cannot reproduce NumPy's floating-point results exactly is
deactivated by its self-check, not tolerated by a looser assertion here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.jer import (
    batch_jury_jer,
    batch_prefix_jer_sweep,
    convolve_pmf,
    extend_pmf,
    extend_pmf_block,
    prefix_jer_profile,
)
from repro.core.juror import Juror
from repro.core.selection.pay import run_pay_greedy
from repro.testing import KERNEL_EQUIVALENCE_ULPS

COMPILED_NAMES = ("numba", "native")

#: (batch, pool) shapes covering the sweep's odd/even and recursion edges.
SWEEP_SHAPES = ((1, 1), (2, 3), (3, 17), (1, 64), (2, 65), (1, 129), (1, 515))


def _compiled_params():
    """One param per compiled backend; unavailable ones skip with reason."""
    status = kernels.backend_status()
    params = []
    for name in COMPILED_NAMES:
        reason = status.get(name)
        if reason is None:
            params.append(pytest.param(name))
        else:
            params.append(
                pytest.param(
                    name,
                    marks=pytest.mark.skip(
                        reason=f"{name} backend unavailable: {reason}"
                    ),
                )
            )
    return params


def _bits(a: np.ndarray) -> bytes:
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64)).tobytes()


@pytest.fixture(autouse=True)
def _restore_backend_mode():
    """Leave the session mode untouched for the rest of the suite."""
    yield
    kernels.set_kernel_backend(None)


def test_equivalence_contract_is_bit_identity():
    assert KERNEL_EQUIVALENCE_ULPS == 0


class TestCrossBackendBitIdentity:
    @pytest.mark.parametrize("backend", _compiled_params())
    def test_sweep(self, backend, rng):
        for batch, pool in SWEEP_SHAPES:
            eps = rng.uniform(0.01, 0.6, size=(batch, pool))
            ns_ref, ref = batch_prefix_jer_sweep(eps, backend="numpy")
            ns_got, got = batch_prefix_jer_sweep(eps, backend=backend)
            assert np.array_equal(ns_ref, ns_got)
            assert _bits(ref) == _bits(got), (batch, pool)

    @pytest.mark.parametrize("backend", _compiled_params())
    def test_jury_jer(self, backend, rng):
        for batch, size in ((1, 1), (4, 3), (8, 17), (2, 65), (3, 129)):
            eps = rng.uniform(0.01, 0.6, size=(batch, size))
            with kernels.use_backend("numpy"):
                ref = batch_jury_jer(eps)
            with kernels.use_backend(backend):
                got = batch_jury_jer(eps)
            assert _bits(ref) == _bits(got), (batch, size)

    @pytest.mark.parametrize("backend", _compiled_params())
    def test_extend_block_and_convolve(self, backend, rng):
        base = np.ones(1, dtype=np.float64)
        for e in rng.uniform(0.05, 0.45, size=12):
            base = extend_pmf(base, float(e))
        eps = rng.uniform(0.05, 0.45, size=200)
        with kernels.use_backend("numpy"):
            ref_block = extend_pmf_block(base, eps)
            ref_conv = convolve_pmf(base, eps[:9])
        with kernels.use_backend(backend):
            got_block = extend_pmf_block(base, eps)
            got_conv = convolve_pmf(base, eps[:9])
        assert _bits(ref_block) == _bits(got_block)
        assert _bits(ref_conv) == _bits(got_conv)

    @pytest.mark.parametrize("backend", _compiled_params())
    def test_pay_greedy_selection(self, backend, rng):
        for pool in (3, 25, 120, 311):
            eps = rng.uniform(0.02, 0.48, size=pool)
            reqs = np.round(rng.uniform(0.5, 3.0, size=pool), 3)
            jurors = [
                Juror(float(e), float(r), juror_id=f"w{i}")
                for i, (e, r) in enumerate(zip(eps, reqs))
            ]
            # Affordable by construction: at least the priciest single
            # candidate, so tiny pools cannot raise InfeasibleSelectionError.
            budget = float(max(np.sum(reqs) / 4.0, np.max(reqs)))
            ref = run_pay_greedy(jurors, budget, backend="numpy")
            got = run_pay_greedy(jurors, budget, backend=backend)
            assert ref.juror_ids == got.juror_ids, pool
            assert ref.jer.hex() == got.jer.hex()
            assert (
                ref.stats.juries_considered == got.stats.juries_considered
            )
            assert ref.stats.jer_evaluations == got.stats.jer_evaluations

    @pytest.mark.parametrize("backend", _compiled_params())
    def test_profile_thread_through(self, backend, rng):
        eps = rng.uniform(0.05, 0.6, size=251)
        ns_ref, ref = prefix_jer_profile(eps, backend="numpy")
        ns_got, got = prefix_jer_profile(eps, backend=backend)
        assert np.array_equal(ns_ref, ns_got)
        assert _bits(ref) == _bits(got)


class TestRegistry:
    def test_available_always_includes_numpy(self):
        assert "numpy" in kernels.available_backends()

    def test_backend_status_reports_reason_or_none(self):
        status = kernels.backend_status()
        assert status["numpy"] is None
        for name in COMPILED_NAMES:
            reason = status[name]
            assert reason is None or (
                isinstance(reason, str) and reason
            )

    def test_forced_mode_bypasses_crossovers(self):
        compiled = [n for n in kernels.available_backends() if n != "numpy"]
        if not compiled:
            pytest.skip("no compiled backend available on this host")
        name = compiled[0]
        with kernels.use_backend(name):
            # Size 1 is far below every crossover; forced modes ignore them.
            assert kernels.backend_for("pay_scan", 1).name == name
            assert kernels.kernel_backend_for("pay_scan", 1) == name

    def test_auto_mode_applies_pay_crossover(self):
        compiled = [n for n in kernels.available_backends() if n != "numpy"]
        with kernels.use_backend("auto"):
            below = kernels.kernel_backend_for(
                "pay_scan", kernels.COMPILED_PAY_CROSSOVER - 1
            )
            above = kernels.kernel_backend_for(
                "pay_scan", kernels.COMPILED_PAY_CROSSOVER
            )
        assert below == "numpy"
        if compiled:
            assert above != "numpy"
        else:
            assert above == "numpy"

    def test_forcing_unavailable_backend_falls_back_to_numpy(self):
        unavailable = [
            name
            for name, reason in kernels.backend_status().items()
            if reason is not None
        ]
        if not unavailable:
            pytest.skip("every backend is available on this host")
        with kernels.use_backend(unavailable[0]):
            assert kernels.backend_for("sweep", 10_000).name == "numpy"
            assert kernels.kernel_backend_for("sweep", 10_000) == "numpy"

    def test_numpy_mode_never_dispatches_compiled(self, rng):
        eps = rng.uniform(0.05, 0.6, size=(1, 99))
        with kernels.use_backend("numpy"):
            kernels.reset_dispatch_counters()
            batch_prefix_jer_sweep(eps)
            counts = kernels.dispatch_counts()
        assert set(counts["sweep"]) == {"numpy"}

    def test_dispatch_counters_accumulate_per_kernel(self, rng):
        eps = rng.uniform(0.05, 0.6, size=(1, 41))
        kernels.reset_dispatch_counters()
        expected = kernels.kernel_backend_for("sweep", 41)
        batch_prefix_jer_sweep(eps)
        batch_prefix_jer_sweep(eps)
        counts = kernels.dispatch_counts()
        assert counts["sweep"][expected] == 2

    def test_set_kernel_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_kernel_backend("fortran")

    def test_env_var_sets_requested_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        kernels._reset_for_tests()
        try:
            assert kernels.requested_backend() == "numpy"
        finally:
            monkeypatch.delenv("REPRO_KERNEL_BACKEND")
            kernels._reset_for_tests()

    def test_invalid_env_var_falls_back_to_auto_with_note(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "turbo")
        kernels._reset_for_tests()
        try:
            assert kernels.requested_backend() == "auto"
            assert "turbo" in kernels.stats_snapshot()["env_note"]
        finally:
            monkeypatch.delenv("REPRO_KERNEL_BACKEND")
            kernels._reset_for_tests()

    def test_stats_snapshot_shape(self):
        snapshot = kernels.stats_snapshot()
        assert snapshot["requested"] in kernels.BACKEND_CHOICES
        assert snapshot["active"] in ("numpy",) + COMPILED_NAMES
        assert "numpy" in snapshot["available"]
        assert set(snapshot["crossovers"]) == {
            "sweep_pool_size",
            "pay_scan_pool_size",
            "block_elements",
        }
        assert snapshot["lazy_activations"] >= 0


class TestColdStart:
    def test_engine_construction_precompiles_backends(self):
        """First JIT/cc compile must happen at engine construction (via
        ``ensure_ready``), never inside a query dispatch — so the compile
        cost cannot poison per-query timings or the engine's counters."""
        from repro.service.batch import BatchSelectionEngine, SelectionQuery

        kernels._reset_for_tests()  # forget probes: force a fresh activation
        try:
            engine = BatchSelectionEngine()
            assert engine.stats.kernel_backend == kernels.ensure_ready()
            # Activation happened eagerly above; the queries below must not
            # trigger a lazy (in-dispatch) compile.
            jurors = [
                Juror(0.1 + 0.02 * i, juror_id=f"w{i}") for i in range(25)
            ]
            outcomes = engine.run(
                [SelectionQuery(task_id="t0", candidates=jurors)]
            )
            assert outcomes[0].ok
            assert kernels.lazy_activations() == 0
        finally:
            kernels._reset_for_tests()

    def test_service_stats_surface_kernel_block(self):
        from repro.api import JuryService

        service = JuryService()
        try:
            payload = service.stats()
        finally:
            service.close()
        assert payload["engine"]["kernel_backend"] == kernels.ensure_ready()
        block = payload["kernels"]
        assert block["active"] == kernels.ensure_ready()
        assert block["requested"] in kernels.BACKEND_CHOICES
        assert "dispatch" in block and "crossovers" in block
