"""Deep cross-module property tests (hypothesis).

Each test here states an invariant that couples two or more subsystems —
the kind of contract a downstream user implicitly relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import paley_zygmund_lower_bound
from repro.core.incremental import IncrementalJury
from repro.core.jer import PrefixJERSweeper, jer_dp
from repro.core.juror import Juror
from repro.core.poisson_binomial import pmf_dp
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.exact import branch_and_bound_optimal
from repro.core.selection.lagrangian import select_jury_lagrangian
from repro.core.selection.pay import select_jury_pay
from repro.core.sensitivity import jer_gradient
from repro.core.weighted import (
    WeightedMajorityVoting,
    weighted_jury_error_rate,
)
from repro.core.voting import MajorityVoting, Voting
from repro.errors import InfeasibleSelectionError

eps_values = st.floats(min_value=0.02, max_value=0.98)
odd_juries = st.lists(eps_values, min_size=1, max_size=11).filter(
    lambda xs: len(xs) % 2 == 1
)
paym_instances = st.lists(
    st.tuples(eps_values, st.floats(min_value=0.0, max_value=1.0)),
    min_size=1,
    max_size=8,
)


class TestDistributionSemigroup:
    @given(
        st.lists(eps_values, min_size=1, max_size=8),
        st.lists(eps_values, min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_pmf_of_union_is_convolution(self, left, right):
        """PB(a + b) == PB(a) (*) PB(b): the convolution semigroup law."""
        joint = pmf_dp(left + right)
        convolved = np.convolve(pmf_dp(left), pmf_dp(right))
        np.testing.assert_allclose(joint, convolved, atol=1e-10)

    @given(st.lists(eps_values, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_complement_symmetry(self, eps):
        """Flipping every eps to 1-eps mirrors the pmf: Pr(C=k) -> Pr(C=n-k)."""
        pmf = pmf_dp(eps)
        mirrored = pmf_dp([1.0 - e for e in eps])
        np.testing.assert_allclose(pmf, mirrored[::-1], atol=1e-10)

    @given(odd_juries)
    @settings(max_examples=60, deadline=None)
    def test_jer_complement_duality(self, eps):
        """JER of the complement crowd equals 1 - JER of the original.

        With all error rates flipped, 'more than half wrong' becomes 'at
        least half right'; on odd sizes the two events are exact complements.
        """
        original = jer_dp(eps)
        flipped = jer_dp([1.0 - e for e in eps])
        assert original + flipped == pytest.approx(1.0, abs=1e-10)


class TestSelectionConsistency:
    @given(st.lists(eps_values, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_altr_equals_unbudgeted_exact(self, eps):
        cands = [Juror(e, juror_id=f"c{i}") for i, e in enumerate(eps)]
        altr = select_jury_altr(cands)
        exact = branch_and_bound_optimal(cands)
        assert altr.jer == pytest.approx(exact.jer, abs=1e-10)

    @given(paym_instances, st.floats(min_value=0.1, max_value=2.5))
    @settings(max_examples=40, deadline=None)
    def test_selector_hierarchy(self, pairs, budget):
        """OPT <= Lagrangian and OPT <= PayALG on every feasible instance."""
        cands = [Juror(e, r, juror_id=f"c{i}") for i, (e, r) in enumerate(pairs)]
        try:
            exact = branch_and_bound_optimal(cands, budget=budget)
            greedy = select_jury_pay(cands, budget=budget)
            lagrangian = select_jury_lagrangian(cands, budget=budget)
        except InfeasibleSelectionError:
            return
        assert exact.jer <= greedy.jer + 1e-10
        assert exact.jer <= lagrangian.jer + 1e-10

    @given(st.lists(eps_values, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_altr_jer_never_above_best_individual(self, eps):
        cands = [Juror(e, juror_id=f"c{i}") for i, e in enumerate(eps)]
        result = select_jury_altr(cands)
        assert result.jer <= min(eps) + 1e-12

    @given(paym_instances, st.floats(min_value=0.1, max_value=1.5),
           st.floats(min_value=0.1, max_value=1.5))
    @settings(max_examples=40, deadline=None)
    def test_exact_optimum_monotone_in_budget(self, pairs, b1, b2):
        cands = [Juror(e, r, juror_id=f"c{i}") for i, (e, r) in enumerate(pairs)]
        low, high = min(b1, b2), max(b1, b2)
        try:
            at_low = branch_and_bound_optimal(cands, budget=low)
        except InfeasibleSelectionError:
            return
        at_high = branch_and_bound_optimal(cands, budget=high)
        assert at_high.jer <= at_low.jer + 1e-12


class TestGradientConsistency:
    @given(odd_juries)
    @settings(max_examples=40, deadline=None)
    def test_gradient_reconstructs_jer_via_euler_like_identity(self, eps):
        """JER = eps_i * g_i + tail(J\\i) for EVERY i simultaneously."""
        jer = jer_dp(eps)
        gradient = jer_gradient(eps)
        threshold = (len(eps) + 1) // 2
        from repro.core.poisson_binomial import tail_probability

        for i in range(len(eps)):
            rest = pmf_dp(eps[:i] + eps[i + 1:])
            assert eps[i] * gradient[i] + tail_probability(
                rest, threshold
            ) == pytest.approx(jer, abs=1e-9)

    @given(odd_juries)
    @settings(max_examples=40, deadline=None)
    def test_gradient_bounded_by_one(self, eps):
        gradient = jer_gradient(eps)
        assert np.all(gradient <= 1.0 + 1e-12)


class TestWeightedInvariances:
    @given(odd_juries, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_wmv_invariant_under_positive_scaling(self, eps, scale):
        """Scaling all weights by a positive constant changes nothing."""
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.2, 2.0, size=len(eps))
        votes = rng.integers(0, 2, size=(20, len(eps)))
        base = WeightedMajorityVoting(weights).decide_batch(votes)
        scaled = WeightedMajorityVoting(weights * scale).decide_batch(votes)
        np.testing.assert_array_equal(base, scaled)

    @given(odd_juries)
    @settings(max_examples=30, deadline=None)
    def test_uniform_weighted_jer_equals_majority_jer(self, eps):
        uniform = weighted_jury_error_rate(eps, weights=[1.0] * len(eps))
        assert uniform == pytest.approx(jer_dp(eps), abs=1e-10)


class TestIncrementalConsistency:
    @given(st.lists(eps_values, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_incremental_prefixes_match_sweeper(self, eps):
        builder = IncrementalJury()
        sweeper_values = dict(PrefixJERSweeper(eps))
        for i, e in enumerate(eps):
            builder.add(Juror(e, juror_id=f"p{i}"))
            if builder.size % 2 == 1:
                assert builder.jer() == pytest.approx(
                    sweeper_values[builder.size], abs=1e-9
                )


class TestVotingSchemeCoupling:
    @given(odd_juries, st.integers(min_value=0, max_value=1))
    @settings(max_examples=40, deadline=None)
    def test_majority_error_iff_carelessness_majority(self, eps, truth):
        """decide() disagrees with the truth exactly when C >= (n+1)/2."""
        rng = np.random.default_rng(17)
        n = len(eps)
        wrong = rng.random(n) < np.asarray(eps)
        votes = np.where(wrong, 1 - truth, truth).tolist()
        decision = MajorityVoting().decide(Voting(votes))
        carelessness = int(wrong.sum())
        assert (decision != truth) == (carelessness >= (n + 1) // 2)


class TestBoundSelectionCoupling:
    @given(st.lists(st.floats(min_value=0.55, max_value=0.98),
                    min_size=3, max_size=11).filter(lambda xs: len(xs) % 2 == 1))
    @settings(max_examples=40, deadline=None)
    def test_pruning_with_bound_is_safe_for_selection(self, eps):
        """AltrALG with pruning returns the same jury as without on
        error-prone populations (where the bound actually fires)."""
        cands = [Juror(e, juror_id=f"c{i}") for i, e in enumerate(eps)]
        plain = select_jury_altr(cands, strategy="per-jury", use_bound=False)
        pruned = select_jury_altr(cands, strategy="per-jury", use_bound=True)
        assert pruned.jer == pytest.approx(plain.jer, abs=1e-12)

    @given(odd_juries)
    @settings(max_examples=40, deadline=None)
    def test_bound_is_sound_certificate(self, eps):
        bound = paley_zygmund_lower_bound(eps)
        if bound is not None:
            assert bound <= jer_dp(eps) + 1e-12
