"""Unit tests for Voting, MajorityVoting and carelessness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Jury
from repro.core.voting import (
    MajorityVoting,
    Voting,
    carelessness,
    is_minority_wrong,
)
from repro.errors import EvenJurySizeError, InvalidJuryError


class TestVoting:
    def test_basic(self):
        v = Voting([1, 0, 1])
        assert v.size == 3
        assert v.yes_count == 2
        assert v.no_count == 1

    def test_accepts_numpy_input(self):
        v = Voting(np.array([1, 0, 1]))
        assert v.votes == (1, 0, 1)

    def test_empty_rejected(self):
        with pytest.raises(InvalidJuryError):
            Voting([])

    @pytest.mark.parametrize("bad", [[2, 0, 1], [1, -1, 0], [0.5, 0, 1]])
    def test_non_binary_rejected(self, bad):
        with pytest.raises(InvalidJuryError):
            Voting(bad)

    def test_jury_size_must_match(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3])
        with pytest.raises(InvalidJuryError):
            Voting([1, 0], jury=jury)

    def test_jury_attached(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3])
        v = Voting([1, 0, 1], jury=jury)
        assert v.jury is jury

    def test_as_array(self):
        arr = Voting([1, 0, 1]).as_array()
        assert arr.dtype == np.int8
        np.testing.assert_array_equal(arr, [1, 0, 1])

    def test_frozen(self):
        v = Voting([1, 0, 1])
        with pytest.raises(AttributeError):
            v.votes = (0, 0, 0)


class TestMajorityVoting:
    @pytest.mark.parametrize(
        "votes,expected",
        [
            ([1], 1),
            ([0], 0),
            ([1, 1, 0], 1),
            ([1, 0, 0], 0),
            ([1, 1, 1, 0, 0], 1),
            ([1, 1, 0, 0, 0], 0),
            ([1] * 7, 1),
            ([0] * 7, 0),
        ],
    )
    def test_decision_matches_definition3(self, votes, expected):
        assert MajorityVoting().decide(Voting(votes)) == expected

    def test_even_size_raises_in_strict_mode(self):
        with pytest.raises(EvenJurySizeError):
            MajorityVoting().decide(Voting([1, 0]))

    def test_even_size_tie_break(self):
        mv = MajorityVoting(strict=False, tie_break=1)
        assert mv.decide(Voting([1, 0])) == 1
        assert mv.decide(Voting([1, 1, 0, 0])) == 1

    def test_even_size_clear_majority_non_strict(self):
        mv = MajorityVoting(strict=False)
        assert mv.decide(Voting([1, 1, 1, 0])) == 1
        assert mv.decide(Voting([0, 0, 0, 1])) == 0

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(InvalidJuryError):
            MajorityVoting(tie_break=2)

    def test_decide_votes_shortcut(self):
        assert MajorityVoting().decide_votes([1, 1, 0]) == 1

    def test_decide_batch(self):
        votes = np.array([[1, 1, 0], [0, 0, 1], [1, 1, 1]])
        decisions = MajorityVoting().decide_batch(votes)
        np.testing.assert_array_equal(decisions, [1, 0, 1])

    def test_decide_batch_rejects_1d(self):
        with pytest.raises(InvalidJuryError):
            MajorityVoting().decide_batch(np.array([1, 0, 1]))

    def test_decide_batch_even_strict_raises(self):
        with pytest.raises(EvenJurySizeError):
            MajorityVoting().decide_batch(np.array([[1, 0], [1, 1]]))

    def test_decide_batch_even_tie_break(self):
        mv = MajorityVoting(strict=False, tie_break=0)
        decisions = mv.decide_batch(np.array([[1, 0], [1, 1]]))
        np.testing.assert_array_equal(decisions, [0, 1])

    def test_callable(self):
        assert MajorityVoting()(Voting([1, 1, 0])) == 1


class TestCarelessness:
    def test_counts_disagreements_with_truth(self):
        v = Voting([1, 0, 1, 0, 0])
        assert carelessness(v, ground_truth=1) == 3
        assert carelessness(v, ground_truth=0) == 2

    def test_bounds(self):
        v = Voting([1, 1, 1])
        assert carelessness(v, 1) == 0
        assert carelessness(v, 0) == 3

    def test_invalid_ground_truth(self):
        with pytest.raises(InvalidJuryError):
            carelessness(Voting([1, 0, 1]), ground_truth=2)

    def test_is_minority_wrong(self):
        assert is_minority_wrong(Voting([1, 1, 0]), ground_truth=1)
        assert not is_minority_wrong(Voting([1, 0, 0]), ground_truth=1)

    def test_is_minority_wrong_even_raises(self):
        with pytest.raises(EvenJurySizeError):
            is_minority_wrong(Voting([1, 0]), ground_truth=1)

    def test_majority_decision_correct_iff_minority_wrong(self):
        rng = np.random.default_rng(7)
        mv = MajorityVoting()
        for _ in range(50):
            n = int(rng.choice([1, 3, 5, 7]))
            votes = rng.integers(0, 2, size=n).tolist()
            truth = int(rng.integers(0, 2))
            v = Voting(votes)
            assert (mv.decide(v) == truth) == is_minority_wrong(v, truth)
