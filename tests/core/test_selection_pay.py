"""Tests for PayALG (paper Algorithm 4) and its improved variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.exact import enumerate_optimal
from repro.core.selection.pay import select_jury_pay
from repro.errors import (
    BudgetError,
    EmptyCandidateSetError,
    InfeasibleSelectionError,
)

paym_instances = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=9,
)


def make_candidates(pairs):
    return [
        Juror(eps, req, juror_id=f"c{i}") for i, (eps, req) in enumerate(pairs)
    ]


class TestSelectJuryPay:
    def test_motivating_example(self, table2_jurors):
        """Figure 1 story: budget $1 forces {A,B,C} over {A,B,C,D,E}."""
        result = select_jury_pay(table2_jurors, budget=1.0)
        assert sorted(result.juror_ids) == ["A", "B", "C"]
        assert result.jer == pytest.approx(0.072)
        assert result.total_cost <= 1.0

    def test_generous_budget_paper_variant_stalls_at_abc(self, table2_jurors):
        """First-fit pairing locks F as the partner, so even with an unlimited
        budget the paper's greedy never tries the {D, E} pair and stays at
        {A, B, C} (JER 0.072) instead of {A..E} (JER 0.0704)."""
        result = select_jury_pay(table2_jurors, budget=100.0)
        assert sorted(result.juror_ids) == ["A", "B", "C"]
        assert result.jer == pytest.approx(0.072)

    def test_generous_budget_improved_variant_recovers_altr_optimum(
        self, table2_jurors
    ):
        result = select_jury_pay(table2_jurors, budget=100.0, variant="improved")
        assert sorted(result.juror_ids) == ["A", "B", "C", "D", "E"]
        assert result.jer == pytest.approx(0.07036)

    def test_empty_candidates_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            select_jury_pay([], budget=1.0)

    def test_negative_budget_rejected(self, table2_jurors):
        with pytest.raises(BudgetError):
            select_jury_pay(table2_jurors, budget=-1.0)

    def test_infeasible_budget_raises(self):
        cands = jurors_from_arrays([0.1, 0.2], [5.0, 6.0])
        with pytest.raises(InfeasibleSelectionError):
            select_jury_pay(cands, budget=1.0)

    def test_zero_budget_with_free_juror(self):
        cands = [Juror(0.3, 0.0, juror_id="free"), Juror(0.1, 1.0, juror_id="paid")]
        result = select_jury_pay(cands, budget=0.0)
        assert result.juror_ids == ("free",)

    def test_unknown_variant_rejected(self, table2_jurors):
        with pytest.raises(ValueError):
            select_jury_pay(table2_jurors, budget=1.0, variant="oracle")

    def test_result_metadata(self, table2_jurors):
        result = select_jury_pay(table2_jurors, budget=1.0)
        assert result.model == "PayM"
        assert result.budget == pytest.approx(1.0)
        assert result.algorithm == "PayALG"

    @given(paym_instances, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=80, deadline=None)
    def test_feasibility_invariants(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            result = select_jury_pay(cands, budget=budget)
        except InfeasibleSelectionError:
            assert all(j.requirement > budget for j in cands)
            return
        assert result.size % 2 == 1
        assert result.total_cost <= budget + 1e-9
        assert 0.0 <= result.jer <= 1.0

    @given(paym_instances, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_never_beats_enumerated_optimum(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            greedy = select_jury_pay(cands, budget=budget)
        except InfeasibleSelectionError:
            return
        optimal = enumerate_optimal(cands, budget=budget)
        assert greedy.jer >= optimal.jer - 1e-10

    @given(paym_instances, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_improved_variant_never_worse(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            paper = select_jury_pay(cands, budget=budget, variant="paper")
            improved = select_jury_pay(cands, budget=budget, variant="improved")
        except InfeasibleSelectionError:
            return
        assert improved.jer <= paper.jer + 1e-10

    def test_greedy_can_be_suboptimal(self):
        """A crafted instance where first-fit pairing misses the optimum.

        The cheap-but-noisy pair is scanned first (low eps*r) and accepted,
        exhausting budget that the optimum spends on the accurate pair.
        """
        cands = [
            Juror(0.30, 0.10, juror_id="seed"),
            Juror(0.45, 0.01, juror_id="noisy1"),
            Juror(0.45, 0.01, juror_id="noisy2"),
            Juror(0.05, 0.45, juror_id="sharp1"),
            Juror(0.05, 0.45, juror_id="sharp2"),
        ]
        budget = 1.0
        greedy = select_jury_pay(cands, budget=budget)
        optimal = enumerate_optimal(cands, budget=budget)
        assert optimal.jer <= greedy.jer
        # The point of the instance: strict gap.
        assert greedy.jer > optimal.jer + 1e-6

    def test_budget_monotonicity_of_greedy_quality(self, table2_jurors):
        """More budget never hurts the greedy on the paper's example family."""
        jers = [
            select_jury_pay(table2_jurors, budget=b).jer
            for b in (0.3, 0.6, 1.0, 1.5, 2.0)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(jers, jers[1:]))

    def test_pair_admission_keeps_size_odd(self):
        rng = np.random.default_rng(23)
        eps = rng.uniform(0.1, 0.5, size=20)
        reqs = rng.uniform(0.0, 0.3, size=20)
        result = select_jury_pay(jurors_from_arrays(eps, reqs), budget=2.0)
        assert result.size % 2 == 1

    def test_stats_populated(self, table2_jurors):
        result = select_jury_pay(table2_jurors, budget=1.0)
        assert result.stats.jer_evaluations >= 1
        assert result.stats.elapsed_seconds >= 0.0

    def test_all_free_candidates_reduce_to_altr(self):
        from repro.core.selection.altr import select_jury_altr

        eps = [0.1, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45]
        free = jurors_from_arrays(eps)  # all requirements zero
        pay = select_jury_pay(free, budget=0.0)
        altr = select_jury_altr(free)
        assert pay.jer == pytest.approx(altr.jer, abs=1e-12)
