"""Tests for the weighted-majority-voting extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import jer_dp
from repro.core.voting import MajorityVoting, Voting
from repro.core.weighted import (
    WeightedMajorityVoting,
    optimal_log_odds_weights,
    weighted_jury_error_rate,
)
from repro.errors import InvalidJuryError

odd_juries = st.lists(
    st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=9
).filter(lambda xs: len(xs) % 2 == 1)


class TestOptimalWeights:
    def test_signs(self):
        w = optimal_log_odds_weights([0.1, 0.5, 0.9])
        assert w[0] > 0
        assert w[1] == pytest.approx(0.0, abs=1e-12)
        assert w[2] < 0

    def test_symmetry(self):
        w = optimal_log_odds_weights([0.2, 0.8])
        assert w[0] == pytest.approx(-w[1])

    def test_more_reliable_means_heavier(self):
        w = optimal_log_odds_weights([0.05, 0.2, 0.4])
        assert w[0] > w[1] > w[2]


class TestWeightedMajorityVoting:
    def test_uniform_weights_reduce_to_majority(self):
        mv = MajorityVoting()
        wmv = WeightedMajorityVoting([1.0, 1.0, 1.0])
        for votes in ([1, 1, 0], [0, 0, 1], [1, 0, 1], [0, 1, 0]):
            assert wmv.decide(Voting(votes)) == mv.decide(Voting(votes))

    def test_heavy_expert_overrules_crowd(self):
        wmv = WeightedMajorityVoting([10.0, 1.0, 1.0])
        assert wmv.decide(Voting([1, 0, 0])) == 1
        assert wmv.decide(Voting([0, 1, 1])) == 0

    def test_tie_break(self):
        wmv = WeightedMajorityVoting([1.0, 1.0], tie_break=1)
        assert wmv.decide(Voting([1, 0])) == 1

    def test_vote_count_mismatch(self):
        wmv = WeightedMajorityVoting([1.0, 1.0])
        with pytest.raises(InvalidJuryError):
            wmv.decide(Voting([1, 0, 1]))

    def test_invalid_weights(self):
        with pytest.raises(InvalidJuryError):
            WeightedMajorityVoting([])
        with pytest.raises(InvalidJuryError):
            WeightedMajorityVoting([float("nan")])

    def test_invalid_tie_break(self):
        with pytest.raises(InvalidJuryError):
            WeightedMajorityVoting([1.0], tie_break=7)

    def test_decide_batch_matches_single(self):
        rng = np.random.default_rng(3)
        weights = rng.uniform(0.5, 2.0, size=5)
        wmv = WeightedMajorityVoting(weights)
        votes = rng.integers(0, 2, size=(50, 5))
        batch = wmv.decide_batch(votes)
        singles = [wmv.decide(Voting(row.tolist())) for row in votes]
        np.testing.assert_array_equal(batch, singles)

    def test_decide_batch_shape_check(self):
        wmv = WeightedMajorityVoting([1.0, 1.0])
        with pytest.raises(InvalidJuryError):
            wmv.decide_batch(np.zeros((3, 5), dtype=int))

    def test_from_error_rates(self):
        wmv = WeightedMajorityVoting.from_error_rates([0.1, 0.4, 0.4])
        assert wmv.weights[0] > wmv.weights[1]


class TestWeightedJER:
    def test_uniform_weights_equal_plain_jer(self):
        eps = [0.2, 0.3, 0.4]
        wjer = weighted_jury_error_rate(eps, weights=[1.0, 1.0, 1.0])
        assert wjer == pytest.approx(jer_dp(eps), abs=1e-10)

    @given(odd_juries)
    @settings(max_examples=60, deadline=None)
    def test_optimal_weights_never_worse_than_majority(self, eps):
        """Nitzan-Paroush optimality: WJER <= plain-majority JER."""
        wjer = weighted_jury_error_rate(eps)
        assert wjer <= jer_dp(eps) + 1e-9

    def test_expert_dominates(self):
        # One near-oracle juror among noise: optimal weighting follows the
        # expert, so WJER ~ expert's error rate, far below the majority JER.
        eps = [0.02, 0.45, 0.45, 0.45, 0.45]
        wjer = weighted_jury_error_rate(eps)
        assert wjer == pytest.approx(0.02, abs=0.02)
        assert wjer < jer_dp(eps) - 0.05

    def test_monte_carlo_path_agrees_with_enumeration(self):
        rng = np.random.default_rng(11)
        eps = rng.uniform(0.1, 0.4, size=25)  # > enumeration limit
        mc = weighted_jury_error_rate(
            eps, trials=150_000, rng=np.random.default_rng(5)
        )
        # Reference: enumerate the first 15 only is wrong; instead compare
        # against the plain JER bound and a second independent MC run.
        mc2 = weighted_jury_error_rate(
            eps, trials=150_000, rng=np.random.default_rng(6)
        )
        assert mc == pytest.approx(mc2, abs=0.01)
        assert mc <= jer_dp(eps) + 0.01

    def test_weight_count_mismatch(self):
        with pytest.raises(InvalidJuryError):
            weighted_jury_error_rate([0.2, 0.3], weights=[1.0])

    def test_even_sized_juries_supported(self):
        # Weighted voting has no odd-size requirement; ties cost half.
        value = weighted_jury_error_rate([0.5, 0.5], weights=[1.0, 1.0])
        assert value == pytest.approx(0.5, abs=1e-10)
