"""Unit and property tests for the JER calculators (paper Algorithms 1-2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import (
    PrefixJERSweeper,
    jer_cba,
    jer_dp,
    jer_naive,
    jury_error_rate,
    majority_threshold,
)
from repro.core.juror import Jury
from repro.errors import EvenJurySizeError

odd_juries = st.lists(
    st.floats(min_value=0.001, max_value=0.999), min_size=1, max_size=13
).filter(lambda xs: len(xs) % 2 == 1)


class TestMajorityThreshold:
    @pytest.mark.parametrize("n,expected", [(1, 1), (3, 2), (5, 3), (7, 4), (99, 50)])
    def test_values(self, n, expected):
        assert majority_threshold(n) == expected

    def test_even_rejected(self):
        with pytest.raises(EvenJurySizeError):
            majority_threshold(4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            majority_threshold(0)


class TestPaperNumbers:
    """Every JER quoted in the paper's motivation example (Table 2)."""

    TABLE2 = [
        ([0.2], 0.2),
        ([0.1], 0.1),
        ([0.2, 0.3, 0.3], 0.174),
        ([0.1, 0.2, 0.2], 0.072),
        # Exact value 0.07036; the paper rounds it to 0.0704 (text) / 0.0703
        # (Table 2).
        ([0.1, 0.2, 0.2, 0.3, 0.3], 0.07036),
        # Table 2 prints 0.0805 but the exact value is 0.085248; the paper's
        # *text* quotes 0.085, so the table entry is the misprint.
        ([0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4], 0.085248),
        ([0.1, 0.2, 0.2, 0.4, 0.4], 0.104),
    ]

    @pytest.mark.parametrize("eps,expected", TABLE2)
    def test_naive(self, eps, expected):
        assert jer_naive(eps) == pytest.approx(expected, abs=5e-4)

    @pytest.mark.parametrize("eps,expected", TABLE2)
    def test_dp(self, eps, expected):
        assert jer_dp(eps) == pytest.approx(expected, abs=5e-4)

    @pytest.mark.parametrize("eps,expected", TABLE2)
    def test_cba(self, eps, expected):
        assert jer_cba(eps) == pytest.approx(expected, abs=5e-4)

    def test_seven_juror_value_from_paper_text(self):
        # The text quotes 0.085 for {A..G}; Table 2 prints 0.0805.  The exact
        # value is 0.085248, so the running text is the accurate one.
        exact = jer_naive([0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4])
        assert exact == pytest.approx(0.085, abs=5e-4)


class TestJERCalculators:
    def test_single_juror_is_own_error_rate(self):
        for func in (jer_naive, jer_dp, jer_cba):
            assert func([0.37]) == pytest.approx(0.37)

    def test_accepts_jury_object(self):
        jury = Jury.from_error_rates([0.2, 0.3, 0.3])
        assert jer_dp(jury) == pytest.approx(0.174)

    def test_even_jury_rejected(self):
        for func in (jer_naive, jer_dp, jer_cba):
            with pytest.raises(EvenJurySizeError):
                func([0.1, 0.2])

    def test_naive_size_guard(self):
        with pytest.raises(ValueError):
            jer_naive([0.4] * 21)

    @given(odd_juries)
    @settings(max_examples=80, deadline=None)
    def test_all_backends_agree(self, eps):
        reference = jer_naive(eps)
        assert jer_dp(eps) == pytest.approx(reference, abs=1e-10)
        assert jer_cba(eps) == pytest.approx(reference, abs=1e-10)

    @given(odd_juries)
    @settings(max_examples=60, deadline=None)
    def test_jer_in_unit_interval(self, eps):
        value = jer_dp(eps)
        assert 0.0 <= value <= 1.0

    @given(odd_juries, st.integers(min_value=0, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_individual_error_rate(self, eps, raw_index):
        """Lemma 3's key step: JER increases when any eps_i increases."""
        index = raw_index % len(eps)
        if eps[index] >= 0.99:
            return
        bumped = list(eps)
        bumped[index] = min(0.999, eps[index] + 0.05)
        assert jer_dp(bumped) >= jer_dp(eps) - 1e-12

    @given(odd_juries)
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, eps):
        rng = np.random.default_rng(42)
        shuffled = list(eps)
        rng.shuffle(shuffled)
        assert jer_dp(shuffled) == pytest.approx(jer_dp(eps), abs=1e-12)

    def test_identical_jurors_reduce_to_binomial_tail(self):
        # With eps = 0.5 each, JER is exactly 0.5 by symmetry for odd n.
        for n in (1, 3, 5, 7, 9):
            assert jer_dp([0.5] * n) == pytest.approx(0.5, abs=1e-12)

    def test_reliable_crowd_improves_with_size(self):
        values = [jer_dp([0.2] * n) for n in (1, 3, 5, 7, 9)]
        assert values == sorted(values, reverse=True)

    def test_unreliable_crowd_degrades_with_size(self):
        values = [jer_dp([0.8] * n) for n in (1, 3, 5, 7, 9)]
        assert values == sorted(values)

    def test_large_jury_dp_cba_agree(self):
        rng = np.random.default_rng(9)
        eps = rng.uniform(0.05, 0.95, size=601)
        assert jer_cba(eps) == pytest.approx(jer_dp(eps), abs=1e-9)


class TestDispatcher:
    def test_explicit_methods(self):
        eps = [0.2, 0.3, 0.3]
        for method in ("naive", "dp", "cba"):
            assert jury_error_rate(eps, method=method) == pytest.approx(0.174)

    def test_auto_small(self):
        assert jury_error_rate([0.2, 0.3, 0.3]) == pytest.approx(0.174)

    def test_auto_large_uses_cba(self):
        rng = np.random.default_rng(1)
        eps = rng.uniform(0.1, 0.9, size=301)
        assert jury_error_rate(eps) == pytest.approx(jer_dp(eps), abs=1e-9)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            jury_error_rate([0.5], method="quantum")


class TestPrefixJERSweeper:
    def test_paper_prefixes(self):
        sweeper = PrefixJERSweeper([0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4])
        result = dict(sweeper)
        assert result[1] == pytest.approx(0.1)
        assert result[3] == pytest.approx(0.072)
        assert result[5] == pytest.approx(0.07036)
        assert result[7] == pytest.approx(0.085248, abs=1e-6)

    def test_only_odd_sizes_reported(self):
        sizes = [n for n, _ in PrefixJERSweeper([0.3] * 8)]
        assert sizes == [1, 3, 5, 7]

    @given(st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_prefix_dp(self, eps):
        for n, value in PrefixJERSweeper(eps):
            assert value == pytest.approx(jer_dp(eps[:n]), abs=1e-10)

    def test_best_prefix(self):
        n, jer = PrefixJERSweeper([0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).best_prefix()
        assert n == 5
        assert jer == pytest.approx(0.07036)

    def test_best_prefix_ties_prefer_smaller(self):
        # All-0.5 jurors: every odd prefix has JER exactly 0.5.
        n, jer = PrefixJERSweeper([0.5] * 9).best_prefix()
        assert n == 1
        assert jer == pytest.approx(0.5)

    def test_empty_sweep_raises(self):
        with pytest.raises(ValueError):
            PrefixJERSweeper([]).best_prefix()

    def test_all_odd_prefixes_materialised(self):
        got = PrefixJERSweeper([0.2, 0.4, 0.3]).all_odd_prefixes()
        assert len(got) == 2
        assert got[0][0] == 1 and got[1][0] == 3
