"""Tests for the Lagrangian-relaxation PayM heuristic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.exact import enumerate_optimal
from repro.core.selection.lagrangian import select_jury_lagrangian
from repro.core.selection.pay import select_jury_pay
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError

paym_instances = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=9,
)


def make_candidates(pairs):
    return [Juror(e, r, juror_id=f"c{i}") for i, (e, r) in enumerate(pairs)]


class TestSelectJuryLagrangian:
    def test_motivating_example(self, table2_jurors):
        result = select_jury_lagrangian(table2_jurors, budget=1.0)
        assert result.total_cost <= 1.0 + 1e-9
        # {A,B,C} at JER 0.072 is the known optimum here.
        assert result.jer == pytest.approx(0.072, abs=1e-9)

    def test_generous_budget_recovers_altr_optimum(self, table2_jurors):
        # lambda = 0 endpoint scores by error rate alone, which with an ample
        # budget reproduces AltrALG's sorted-prefix search exactly.
        result = select_jury_lagrangian(table2_jurors, budget=100.0)
        assert sorted(result.juror_ids) == ["A", "B", "C", "D", "E"]
        assert result.jer == pytest.approx(0.07036)

    def test_empty_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            select_jury_lagrangian([], budget=1.0)

    def test_infeasible(self):
        cands = jurors_from_arrays([0.1, 0.2], [5.0, 6.0])
        with pytest.raises(InfeasibleSelectionError):
            select_jury_lagrangian(cands, budget=1.0)

    def test_invalid_multipliers(self, table2_jurors):
        with pytest.raises(ValueError):
            select_jury_lagrangian(table2_jurors, budget=1.0, multipliers=[])
        with pytest.raises(ValueError):
            select_jury_lagrangian(table2_jurors, budget=1.0, multipliers=[-1.0])

    def test_metadata(self, table2_jurors):
        result = select_jury_lagrangian(table2_jurors, budget=1.0)
        assert result.algorithm == "Lagrangian"
        assert result.model == "PayM"

    @given(paym_instances, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_feasibility_invariants(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            result = select_jury_lagrangian(cands, budget=budget)
        except InfeasibleSelectionError:
            assert all(j.requirement > budget for j in cands)
            return
        assert result.size % 2 == 1
        assert result.total_cost <= budget + 1e-9

    @given(paym_instances, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_never_beats_exact_optimum(self, pairs, budget):
        cands = make_candidates(pairs)
        try:
            result = select_jury_lagrangian(cands, budget=budget)
        except InfeasibleSelectionError:
            return
        optimal = enumerate_optimal(cands, budget=budget)
        assert result.jer >= optimal.jer - 1e-10

    def test_can_beat_first_fit_greedy(self):
        """The instance where PayALG's pair-lock hurts: the multiplier sweep
        escapes it by trying the pure-reliability ordering."""
        cands = [
            Juror(0.30, 0.10, juror_id="seed"),
            Juror(0.45, 0.01, juror_id="noisy1"),
            Juror(0.45, 0.01, juror_id="noisy2"),
            Juror(0.05, 0.45, juror_id="sharp1"),
            Juror(0.05, 0.45, juror_id="sharp2"),
        ]
        lagr = select_jury_lagrangian(cands, budget=1.0)
        greedy = select_jury_pay(cands, budget=1.0)
        assert lagr.jer < greedy.jer
