"""Tests for the probability bounds (paper Lemma 2 and ablation bounds)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    cantelli_upper_bound,
    chernoff_upper_bound,
    gamma_ratio,
    hoeffding_upper_bound,
    markov_upper_bound,
    paley_zygmund_lower_bound,
)
from repro.core.jer import jer_dp

odd_juries = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=13
).filter(lambda xs: len(xs) % 2 == 1)

bad_juries = st.lists(
    st.floats(min_value=0.75, max_value=0.99), min_size=3, max_size=13
).filter(lambda xs: len(xs) % 2 == 1)


class TestGammaRatio:
    def test_reliable_jury_gamma_above_one(self):
        # mu = 0.3 << threshold 2 -> gamma = 2 / 0.3 > 1: bound inapplicable.
        assert gamma_ratio([0.1, 0.1, 0.1]) > 1.0

    def test_unreliable_jury_gamma_below_one(self):
        # mu = 2.7 > threshold 2 -> gamma < 1: bound applicable.
        assert gamma_ratio([0.9, 0.9, 0.9]) < 1.0

    def test_formula(self):
        eps = [0.8, 0.9, 0.7]
        assert gamma_ratio(eps) == pytest.approx(2.0 / sum(eps))


class TestPaleyZygmundLowerBound:
    def test_inapplicable_returns_none(self):
        assert paley_zygmund_lower_bound([0.1, 0.1, 0.1]) is None

    def test_applicable_returns_value_in_unit_interval(self):
        bound = paley_zygmund_lower_bound([0.9] * 5)
        assert bound is not None
        assert 0.0 < bound < 1.0

    def test_formula_against_lemma2(self):
        eps = np.array([0.8, 0.85, 0.9, 0.95, 0.75])
        mu = eps.sum()
        sigma_sq = float(np.sum(eps * (1 - eps)))
        gamma = 3.0 / mu
        expected = ((1 - gamma) ** 2 * mu**2) / ((1 - gamma) ** 2 * mu**2 + sigma_sq)
        assert paley_zygmund_lower_bound(eps) == pytest.approx(expected)

    @given(bad_juries)
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_true_jer(self, eps):
        """The Lemma 2 bound must be a genuine lower bound where applicable."""
        bound = paley_zygmund_lower_bound(eps)
        if bound is None:
            return
        assert bound <= jer_dp(eps) + 1e-12

    @given(odd_juries)
    @settings(max_examples=80, deadline=None)
    def test_applicability_matches_gamma(self, eps):
        bound = paley_zygmund_lower_bound(eps)
        gamma = gamma_ratio(eps)
        if 0.0 < gamma < 1.0:
            assert bound is not None
        else:
            assert bound is None


class TestUpperBounds:
    @given(odd_juries)
    @settings(max_examples=80, deadline=None)
    def test_markov_dominates_jer(self, eps):
        assert markov_upper_bound(eps) >= jer_dp(eps) - 1e-12

    @given(odd_juries)
    @settings(max_examples=80, deadline=None)
    def test_cantelli_dominates_jer(self, eps):
        assert cantelli_upper_bound(eps) >= jer_dp(eps) - 1e-12

    @given(odd_juries)
    @settings(max_examples=80, deadline=None)
    def test_hoeffding_dominates_jer(self, eps):
        assert hoeffding_upper_bound(eps) >= jer_dp(eps) - 1e-12

    @given(odd_juries)
    @settings(max_examples=80, deadline=None)
    def test_chernoff_dominates_jer(self, eps):
        assert chernoff_upper_bound(eps) >= jer_dp(eps) - 1e-12

    def test_bounds_clipped_to_one(self):
        eps = [0.9] * 9  # threshold far below the mean: vacuous regime
        assert markov_upper_bound(eps) == 1.0
        assert cantelli_upper_bound(eps) == 1.0
        assert hoeffding_upper_bound(eps) == 1.0
        assert chernoff_upper_bound(eps) == 1.0

    def test_reliable_jury_tight_tail_bounds(self):
        eps = [0.05] * 13
        jer = jer_dp(eps)
        # Chernoff should be within a few orders of magnitude of the tail.
        assert jer <= chernoff_upper_bound(eps) <= 1e-3

    def test_cantelli_tighter_than_markov_in_concentrated_regime(self):
        eps = [0.1] * 13
        assert cantelli_upper_bound(eps) <= markov_upper_bound(eps)
