"""Tests for JER sensitivity analysis (gradients, pivot probabilities)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import jer_dp
from repro.core.juror import Jury
from repro.core.poisson_binomial import pmf_dp
from repro.core.sensitivity import (
    jer_gradient,
    juror_influence_report,
    leave_one_out_pmf,
    pivotal_probabilities,
)

odd_juries = st.lists(
    st.floats(min_value=0.02, max_value=0.98), min_size=1, max_size=11
).filter(lambda xs: len(xs) % 2 == 1)


class TestLeaveOneOutPmf:
    @given(st.lists(st.floats(min_value=0.02, max_value=0.98), min_size=2, max_size=12),
           st.integers(min_value=0, max_value=11))
    @settings(max_examples=80, deadline=None)
    def test_matches_direct_recomputation(self, eps, raw_index):
        index = raw_index % len(eps)
        full = pmf_dp(eps)
        rest_direct = pmf_dp(eps[:index] + eps[index + 1:])
        rest_deconv = leave_one_out_pmf(full, eps[index])
        np.testing.assert_allclose(rest_deconv, rest_direct, atol=1e-8)

    def test_small_epsilon_forward_path(self):
        eps = [0.05, 0.3, 0.7]
        full = pmf_dp(eps)
        np.testing.assert_allclose(
            leave_one_out_pmf(full, 0.05), pmf_dp([0.3, 0.7]), atol=1e-12
        )

    def test_large_epsilon_backward_path(self):
        eps = [0.95, 0.3, 0.7]
        full = pmf_dp(eps)
        np.testing.assert_allclose(
            leave_one_out_pmf(full, 0.95), pmf_dp([0.3, 0.7]), atol=1e-12
        )

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            leave_one_out_pmf(np.array([0.5, 0.5]), 0.0)

    def test_result_sums_to_one(self):
        eps = [0.2, 0.4, 0.6, 0.8, 0.5]
        full = pmf_dp(eps)
        for e in eps:
            assert leave_one_out_pmf(full, e).sum() == pytest.approx(1.0, abs=1e-9)


class TestJERGradient:
    @given(odd_juries, st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_matches_finite_differences(self, eps, raw_index):
        index = raw_index % len(eps)
        if not 0.05 < eps[index] < 0.95:
            return
        gradient = jer_gradient(eps)
        h = 1e-6
        bumped_up = list(eps)
        bumped_up[index] += h
        bumped_down = list(eps)
        bumped_down[index] -= h
        numeric = (jer_dp(bumped_up) - jer_dp(bumped_down)) / (2 * h)
        assert gradient[index] == pytest.approx(numeric, abs=1e-4)

    @given(odd_juries)
    @settings(max_examples=60, deadline=None)
    def test_gradient_nonnegative(self, eps):
        """Lemma 3: JER is monotone increasing in every eps_i."""
        assert np.all(jer_gradient(eps) >= -1e-12)

    def test_single_juror_gradient_is_one(self):
        # JER = eps for n=1, so dJER/deps = 1.
        assert jer_gradient([0.3])[0] == pytest.approx(1.0)

    def test_decomposition_reconstructs_jer(self):
        """JER = eps_i * pivot_i + tail(J w/o i) for every i (Lemma 3)."""
        eps = [0.1, 0.25, 0.4, 0.3, 0.2]
        jer = jer_dp(eps)
        pivots = pivotal_probabilities(eps)
        from repro.core.poisson_binomial import tail_probability

        for i in range(len(eps)):
            rest = pmf_dp(eps[:i] + eps[i + 1:])
            reconstruction = eps[i] * pivots[i] + tail_probability(rest, 3)
            assert reconstruction == pytest.approx(jer, abs=1e-10)

    def test_accepts_jury_object(self):
        jury = Jury.from_error_rates([0.2, 0.3, 0.4])
        assert jer_gradient(jury).shape == (3,)


class TestInfluenceReport:
    def test_sorted_by_pivotal_probability(self):
        report = juror_influence_report([0.1, 0.2, 0.3, 0.4, 0.45])
        pivots = [r.pivotal_probability for r in report]
        assert pivots == sorted(pivots, reverse=True)

    def test_ids_preserved_from_jury(self):
        jury = Jury.from_error_rates([0.1, 0.3, 0.4], id_prefix="u")
        report = juror_influence_report(jury)
        assert {r.juror_id for r in report} == {"u1", "u2", "u3"}

    def test_contribution_formula(self):
        report = juror_influence_report([0.2, 0.3, 0.4])
        for record in report:
            assert record.contribution == pytest.approx(
                record.error_rate * record.pivotal_probability
            )

    def test_single_juror(self):
        report = juror_influence_report([0.37])
        assert len(report) == 1
        assert report[0].pivotal_probability == pytest.approx(1.0)

    def test_identical_jurors_have_equal_influence(self):
        report = juror_influence_report([0.3] * 5)
        pivots = {round(r.pivotal_probability, 12) for r in report}
        assert len(pivots) == 1
