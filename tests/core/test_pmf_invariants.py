"""Property tests for pmf and JER invariants (hypothesis).

The invariants here are the mathematical contracts every calculator must
honour regardless of backend:

* a pmf is a probability distribution — non-negative, sums to 1;
* JER is monotone non-decreasing in each juror's individual error rate
  (the key step of paper Lemma 3);
* even jury sizes raise :class:`EvenJurySizeError` consistently across all
  JER calculators.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import (
    batch_prefix_jer_sweep,
    jer_cba,
    jer_dp,
    jer_naive,
    jury_error_rate,
)
from repro.core.poisson_binomial import pmf_conv, pmf_dp, pmf_naive
from repro.errors import EvenJurySizeError, InvalidErrorRateError

eps_values = st.floats(min_value=0.02, max_value=0.98)
eps_lists = st.lists(eps_values, min_size=1, max_size=14)
odd_lists = eps_lists.filter(lambda xs: len(xs) % 2 == 1)
even_lists = st.lists(eps_values, min_size=2, max_size=14).filter(
    lambda xs: len(xs) % 2 == 0
)


class TestPmfIsADistribution:
    @given(eps_lists)
    @settings(max_examples=80, deadline=None)
    def test_dp_nonnegative_and_sums_to_one(self, eps):
        pmf = pmf_dp(eps)
        assert np.all(pmf >= 0.0)
        assert float(pmf.sum()) == pytest.approx(1.0, abs=1e-10)

    @given(eps_lists)
    @settings(max_examples=80, deadline=None)
    def test_conv_nonnegative_and_sums_to_one(self, eps):
        pmf = pmf_conv(eps)
        assert np.all(pmf >= 0.0)
        assert float(pmf.sum()) == pytest.approx(1.0, abs=1e-10)

    @given(st.lists(eps_values, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_naive_nonnegative_and_sums_to_one(self, eps):
        pmf = pmf_naive(eps)
        assert np.all(pmf >= 0.0)
        assert float(pmf.sum()) == pytest.approx(1.0, abs=1e-10)

    @given(eps_lists)
    @settings(max_examples=40, deadline=None)
    def test_pmf_length_is_n_plus_one(self, eps):
        assert pmf_dp(eps).size == len(eps) + 1


class TestJERMonotonicity:
    @given(odd_lists, st.data())
    @settings(max_examples=80, deadline=None)
    def test_jer_monotone_in_each_error_rate(self, eps, data):
        """Paper Lemma 3's key step: worsening any single juror cannot
        lower the jury's error rate."""
        index = data.draw(st.integers(min_value=0, max_value=len(eps) - 1))
        bumped = data.draw(
            st.floats(min_value=eps[index], max_value=0.99), label="bumped"
        )
        worse = list(eps)
        worse[index] = bumped
        assert jer_dp(worse) >= jer_dp(eps) - 1e-12

    @given(odd_lists)
    @settings(max_examples=40, deadline=None)
    def test_jer_within_unit_interval(self, eps):
        value = jer_dp(eps)
        assert 0.0 <= value <= 1.0

    @given(st.lists(eps_values, min_size=2, max_size=14))
    @settings(max_examples=60, deadline=None)
    def test_batch_sweep_rows_lie_in_unit_interval(self, eps):
        _, jers = batch_prefix_jer_sweep(np.array([eps, eps[::-1]]))
        assert np.all(jers >= 0.0) and np.all(jers <= 1.0)


class TestEvenSizeRejection:
    @given(even_lists)
    @settings(max_examples=40, deadline=None)
    def test_all_calculators_raise_even_jury_size_error(self, eps):
        """The EvenJurySizeError contract holds for every backend and the
        dispatcher alike."""
        for calculator in (jer_naive, jer_dp, jer_cba):
            with pytest.raises(EvenJurySizeError):
                calculator(eps)
        for method in ("naive", "dp", "cba", "auto"):
            with pytest.raises(EvenJurySizeError):
                jury_error_rate(eps, method=method)


class TestBatchKernelValidation:
    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError, match="2-D"):
            batch_prefix_jer_sweep(np.array([0.1, 0.2, 0.3]))

    def test_rejects_empty_pools(self):
        with pytest.raises(ValueError, match="empty"):
            batch_prefix_jer_sweep(np.empty((3, 0)))

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5, float("nan")])
    def test_rejects_out_of_range_error_rates(self, bad):
        with pytest.raises(InvalidErrorRateError):
            batch_prefix_jer_sweep(np.array([[0.2, bad, 0.3]]))
