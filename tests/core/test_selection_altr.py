"""Tests for AltrALG (paper Algorithm 3)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import jer_dp
from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.altr import altr_sweep_profile, select_jury_altr
from repro.errors import EmptyCandidateSetError

error_rate_lists = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=11
)


def brute_force_altr_best(error_rates):
    """Best jury over ALL odd subsets (not just prefixes) — the true optimum."""
    best = None
    indices = range(len(error_rates))
    for k in range(1, len(error_rates) + 1, 2):
        for combo in itertools.combinations(indices, k):
            jer = jer_dp([error_rates[i] for i in combo])
            if best is None or jer < best - 1e-15:
                best = jer
    return best


class TestSelectJuryAltr:
    def test_paper_example(self, table2_jurors):
        result = select_jury_altr(table2_jurors)
        assert sorted(result.juror_ids) == ["A", "B", "C", "D", "E"]
        assert result.jer == pytest.approx(0.07036)
        assert result.model == "AltrM"
        assert result.budget is None

    def test_empty_candidates_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            select_jury_altr([])

    def test_single_candidate(self):
        result = select_jury_altr([Juror(0.42, juror_id="only")])
        assert result.size == 1
        assert result.jer == pytest.approx(0.42)

    def test_strategies_agree(self, table2_jurors):
        sweep = select_jury_altr(table2_jurors, strategy="sweep")
        per_jury_dp = select_jury_altr(
            table2_jurors, strategy="per-jury", jer_method="dp"
        )
        per_jury_cba = select_jury_altr(
            table2_jurors, strategy="per-jury", jer_method="cba"
        )
        assert sweep.jer == pytest.approx(per_jury_dp.jer, abs=1e-12)
        assert sweep.jer == pytest.approx(per_jury_cba.jer, abs=1e-12)
        assert sweep.jury == per_jury_dp.jury == per_jury_cba.jury

    def test_unknown_strategy_rejected(self, table2_jurors):
        with pytest.raises(ValueError):
            select_jury_altr(table2_jurors, strategy="psychic")

    def test_unknown_jer_method_rejected(self, table2_jurors):
        with pytest.raises(ValueError):
            select_jury_altr(table2_jurors, strategy="per-jury", jer_method="abacus")

    def test_bound_pruning_does_not_change_result(self):
        rng = np.random.default_rng(17)
        for _ in range(5):
            eps = rng.uniform(0.3, 0.95, size=31)
            cands = jurors_from_arrays(eps)
            plain = select_jury_altr(cands, strategy="per-jury", use_bound=False)
            pruned = select_jury_altr(cands, strategy="per-jury", use_bound=True)
            assert pruned.jer == pytest.approx(plain.jer, abs=1e-12)
            assert pruned.size == plain.size

    def test_bound_pruning_records_stats(self):
        # Error-prone crowd: gamma < 1 for larger prefixes, so pruning fires.
        eps = [0.85] * 41
        result = select_jury_altr(
            jurors_from_arrays(eps), strategy="per-jury", use_bound=True
        )
        assert result.stats.bound_checks > 0
        assert result.stats.pruned_by_bound > 0
        assert result.stats.jer_evaluations < result.stats.juries_considered

    def test_max_size_cap(self, table2_jurors):
        result = select_jury_altr(table2_jurors, max_size=3)
        assert result.size <= 3
        assert result.jer == pytest.approx(0.072)

    def test_requirements_ignored_under_altrm(self):
        # Identical error rates but wildly different prices: AltrM must ignore r.
        cheap = jurors_from_arrays([0.1, 0.2, 0.3], [0, 0, 0], id_prefix="c")
        pricey = jurors_from_arrays([0.1, 0.2, 0.3], [9, 9, 9], id_prefix="p")
        assert select_jury_altr(cheap).jer == pytest.approx(
            select_jury_altr(pricey).jer
        )

    @given(error_rate_lists)
    @settings(max_examples=50, deadline=None)
    def test_selected_jury_is_sorted_prefix(self, eps):
        """Lemma 3: the optimum is always a prefix of the sorted candidates."""
        cands = jurors_from_arrays(eps)
        result = select_jury_altr(cands)
        chosen = sorted(j.error_rate for j in result.jury)
        expected_prefix = sorted(eps)[: result.size]
        np.testing.assert_allclose(chosen, expected_prefix, atol=1e-12)

    @given(error_rate_lists)
    @settings(max_examples=30, deadline=None)
    def test_matches_global_brute_force(self, eps):
        """AltrALG (prefix search) equals the optimum over all odd subsets."""
        result = select_jury_altr(jurors_from_arrays(eps))
        assert result.jer == pytest.approx(brute_force_altr_best(eps), abs=1e-10)

    @given(error_rate_lists)
    @settings(max_examples=50, deadline=None)
    def test_odd_size_invariant(self, eps):
        assert select_jury_altr(jurors_from_arrays(eps)).size % 2 == 1

    def test_beats_best_individual(self):
        eps = [0.2, 0.2, 0.25, 0.3, 0.35]
        result = select_jury_altr(jurors_from_arrays(eps))
        assert result.jer <= min(eps)

    def test_stats_elapsed_recorded(self, table2_jurors):
        result = select_jury_altr(table2_jurors)
        assert result.stats.elapsed_seconds >= 0.0
        assert result.stats.jer_evaluations == 4  # odd prefixes of 7 candidates

    def test_summary_format(self, table2_jurors):
        text = select_jury_altr(table2_jurors).summary()
        assert "AltrALG" in text and "AltrM" in text and "size=5" in text


class TestAltrSweepProfile:
    def test_profile_matches_paper_table2(self, table2_jurors):
        profile = dict(altr_sweep_profile(table2_jurors))
        assert profile[1] == pytest.approx(0.1)
        assert profile[3] == pytest.approx(0.072)
        assert profile[5] == pytest.approx(0.07036)
        assert profile[7] == pytest.approx(0.085248, abs=1e-6)

    def test_profile_empty_raises(self):
        with pytest.raises(EmptyCandidateSetError):
            altr_sweep_profile([])

    def test_profile_length(self):
        cands = jurors_from_arrays([0.2] * 10)
        assert len(altr_sweep_profile(cands)) == 5
