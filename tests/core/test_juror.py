"""Unit tests for the Juror and Jury domain model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Juror, Jury, jurors_from_arrays
from repro.errors import (
    EvenJurySizeError,
    InvalidErrorRateError,
    InvalidJuryError,
    InvalidRequirementError,
)


class TestJuror:
    def test_basic_construction(self):
        j = Juror(0.25, 0.5, juror_id="alice")
        assert j.error_rate == 0.25
        assert j.requirement == 0.5
        assert j.juror_id == "alice"

    def test_accuracy_complements_error_rate(self):
        j = Juror(0.3)
        assert j.accuracy == pytest.approx(0.7)

    def test_default_requirement_is_altruistic(self):
        assert Juror(0.2).is_altruistic

    def test_paid_juror_is_not_altruistic(self):
        assert not Juror(0.2, 0.01).is_altruistic

    def test_auto_generated_ids_are_unique(self):
        a, b = Juror(0.1), Juror(0.1)
        assert a.juror_id != b.juror_id

    def test_cost_quality_key_is_product(self):
        j = Juror(0.25, 0.4)
        assert j.cost_quality_key == pytest.approx(0.1)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5, float("nan"), float("inf")])
    def test_rejects_error_rate_outside_open_interval(self, bad):
        with pytest.raises(InvalidErrorRateError):
            Juror(bad)

    def test_rejects_non_numeric_error_rate(self):
        with pytest.raises(InvalidErrorRateError):
            Juror("high")

    @pytest.mark.parametrize("bad", [-0.01, float("nan"), float("inf")])
    def test_rejects_bad_requirement(self, bad):
        with pytest.raises(InvalidRequirementError):
            Juror(0.2, bad)

    def test_zero_requirement_is_valid(self):
        assert Juror(0.2, 0.0).requirement == 0.0

    def test_rejects_empty_id(self):
        with pytest.raises(InvalidJuryError):
            Juror(0.2, juror_id="")

    def test_frozen(self):
        j = Juror(0.2)
        with pytest.raises(AttributeError):
            j.error_rate = 0.5

    def test_equality_and_hash(self):
        a = Juror(0.2, 0.1, juror_id="x")
        b = Juror(0.2, 0.1, juror_id="x")
        assert a == b
        assert hash(a) == hash(b)

    def test_int_error_rate_rejected_at_bounds(self):
        with pytest.raises(InvalidErrorRateError):
            Juror(1)


class TestJury:
    def test_basic_construction(self):
        jury = Jury([Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b"),
                     Juror(0.3, juror_id="c")])
        assert jury.size == 3
        assert jury.majority_threshold == 2

    def test_from_error_rates(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3])
        assert jury.size == 3
        np.testing.assert_allclose(jury.error_rates, [0.1, 0.2, 0.3])

    def test_from_error_rates_with_requirements(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3], [1.0, 2.0, 3.0])
        assert jury.total_cost == pytest.approx(6.0)

    def test_mismatched_requirement_length_rejected(self):
        with pytest.raises(InvalidJuryError):
            Jury.from_error_rates([0.1, 0.2, 0.3], [1.0])

    def test_empty_jury_rejected(self):
        with pytest.raises(InvalidJuryError):
            Jury([])

    def test_even_size_rejected_by_default(self):
        with pytest.raises(EvenJurySizeError):
            Jury([Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b")])

    def test_even_size_allowed_when_requested(self):
        jury = Jury([Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b")],
                    allow_even=True)
        assert jury.size == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidJuryError):
            Jury([Juror(0.1, juror_id="same"), Juror(0.2, juror_id="same"),
                  Juror(0.3, juror_id="other")])

    def test_non_juror_members_rejected(self):
        with pytest.raises(InvalidJuryError):
            Jury([0.1, 0.2, 0.3])  # type: ignore[list-item]

    def test_sequence_protocol(self):
        members = [Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b"),
                   Juror(0.3, juror_id="c")]
        jury = Jury(members)
        assert len(jury) == 3
        assert list(jury) == members
        assert jury[0] == members[0]
        assert members[1] in jury

    def test_error_rates_view_is_readonly(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            jury.error_rates[0] = 0.9

    def test_requirements_view_is_readonly(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3], [1, 2, 3])
        with pytest.raises(ValueError):
            jury.requirements[0] = 0.0

    def test_total_cost(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3], [0.5, 0.25, 0.25])
        assert jury.total_cost == pytest.approx(1.0)

    def test_majority_threshold_examples(self):
        assert Jury.from_error_rates([0.1]).majority_threshold == 1
        assert Jury.from_error_rates([0.1] * 5).majority_threshold == 3
        assert Jury.from_error_rates([0.1] * 7).majority_threshold == 4

    def test_sorted_by_error_rate(self):
        jury = Jury.from_error_rates([0.3, 0.1, 0.2])
        ordered = jury.sorted_by_error_rate()
        np.testing.assert_allclose(ordered.error_rates, [0.1, 0.2, 0.3])

    def test_union(self):
        jury = Jury.from_error_rates([0.1])
        bigger = jury.union([Juror(0.2, juror_id="x"), Juror(0.3, juror_id="y")])
        assert bigger.size == 3

    def test_without(self):
        members = [Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b"),
                   Juror(0.3, juror_id="c")]
        jury = Jury(members)
        smaller = jury.without(members[1])
        assert smaller.size == 2
        assert members[1] not in smaller

    def test_without_missing_member_raises(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3])
        with pytest.raises(InvalidJuryError):
            jury.without(Juror(0.5, juror_id="stranger"))

    def test_equality_is_set_based(self):
        a = Juror(0.1, juror_id="a")
        b = Juror(0.2, juror_id="b")
        c = Juror(0.3, juror_id="c")
        assert Jury([a, b, c]) == Jury([c, a, b])
        assert hash(Jury([a, b, c])) == hash(Jury([c, b, a]))

    def test_is_allowed_altrm(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3], [10, 10, 10])
        assert jury.is_allowed()  # AltrM: always allowed.

    def test_is_allowed_paym(self):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3], [0.5, 0.3, 0.2])
        assert jury.is_allowed(budget=1.0)
        assert not jury.is_allowed(budget=0.9)

    def test_juror_ids(self):
        jury = Jury([Juror(0.1, juror_id="a"), Juror(0.2, juror_id="b"),
                     Juror(0.3, juror_id="c")])
        assert jury.juror_ids == ("a", "b", "c")


class TestJurorsFromArrays:
    def test_lengths_must_match(self):
        with pytest.raises(InvalidJuryError):
            jurors_from_arrays([0.1, 0.2], [0.5])

    def test_ids_use_prefix(self):
        cands = jurors_from_arrays([0.1, 0.2], id_prefix="u")
        assert [c.juror_id for c in cands] == ["u1", "u2"]

    def test_default_requirements_are_zero(self):
        cands = jurors_from_arrays([0.1, 0.2, 0.3])
        assert all(c.requirement == 0.0 for c in cands)

    def test_returns_plain_list(self):
        assert isinstance(jurors_from_arrays([0.5]), list)
