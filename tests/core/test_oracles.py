"""Cross-backend oracle suite.

Every fast algorithm in the library has a slower, independently implemented
counterpart; this module pits them against each other on seeded randomized
inputs:

* ``jer_naive`` (Definition 6 enumeration) vs ``jer_dp`` (Algorithm 1) vs
  ``jer_cba`` (Algorithm 2) on juries of size <= 15;
* ``pmf_naive`` vs ``pmf_dp`` vs ``pmf_conv``, including pools straddling
  the ``FFT_CROSSOVER`` boundary where ``convolve_pmfs`` switches from
  direct to FFT convolution;
* the vectorized batch sweep vs the scalar :class:`PrefixJERSweeper`,
  which must agree *bit for bit* (the batch engine's results are promised
  to be bit-identical to the single-query path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jer import (
    PrefixJERSweeper,
    batch_prefix_jer_sweep,
    best_odd_prefix,
    jer_cba,
    jer_dp,
    jer_naive,
    jury_error_rate,
    prefix_jer_profile,
)
from repro.core.poisson_binomial import (
    FFT_CROSSOVER,
    pmf_conv,
    pmf_dp,
    pmf_naive,
)
from repro.testing import DEFAULT_SEED, ORACLE_ATOL, PMF_ATOL

pytestmark = pytest.mark.filterwarnings("error")  # oracles must be warning-clean


def _random_eps(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(0.01, 0.99, size=n)


class TestJERBackendAgreement:
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 9, 11, 13, 15])
    def test_naive_dp_cba_agree_on_random_juries(self, n, rng, oracle_atol):
        for _ in range(20):
            eps = _random_eps(rng, n)
            naive = jer_naive(eps)
            assert jer_dp(eps) == pytest.approx(naive, abs=oracle_atol)
            assert jer_cba(eps) == pytest.approx(naive, abs=oracle_atol)

    def test_extreme_error_rates(self, oracle_atol):
        for eps in ([0.001, 0.001, 0.999], [0.999] * 5, [0.001] * 7):
            naive = jer_naive(eps)
            assert jer_dp(eps) == pytest.approx(naive, abs=oracle_atol)
            assert jer_cba(eps) == pytest.approx(naive, abs=oracle_atol)

    def test_dispatcher_matches_backends(self, rng, oracle_atol):
        eps = _random_eps(rng, 9)
        for method in ("naive", "dp", "cba", "auto"):
            assert jury_error_rate(eps, method=method) == pytest.approx(
                jer_naive(eps), abs=oracle_atol
            )

    def test_dp_cba_agree_on_large_juries(self, rng):
        """Beyond the naive oracle's reach, DP remains the reference."""
        for n in (101, 255, 257):
            eps = _random_eps(rng, n)
            assert jer_cba(eps) == pytest.approx(jer_dp(eps), abs=PMF_ATOL)


class TestPmfBackendAgreement:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12, 15])
    def test_naive_dp_conv_agree(self, n, rng, oracle_atol):
        for _ in range(10):
            eps = _random_eps(rng, n)
            reference = pmf_naive(eps)
            np.testing.assert_allclose(pmf_dp(eps), reference, atol=oracle_atol)
            np.testing.assert_allclose(pmf_conv(eps), reference, atol=oracle_atol)

    @pytest.mark.parametrize(
        "n",
        [FFT_CROSSOVER - 1, FFT_CROSSOVER, FFT_CROSSOVER + 1, 2 * FFT_CROSSOVER],
    )
    def test_dp_conv_agree_around_fft_crossover(self, n, rng, pmf_atol):
        """``convolve_pmfs`` flips from direct to FFT convolution at the
        crossover; the pmf must not jump there."""
        eps = _random_eps(rng, n)
        np.testing.assert_allclose(pmf_conv(eps), pmf_dp(eps), atol=pmf_atol)

    def test_pmfs_normalised_at_crossover(self, rng):
        for n in (FFT_CROSSOVER - 1, FFT_CROSSOVER, FFT_CROSSOVER + 1):
            eps = _random_eps(rng, n)
            assert float(np.sum(pmf_conv(eps))) == pytest.approx(1.0, abs=1e-9)


class TestBatchSweepOracle:
    def test_batch_sweep_bit_identical_to_scalar_sweeper(self, rng):
        """Every row of the 2-D kernel must equal PrefixJERSweeper exactly —
        not approximately — since batch selection promises bit-identical
        results to the scalar path."""
        for n in (1, 2, 5, 17, 64, 101):
            matrix = rng.uniform(0.01, 0.99, size=(7, n))
            ns, jers = batch_prefix_jer_sweep(matrix)
            assert ns.tolist() == list(range(1, n + 1, 2))
            for row in range(matrix.shape[0]):
                scalar = PrefixJERSweeper(matrix[row]).all_odd_prefixes()
                assert [s_n for s_n, _ in scalar] == ns.tolist()
                scalar_values = np.array([v for _, v in scalar])
                assert np.array_equal(jers[row], scalar_values), (
                    f"batch sweep diverged from scalar sweeper at n={n}, row={row}"
                )

    def test_profile_wrapper_bit_identical(self, rng):
        eps = rng.uniform(0.01, 0.99, size=33)
        ns, jers = prefix_jer_profile(eps)
        scalar_values = np.array([v for _, v in PrefixJERSweeper(eps)])
        assert np.array_equal(jers, scalar_values)

    def test_best_odd_prefix_matches_sweeper_best(self, rng):
        for _ in range(30):
            eps = rng.uniform(0.01, 0.99, size=int(rng.integers(1, 40)))
            ns, jers = prefix_jer_profile(eps)
            assert best_odd_prefix(ns, jers) == PrefixJERSweeper(eps).best_prefix()

    def test_best_odd_prefix_respects_max_size(self, rng):
        eps = np.sort(rng.uniform(0.01, 0.49, size=21))
        ns, jers = prefix_jer_profile(eps)
        n, _ = best_odd_prefix(ns, jers, max_size=5)
        assert n <= 5

    def test_seeded_run_is_reproducible(self):
        """The whole oracle suite is seeded; spot-check determinism."""
        rng_a = np.random.default_rng(DEFAULT_SEED)
        rng_b = np.random.default_rng(DEFAULT_SEED)
        a = batch_prefix_jer_sweep(rng_a.uniform(0.1, 0.9, size=(4, 9)))[1]
        b = batch_prefix_jer_sweep(rng_b.uniform(0.1, 0.9, size=(4, 9)))[1]
        assert np.array_equal(a, b)

    def test_oracle_tolerance_is_strict(self):
        """Guard the shared constant: the oracle tolerance must stay at
        1e-12 or tighter so backend drift cannot hide behind it."""
        assert ORACLE_ATOL <= 1e-12
