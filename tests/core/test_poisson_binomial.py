"""Unit and property tests for the Poisson-Binomial distribution backends."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.poisson_binomial import (
    FFT_CROSSOVER,
    PoissonBinomial,
    convolve_pmfs,
    pmf_conv,
    pmf_dp,
    pmf_naive,
    tail_probability,
)

probability_lists = st.lists(
    st.floats(min_value=0.001, max_value=0.999), min_size=1, max_size=12
)


class TestPmfBackends:
    def test_single_bernoulli(self):
        for backend in (pmf_naive, pmf_dp, pmf_conv):
            np.testing.assert_allclose(backend([0.3]), [0.7, 0.3], atol=1e-12)

    def test_two_bernoullis(self):
        expected = [0.7 * 0.4, 0.7 * 0.6 + 0.3 * 0.4, 0.3 * 0.6]
        for backend in (pmf_naive, pmf_dp, pmf_conv):
            np.testing.assert_allclose(backend([0.3, 0.6]), expected, atol=1e-12)

    def test_binomial_special_case(self):
        # Identical probabilities reduce to the Binomial distribution.
        n, p = 10, 0.3
        pmf = pmf_dp([p] * n)
        expected = [math.comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(n + 1)]
        np.testing.assert_allclose(pmf, expected, atol=1e-12)

    @given(probability_lists)
    @settings(max_examples=60, deadline=None)
    def test_backends_agree(self, probs):
        reference = pmf_naive(probs)
        np.testing.assert_allclose(pmf_dp(probs), reference, atol=1e-10)
        np.testing.assert_allclose(pmf_conv(probs), reference, atol=1e-10)

    @given(probability_lists)
    @settings(max_examples=60, deadline=None)
    def test_pmf_sums_to_one(self, probs):
        assert pmf_dp(probs).sum() == pytest.approx(1.0, abs=1e-10)

    @given(probability_lists)
    @settings(max_examples=60, deadline=None)
    def test_pmf_nonnegative(self, probs):
        assert np.all(pmf_conv(probs) >= 0.0)

    def test_large_jury_dp_vs_conv(self):
        rng = np.random.default_rng(3)
        probs = rng.uniform(0.01, 0.99, size=501)
        np.testing.assert_allclose(pmf_conv(probs), pmf_dp(probs), atol=1e-9)

    def test_naive_refuses_large_input(self):
        with pytest.raises(ValueError):
            pmf_naive([0.5] * 21)

    def test_empty_conv_is_point_mass(self):
        np.testing.assert_allclose(pmf_conv([]), [1.0])

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            pmf_dp([0.5, 1.5])


class TestConvolvePmfs:
    def test_direct_path(self):
        a, b = np.array([0.5, 0.5]), np.array([0.25, 0.75])
        np.testing.assert_allclose(convolve_pmfs(a, b), np.convolve(a, b))

    def test_fft_path_matches_direct(self):
        rng = np.random.default_rng(11)
        a = rng.dirichlet(np.ones(FFT_CROSSOVER + 10))
        b = rng.dirichlet(np.ones(FFT_CROSSOVER + 20))
        np.testing.assert_allclose(convolve_pmfs(a, b), np.convolve(a, b), atol=1e-12)

    def test_fft_output_clipped_nonnegative(self):
        rng = np.random.default_rng(13)
        a = rng.dirichlet(np.ones(FFT_CROSSOVER * 2))
        out = convolve_pmfs(a, a)
        assert np.all(out >= 0.0)


class TestTailProbability:
    def test_zero_threshold_is_one(self):
        assert tail_probability(np.array([0.5, 0.5]), 0) == 1.0

    def test_above_support_is_zero(self):
        assert tail_probability(np.array([0.5, 0.5]), 2) == 0.0

    def test_middle(self):
        pmf = np.array([0.1, 0.2, 0.3, 0.4])
        assert tail_probability(pmf, 2) == pytest.approx(0.7)

    def test_negative_threshold(self):
        assert tail_probability(np.array([1.0]), -3) == 1.0


class TestPoissonBinomial:
    def test_paper_example_tail(self):
        # Pr(C >= 2) for the {C, D, E} jury of the motivating example.
        pb = PoissonBinomial([0.2, 0.3, 0.3])
        assert pb.sf(2) == pytest.approx(0.174, abs=1e-12)

    def test_moments(self):
        pb = PoissonBinomial([0.2, 0.3, 0.5])
        assert pb.mean == pytest.approx(1.0)
        assert pb.variance == pytest.approx(0.2 * 0.8 + 0.3 * 0.7 + 0.5 * 0.5)
        assert pb.std == pytest.approx(math.sqrt(pb.variance))

    def test_pmf_vector_readonly(self):
        pb = PoissonBinomial([0.2, 0.3, 0.5])
        with pytest.raises(ValueError):
            pb.pmf()[0] = 1.0

    def test_pmf_point_queries(self):
        pb = PoissonBinomial([0.5])
        assert pb.pmf(0) == pytest.approx(0.5)
        assert pb.pmf(1) == pytest.approx(0.5)
        assert pb.pmf(-1) == 0.0
        assert pb.pmf(2) == 0.0

    def test_cdf_sf_complement(self):
        pb = PoissonBinomial([0.1, 0.4, 0.7, 0.2, 0.9])
        for k in range(-1, 7):
            assert pb.cdf(k) + pb.sf(k + 1) == pytest.approx(1.0, abs=1e-12)

    def test_cdf_monotone(self):
        pb = PoissonBinomial([0.3, 0.6, 0.2])
        values = [pb.cdf(k) for k in range(-1, 5)]
        assert values == sorted(values)

    def test_quantile(self):
        pb = PoissonBinomial([0.5] * 9)
        assert pb.quantile(0.0) == 0
        assert pb.quantile(0.5) == 4
        assert pb.quantile(1.0) == 9

    def test_quantile_rejects_out_of_range(self):
        pb = PoissonBinomial([0.5])
        with pytest.raises(ValueError):
            pb.quantile(1.5)

    def test_method_selection(self):
        probs = [0.2, 0.5, 0.8]
        for method in ("auto", "dp", "conv", "naive"):
            pb = PoissonBinomial(probs, method=method)
            assert pb.sf(2) == pytest.approx(
                0.2 * 0.5 + 0.2 * 0.8 + 0.5 * 0.8 - 2 * 0.2 * 0.5 * 0.8, abs=1e-10
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            PoissonBinomial([0.5], method="magic")

    def test_sample_mean_close_to_analytic(self, rng):
        pb = PoissonBinomial([0.2, 0.5, 0.8, 0.3])
        draws = pb.sample(20_000, rng=rng)
        assert draws.mean() == pytest.approx(pb.mean, abs=0.05)
        assert draws.min() >= 0 and draws.max() <= 4

    def test_sample_without_rng(self):
        pb = PoissonBinomial([0.5, 0.5, 0.5])
        draws = pb.sample(10)
        assert draws.shape == (10,)

    def test_normal_approximation_close_for_large_n(self):
        rng = np.random.default_rng(5)
        probs = rng.uniform(0.2, 0.8, size=400)
        pb = PoissonBinomial(probs)
        k = int(pb.mean + pb.std)
        assert pb.normal_approximation(k) == pytest.approx(pb.sf(k), abs=0.01)

    @given(probability_lists)
    @settings(max_examples=40, deadline=None)
    def test_mean_variance_formulas(self, probs):
        pb = PoissonBinomial(probs)
        arr = np.asarray(probs)
        assert pb.mean == pytest.approx(arr.sum())
        assert pb.variance == pytest.approx(np.sum(arr * (1 - arr)))
