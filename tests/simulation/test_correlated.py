"""Tests for the correlated-juror simulation (independence stress test)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jer import jury_error_rate
from repro.core.juror import Jury
from repro.errors import SimulationError
from repro.simulation.correlated import (
    correlation_penalty,
    empirical_jer_correlated,
    sample_correlated_votes,
)


class TestSampleCorrelatedVotes:
    def test_shape_and_binary(self, rng):
        jury = Jury.from_error_rates([0.2, 0.3, 0.4])
        votes = sample_correlated_votes(jury, 1, trials=100, rho=0.5, rng=rng)
        assert votes.shape == (100, 3)
        assert set(np.unique(votes)) <= {0, 1}

    def test_marginals_preserved_under_correlation(self, rng):
        """The copula must keep each juror's marginal error rate exact."""
        eps = [0.1, 0.3, 0.5, 0.7]
        jury = Jury.from_error_rates(eps, allow_even=True)
        votes = sample_correlated_votes(jury, 1, trials=60_000, rho=0.6, rng=rng)
        wrong_rates = np.mean(votes == 0, axis=0)
        np.testing.assert_allclose(wrong_rates, eps, atol=0.015)

    def test_rho_zero_is_independent(self, rng):
        jury = Jury.from_error_rates([0.3, 0.3], allow_even=True)
        votes = sample_correlated_votes(jury, 1, trials=60_000, rho=0.0, rng=rng)
        errs = votes == 0
        joint = np.mean(errs[:, 0] & errs[:, 1])
        assert joint == pytest.approx(0.09, abs=0.01)  # independent product

    def test_high_rho_couples_errors(self, rng):
        jury = Jury.from_error_rates([0.3, 0.3], allow_even=True)
        votes = sample_correlated_votes(jury, 1, trials=60_000, rho=0.9, rng=rng)
        errs = votes == 0
        joint = np.mean(errs[:, 0] & errs[:, 1])
        assert joint > 0.2  # far above the independent 0.09

    @pytest.mark.parametrize("bad_rho", [-0.1, 1.0, 1.5])
    def test_invalid_rho(self, bad_rho, rng):
        jury = Jury.from_error_rates([0.2])
        with pytest.raises(SimulationError):
            sample_correlated_votes(jury, 1, trials=1, rho=bad_rho, rng=rng)

    def test_invalid_truth(self, rng):
        jury = Jury.from_error_rates([0.2])
        with pytest.raises(SimulationError):
            sample_correlated_votes(jury, 2, trials=1, rho=0.1, rng=rng)

    def test_invalid_trials(self, rng):
        jury = Jury.from_error_rates([0.2])
        with pytest.raises(SimulationError):
            sample_correlated_votes(jury, 1, trials=0, rho=0.1, rng=rng)


class TestEmpiricalJERCorrelated:
    def test_rho_zero_matches_analytic(self, rng):
        jury = Jury.from_error_rates([0.2, 0.3, 0.3])
        rate = empirical_jer_correlated(jury, rho=0.0, trials=50_000, rng=rng)
        assert rate == pytest.approx(jury_error_rate(jury), abs=0.008)

    def test_jer_increases_with_rho_for_reliable_jury(self, rng):
        jury = Jury.from_error_rates([0.2] * 9)
        rates = [
            empirical_jer_correlated(jury, rho=r, trials=40_000, rng=rng)
            for r in (0.0, 0.4, 0.8)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_extreme_correlation_approaches_individual_error(self, rng):
        """As rho -> 1 the jury errs as one juror: JER -> eps."""
        jury = Jury.from_error_rates([0.3] * 11)
        rate = empirical_jer_correlated(jury, rho=0.97, trials=40_000, rng=rng)
        assert rate == pytest.approx(0.3, abs=0.04)


class TestCorrelationPenalty:
    def test_positive_for_reliable_crowd(self, rng):
        jury = Jury.from_error_rates([0.25] * 7)
        result = correlation_penalty(jury, rho=0.6, trials=40_000, rng=rng)
        assert result.penalty > 0.03
        assert result.analytic_independent == pytest.approx(
            jury_error_rate(jury)
        )

    def test_near_zero_at_rho_zero(self, rng):
        jury = Jury.from_error_rates([0.25] * 7)
        result = correlation_penalty(jury, rho=0.0, trials=60_000, rng=rng)
        assert abs(result.penalty) < 0.01

    def test_fields(self, rng):
        jury = Jury.from_error_rates([0.2, 0.3, 0.4])
        result = correlation_penalty(jury, rho=0.5, trials=5_000, rng=rng)
        assert result.rho == 0.5
        assert result.empirical_correlated == pytest.approx(
            result.analytic_independent + result.penalty
        )
