"""Tests for sequential (adaptive) polling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Jury
from repro.errors import SimulationError
from repro.simulation.adaptive import adaptive_poll, compare_with_static


class TestAdaptivePoll:
    def test_basic_outcome_fields(self, rng):
        jury = Jury.from_error_rates([0.1, 0.2, 0.3])
        outcome = adaptive_poll(jury, 1, rng=rng)
        assert outcome.decision in (0, 1)
        assert 1 <= outcome.questions_asked <= 3

    def test_invalid_truth(self, rng):
        jury = Jury.from_error_rates([0.1])
        with pytest.raises(SimulationError):
            adaptive_poll(jury, 2, rng=rng)

    def test_invalid_delta(self, rng):
        jury = Jury.from_error_rates([0.1])
        with pytest.raises(SimulationError):
            adaptive_poll(jury, 1, delta=0.7, rng=rng)

    def test_single_confident_juror_stops_immediately(self, rng):
        # eps = 0.01 -> log-odds ~ 4.6, above the delta=0.05 threshold (~2.94):
        # one answer settles the question.
        jury = Jury.from_error_rates([0.01, 0.4, 0.4])
        outcome = adaptive_poll(jury, 1, delta=0.05, rng=rng)
        assert outcome.questions_asked == 1
        assert outcome.stopped_early

    def test_weak_jurors_need_more_questions(self, rng):
        jury = Jury.from_error_rates([0.45] * 9)
        asked = [
            adaptive_poll(jury, 1, delta=0.01, rng=rng).questions_asked
            for _ in range(30)
        ]
        assert np.mean(asked) > 3

    def test_accuracy_tracks_delta(self):
        jury = Jury.from_error_rates([0.3] * 15)
        rng = np.random.default_rng(8)
        correct = 0
        trials = 1500
        for t in range(trials):
            truth = t % 2
            outcome = adaptive_poll(jury, truth, delta=0.05, rng=rng)
            correct += outcome.decision == truth
        # SPRT with threshold (1-delta)/delta targets ~1 - delta accuracy.
        assert correct / trials >= 0.9

    def test_deterministic_with_seed(self):
        jury = Jury.from_error_rates([0.2, 0.3, 0.4, 0.25, 0.35])
        a = adaptive_poll(jury, 1, rng=np.random.default_rng(4))
        b = adaptive_poll(jury, 1, rng=np.random.default_rng(4))
        assert a == b


class TestCompareWithStatic:
    def test_saves_questions_without_losing_much_accuracy(self):
        jury = Jury.from_error_rates([0.1, 0.15, 0.2, 0.25, 0.3, 0.2, 0.15])
        comparison = compare_with_static(
            jury, trials=1200, delta=0.02, rng=np.random.default_rng(9)
        )
        assert comparison.adaptive_mean_questions < jury.size
        assert comparison.question_savings > 0.2
        assert comparison.adaptive_accuracy >= comparison.static_accuracy - 0.03

    def test_static_fields(self):
        jury = Jury.from_error_rates([0.2, 0.3, 0.4])
        comparison = compare_with_static(
            jury, trials=100, rng=np.random.default_rng(1)
        )
        assert comparison.static_questions == 3
        assert comparison.static_accuracy == pytest.approx(1 - 0.20 - 0.044, abs=0.05)
        assert comparison.trials == 100

    def test_invalid_trials(self):
        jury = Jury.from_error_rates([0.2])
        with pytest.raises(SimulationError):
            compare_with_static(jury, trials=0)
