"""Tests for the Monte-Carlo voting simulation and its tasks substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jer import jury_error_rate
from repro.core.juror import Jury
from repro.errors import SimulationError
from repro.simulation.tasks import DecisionTask, generate_tasks
from repro.simulation.voting_sim import (
    empirical_jer,
    sample_votes,
    simulate_accuracy_over_tasks,
    simulate_task,
    validate_jer,
)


class TestDecisionTask:
    def test_valid(self):
        task = DecisionTask("Is Turkey in Europe?", 1, "turkey")
        assert task.ground_truth == 1
        assert task.task_id == "turkey"

    def test_auto_id(self):
        a = DecisionTask("q?", 0)
        b = DecisionTask("q?", 0)
        assert a.task_id != b.task_id

    def test_invalid_truth(self):
        with pytest.raises(SimulationError):
            DecisionTask("q?", 2)

    def test_empty_question(self):
        with pytest.raises(SimulationError):
            DecisionTask("", 1)


class TestGenerateTasks:
    def test_count(self, rng):
        assert len(list(generate_tasks(7, rng=rng))) == 7

    def test_zero_count(self, rng):
        assert list(generate_tasks(0, rng=rng)) == []

    def test_negative_count(self, rng):
        with pytest.raises(SimulationError):
            list(generate_tasks(-1, rng=rng))

    def test_truth_probability_extremes(self, rng):
        all_true = list(generate_tasks(20, rng=rng, truth_probability=1.0))
        assert all(t.ground_truth == 1 for t in all_true)
        all_false = list(generate_tasks(20, rng=rng, truth_probability=0.0))
        assert all(t.ground_truth == 0 for t in all_false)

    def test_invalid_probability(self, rng):
        with pytest.raises(SimulationError):
            list(generate_tasks(1, rng=rng, truth_probability=1.5))


class TestSampleVotes:
    def test_shape_and_binary(self, rng):
        jury = Jury.from_error_rates([0.2, 0.3, 0.4])
        votes = sample_votes(jury, 1, trials=50, rng=rng)
        assert votes.shape == (50, 3)
        assert set(np.unique(votes)) <= {0, 1}

    def test_error_rate_respected(self, rng):
        jury = Jury.from_error_rates([0.9, 0.1, 0.5])
        votes = sample_votes(jury, 1, trials=20_000, rng=rng)
        wrong_rates = np.mean(votes == 0, axis=0)
        np.testing.assert_allclose(wrong_rates, [0.9, 0.1, 0.5], atol=0.02)

    def test_ground_truth_zero(self, rng):
        jury = Jury.from_error_rates([0.1, 0.1, 0.1])
        votes = sample_votes(jury, 0, trials=1000, rng=rng)
        # Mostly correct -> mostly zeros.
        assert votes.mean() < 0.2

    def test_invalid_truth(self, rng):
        jury = Jury.from_error_rates([0.1])
        with pytest.raises(SimulationError):
            sample_votes(jury, 2, trials=1, rng=rng)

    def test_invalid_trials(self, rng):
        jury = Jury.from_error_rates([0.1])
        with pytest.raises(SimulationError):
            sample_votes(jury, 1, trials=0, rng=rng)


class TestEmpiricalJER:
    def test_matches_analytic_paper_jury(self, rng):
        jury = Jury.from_error_rates([0.2, 0.3, 0.3])
        rate = empirical_jer(jury, trials=40_000, rng=rng)
        assert rate == pytest.approx(0.174, abs=0.01)

    def test_single_juror(self, rng):
        jury = Jury.from_error_rates([0.35])
        rate = empirical_jer(jury, trials=40_000, rng=rng)
        assert rate == pytest.approx(0.35, abs=0.01)

    @given(
        st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=7)
        .filter(lambda xs: len(xs) % 2 == 1)
    )
    @settings(max_examples=15, deadline=None)
    def test_statistical_agreement(self, eps):
        jury = Jury.from_error_rates(eps)
        validation = validate_jer(jury, trials=30_000, rng=np.random.default_rng(0))
        assert validation.consistent(z_threshold=5.0)

    def test_validation_fields(self, rng):
        jury = Jury.from_error_rates([0.2, 0.3, 0.3])
        validation = validate_jer(jury, trials=10_000, rng=rng)
        assert validation.analytic == pytest.approx(jury_error_rate(jury))
        assert validation.trials == 10_000
        assert validation.stderr > 0.0


class TestSimulateTask:
    def test_returns_decision_and_correctness(self, rng):
        jury = Jury.from_error_rates([0.01, 0.01, 0.01])
        task = DecisionTask("easy question", 1)
        decision, correct = simulate_task(jury, task, rng=rng)
        assert decision in (0, 1)
        assert correct == (decision == 1)

    def test_reliable_jury_mostly_correct(self, rng):
        jury = Jury.from_error_rates([0.05, 0.05, 0.05])
        tasks = list(generate_tasks(200, rng=rng))
        accuracy = simulate_accuracy_over_tasks(jury, tasks, rng=rng)
        assert accuracy > 0.9

    def test_accuracy_requires_tasks(self, rng):
        jury = Jury.from_error_rates([0.1])
        with pytest.raises(SimulationError):
            simulate_accuracy_over_tasks(jury, [], rng=rng)

    def test_accuracy_close_to_one_minus_jer(self, rng):
        jury = Jury.from_error_rates([0.2, 0.25, 0.3, 0.35, 0.15])
        tasks = list(generate_tasks(4000, rng=rng))
        accuracy = simulate_accuracy_over_tasks(jury, tasks, rng=rng)
        assert accuracy == pytest.approx(1.0 - jury_error_rate(jury), abs=0.03)
