"""Tests for the ``repro-select`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import load_candidates_csv, main
from repro.errors import ReproError

CSV_HEADER = "id,error_rate,requirement\n"
FIGURE1_CSV = CSV_HEADER + "\n".join(
    [
        "A,0.1,0.2",
        "B,0.2,0.2",
        "C,0.2,0.2",
        "D,0.3,0.4",
        "E,0.3,0.65",
        "F,0.4,0.1",
        "G,0.4,0.1",
    ]
) + "\n"


@pytest.fixture
def candidates_csv(tmp_path):
    path = tmp_path / "candidates.csv"
    path.write_text(FIGURE1_CSV)
    return path


class TestLoadCandidatesCsv:
    def test_loads_all_rows(self, candidates_csv):
        jurors = load_candidates_csv(candidates_csv)
        assert len(jurors) == 7
        assert jurors[0].juror_id == "A"
        assert jurors[4].requirement == pytest.approx(0.65)

    def test_requirement_optional(self, tmp_path):
        path = tmp_path / "free.csv"
        path.write_text("id,error_rate\nx,0.2\ny,0.3\n")
        jurors = load_candidates_csv(path)
        assert all(j.requirement == 0.0 for j in jurors)

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,score\nx,0.2\n")
        with pytest.raises(ReproError):
            load_candidates_csv(path)

    def test_bad_value_reports_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,error_rate\nx,not-a-number\n")
        with pytest.raises(ReproError, match=":2:"):
            load_candidates_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ReproError):
            load_candidates_csv(path)

    def test_no_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text("id,error_rate\n")
        with pytest.raises(ReproError):
            load_candidates_csv(path)

    def test_out_of_range_error_rate(self, tmp_path):
        path = tmp_path / "oob.csv"
        path.write_text("id,error_rate\nx,1.5\n")
        with pytest.raises(ReproError):
            load_candidates_csv(path)


class TestMain:
    def test_altr_default(self, candidates_csv, capsys):
        assert main([str(candidates_csv)]) == 0
        out = capsys.readouterr().out
        assert "AltrALG" in out
        assert "size=5" in out

    def test_pay_with_budget(self, candidates_csv, capsys):
        assert main([str(candidates_csv), "--budget", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "PayALG" in out
        assert "A:" in out and "B:" in out and "C:" in out

    def test_exact_with_budget(self, candidates_csv, capsys):
        assert main([str(candidates_csv), "--budget", "1.0", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "OPT" in out

    def test_improved_variant(self, candidates_csv, capsys):
        code = main(
            [str(candidates_csv), "--budget", "100", "--variant", "improved"]
        )
        assert code == 0
        assert "PayALG-improved" in capsys.readouterr().out

    def test_json_output(self, candidates_csv, capsys):
        assert main([str(candidates_csv), "--budget", "1.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "PayM"
        assert payload["size"] == 3
        assert {m["id"] for m in payload["members"]} == {"A", "B", "C"}
        assert payload["jer"] == pytest.approx(0.072)

    def test_missing_file_is_error_exit(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.csv")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_infeasible_budget_is_error_exit(self, tmp_path, capsys):
        path = tmp_path / "pricey.csv"
        path.write_text("id,error_rate,requirement\nx,0.2,9.0\n")
        assert main([str(path), "--budget", "1.0"]) == 1
        assert "error:" in capsys.readouterr().err
