"""Tests for the analysis package (diagnostics, frontier, robustness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diagnostics import diagnose_jury
from repro.analysis.frontier import budget_frontier, minimal_budget_for_target
from repro.analysis.robustness import selection_regret_under_noise
from repro.core.juror import Jury, jurors_from_arrays
from repro.core.selection.exact import branch_and_bound_optimal
from repro.errors import ReproError


class TestDiagnoseJury:
    @pytest.fixture(scope="class")
    def report(self):
        return diagnose_jury(Jury.from_error_rates([0.1, 0.2, 0.2], [1, 2, 3]))

    def test_jer(self, report):
        assert report.jer == pytest.approx(0.072)

    def test_weighted_never_worse(self, report):
        assert report.weighted_jer <= report.jer + 1e-12
        assert report.majority_overhead >= -1e-12

    def test_bounds_bracket_jer(self, report):
        assert report.upper_bound >= report.jer - 1e-12
        if report.lower_bound is not None:
            assert report.lower_bound <= report.jer + 1e-12

    def test_influences_cover_all_jurors(self, report):
        assert len(report.influences) == 3
        assert report.most_pivotal.pivotal_probability >= max(
            r.pivotal_probability for r in report.influences
        ) - 1e-15

    def test_total_cost(self, report):
        assert report.total_cost == pytest.approx(6.0)

    def test_summary_mentions_key_numbers(self, report):
        text = report.summary()
        assert "0.072" in text
        assert "most pivotal" in text

    def test_monte_carlo_validation(self):
        report = diagnose_jury(
            Jury.from_error_rates([0.2, 0.3, 0.3]),
            monte_carlo_trials=20_000,
            rng=np.random.default_rng(0),
        )
        assert report.validation is not None
        assert report.validation.consistent(z_threshold=5.0)
        assert "Monte-Carlo" in report.summary()


class TestBudgetFrontier:
    def test_points_sorted_and_feasibility(self, table2_jurors):
        points = budget_frontier(table2_jurors, [2.0, 0.05, 0.6])
        assert [p.budget for p in points] == [0.05, 0.6, 2.0]
        assert not points[0].feasible  # cheapest juror costs 0.1
        assert points[1].feasible

    def test_jer_improves_along_frontier(self, table2_jurors):
        points = budget_frontier(table2_jurors, [0.2, 0.6, 1.0, 2.0])
        jers = [p.jer for p in points if p.feasible]
        assert all(a >= b - 1e-12 for a, b in zip(jers, jers[1:]))

    def test_custom_selector(self, table2_jurors):
        points = budget_frontier(
            table2_jurors,
            [1.0],
            selector=lambda cands, b: branch_and_bound_optimal(cands, b),
        )
        assert points[0].jer == pytest.approx(0.072)

    def test_empty_budgets_rejected(self, table2_jurors):
        with pytest.raises(ReproError):
            budget_frontier(table2_jurors, [])


class TestMinimalBudgetForTarget:
    def test_finds_known_threshold(self, table2_jurors):
        # JER 0.072 requires {A,B,C} at cost 0.6; JER 0.1 only needs {A}.
        budget = minimal_budget_for_target(
            table2_jurors,
            0.08,
            selector=lambda cands, b: branch_and_bound_optimal(cands, b),
            tolerance=1e-4,
        )
        assert budget == pytest.approx(0.6, abs=1e-3)

    def test_single_juror_target(self, table2_jurors):
        budget = minimal_budget_for_target(
            table2_jurors,
            0.15,
            selector=lambda cands, b: branch_and_bound_optimal(cands, b),
            tolerance=1e-4,
        )
        assert budget == pytest.approx(0.2, abs=1e-3)  # juror A costs 0.2

    def test_unreachable_target(self, table2_jurors):
        assert minimal_budget_for_target(table2_jurors, 1e-9) is None

    def test_invalid_target(self, table2_jurors):
        with pytest.raises(ReproError):
            minimal_budget_for_target(table2_jurors, 0.0)

    def test_zero_budget_sufficient_for_free_candidates(self):
        free = jurors_from_arrays([0.1, 0.2, 0.3])
        assert minimal_budget_for_target(free, 0.2, budget_ceiling=1.0) == 0.0


class TestSelectionRegretUnderNoise:
    def test_zero_noise_zero_regret(self):
        report = selection_regret_under_noise(
            [0.1, 0.2, 0.3, 0.4, 0.45], noise_sigma=0.0, n_trials=3,
            rng=np.random.default_rng(0),
        )
        assert report.mean_regret == pytest.approx(0.0, abs=1e-12)
        assert report.mean_true_jer == pytest.approx(report.oracle_jer)

    def test_regret_nonnegative_and_grows_with_noise(self):
        rates = list(np.linspace(0.05, 0.45, 15))
        mild = selection_regret_under_noise(
            rates, noise_sigma=0.02, n_trials=25, rng=np.random.default_rng(1)
        )
        harsh = selection_regret_under_noise(
            rates, noise_sigma=0.3, n_trials=25, rng=np.random.default_rng(1)
        )
        assert mild.mean_regret >= -1e-9
        assert harsh.mean_regret >= mild.mean_regret - 1e-6

    def test_trials_recorded(self):
        report = selection_regret_under_noise(
            [0.2, 0.3, 0.4], noise_sigma=0.1, n_trials=7,
            rng=np.random.default_rng(2),
        )
        assert len(report.trials) == 7
        for trial in report.trials:
            assert trial.true_jer >= report.oracle_jer - 1e-9

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            selection_regret_under_noise([], noise_sigma=0.1)
        with pytest.raises(ReproError):
            selection_regret_under_noise([0.2], noise_sigma=-1.0)
        with pytest.raises(ReproError):
            selection_regret_under_noise([0.2], noise_sigma=0.1, n_trials=0)
