"""Tests for JER confidence intervals (delta method)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.uncertainty import (
    binomial_stderrs,
    jer_confidence_interval,
)
from repro.core.jer import jer_dp
from repro.errors import ReproError


class TestBinomialStderrs:
    def test_scalar_count(self):
        stderr = binomial_stderrs([0.5], 100)
        assert stderr[0] == pytest.approx(0.05)

    def test_per_juror_counts(self):
        stderrs = binomial_stderrs([0.5, 0.5], [100, 400])
        assert stderrs[0] == pytest.approx(2 * stderrs[1])

    def test_count_mismatch(self):
        with pytest.raises(ReproError):
            binomial_stderrs([0.5, 0.5], [100])

    def test_zero_count_rejected(self):
        with pytest.raises(ReproError):
            binomial_stderrs([0.5], 0)

    def test_more_observations_shrink_stderr(self):
        small = binomial_stderrs([0.3, 0.4, 0.2], 50)
        large = binomial_stderrs([0.3, 0.4, 0.2], 5000)
        assert np.all(large < small)


class TestJERConfidenceInterval:
    def test_contains_point_estimate(self):
        interval = jer_confidence_interval([0.2, 0.3, 0.3], [0.02] * 3)
        assert interval.contains(interval.point)
        assert interval.point == pytest.approx(jer_dp([0.2, 0.3, 0.3]))

    def test_zero_stderr_collapses(self):
        interval = jer_confidence_interval([0.2, 0.3, 0.3], [0.0] * 3)
        assert interval.width == pytest.approx(0.0, abs=1e-12)

    def test_clipped_to_unit_interval(self):
        interval = jer_confidence_interval([0.1, 0.1, 0.1], [0.3] * 3)
        assert interval.low >= 0.0
        assert interval.high <= 1.0

    def test_wider_stderr_wider_interval(self):
        narrow = jer_confidence_interval([0.2, 0.3, 0.3], [0.01] * 3)
        wide = jer_confidence_interval([0.2, 0.3, 0.3], [0.05] * 3)
        assert wide.width > narrow.width

    def test_higher_confidence_wider_interval(self):
        eps, sig = [0.2, 0.3, 0.3], [0.02] * 3
        c90 = jer_confidence_interval(eps, sig, confidence=0.90)
        c99 = jer_confidence_interval(eps, sig, confidence=0.99)
        assert c99.width > c90.width

    def test_stderr_mismatch(self):
        with pytest.raises(ReproError):
            jer_confidence_interval([0.2, 0.3, 0.3], [0.01])

    def test_negative_stderr(self):
        with pytest.raises(ReproError):
            jer_confidence_interval([0.2, 0.3, 0.3], [-0.01, 0.01, 0.01])

    def test_invalid_confidence(self):
        with pytest.raises(ReproError):
            jer_confidence_interval([0.2, 0.3, 0.3], [0.01] * 3, confidence=1.5)

    def test_coverage_against_monte_carlo(self):
        """The delta interval should cover the JER of perturbed rate vectors
        at roughly the nominal frequency (generously bounded here)."""
        rng = np.random.default_rng(0)
        eps = np.array([0.2, 0.3, 0.25, 0.35, 0.3])
        sigma = 0.02
        interval = jer_confidence_interval(eps, [sigma] * 5, confidence=0.95)
        covered = 0
        trials = 400
        for _ in range(trials):
            noisy = np.clip(eps + rng.normal(0, sigma, 5), 0.01, 0.99)
            if interval.contains(jer_dp(noisy)):
                covered += 1
        assert covered / trials > 0.85

    def test_delta_variance_matches_simulation(self):
        """Propagated stderr tracks the simulated JER spread for small noise."""
        rng = np.random.default_rng(1)
        eps = np.array([0.25, 0.3, 0.35])
        sigma = 0.01
        interval = jer_confidence_interval(eps, [sigma] * 3)
        samples = []
        for _ in range(3000):
            noisy = np.clip(eps + rng.normal(0, sigma, 3), 0.001, 0.999)
            samples.append(jer_dp(noisy))
        assert interval.stderr == pytest.approx(np.std(samples), rel=0.25)

    def test_history_to_interval_pipeline(self):
        """EM error rates + observation counts -> JER interval end to end."""
        from repro.estimation.history import estimate_error_rates_em

        rng = np.random.default_rng(2)
        true_eps = np.array([0.1, 0.2, 0.3])
        truth = rng.integers(0, 2, size=600)
        wrong = rng.random((600, 3)) < true_eps
        votes = np.where(wrong, 1 - truth[:, None], truth[:, None])
        fit = estimate_error_rates_em(votes)
        stderrs = binomial_stderrs(fit.error_rates, 600)
        interval = jer_confidence_interval(fit.error_rates, stderrs)
        assert interval.contains(jer_dp(true_eps)) or interval.width < 0.05
