"""Tests for the ``repro-select http`` network server subcommand.

The in-process protocol behaviour is covered by ``tests/api/test_server.py``;
these tests cover the CLI shell around it: argument defaults, the announce
line, and the real-process lifecycle — SIGTERM drains gracefully, exits 0
and reaps every worker shard process.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.cli import _build_http_parser

#: The installed package's source root, so the subprocess imports the same
#: code under test regardless of the pytest invocation directory.
SRC = str(Path(repro.__file__).resolve().parents[1])

CANDIDATES = [
    {"id": f"c{i}", "error_rate": 0.05 + 0.03 * i, "requirement": 0.1 * (i % 4)}
    for i in range(9)
]


def _read_line(proc: subprocess.Popen, timeout: float = 60.0) -> str:
    ready, _, _ = select.select([proc.stdout], [], [], timeout)
    assert ready, "server never printed its announce line"
    return proc.stdout.readline().strip()


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.load(response)


class TestParser:
    def test_defaults(self):
        args = _build_http_parser().parse_args([])
        assert args.host == "127.0.0.1" and args.port == 8732
        assert args.max_batch == 128 and args.max_pending == 1024
        assert args.max_connections == 512
        assert args.workers is None and args.cache_size is None

    def test_knobs_parse(self):
        args = _build_http_parser().parse_args(
            ["--port", "0", "--workers", "3", "--max-pending", "7"]
        )
        assert args.port == 0 and args.workers == 3 and args.max_pending == 7


class TestServerProcess:
    @pytest.fixture
    def server(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "http", "--port", "0", "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        announce = _read_line(proc)
        assert announce.startswith("serving on http://"), announce
        try:
            yield proc, announce.split()[-1]
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)

    def test_sigterm_drains_exits_zero_and_reaps_workers(self, server):
        proc, base = server
        answer = _post(
            base,
            "/v1/select",
            {"v": 1, "task": "t1", "candidates": CANDIDATES},
        )
        assert answer["status"] == "ok" and answer["task"] == "t1"

        stats = _get(base, "/v1/stats")
        assert stats["async"]["answered"] == 1
        assert stats["server"]["requests_served"] >= 1
        assert [slot["shard"] for slot in stats["shards"]] == [0, 1]
        pids = [pid for slot in stats["shards"] for pid in slot["pids"]]

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
        assert "drained, shutting down" in proc.stderr.read()
        for pid in pids:  # the worker shard processes died with the server
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_healthz_and_bit_identity_over_subprocess(self, server):
        proc, base = server
        health = _get(base, "/healthz")
        assert health["ok"] is True and health["status"] == "serving"

        # Same request twice (sharded subprocess) — deterministic answer.
        payload = {"v": 1, "task": "t", "candidates": CANDIDATES}
        first = _post(base, "/v1/select", payload)
        second = _post(base, "/v1/select", payload)
        first.pop("timings"), second.pop("timings")
        assert first == second

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
