"""The serve/http CLI over a durable catalog, including the kill -9 smoke.

The crash smoke is the PR's end-to-end bar: a real ``serve`` subprocess
with ``--data-dir`` is killed with SIGKILL mid-churn — no drain, no
``close()`` — and a fresh process over the same directory must answer
selections bit-identically to an in-memory oracle that replays exactly the
mutations the dead process had *acknowledged* (fsync-per-record makes every
acked mutation durable by contract).
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.api import JuryService, SelectionRequest
from repro.cli import _build_http_parser, _build_serve_parser, run_serve
from repro.core.juror import Juror
from repro.service.registry import LivePool
from repro.service import BatchSelectionEngine, PoolRegistry, SelectionQuery

EPS = (0.1, 0.2, 0.2, 0.3, 0.3)


def _drive(lines, **options):
    text = "\n".join(
        line if isinstance(line, str) else json.dumps(line) for line in lines
    )
    args = SimpleNamespace(cache_size=None, workers=None, **options)
    out = io.StringIO()
    code = run_serve(args, stdin=io.StringIO(text + "\n"), stdout=out)
    rows = [json.loads(line) for line in out.getvalue().splitlines()]
    return rows, code


def _pool_create(name="P1", eps=EPS):
    return {
        "cmd": "pool",
        "action": "create",
        "name": name,
        "candidates": [
            {"id": f"c{i}", "error_rate": e} for i, e in enumerate(eps)
        ],
    }


class TestServeDataDir:
    def test_parser_accepts_data_dir(self):
        args = _build_serve_parser().parse_args(["--data-dir", "/tmp/x"])
        assert args.data_dir == "/tmp/x"
        assert _build_serve_parser().parse_args([]).data_dir is None
        http_args = _build_http_parser().parse_args(["--data-dir", "/tmp/y"])
        assert http_args.data_dir == "/tmp/y"

    def test_sessions_share_state_across_restarts(self, tmp_path):
        data_dir = str(tmp_path / "cat")
        rows, code = _drive(
            [
                _pool_create(),
                {"cmd": "pool", "action": "update", "name": "P1",
                 "add": [{"id": "x", "error_rate": 0.15}]},
                {"cmd": "select", "task": "before", "pool": "P1"},
            ],
            data_dir=data_dir,
        )
        assert code == 0
        before = rows[-1]

        rows2, code2 = _drive(
            [{"cmd": "select", "task": "after", "pool": "P1"}],
            data_dir=data_dir,
        )
        assert code2 == 0
        after = rows2[-1]
        assert after["ok"]
        for key in ("members", "jer", "size", "pool_version"):
            assert before[key] == after[key]

    def test_drop_survives_restart(self, tmp_path):
        data_dir = str(tmp_path / "cat")
        rows, code = _drive(
            [_pool_create(), {"cmd": "pool", "action": "drop", "name": "P1"}],
            data_dir=data_dir,
        )
        assert code == 0 and rows[-1]["ok"]

        rows2, code2 = _drive(
            [{"cmd": "select", "task": "t", "pool": "P1"}], data_dir=data_dir
        )
        assert code2 == 2  # per-command error, session survives to EOF
        assert rows2[-1]["error"]["code"] == "pool-not-found"

    def test_env_var_supplies_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "env-cat"))
        _drive([_pool_create()])
        rows, code = _drive([{"cmd": "select", "task": "t", "pool": "P1"}])
        assert code == 0 and rows[-1]["ok"]

    def test_stats_includes_catalog_block(self, tmp_path):
        rows, code = _drive(
            [_pool_create(), {"cmd": "stats"}],
            data_dir=str(tmp_path / "cat"),
        )
        assert code == 0
        catalog = rows[-1]["catalog"]
        assert catalog["wal_appends"] == 1
        assert catalog["pools"] == 1 and catalog["resident"] == 1


class TestCrashRecoverySmoke:
    def test_kill_dash_nine_mid_churn(self, tmp_path):
        """SIGKILL a serve process mid-churn; a restart must serve selections
        bit-identical to an oracle replaying the acknowledged mutations."""
        data_dir = str(tmp_path / "cat")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        env.pop("REPRO_WORKERS", None)  # keep the subprocess single-process
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(['serve', '--data-dir', sys.argv[1]]))",
                data_dir,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            acked: list[dict] = []

            def send(command: dict) -> dict:
                proc.stdin.write(json.dumps(command) + "\n")
                proc.stdin.flush()
                row = json.loads(proc.stdout.readline())
                assert row.get("ok"), row
                return row

            send(_pool_create())
            acked.append({"op": "create"})
            for i in range(8):
                send(
                    {
                        "cmd": "pool", "action": "update", "name": "P1",
                        "add": [{"id": f"n{i}", "error_rate": 0.11 + i / 100}],
                    }
                )
                acked.append({"op": "add", "id": f"n{i}", "e": 0.11 + i / 100})
            # Fire one more mutation and kill without reading the ack: it
            # may or may not have landed — both outcomes must recover.
            proc.stdin.write(
                json.dumps(
                    {
                        "cmd": "pool", "action": "update", "name": "P1",
                        "remove": ["c0"],
                    }
                )
                + "\n"
            )
            proc.stdin.flush()
            time.sleep(0.05)
        finally:
            proc.kill()  # SIGKILL: no drain, no flush, no close
            proc.wait(timeout=10)

        service = JuryService(data_dir=data_dir)
        try:
            response = service.select(
                SelectionRequest(task_id="t", pool="P1")
            ).to_dict()
            recovered_version = service.registry.get("P1").version
        finally:
            service.close()

        # Oracle: the acked mutations, plus the unacked remove iff the
        # recovered version says it landed before the kill.
        oracle = LivePool(
            [Juror(e, juror_id=f"c{i}") for i, e in enumerate(EPS)],
            pool_id="P1",
        )
        for mutation in acked[1:]:
            oracle.add_juror(Juror(mutation["e"], juror_id=mutation["id"]))
        assert recovered_version in (len(acked) - 1, len(acked))
        if recovered_version == len(acked):
            oracle.remove_juror("c0")

        registry = PoolRegistry()
        registry._pools["P1"] = oracle
        engine = BatchSelectionEngine(registry=registry)
        try:
            outcome = engine.run([SelectionQuery(task_id="t", pool_name="P1")])[0]
        finally:
            engine.close()
        assert outcome.ok
        assert response["jer"] == outcome.result.jer  # bitwise
        assert [m["id"] for m in response["members"]] == [
            j.juror_id for j in outcome.result.jury
        ]
