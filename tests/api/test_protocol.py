"""Round-trip and validation properties of wire protocol v1.

The protocol's contract is ``from_dict(x.to_dict()) == x`` for every valid
value — including across an actual JSON encode/decode — plus located errors
for everything invalid.  The round trips are exercised property-style with
hypothesis so numeric edge cases (tiny/huge floats, long member lists) are
covered, not just the happy path.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ErrorInfo,
    PoolCommand,
    PROTOCOL_VERSION,
    SelectionRequest,
    SelectionResponse,
)
from repro.core.juror import Juror
from repro.errors import ProtocolError

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

_ids = st.text(
    alphabet=st.characters(whitelist_categories=("L", "Nd"), max_codepoint=0x2FF),
    min_size=1,
    max_size=8,
)
_eps = st.floats(min_value=1e-9, max_value=1.0 - 1e-9, exclude_max=True)
_reqs = st.floats(min_value=0.0, max_value=1e6)


@st.composite
def jurors(draw) -> tuple[Juror, ...]:
    """Small candidate tuples with unique ids."""
    ids = draw(st.lists(_ids, min_size=1, max_size=6, unique=True))
    return tuple(
        Juror(draw(_eps), draw(_reqs), juror_id=juror_id) for juror_id in ids
    )


@st.composite
def selection_requests(draw) -> SelectionRequest:
    use_pool = draw(st.booleans())
    model = draw(st.sampled_from(["altr", "pay", "exact"]))
    budget = draw(_reqs) if model == "pay" or draw(st.booleans()) else None
    return SelectionRequest(
        task_id=draw(_ids),
        candidates=None if use_pool else draw(jurors()),
        pool=draw(_ids) if use_pool else None,
        model=model,
        budget=budget,
        max_size=draw(st.one_of(st.none(), st.integers(1, 99))),
        variant=draw(st.sampled_from(["paper", "improved"])),
        method=draw(st.sampled_from(["auto", "enumerate", "branch-and-bound"])),
        explain=draw(st.booleans()),
    )


@st.composite
def error_infos(draw) -> ErrorInfo:
    detail = draw(
        st.one_of(
            st.none(),
            st.dictionaries(_ids, st.one_of(_ids, st.integers(0, 9)), max_size=3),
        )
    )
    return ErrorInfo(code=draw(_ids), message=draw(_ids), detail=detail)


@st.composite
def selection_responses(draw) -> SelectionResponse:
    kind = draw(st.sampled_from(["ok", "plan", "error"]))
    elapsed = draw(st.floats(min_value=0.0, max_value=1e3))
    if kind == "error":
        return SelectionResponse.from_error(
            draw(_ids), draw(error_infos()), elapsed_seconds=elapsed
        )
    if kind == "plan":
        return SelectionResponse.from_plan(
            draw(_ids),
            {"operator": draw(_ids), "pool_size": draw(st.integers(1, 99))},
            pool_version=draw(st.one_of(st.none(), st.integers(0, 99))),
            elapsed_seconds=elapsed,
        )
    members = draw(jurors())
    return SelectionResponse(
        task_id=draw(_ids),
        status="ok",
        model=draw(st.sampled_from(["AltrM", "PayM"])),
        algorithm=draw(_ids),
        jer=draw(_eps),
        size=len(members),
        total_cost=draw(_reqs),
        budget=draw(st.one_of(st.none(), _reqs)),
        members=members,
        pool_version=draw(st.one_of(st.none(), st.integers(0, 99))),
        elapsed_seconds=elapsed,
    )


@st.composite
def pool_commands(draw) -> PoolCommand:
    action = draw(st.sampled_from(["create", "update", "drop"]))
    if action == "create":
        return PoolCommand(
            action=action,
            name=draw(_ids),
            candidates=draw(jurors()),
            replace=draw(st.booleans()),
        )
    if action == "drop":
        return PoolCommand(action=action, name=draw(_ids))
    updates = draw(
        st.lists(
            st.tuples(
                _ids,
                st.one_of(st.none(), _eps),
                st.one_of(st.none(), _reqs),
            ),
            max_size=3,
        )
    )
    return PoolCommand(
        action=action,
        name=draw(_ids),
        add=draw(st.one_of(st.just(()), jurors())),
        remove=tuple(draw(st.lists(_ids, max_size=3))),
        updates=tuple(updates),
    )


# ----------------------------------------------------------------------
# round-trip properties
# ----------------------------------------------------------------------


class TestRoundTrips:
    @given(request=selection_requests())
    @settings(max_examples=200, deadline=None)
    def test_request_round_trip_identity(self, request):
        wire = request.to_dict()
        assert wire["v"] == PROTOCOL_VERSION
        assert SelectionRequest.from_dict(wire) == request
        # ... and across an actual JSON encode/decode.
        assert SelectionRequest.from_dict(json.loads(json.dumps(wire))) == request

    @given(response=selection_responses())
    @settings(max_examples=200, deadline=None)
    def test_response_round_trip_identity(self, response):
        wire = response.to_dict()
        assert wire["v"] == PROTOCOL_VERSION
        assert SelectionResponse.from_dict(wire) == response
        assert SelectionResponse.from_dict(json.loads(json.dumps(wire))) == response

    @given(command=pool_commands())
    @settings(max_examples=200, deadline=None)
    def test_pool_command_round_trip_identity(self, command):
        wire = command.to_dict()
        assert wire["v"] == PROTOCOL_VERSION and wire["cmd"] == "pool"
        assert PoolCommand.from_dict(wire) == command
        assert PoolCommand.from_dict(json.loads(json.dumps(wire))) == command

    @given(info=error_infos())
    @settings(max_examples=100, deadline=None)
    def test_error_info_round_trip_identity(self, info):
        assert ErrorInfo.from_dict(json.loads(json.dumps(info.to_dict()))) == info


# ----------------------------------------------------------------------
# canonicalisation + validation
# ----------------------------------------------------------------------


class TestRequestValidation:
    def test_model_aliases_are_canonicalised(self):
        request = SelectionRequest(pool="P", model="AltrM")
        assert request.model == "altr"
        assert SelectionRequest(pool="P", model="PayM", budget=1).budget == 1.0

    def test_both_sources_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            SelectionRequest(candidates=(Juror(0.1, juror_id="a"),), pool="P")

    def test_neither_source_rejected(self):
        with pytest.raises(ValueError, match="pool"):
            SelectionRequest(task_id="t")

    def test_pay_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            SelectionRequest(pool="P", model="pay")

    def test_from_dict_locates_bad_candidate(self):
        with pytest.raises(ProtocolError) as excinfo:
            SelectionRequest.from_dict(
                {"task": "t", "candidates": [{"id": "a", "error_rate": 0.2}, {"id": "b"}]},
                where="q.jsonl:7",
            )
        assert "q.jsonl:7" in str(excinfo.value)
        assert "candidate #1" in str(excinfo.value)
        assert excinfo.value.detail == {
            "where": "q.jsonl:7",
            "field": "candidates",
            "position": 1,
        }

    def test_from_dict_locates_unknown_model(self):
        with pytest.raises(ProtocolError, match=r"q\.jsonl:3.*model"):
            SelectionRequest.from_dict(
                {"task": "t", "candidates": [{"id": "a", "error_rate": 0.2}],
                 "model": "wat"},
                where="q.jsonl:3",
            )

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            SelectionRequest.from_dict(["nope"], where="w")


class TestResponseValidation:
    def test_status_must_be_known(self):
        with pytest.raises(ValueError, match="status"):
            SelectionResponse(task_id="t", status="meh")

    def test_error_status_requires_error_info(self):
        with pytest.raises(ValueError, match="ErrorInfo"):
            SelectionResponse(task_id="t", status="error")
        with pytest.raises(ValueError, match="ErrorInfo"):
            SelectionResponse(
                task_id="t", status="ok", error=ErrorInfo("x", "y")
            )

    def test_ok_property(self):
        ok = SelectionResponse.from_plan("t", {"operator": "altr-sweep"})
        bad = SelectionResponse.from_error("t", ErrorInfo("internal", "boom"))
        assert ok.ok and not bad.ok


class TestPoolCommandValidation:
    def test_unknown_action(self):
        with pytest.raises(ProtocolError, match="explode"):
            PoolCommand.from_dict({"action": "explode", "name": "P"}, where="w")

    def test_create_needs_candidates(self):
        with pytest.raises(ProtocolError, match="candidates"):
            PoolCommand.from_dict({"action": "create", "name": "P"}, where="w")

    def test_scalar_update_fields_rejected(self):
        with pytest.raises(ProtocolError, match="'remove' must be an array"):
            PoolCommand.from_dict(
                {"action": "update", "name": "P", "remove": "c0"}, where="w"
            )

    def test_set_entry_needs_id(self):
        with pytest.raises(ProtocolError, match="set entry #0"):
            PoolCommand.from_dict(
                {"action": "update", "name": "P", "set": [{"error_rate": 0.5}]},
                where="w",
            )
