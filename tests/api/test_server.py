"""HttpServer: protocol round trips, backpressure, graceful lifecycle."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.api import (
    AsyncJuryService,
    JuryService,
    PROTOCOL_VERSION,
    SelectionRequest,
)
from repro.api.server import HttpServer, http_call
from repro.core.juror import Juror
from repro.testing import DEFAULT_SEED


def _make_candidates(rng: np.random.Generator, size: int, tag: str) -> tuple[Juror, ...]:
    eps = rng.uniform(0.05, 0.6, size=size)
    return tuple(
        Juror(float(e), float(rng.uniform(0.0, 1.0)), juror_id=f"{tag}-{i}")
        for i, e in enumerate(eps)
    )


def _mixed_wire_requests(count: int) -> list[dict]:
    """Deterministic mixed AltrM/PayM/exact requests, in wire form."""
    rng = np.random.default_rng(DEFAULT_SEED)
    rows = []
    for i in range(count):
        cands = _make_candidates(rng, 9, f"t{i}")
        if i % 5 == 3:
            request = SelectionRequest(
                task_id=f"t{i}", candidates=cands, model="pay", budget=2.0
            )
        elif i % 5 == 4:
            request = SelectionRequest(
                task_id=f"t{i}", candidates=cands, model="exact", budget=2.0
            )
        else:
            request = SelectionRequest(task_id=f"t{i}", candidates=cands)
        rows.append(request.to_dict())
    return rows


def _normalise(row: dict) -> dict:
    """Wire form minus timings (the only permitted dispatch-dependent field)."""
    row = dict(row)
    row.pop("timings", None)
    return row


async def _connect(server: HttpServer):
    return await asyncio.open_connection(server.host, server.port)


def _gate_select_many(service: JuryService):
    """Patch ``select_many`` to block on a gate the test controls.

    Returns ``(gate, calls)``: set the gate to release the engine; ``calls``
    records the task ids of every batch that actually reached it.
    """
    gate = threading.Event()
    calls: list[list[str]] = []
    real = service.select_many

    def gated(requests):
        calls.append([request.task_id for request in requests])
        assert gate.wait(10), "test gate never opened"
        return real(requests)

    service.select_many = gated
    return gate, calls


class TestEndpoints:
    def test_select_round_trip_matches_sequential_dispatch(self):
        """The HTTP transport changes nothing: responses over the socket are
        bit-identical to a sequential in-process loop."""
        wire_requests = _mixed_wire_requests(10)
        sequential_service = JuryService()
        try:
            sequential = [
                _normalise(
                    sequential_service.select(
                        SelectionRequest.from_dict(row)
                    ).to_dict()
                )
                for row in wire_requests
            ]
        finally:
            sequential_service.close()

        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                answers = []
                for row in wire_requests:
                    status, body = await http_call(
                        reader, writer, "POST", "/v1/select", row
                    )
                    assert status == 200
                    answers.append(_normalise(body))
                writer.close()
                return answers

        assert asyncio.run(run()) == sequential

    def test_select_many_preserves_order_and_isolates_errors(self):
        wire_requests = _mixed_wire_requests(6)
        bad = SelectionRequest(task_id="bad", pool="ghost").to_dict()

        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                status, body = await http_call(
                    reader,
                    writer,
                    "POST",
                    "/v1/select_many",
                    {"v": 1, "requests": [*wire_requests, bad]},
                )
                writer.close()
                return status, body

        status, body = asyncio.run(run())
        assert status == 200 and body["v"] == PROTOCOL_VERSION
        rows = body["responses"]
        assert [row["task"] for row in rows[:-1]] == [
            row["task"] for row in wire_requests
        ]
        assert all(row["status"] == "ok" for row in rows[:-1])
        assert rows[-1]["status"] == "error"
        assert rows[-1]["error"]["code"] == "pool-not-found"

    def test_pool_lifecycle_over_the_wire(self):
        rng = np.random.default_rng(DEFAULT_SEED)
        candidates = [
            {"id": j.juror_id, "error_rate": j.error_rate, "requirement": j.requirement}
            for j in _make_candidates(rng, 7, "p")
        ]

        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                status, ack = await http_call(
                    reader,
                    writer,
                    "POST",
                    "/v1/pool",
                    {"cmd": "pool", "action": "create", "name": "P", "candidates": candidates},
                )
                assert status == 200 and ack["ok"] and ack["version"] == 0
                status, before = await http_call(
                    reader, writer, "POST", "/v1/select",
                    {"v": 1, "task": "b", "pool": "P"},
                )
                assert status == 200 and before["status"] == "ok"
                status, ack = await http_call(
                    reader,
                    writer,
                    "POST",
                    "/v1/pool",
                    {
                        "cmd": "pool",
                        "action": "update",
                        "name": "P",
                        "add": [{"id": "ace", "error_rate": 0.01}],
                    },
                )
                assert status == 200 and ack["version"] == 1
                status, after = await http_call(
                    reader, writer, "POST", "/v1/select",
                    {"v": 1, "task": "a", "pool": "P"},
                )
                writer.close()
                return before, after

        before, after = asyncio.run(run())
        assert before["pool_version"] == 0 and after["pool_version"] == 1
        assert after["jer"] < before["jer"]
        assert "ace" in [member["id"] for member in after["members"]]

    def test_unknown_pool_is_404_with_structured_body(self):
        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                status, body = await http_call(
                    reader, writer, "POST", "/v1/pool",
                    {"cmd": "pool", "action": "drop", "name": "ghost"},
                )
                writer.close()
                return status, body

        status, body = asyncio.run(run())
        assert status == 404
        assert body["status"] == "error"
        assert body["error"]["code"] == "pool-not-found"

    def test_stats_and_healthz_surface_counters(self):
        async def run():
            async with HttpServer(port=0, max_connections=17) as server:
                reader, writer = await _connect(server)
                for row in _mixed_wire_requests(3):
                    await http_call(reader, writer, "POST", "/v1/select", row)
                status, stats = await http_call(reader, writer, "GET", "/v1/stats")
                hstatus, health = await http_call(reader, writer, "GET", "/healthz")
                writer.close()
                return status, stats, hstatus, health

        status, stats, hstatus, health = asyncio.run(run())
        assert status == 200 and hstatus == 200
        assert stats["async"]["accepted"] == 3
        assert stats["async"]["answered"] == 3
        assert stats["server"]["requests_served"] == 3  # stats row not yet counted
        assert stats["server"]["max_connections"] == 17
        assert stats["server"]["connections"] == 1
        assert stats["server"]["draining"] is False
        # The full cache-tier payload reaches the HTTP surface untouched:
        # sweep cache, planner memo, and the answer frontier's lifecycle.
        assert {"hits", "misses", "evictions", "entries"} <= stats["cache"].keys()
        assert {"hits", "misses", "entries", "maxsize"} <= stats["planner"].keys()
        assert {"hits", "misses", "builds", "repairs", "rebuilds"} <= stats[
            "frontier"
        ].keys()
        assert "frontier_hits" in stats["engine"]
        assert health == {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "status": "serving",
            "queued": 0,
            "connections": 1,
        }

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                statuses = [
                    (await http_call(reader, writer, "GET", "/healthz"))[0]
                    for _ in range(5)
                ]
                status, stats = await http_call(reader, writer, "GET", "/v1/stats")
                writer.close()
                return statuses, stats["server"]["requests_served"]

        statuses, served = asyncio.run(run())
        assert statuses == [200] * 5 and served == 5


class TestErrorBodies:
    """Every transport failure carries a structured, coded error body."""

    @staticmethod
    async def _call(path, payload=None, method="POST", **server_options):
        async with HttpServer(port=0, **server_options) as server:
            reader, writer = await _connect(server)
            status, body = await http_call(reader, writer, method, path, payload)
            writer.close()
            return status, body

    def _assert_error(self, body, code):
        assert body["v"] == PROTOCOL_VERSION and body["status"] == "error"
        assert body["error"]["code"] == code
        assert body["error"]["message"]

    def test_unknown_route_is_404(self):
        status, body = asyncio.run(self._call("/v2/nothing", {}))
        assert status == 404
        self._assert_error(body, "not-found")

    def test_wrong_method_is_405(self):
        status, body = asyncio.run(self._call("/v1/select", method="GET"))
        assert status == 405
        self._assert_error(body, "bad-request")

    def test_invalid_json_is_400(self):
        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                writer.write(
                    b"POST /v1/select HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
                )
                await writer.drain()
                status_line = await reader.readline()
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                import json as json_module

                body = json_module.loads(await reader.readexactly(length))
                writer.close()
                return int(status_line.split()[1]), body

        status, body = asyncio.run(run())
        assert status == 400
        self._assert_error(body, "invalid-json")

    def test_empty_body_is_400(self):
        status, body = asyncio.run(self._call("/v1/select"))
        assert status == 400
        self._assert_error(body, "bad-request")

    def test_non_object_body_is_400(self):
        status, body = asyncio.run(self._call("/v1/select", ["not", "an", "object"]))
        assert status == 400
        self._assert_error(body, "bad-request")

    def test_malformed_request_is_400_with_where(self):
        status, body = asyncio.run(
            self._call("/v1/select", {"v": 1, "task": "t"})  # no candidates/pool
        )
        assert status == 400
        self._assert_error(body, "bad-request")
        assert body["error"]["detail"]["where"] == "POST /v1/select"

    def test_select_many_requires_request_array(self):
        status, body = asyncio.run(self._call("/v1/select_many", {"v": 1}))
        assert status == 400
        self._assert_error(body, "bad-request")
        assert body["error"]["detail"]["field"] == "requests"

    def test_oversized_body_is_413(self):
        big = {"v": 1, "task": "t", "padding": "x" * 4096}
        status, body = asyncio.run(
            self._call("/v1/select", big, max_body_bytes=1024)
        )
        assert status == 413
        self._assert_error(body, "bad-request")

    def test_malformed_request_line_is_400(self):
        async def run():
            async with HttpServer(port=0) as server:
                reader, writer = await _connect(server)
                writer.write(b"GARBAGE\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return int(status_line.split()[1])

        assert asyncio.run(run()) == 400


class TestBackpressure:
    def test_connection_limit_sheds_with_structured_503(self):
        async def run():
            async with HttpServer(port=0, max_connections=1) as server:
                reader1, writer1 = await _connect(server)
                # Serve one request so the first connection is registered.
                assert (await http_call(reader1, writer1, "GET", "/healthz"))[0] == 200
                reader2, writer2 = await _connect(server)
                status, body = await http_call(reader2, writer2, "GET", "/healthz")
                writer2.close()
                # The first connection keeps working after the shed.
                again = (await http_call(reader1, writer1, "GET", "/healthz"))[0]
                status_row, stats = await http_call(
                    reader1, writer1, "GET", "/v1/stats"
                )
                writer1.close()
                return status, body, again, stats["server"]["rejected"]

        status, body, again, rejected = asyncio.run(run())
        assert status == 503
        assert body["error"]["code"] == "overloaded"
        assert again == 200 and rejected == 1

    def test_saturated_queue_sheds_selects_with_503(self):
        wire = _mixed_wire_requests(2)

        async def run():
            service = AsyncJuryService(max_batch=1, max_pending=1)
            gate, calls = _gate_select_many(service.service)
            async with HttpServer(service, port=0) as server:
                reader1, writer1 = await _connect(server)
                first = asyncio.create_task(
                    http_call(reader1, writer1, "POST", "/v1/select", wire[0])
                )
                await asyncio.sleep(0.05)  # first select now holds the queue
                reader2, writer2 = await _connect(server)
                status, body = await http_call(
                    reader2, writer2, "POST", "/v1/select", wire[1]
                )
                gate.set()
                first_status, first_body = await first
                writer1.close()
                writer2.close()
                shed = status, body["error"]["code"]
                return shed, first_status, first_body["status"], calls

        (status, code), first_status, first_outcome, calls = asyncio.run(run())
        assert (status, code) == (503, "overloaded")
        assert first_status == 200 and first_outcome == "ok"
        assert calls == [["t0"]]  # the shed request never reached the engine


class TestLifecycle:
    def test_aclose_drains_in_flight_request_over_the_socket(self):
        wire = _mixed_wire_requests(1)

        async def run():
            service = AsyncJuryService()
            gate, _ = _gate_select_many(service.service)
            server = await HttpServer(service, port=0).start()
            reader, writer = await _connect(server)
            in_flight = asyncio.create_task(
                http_call(reader, writer, "POST", "/v1/select", wire[0])
            )
            await asyncio.sleep(0.05)  # request is now inside the engine gate
            closer = asyncio.create_task(server.aclose())
            await asyncio.sleep(0.05)
            assert not closer.done()  # drain waits for the in-flight answer
            gate.set()
            status, body = await in_flight
            await closer
            writer.close()
            # The listener is gone: new connections are refused outright.
            with pytest.raises(OSError):
                await _connect(server)
            return status, body["status"], service.closed, service.queued

        status, outcome, closed, queued = asyncio.run(run())
        assert status == 200 and outcome == "ok"
        assert closed and queued == 0

    def test_aclose_closes_idle_keep_alive_connections(self):
        async def run():
            server = await HttpServer(port=0).start()
            reader, writer = await _connect(server)
            assert (await http_call(reader, writer, "GET", "/healthz"))[0] == 200
            # The connection now idles in keep-alive; aclose must not hang
            # on it (shield with a timeout so a regression fails, not hangs).
            await asyncio.wait_for(server.aclose(), timeout=10)
            assert await reader.read() == b""  # server closed its end
            writer.close()
            return server.connections

        assert asyncio.run(run()) == 0

    def test_draining_server_rejects_new_work_via_healthz(self):
        async def run():
            service = AsyncJuryService()
            gate, _ = _gate_select_many(service.service)
            server = await HttpServer(service, port=0).start()
            reader, writer = await _connect(server)
            in_flight = asyncio.create_task(
                http_call(
                    reader, writer, "POST", "/v1/select", _mixed_wire_requests(1)[0]
                )
            )
            await asyncio.sleep(0.05)
            closer = asyncio.create_task(server.aclose())
            await asyncio.sleep(0.05)
            gate.set()
            await in_flight
            await closer
            writer.close()
            return True

        assert asyncio.run(run())

    def test_aclose_is_idempotent(self):
        async def run():
            server = await HttpServer(port=0).start()
            await server.aclose()
            await server.aclose()
            return True

        assert asyncio.run(run())

    def test_rejects_service_plus_options_and_bad_bounds(self):
        with pytest.raises(ValueError, match="not both"):
            HttpServer(AsyncJuryService(), max_batch=4)
        with pytest.raises(ValueError, match="max_connections"):
            HttpServer(max_connections=0)
