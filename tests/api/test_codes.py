"""Completeness and stability of the protocol error-code registry."""

from __future__ import annotations

import json

import pytest

import repro  # noqa: F401  — import the package so every subclass is defined
from repro.api import ERROR_CODES, ErrorInfo, error_code
from repro.errors import (
    BudgetError,
    InfeasibleSelectionError,
    PoolNotFoundError,
    ProtocolError,
    ReproError,
)


def _all_repro_error_classes() -> list[type]:
    """Every class in the ReproError hierarchy, found by walking subclasses."""
    seen: list[type] = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return seen


class TestRegistryCompleteness:
    def test_every_repro_error_subclass_has_an_explicit_code(self):
        """New ReproError subclasses must be registered, not inherit a code."""
        missing = [
            cls.__name__
            for cls in _all_repro_error_classes()
            if cls not in ERROR_CODES
        ]
        assert missing == [], f"unregistered ReproError subclasses: {missing}"

    def test_codes_are_stable_kebab_case_strings(self):
        for cls, code in ERROR_CODES.items():
            assert isinstance(code, str) and code, cls
            assert code == code.lower() and " " not in code, (cls, code)

    def test_distinct_leaf_errors_get_distinct_codes(self):
        # The generic fallbacks may share codes; the domain hierarchy's codes
        # must be unique so clients can branch on them.
        domain = {
            cls: code
            for cls, code in ERROR_CODES.items()
            if issubclass(cls, ReproError)
        }
        assert len(set(domain.values())) == len(domain)


class TestResolution:
    @pytest.mark.parametrize(
        ("exc", "code"),
        [
            (PoolNotFoundError("no pool named 'P'"), "pool-not-found"),
            (BudgetError("negative"), "invalid-budget"),
            (InfeasibleSelectionError("nope"), "infeasible-selection"),
            (ProtocolError("bad row"), "bad-request"),
            (ReproError("generic"), "repro-error"),
            (json.JSONDecodeError("bad", "{", 0), "invalid-json"),
            (ValueError("v"), "invalid-argument"),
            (TypeError("t"), "invalid-argument"),
            (KeyError("k"), "not-found"),
            (RuntimeError("r"), "internal"),
        ],
    )
    def test_error_code_resolves_instances_and_classes(self, exc, code):
        assert error_code(exc) == code
        assert error_code(type(exc)) == code

    def test_unregistered_subclass_falls_back_to_parent_code(self):
        class FutureError(InfeasibleSelectionError):
            pass

        assert error_code(FutureError("x")) == "infeasible-selection"

    def test_error_info_from_exception_preserves_protocol_detail(self):
        exc = ProtocolError(
            "q:1: candidate #2: bad", detail={"where": "q:1", "position": 2}
        )
        info = ErrorInfo.from_exception(exc)
        assert info.code == "bad-request"
        assert info.detail == {"where": "q:1", "position": 2}

    def test_error_info_from_exception_adds_where(self):
        info = ErrorInfo.from_exception(ValueError("boom"), where="f:3")
        assert info.code == "invalid-argument"
        assert info.detail == {"where": "f:3"}
