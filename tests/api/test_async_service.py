"""AsyncJuryService: interleaved concurrent clients, bit-identical answers."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.api import (
    AsyncJuryService,
    JuryService,
    PoolCommand,
    SelectionRequest,
)
from repro.core.juror import Juror
from repro.errors import ServiceClosedError
from repro.testing import DEFAULT_SEED


def _make_candidates(rng: np.random.Generator, size: int, tag: str) -> tuple[Juror, ...]:
    eps = rng.uniform(0.05, 0.6, size=size)
    return tuple(
        Juror(float(e), float(rng.uniform(0.0, 1.0)), juror_id=f"{tag}-{i}")
        for i, e in enumerate(eps)
    )


def _mixed_stream(count: int) -> list[SelectionRequest]:
    """A deterministic mixed AltrM/PayM/exact request stream."""
    rng = np.random.default_rng(DEFAULT_SEED)
    requests: list[SelectionRequest] = []
    for i in range(count):
        cands = _make_candidates(rng, 9, f"t{i}")
        if i % 5 == 3:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}", candidates=cands, model="pay", budget=2.0
                )
            )
        elif i % 5 == 4:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}", candidates=cands, model="exact", budget=2.0
                )
            )
        else:
            requests.append(SelectionRequest(task_id=f"t{i}", candidates=cands))
    return requests


def _normalise(response) -> dict:
    """Wire form minus timings (the only permitted dispatch-dependent field)."""
    row = response.to_dict()
    row.pop("timings")
    return row


class TestConcurrencyBitIdentity:
    def test_interleaved_clients_match_sequential_dispatch(self):
        """Many interleaved async clients get byte-for-byte the answers a
        sequential loop produces for the same requests."""
        requests = _mixed_stream(60)

        sequential = [
            _normalise(response)
            for response in (JuryService().select(r) for r in requests)
        ]

        async def run_concurrent():
            service = AsyncJuryService(max_batch=16, max_pending=32)

            async def client(worker: int):
                # Each client owns an interleaved slice and answers it
                # request by request (closed loop, like a real session).
                answers = []
                for request in requests[worker::6]:
                    answers.append(await service.select(request))
                return worker, answers

            results = await asyncio.gather(*(client(w) for w in range(6)))
            merged: dict[str, dict] = {}
            for worker, answers in results:
                for request, response in zip(requests[worker::6], answers):
                    assert response.task_id == request.task_id
                    merged[request.task_id] = _normalise(response)
            return [merged[r.task_id] for r in requests]

        concurrent = asyncio.run(run_concurrent())
        assert concurrent == sequential

    def test_batches_actually_coalesce(self):
        """Concurrent submission must produce fewer engine passes than
        requests (the whole point of the multiplexer)."""
        requests = _mixed_stream(40)

        async def run():
            service = AsyncJuryService(max_batch=64, max_pending=64)
            await service.select_many(requests)
            return service.service.engine.stats

        stats = asyncio.run(run())
        assert stats.queries_run == 40
        # 40 queries of 8 distinct sizes... batched sweeps count engine
        # passes indirectly: a sequential loop would run >= 24 altr sweeps,
        # the coalesced path stacks same-sized pools into a handful.
        assert stats.batch_sweeps < 24

    def test_select_many_preserves_order(self):
        requests = _mixed_stream(12)

        async def run():
            service = AsyncJuryService(max_batch=4)
            return await service.select_many(requests)

        responses = asyncio.run(run())
        assert [r.task_id for r in responses] == [r.task_id for r in requests]

    def test_errors_stay_per_request(self):
        async def run():
            service = AsyncJuryService()
            good = _mixed_stream(3)
            bad = SelectionRequest(task_id="bad", pool="ghost")
            return await service.select_many([*good, bad])

        responses = asyncio.run(run())
        assert [r.status for r in responses] == ["ok", "ok", "ok", "error"]
        assert responses[-1].error.code == "pool-not-found"


class TestPoolAndBackpressure:
    def test_pool_commands_and_selects_interleave(self):
        async def run():
            service = AsyncJuryService()
            rng = np.random.default_rng(DEFAULT_SEED)
            await service.pool(
                PoolCommand(
                    action="create",
                    name="P",
                    candidates=_make_candidates(rng, 7, "p"),
                )
            )
            before = await service.select(SelectionRequest(task_id="b", pool="P"))
            await service.pool(
                PoolCommand(
                    action="update",
                    name="P",
                    add=(Juror(0.01, juror_id="ace"),),
                )
            )
            after = await service.select(SelectionRequest(task_id="a", pool="P"))
            stats = await service.stats()
            return before, after, stats

        before, after, stats = asyncio.run(run())
        assert before.pool_version == 0 and after.pool_version == 1
        assert after.jer < before.jer
        assert stats["pools"]["P"]["version"] == 1

    def test_bounded_queue_applies_backpressure_without_deadlock(self):
        requests = _mixed_stream(30)

        async def run():
            service = AsyncJuryService(max_batch=4, max_pending=2)
            return await service.select_many(requests)

        responses = asyncio.run(run())
        assert all(r.status == "ok" for r in responses)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="max_batch"):
            AsyncJuryService(max_batch=0)
        with pytest.raises(ValueError, match="max_pending"):
            AsyncJuryService(max_pending=0)

    def test_rejects_service_plus_options(self):
        with pytest.raises(ValueError, match="not both"):
            AsyncJuryService(JuryService(), cache_size=4)


def _gate_select_many(service: JuryService):
    """Patch ``select_many`` to block on a gate the test controls.

    Returns ``(gate, calls)``: set the gate to release the engine; ``calls``
    records the task ids of every batch that actually reached it.
    """
    gate = threading.Event()
    calls: list[list[str]] = []
    real = service.select_many

    def gated(requests):
        calls.append([request.task_id for request in requests])
        assert gate.wait(10), "test gate never opened"
        return real(requests)

    service.select_many = gated
    return gate, calls


class TestLifecycle:
    def test_aclose_answers_queued_and_in_flight_requests(self):
        """aclose drains: everything accepted before the close is answered,
        nothing is dropped, and the wrapped service is closed after."""
        requests = _mixed_stream(8)

        async def run():
            service = AsyncJuryService(max_batch=2)
            tasks = [
                asyncio.create_task(service.select(request))
                for request in requests
            ]
            await asyncio.sleep(0)  # all eight enqueue; the drainer starts
            await service.aclose()
            responses = await asyncio.gather(*tasks)
            stats = service.stats_snapshot()
            return responses, stats

        responses, stats = asyncio.run(run())
        assert [r.task_id for r in responses] == [r.task_id for r in requests]
        assert all(r.status == "ok" for r in responses)
        assert stats["async"]["answered"] == 8
        assert stats["async"]["queued"] == 0
        assert stats["async"]["in_flight"] == 0
        assert stats["async"]["closed"] is True

    def test_select_after_aclose_raises_service_closed(self):
        async def run():
            service = AsyncJuryService()
            await service.aclose()
            with pytest.raises(ServiceClosedError):
                await service.select(_mixed_stream(1)[0])
            # aclose is idempotent.
            await service.aclose()
            return service.closed

        assert asyncio.run(run())

    def test_cancelled_while_queued_never_reaches_the_engine(self):
        """A caller that gives up while queued costs zero engine work: the
        drainer skips its entry when the next batch is assembled."""
        first, victim = _mixed_stream(2)

        async def run():
            service = AsyncJuryService(max_batch=1)
            gate, calls = _gate_select_many(service.service)
            first_task = asyncio.create_task(service.select(first))
            await asyncio.sleep(0.05)  # drainer now holds batch [t0] at the gate
            victim_task = asyncio.create_task(service.select(victim))
            await asyncio.sleep(0.05)  # victim is queued behind the gate
            victim_task.cancel()
            gate.set()
            response = await first_task
            with pytest.raises(asyncio.CancelledError):
                await victim_task
            await service.aclose()
            return response, calls, service.stats_snapshot()

        response, calls, stats = asyncio.run(run())
        assert response.status == "ok"
        assert calls == [["t0"]]  # the cancelled request was never executed
        assert stats["async"]["cancelled_in_queue"] == 1
        assert stats["async"]["answered"] == 1

    def test_stats_answer_while_engine_lock_is_held(self):
        """stats() reads lock-free counters: it must answer promptly while a
        long batch owns the engine lock (the healthz requirement)."""

        async def run():
            service = AsyncJuryService(max_batch=1)
            gate, _ = _gate_select_many(service.service)
            task = asyncio.create_task(service.select(_mixed_stream(1)[0]))
            await asyncio.sleep(0.05)
            assert service._engine_lock.locked()
            stats = await asyncio.wait_for(service.stats(), timeout=1.0)
            gate.set()
            await task
            await service.aclose()
            return stats

        stats = asyncio.run(run())
        assert stats["async"]["in_flight"] == 1
        assert stats["async"]["accepted"] == 1
        assert stats["async"]["answered"] == 0
