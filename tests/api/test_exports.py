"""Export hygiene: ``repro.__all__`` must match what the package exports.

As the API grows surface by surface, it is easy for ``__all__`` and the
actual imports in ``repro/__init__.py`` to drift apart — names imported but
never declared (invisible to ``from repro import *`` and to docs tooling),
or declared but never imported (an ImportError lying in wait).  This test
pins the two together exactly.
"""

from __future__ import annotations

import inspect

import repro
import repro.api as api


def _exported_names(module) -> set[str]:
    """Public non-module attributes actually bound on the module."""
    return {
        name
        for name, value in vars(module).items()
        if not name.startswith("_") and not inspect.ismodule(value)
    }


class TestExportDrift:
    def test_repro_all_matches_actual_exports_exactly(self):
        declared = set(repro.__all__)
        # __version__ is deliberately declared despite the dunder-name filter.
        actual = _exported_names(repro) | {"__version__"}
        assert declared - actual == set(), (
            f"in __all__ but not exported: {sorted(declared - actual)}"
        )
        assert actual - declared == set(), (
            f"exported but missing from __all__: {sorted(actual - declared)}"
        )

    def test_repro_api_all_matches_actual_exports_exactly(self):
        declared = set(api.__all__)
        actual = _exported_names(api)
        assert declared == actual, (
            f"drift: only in __all__ {sorted(declared - actual)}, "
            f"only exported {sorted(actual - declared)}"
        )

    def test_all_names_are_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_protocol_types_reachable_from_top_level(self):
        for name in (
            "JuryService",
            "AsyncJuryService",
            "SelectionRequest",
            "SelectionResponse",
            "PoolCommand",
            "ErrorInfo",
            "PROTOCOL_VERSION",
        ):
            assert getattr(repro, name) is getattr(api, name)
