"""JuryService: one dispatch path, bit-identical to the engine underneath."""

from __future__ import annotations

import pytest

from repro.api import (
    ErrorInfo,
    JuryService,
    PoolCommand,
    SelectionRequest,
)
from repro.core.juror import Juror
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.pay import select_jury_pay
from repro.errors import InvalidJuryError, PoolNotFoundError
from repro.service import (
    BatchSelectionEngine,
    PoolRegistry,
    QueryOutcome,
    SelectionQuery,
)

FIGURE1 = [
    ("A", 0.1, 0.20),
    ("B", 0.2, 0.20),
    ("C", 0.2, 0.20),
    ("D", 0.3, 0.40),
    ("E", 0.3, 0.65),
    ("F", 0.4, 0.10),
    ("G", 0.4, 0.10),
]


def _jurors() -> tuple[Juror, ...]:
    return tuple(Juror(eps, req, juror_id=cid) for cid, eps, req in FIGURE1)


class TestSelect:
    def test_select_matches_scalar_selector(self):
        response = JuryService().select(
            SelectionRequest(task_id="t", candidates=_jurors())
        )
        expected = select_jury_altr(list(_jurors()))
        assert response.status == "ok"
        assert response.jer == expected.jer
        assert tuple(j.juror_id for j in response.members) == expected.juror_ids
        assert response.model == "AltrM"

    def test_select_many_mixed_models(self):
        service = JuryService()
        responses = service.select_many(
            [
                SelectionRequest(task_id="a", candidates=_jurors()),
                SelectionRequest(
                    task_id="p", candidates=_jurors(), model="pay", budget=1.0
                ),
                SelectionRequest(
                    task_id="e", candidates=_jurors(), model="exact", budget=1.0
                ),
            ]
        )
        assert [r.status for r in responses] == ["ok"] * 3
        assert responses[1].jer == select_jury_pay(list(_jurors()), budget=1.0).jer
        assert responses[2].algorithm.startswith("OPT")
        assert responses[2].jer <= responses[1].jer + 1e-12

    def test_explain_embeds_plan_without_executing(self):
        service = JuryService()
        response = service.explain(
            SelectionRequest(task_id="t", candidates=_jurors())
        )
        assert response.status == "ok" and not response.members
        assert response.plan["operator"] == "altr-sweep"
        assert service.engine.stats.queries_run == 0

    def test_explain_flag_inside_select_many(self):
        service = JuryService()
        responses = service.select_many(
            [
                SelectionRequest(task_id="run", candidates=_jurors()),
                SelectionRequest(task_id="plan", candidates=_jurors(), explain=True),
            ]
        )
        assert responses[0].members and responses[0].plan is None
        assert responses[1].plan is not None and not responses[1].members

    def test_error_response_carries_stable_code(self):
        response = JuryService().select(
            SelectionRequest(task_id="t", pool="ghost")
        )
        assert response.status == "error"
        assert response.error.code == "pool-not-found"
        assert "ghost" in response.error.message

    def test_one_bad_request_does_not_poison_the_batch(self):
        pricey = (Juror(0.2, 9.0, juror_id="x"),)
        responses = JuryService().select_many(
            [
                SelectionRequest(task_id="ok", candidates=_jurors()),
                SelectionRequest(
                    task_id="bad", candidates=pricey, model="pay", budget=1.0
                ),
            ]
        )
        assert responses[0].status == "ok"
        assert responses[1].status == "error"
        assert responses[1].error.code == "infeasible-selection"


class TestPoolCommands:
    def _create(self, service, name="P1"):
        return service.pool(
            PoolCommand(action="create", name=name, candidates=_jurors())
        )

    def test_create_select_and_version_echo(self):
        service = JuryService()
        ack = self._create(service)
        assert ack["ok"] and ack["version"] == 0 and ack["size"] == 7
        response = service.select(SelectionRequest(task_id="t", pool="P1"))
        assert response.status == "ok" and response.pool_version == 0

    def test_update_bumps_version_and_changes_answers(self):
        service = JuryService()
        self._create(service)
        before = service.select(SelectionRequest(task_id="b", pool="P1"))
        ack = service.pool(
            PoolCommand(
                action="update",
                name="P1",
                add=(Juror(0.01, juror_id="ace"),),
            )
        )
        assert ack["version"] == 1
        after = service.select(SelectionRequest(task_id="a", pool="P1"))
        assert after.pool_version == 1
        assert after.jer < before.jer
        assert "ace" in [j.juror_id for j in after.members]

    def test_update_is_atomic(self):
        service = JuryService()
        self._create(service)
        with pytest.raises(InvalidJuryError, match="ghost"):
            service.pool(
                PoolCommand(action="update", name="P1", remove=("A", "ghost"))
            )
        assert service.registry.get("P1").version == 0
        assert service.registry.get("P1").size == 7

    def test_set_entry_errors_name_their_position(self):
        service = JuryService()
        self._create(service)
        with pytest.raises(InvalidJuryError, match=r"set entry #0"):
            service.pool(
                PoolCommand(
                    action="update", name="P1", updates=(("A", 7.0, None),)
                )
            )

    def test_partial_set_keeps_other_field(self):
        service = JuryService()
        self._create(service)
        service.pool(
            PoolCommand(action="update", name="P1", updates=(("A", 0.15, None),))
        )
        juror = service.registry.get("P1").get("A")
        assert juror.error_rate == 0.15 and juror.requirement == 0.20

    def test_drop_then_select_fails_with_code(self):
        service = JuryService()
        self._create(service)
        service.pool(PoolCommand(action="drop", name="P1"))
        with pytest.raises(PoolNotFoundError):
            service.registry.get("P1")
        response = service.select(SelectionRequest(task_id="t", pool="P1"))
        assert response.error.code == "pool-not-found"

    def test_stats_payload(self):
        service = JuryService()
        self._create(service)
        service.select(SelectionRequest(task_id="t", pool="P1"))
        stats = service.stats()
        assert stats["pools"]["P1"] == {"version": 0, "size": 7}
        assert stats["queries_run"] == 1
        # Every cache tier is surfaced: sweep cache, planner memo, answer
        # frontier (full lifecycle), and the engine's work counters.
        assert {"hits", "misses", "evictions", "entries", "maxsize"} <= stats[
            "cache"
        ].keys()
        assert {"hits", "misses", "entries", "maxsize"} <= stats["planner"].keys()
        assert {
            "enabled", "entries", "maxsize",
            "hits", "misses", "evictions", "builds", "repairs", "rebuilds",
        } <= stats["frontier"].keys()
        assert stats["engine"]["queries_run"] == 1
        assert {
            "queries_run", "batch_sweeps", "pools_swept", "live_profiles",
            "sharded_queries", "shard_batches", "frontier_hits",
        } <= stats["engine"].keys()


class TestConstruction:
    def test_adopts_engine_with_registry(self):
        registry = PoolRegistry()
        engine = BatchSelectionEngine(registry=registry)
        service = JuryService(engine=engine)
        assert service.engine is engine and service.registry is registry

    def test_rejects_engine_without_registry(self):
        with pytest.raises(ValueError, match="registry"):
            JuryService(engine=BatchSelectionEngine())

    def test_rejects_conflicting_engine_and_options(self):
        engine = BatchSelectionEngine(registry=PoolRegistry())
        with pytest.raises(ValueError, match="not both"):
            JuryService(engine=engine, cache_size=4)


class TestOutcomeErrorInfo:
    def test_failed_outcome_threads_exception_into_error_info(self):
        """The engine threads the failure exception through
        QueryOutcome.exception; error_info carries the registry code."""
        engine = BatchSelectionEngine()
        pricey = (Juror(0.2, 9.0, juror_id="x"),)
        outcome = engine.run(
            [SelectionQuery(task_id="bad", candidates=pricey, model="pay", budget=1.0)]
        )[0]
        assert not outcome.ok
        assert isinstance(outcome.exception, Exception)
        info = outcome.error_info
        assert isinstance(info, ErrorInfo)
        assert info.code == "infeasible-selection"
        assert "affordable" in info.message

    def test_legacy_flat_error_string_is_gone(self):
        """The deprecated QueryOutcome.error message string was removed
        after its one-release window; error_info is the one error surface."""
        outcome = QueryOutcome(task_id="t")
        assert not hasattr(outcome, "error")

    def test_ok_outcome_has_no_error_info(self):
        engine = BatchSelectionEngine()
        outcome = engine.run(
            [SelectionQuery(task_id="ok", candidates=_jurors())]
        )[0]
        assert outcome.ok and outcome.error_info is None
