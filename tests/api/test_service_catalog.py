"""JuryService / AsyncJuryService over a durable catalog."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import JuryService, PoolCommand, SelectionRequest
from repro.core.juror import jurors_from_arrays
from repro.storage import PoolCatalog

EPS = (0.1, 0.2, 0.2, 0.3, 0.3)


def _create(name="P1"):
    return PoolCommand(
        action="create", name=name, candidates=tuple(jurors_from_arrays(EPS))
    )


def test_data_dir_builds_owned_catalog(tmp_path):
    service = JuryService(data_dir=tmp_path / "cat")
    assert service.catalog is not None
    assert service.registry.catalog is service.catalog
    service.pool(_create())
    service.close()
    assert service.catalog.closed  # owned: close() closes it


def test_adopted_catalog_stays_open(tmp_path):
    catalog = PoolCatalog(tmp_path / "cat")
    service = JuryService(catalog=catalog)
    service.pool(_create())
    service.close()
    assert not catalog.closed  # adopted: flushed, not closed
    catalog.close()


def test_env_fallback_only_without_explicit_wiring(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "env-cat"))
    implicit = JuryService()
    assert implicit.catalog is not None
    assert str(implicit.catalog.data_dir) == str(tmp_path / "env-cat")
    implicit.close()

    from repro.service import PoolRegistry

    explicit = JuryService(registry=PoolRegistry())
    assert explicit.catalog is None  # explicit registry wins over env
    explicit.close()


def test_conflicting_wiring_rejected(tmp_path):
    catalog = PoolCatalog(tmp_path / "cat")
    from repro.service import PoolRegistry

    with pytest.raises(ValueError):
        JuryService(data_dir=tmp_path / "x", catalog=catalog)
    with pytest.raises(ValueError):
        JuryService(registry=PoolRegistry(), data_dir=tmp_path / "x")
    catalog.close()


def test_restart_selections_bit_identical(tmp_path):
    service = JuryService(data_dir=tmp_path / "cat")
    service.pool(_create())
    service.pool(
        PoolCommand(
            action="update", name="P1",
            add=tuple(jurors_from_arrays([0.15], id_prefix="new")),
        )
    )
    before = service.select(SelectionRequest(task_id="t", pool="P1")).to_dict()
    service.close()

    service2 = JuryService(data_dir=tmp_path / "cat")
    after = service2.select(SelectionRequest(task_id="t", pool="P1")).to_dict()
    for key in ("members", "jer", "size", "total_cost", "pool_version"):
        assert before[key] == after[key]
    service2.close()


def test_stats_reports_catalog_block_and_resident_pools_only(tmp_path):
    service = JuryService(data_dir=tmp_path / "cat")
    service.pool(_create("P1"))
    service.pool(_create("P2"))
    service.close()

    service2 = JuryService(data_dir=tmp_path / "cat")
    service2.select(SelectionRequest(task_id="t", pool="P2"))
    stats = service2.stats()
    catalog = stats["catalog"]
    assert catalog["pools"] == 2  # durable namespace spans cold pools
    assert catalog["resident"] == 1  # only P2 was paged in
    assert catalog["lazy_loads"] == 1
    assert catalog["replays"] == 1
    assert catalog["wal_appends"] == 0  # no mutations this process
    assert catalog["recovery_ms"] >= 0
    assert list(stats["pools"]) == ["P2"]  # stats never pages cold pools
    service2.close()


def test_stats_has_no_catalog_block_in_memory_mode(monkeypatch):
    monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
    service = JuryService()
    assert "catalog" not in service.stats()
    service.close()


def test_drop_survives_restart(tmp_path):
    service = JuryService(data_dir=tmp_path / "cat")
    service.pool(_create())
    service.pool(PoolCommand(action="drop", name="P1"))
    service.close()

    service2 = JuryService(data_dir=tmp_path / "cat")
    response = service2.select(SelectionRequest(task_id="t", pool="P1"))
    assert response.status == "error"
    assert response.error.code == "pool-not-found"
    service2.close()


def test_async_service_flushes_on_aclose(tmp_path):
    from repro.api.aio import AsyncJuryService

    async def scenario():
        service = AsyncJuryService(data_dir=tmp_path / "cat")
        await asyncio.to_thread(service.service.pool, _create())
        response = await service.select(
            SelectionRequest(task_id="t", pool="P1")
        )
        assert response.status == "ok"
        snapshot = service.stats_snapshot()
        assert snapshot["catalog"]["wal_appends"] == 1
        await service.aclose()

    asyncio.run(scenario())

    verify = JuryService(data_dir=tmp_path / "cat")
    assert verify.select(SelectionRequest(task_id="t", pool="P1")).status == "ok"
    verify.close()
