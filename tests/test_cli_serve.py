"""Tests for the ``repro-select serve`` JSONL session."""

from __future__ import annotations

import io
import json
from types import SimpleNamespace

from repro.cli import _build_serve_parser, run_serve
from repro.core.juror import Juror
from repro.core.selection.altr import select_jury_altr
from repro.plan.frontier import frontier_cache_enabled


def _drive(lines: list[dict | str], **options) -> tuple[list[dict], int]:
    """Run a serve session over the given command rows; returns (rows, exit)."""
    text = "\n".join(
        line if isinstance(line, str) else json.dumps(line) for line in lines
    )
    args = SimpleNamespace(cache_size=None, workers=None, **options)
    out = io.StringIO()
    code = run_serve(args, stdin=io.StringIO(text + "\n"), stdout=out)
    rows = [json.loads(line) for line in out.getvalue().splitlines()]
    return rows, code


def _pool_create(name="P1", eps=(0.1, 0.2, 0.2, 0.3, 0.3)):
    return {
        "cmd": "pool",
        "action": "create",
        "name": name,
        "candidates": [
            {"id": f"c{i}", "error_rate": e} for i, e in enumerate(eps)
        ],
    }


class TestServeSession:
    def test_create_select_roundtrip(self):
        rows, code = _drive([_pool_create(), {"cmd": "select", "task": "t1", "pool": "P1"}])
        assert code == 0
        assert rows[0] == {
            "v": 1, "ok": True, "cmd": "pool", "action": "create",
            "name": "P1", "version": 0, "size": 5,
        }
        selection = rows[1]
        assert selection["ok"] and selection["task"] == "t1"
        assert selection["pool_version"] == 0
        expected = select_jury_altr(
            [Juror(e, juror_id=f"c{i}") for i, e in enumerate((0.1, 0.2, 0.2, 0.3, 0.3))]
        )
        assert selection["jer"] == expected.jer
        assert [m["id"] for m in selection["members"]] == list(expected.juror_ids)

    def test_interleaved_updates_are_visible_immediately(self):
        rows, code = _drive(
            [
                _pool_create(),
                {"cmd": "select", "task": "before", "pool": "P1"},
                {
                    "cmd": "pool", "action": "update", "name": "P1",
                    "add": [{"id": "ace", "error_rate": 0.02}],
                    "set": [{"id": "c4", "error_rate": 0.45}],
                },
                {"cmd": "select", "task": "after", "pool": "P1"},
                {"cmd": "pool", "action": "update", "name": "P1", "remove": ["ace"]},
                {"cmd": "select", "task": "reverted", "pool": "P1"},
            ]
        )
        assert code == 0
        update = rows[2]
        assert update["version"] == 2 and update["size"] == 6
        before, after, reverted = rows[1], rows[3], rows[5]
        assert after["pool_version"] == 2
        assert "ace" in [m["id"] for m in after["members"]]
        assert after["jer"] < before["jer"]
        assert reverted["pool_version"] == 3
        assert "ace" not in [m["id"] for m in reverted["members"]]

    def test_versions_count_each_mutation(self):
        rows, _ = _drive(
            [
                _pool_create(),
                {
                    "cmd": "pool", "action": "update", "name": "P1",
                    "add": [
                        {"id": "a1", "error_rate": 0.11},
                        {"id": "a2", "error_rate": 0.12},
                    ],
                    "remove": ["c0"],
                    "set": [{"id": "c1", "error_rate": 0.21}],
                },
            ]
        )
        assert rows[1]["version"] == 4  # 1 remove + 2 adds + 1 set

    def test_select_with_inline_candidates(self):
        rows, code = _drive(
            [{"cmd": "select", "task": "t", "candidates": [
                {"id": "solo", "error_rate": 0.4}]}]
        )
        assert code == 0
        assert rows[0]["size"] == 1 and "pool_version" not in rows[0]

    def test_pay_select_over_live_pool(self):
        create = _pool_create()
        for i, member in enumerate(create["candidates"]):
            member["requirement"] = 0.1 * (i + 1)
        rows, code = _drive(
            [create, {"cmd": "select", "task": "t", "pool": "P1",
                      "model": "pay", "budget": 0.6}]
        )
        assert code == 0
        assert rows[1]["ok"] and rows[1]["total_cost"] <= 0.6 + 1e-12

    def test_errors_do_not_end_the_session(self):
        rows, code = _drive(
            [
                {"cmd": "select", "task": "t", "pool": "ghost"},
                "this is not json",
                {"cmd": "pool", "action": "explode", "name": "X"},
                {"cmd": "pool", "action": "create", "name": "P"},  # no candidates
                _pool_create("P2", (0.2, 0.3, 0.4)),
                {"cmd": "select", "task": "works", "pool": "P2"},
            ]
        )
        assert code == 2
        assert [row["ok"] for row in rows] == [False, False, False, False, True, True]
        assert "ghost" in rows[0]["error"]["message"]
        assert rows[0]["error"]["code"] == "pool-not-found"
        assert "invalid JSON" in rows[1]["error"]["message"]
        assert rows[1]["error"]["code"] == "invalid-json"
        assert rows[-1]["task"] == "works"

    def test_string_remove_field_rejected_not_iterated(self):
        """A bare string must not be iterated character by character."""
        rows, code = _drive(
            [
                _pool_create("P", (0.1, 0.2, 0.3)),
                {"cmd": "pool", "action": "update", "name": "P", "remove": "c0"},
                {"cmd": "stats"},
            ]
        )
        assert code == 2
        assert not rows[1]["ok"]
        assert "'remove' must be an array" in rows[1]["error"]["message"]
        assert rows[2]["pools"]["P"] == {"version": 0, "size": 3}  # untouched

    def test_failed_update_is_atomic(self):
        """A bad entry anywhere in an update must leave the pool untouched."""
        rows, code = _drive(
            [
                _pool_create("P", (0.1, 0.2, 0.3)),
                {"cmd": "pool", "action": "update", "name": "P",
                 "remove": ["c0", "ghost"]},
                {"cmd": "pool", "action": "update", "name": "P",
                 "add": [{"id": "n1", "error_rate": 0.15}],
                 "set": [{"id": "c1", "error_rate": 7.0}]},
                {"cmd": "stats"},
            ]
        )
        assert code == 2
        assert not rows[1]["ok"] and "ghost" in rows[1]["error"]["message"]
        assert not rows[2]["ok"] and "set entry #0" in rows[2]["error"]["message"]
        assert rows[3]["pools"]["P"] == {"version": 0, "size": 3}  # untouched

    def test_empty_pool_name_is_a_per_command_error(self):
        """A bad name must not crash the session (errors are per-command)."""
        rows, code = _drive(
            [
                {"cmd": "pool", "action": "create", "name": "",
                 "candidates": [{"id": "a", "error_rate": 0.2}]},
                _pool_create("P", (0.2, 0.3, 0.4)),
                {"cmd": "select", "task": "still-alive", "pool": "P"},
            ]
        )
        assert code == 2
        assert not rows[0]["ok"] and "name" in rows[0]["error"]["message"]
        assert rows[2]["ok"] and rows[2]["task"] == "still-alive"

    def test_drop_invalidates_cached_profile(self):
        rows, _ = _drive(
            [
                _pool_create("P", (0.2, 0.3, 0.4)),
                {"cmd": "select", "task": "warm", "pool": "P"},
                {"cmd": "pool", "action": "drop", "name": "P"},
                {"cmd": "stats"},
            ]
        )
        stats = rows[-1]
        assert stats["cache"]["entries"] == 0
        assert stats["cache"]["evictions"] == 1

    def test_drop_then_select_fails_cleanly(self):
        rows, code = _drive(
            [
                _pool_create(),
                {"cmd": "pool", "action": "drop", "name": "P1"},
                {"cmd": "select", "task": "t", "pool": "P1"},
            ]
        )
        assert code == 2
        assert rows[1]["ok"] and rows[1]["action"] == "drop"
        assert not rows[2]["ok"] and "P1" in rows[2]["error"]["message"]

    def test_quit_stops_processing(self):
        rows, code = _drive(
            [_pool_create(), {"cmd": "quit"}, {"cmd": "select", "task": "t", "pool": "P1"}]
        )
        assert code == 0
        assert rows[-1] == {"ok": True, "cmd": "quit"}
        assert len(rows) == 2  # the trailing select was never processed

    def test_stats_reports_pools_and_cache(self):
        rows, _ = _drive(
            [
                _pool_create(),
                {"cmd": "select", "task": "a", "pool": "P1"},
                {"cmd": "select", "task": "b", "pool": "P1"},
                {"cmd": "stats"},
            ]
        )
        stats = rows[-1]
        assert stats["pools"] == {"P1": {"version": 0, "size": 5}}
        assert stats["queries_run"] == 2
        assert stats["live_profiles"] == 1
        if frontier_cache_enabled():
            # The second select is a repeat AltrM query: answered from the
            # answer frontier (built when the first select resolved the
            # profile) without ever reaching the sweep cache again.
            assert stats["frontier"]["hits"] == 1
            assert stats["frontier"]["builds"] == 1
            assert stats["engine"]["frontier_hits"] == 1
            assert stats["cache"]["hits"] == 0
        else:  # REPRO_FRONTIER_CACHE=0: the pre-frontier behaviour, pinned
            assert stats["frontier"]["enabled"] is False
            assert stats["frontier"]["hits"] == 0
            assert stats["engine"]["frontier_hits"] == 0
            assert stats["cache"]["hits"] == 1
        # Every cache tier is surfaced, planner included.
        assert {"hits", "misses", "entries", "maxsize"} <= stats["planner"].keys()

    def test_comments_and_blank_lines_are_skipped(self):
        rows, code = _drive(["# warm-up", "", json.dumps(_pool_create())])
        assert code == 0 and len(rows) == 1

    def test_parser_defaults(self):
        args = _build_serve_parser().parse_args([])
        assert args.cache_size is None and args.workers is None
        assert args.no_frontier is False
        args = _build_serve_parser().parse_args(
            ["--cache-size", "4", "--workers", "2", "--no-frontier"]
        )
        assert args.cache_size == 4 and args.workers == 2
        assert args.no_frontier is True


class TestServeViaMain:
    def test_main_dispatches_serve(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(_pool_create()) + "\n")
        )
        code = cli.main(["serve"])
        captured = capsys.readouterr()
        assert code == 0
        assert json.loads(captured.out.splitlines()[0])["ok"] is True


class TestWorkerReaping:
    """No worker shard outlives the session: EOF, quit and Ctrl-C all close."""

    @staticmethod
    def _count_closes(monkeypatch):
        from repro.api import JuryService

        closed = []
        original = JuryService.close
        monkeypatch.setattr(
            JuryService, "close", lambda self: (closed.append(True), original(self))[1]
        )
        return closed

    def test_eof_closes_the_service(self, monkeypatch):
        closed = self._count_closes(monkeypatch)
        _, code = _drive([{"cmd": "stats"}])
        assert code == 0 and closed == [True]

    def test_quit_closes_the_service(self, monkeypatch):
        closed = self._count_closes(monkeypatch)
        _, code = _drive([{"cmd": "quit"}])
        assert code == 0 and closed == [True]

    def test_keyboard_interrupt_closes_the_service_and_exits_130(self, monkeypatch):
        closed = self._count_closes(monkeypatch)

        class InterruptingStdin:
            def __iter__(self):
                return self

            def __next__(self):
                raise KeyboardInterrupt

        args = SimpleNamespace(cache_size=None, workers=None)
        code = run_serve(args, stdin=InterruptingStdin(), stdout=io.StringIO())
        assert code == 130 and closed == [True]
