"""Tests for the ``repro-select batch`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.juror import Juror
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.pay import select_jury_pay

FIGURE1 = [
    ("A", 0.1, 0.20),
    ("B", 0.2, 0.20),
    ("C", 0.2, 0.20),
    ("D", 0.3, 0.40),
    ("E", 0.3, 0.65),
    ("F", 0.4, 0.10),
    ("G", 0.4, 0.10),
]

#: Key sets the JSONL output schema is pinned to; extending them is a
#: breaking change for downstream consumers and must be deliberate.
#: Protocol v1 (repro.api): rows carry the "v" wire tag and per-response
#: "timings"; error rows carry a structured {"code", "message"} object.
OK_ROW_KEYS = {
    "v", "task", "status", "model", "algorithm", "jer", "size",
    "total_cost", "budget", "members", "timings",
}
ERROR_ROW_KEYS = {"v", "task", "status", "line", "error"}
ERROR_INFO_KEYS = {"code", "message"}  # + optional "detail"
MEMBER_KEYS = {"id", "error_rate", "requirement"}


def _candidates_json():
    return [
        {"id": cid, "error_rate": eps, "requirement": req}
        for cid, eps, req in FIGURE1
    ]


def _jurors():
    return [Juror(eps, req, juror_id=cid) for cid, eps, req in FIGURE1]


def _write_jsonl(tmp_path, rows, name="queries.jsonl"):
    path = tmp_path / name
    path.write_text("\n".join(json.dumps(r) if isinstance(r, dict) else r for r in rows) + "\n")
    return path


def _parse_output(capsys):
    out = capsys.readouterr().out
    return [json.loads(line) for line in out.strip().splitlines()]


class TestRoundTrip:
    def test_shared_pool_round_trip(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [
                {"pool": "P1", "candidates": _candidates_json()},
                {"task": "t1", "pool": "P1"},
                {"task": "t2", "pool": "P1", "model": "pay", "budget": 1.0},
                {"task": "t3", "pool": "P1", "model": "exact", "budget": 1.0},
            ],
        )
        assert main(["batch", str(path)]) == 0
        rows = _parse_output(capsys)
        assert [r["task"] for r in rows] == ["t1", "t2", "t3"]
        assert all(r["status"] == "ok" for r in rows)

        altr = select_jury_altr(_jurors())
        assert rows[0]["jer"] == pytest.approx(altr.jer)
        assert {m["id"] for m in rows[0]["members"]} == set(altr.juror_ids)

        pay = select_jury_pay(_jurors(), budget=1.0)
        assert rows[1]["jer"] == pytest.approx(pay.jer)
        assert rows[1]["budget"] == 1.0

        assert rows[2]["algorithm"].startswith("OPT")
        assert rows[2]["jer"] <= rows[1]["jer"] + 1e-12

    def test_inline_candidates_and_max_size(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [{"task": "t1", "candidates": _candidates_json(), "max_size": 3}],
        )
        assert main(["batch", str(path)]) == 0
        (row,) = _parse_output(capsys)
        assert row["size"] <= 3
        single = select_jury_altr(_jurors(), max_size=3)
        assert row["jer"] == pytest.approx(single.jer)

    def test_output_file(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path, [{"task": "t1", "candidates": _candidates_json()}]
        )
        out = tmp_path / "results.jsonl"
        assert main(["batch", str(path), "--out", str(out)]) == 0
        assert capsys.readouterr().out == ""
        rows = [json.loads(line) for line in out.read_text().strip().splitlines()]
        assert rows[0]["task"] == "t1" and rows[0]["status"] == "ok"

    def test_comments_and_blank_lines_skipped(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [
                "# a comment",
                "",
                {"task": "t1", "candidates": _candidates_json()},
            ],
        )
        assert main(["batch", str(path)]) == 0
        assert len(_parse_output(capsys)) == 1

    def test_workers_flag_accepted(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [
                {"task": f"t{i}", "candidates": _candidates_json(),
                 "model": "exact", "budget": 1.0}
                for i in range(3)
            ],
        )
        assert main(["batch", str(path), "--workers", "2"]) == 0
        rows = _parse_output(capsys)
        assert len(rows) == 3 and all(r["status"] == "ok" for r in rows)

    @pytest.mark.parametrize("choice", ["auto", "numpy", "numba", "native"])
    def test_kernel_backend_flag_composes(
        self, tmp_path, capsys, monkeypatch, choice
    ):
        """``--kernel-backend`` must compose with ``--workers`` and
        ``--no-frontier``, produce identical selections regardless of the
        chosen backend, and export the choice for worker shards."""
        from repro.core import kernels

        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        path = _write_jsonl(
            tmp_path,
            [
                {"task": f"t{i}", "candidates": _candidates_json()}
                for i in range(3)
            ],
        )
        try:
            assert main(["batch", str(path)]) == 0
            baseline = _parse_output(capsys)
            args = [
                "batch", str(path),
                "--kernel-backend", choice,
                "--workers", "2",
                "--no-frontier",
            ]
            assert main(args) == 0
            rows = _parse_output(capsys)
            # Backend choice moves work between implementations; it must
            # never change an answer (timings excluded — they vary).
            strip = lambda rs: [
                {k: v for k, v in r.items() if k != "timings"} for r in rs
            ]
            assert strip(rows) == strip(baseline)
            # The flag is exported so spawned worker shards inherit it.
            import os

            assert os.environ.get("REPRO_KERNEL_BACKEND") == choice
        finally:
            # _apply_kernel_backend mutates process-global session state;
            # monkeypatch restores the env var, this restores the mode.
            kernels.set_kernel_backend(None)


class TestSchemaStability:
    def test_ok_row_schema(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path, [{"task": "t1", "candidates": _candidates_json()}]
        )
        assert main(["batch", str(path)]) == 0
        (row,) = _parse_output(capsys)
        assert set(row) == OK_ROW_KEYS
        for member in row["members"]:
            assert set(member) == MEMBER_KEYS

    def test_error_row_schema(self, tmp_path, capsys):
        path = _write_jsonl(tmp_path, ["{broken json"])
        assert main(["batch", str(path)]) == 2
        (row,) = _parse_output(capsys)
        assert set(row) == ERROR_ROW_KEYS
        assert row["status"] == "error"
        assert row["v"] == 1
        assert set(row["error"]) - {"detail"} == ERROR_INFO_KEYS
        assert row["error"]["code"] == "invalid-json"


class TestDiagnosticsAndExitCodes:
    def test_malformed_rows_reported_with_line_numbers(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [
                {"task": "good", "candidates": _candidates_json()},
                "this is not json",
                {"task": "orphan", "pool": "UNDEFINED"},
                {"task": "noval"},
                {"task": "badeps", "candidates": [{"id": "x", "error_rate": 7.0}]},
            ],
        )
        assert main(["batch", str(path)]) == 2
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(rows) == 5
        assert rows[0]["status"] == "ok"
        assert [r["status"] for r in rows[1:]] == ["error"] * 4
        assert rows[1]["line"] == 2
        assert rows[2]["line"] == 3 and "UNDEFINED" in rows[2]["error"]["message"]
        assert rows[2]["error"]["code"] == "pool-not-found"
        assert rows[3]["line"] == 4 and "pool" in rows[3]["error"]["message"]
        assert rows[4]["line"] == 5
        # Parser errors locate the offending field machine-readably.
        assert rows[4]["error"]["code"] == "bad-request"
        assert rows[4]["error"]["detail"]["position"] == 0
        # stderr diagnostics carry file:line locations
        assert f"{path}:2" in captured.err
        assert f"{path}:3" in captured.err

    def test_infeasible_query_sets_exit_code_2(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [
                {"task": "t1", "candidates": [
                    {"id": "x", "error_rate": 0.2, "requirement": 9.0}],
                 "model": "pay", "budget": 1.0},
            ],
        )
        assert main(["batch", str(path)]) == 2
        (row,) = _parse_output(capsys)
        assert row["status"] == "error"
        assert "affordable" in row["error"]["message"]
        assert row["error"]["code"] == "infeasible-selection"
        assert row["line"] == 1  # engine failures carry the input line too

    def test_missing_input_is_fatal(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_query_rows_is_fatal(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path, [{"pool": "P1", "candidates": _candidates_json()}]
        )
        assert main(["batch", str(path)]) == 1
        assert "no query rows" in capsys.readouterr().err

    def test_pay_without_budget_is_row_error(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [{"task": "t1", "candidates": _candidates_json(), "model": "pay"}],
        )
        assert main(["batch", str(path)]) == 2
        (row,) = _parse_output(capsys)
        assert row["status"] == "error" and "budget" in row["error"]["message"]

    def test_unknown_model_is_row_error(self, tmp_path, capsys):
        path = _write_jsonl(
            tmp_path,
            [{"task": "t1", "candidates": _candidates_json(), "model": "wat"}],
        )
        assert main(["batch", str(path)]) == 2
        (row,) = _parse_output(capsys)
        assert "model" in row["error"]["message"]


class TestLegacyModeUnaffected:
    def test_csv_mode_still_works(self, tmp_path, capsys):
        csv_path = tmp_path / "c.csv"
        csv_path.write_text(
            "id,error_rate,requirement\n"
            + "\n".join(f"{c},{e},{r}" for c, e, r in FIGURE1)
            + "\n"
        )
        assert main([str(csv_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "AltrM" and payload["size"] == 5


class TestWorkerReaping:
    def test_batch_closes_its_service_on_exit(self, tmp_path, capsys, monkeypatch):
        """No worker shard outlives the CLI: run_batch closes the service on
        every exit path, including row-error exits."""
        from repro.api import JuryService

        closed = []
        original = JuryService.close
        monkeypatch.setattr(
            JuryService, "close", lambda self: (closed.append(True), original(self))[1]
        )
        path = _write_jsonl(tmp_path, [{"task": "t1", "candidates": _candidates_json()}])
        assert main(["batch", str(path)]) == 0
        assert closed == [True]

        closed.clear()
        bad = _write_jsonl(tmp_path, [{"task": "t1", "model": "wat"}], name="bad.jsonl")
        assert main(["batch", str(bad)]) == 2
        assert closed == [True]

    def test_single_query_and_explain_close_their_service(self, tmp_path, capsys, monkeypatch):
        from repro.api import JuryService

        closed = []
        original = JuryService.close
        monkeypatch.setattr(
            JuryService, "close", lambda self: (closed.append(True), original(self))[1]
        )
        csv_path = tmp_path / "c.csv"
        csv_path.write_text(
            "id,error_rate,requirement\n"
            + "\n".join(f"{c},{e},{r}" for c, e, r in FIGURE1)
            + "\n"
        )
        assert main([str(csv_path)]) == 0
        assert closed == [True]
        closed.clear()
        assert main(["explain", str(csv_path)]) == 0
        assert closed == [True]
