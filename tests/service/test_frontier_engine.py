"""Answer frontier through the engine: hits skip the kernel, stay bit-identical.

The acceptance bar for the frontier cache is twofold and both halves are
pinned here:

* **It actually short-circuits** — a repeat AltrM query is answered without
  ``execute_plan`` ever running (asserted by monkeypatching a call counter
  over the engine's kernel entry point) and, under sharded execution,
  without a worker round trip (``sharded_queries`` stays flat).
* **It is invisible in the answers** — across arbitrary churn sequences the
  frontier-enabled engine returns selections bit-identical (juror ids, JER
  to the last bit, algorithm label, work counters) to a frontier-disabled
  oracle engine running the plan pipeline, errors included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.service.batch as batch_module
from repro.api import JuryService, PoolCommand, SelectionRequest
from repro.core.juror import Juror
from repro.errors import BudgetError
from repro.plan.cost import FRONTIER_MIN_POOL
from repro.plan.frontier import FRONTIER_ENV_FLAG
from repro.service import BatchSelectionEngine, PoolRegistry, SelectionQuery


def _jurors(eps_values, prefix="c"):
    return tuple(
        Juror(e, juror_id=f"{prefix}{i}") for i, e in enumerate(eps_values)
    )


EPS = (0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.65)


def _query(task_id, name="P", **kwargs):
    return SelectionQuery(task_id=task_id, pool_name=name, **kwargs)


def _fresh_pair(eps=EPS, name="P"):
    """Two mirrored (registry, engine) pairs: frontier on vs the oracle."""
    pairs = []
    for frontier_size in (None, 0):
        registry = PoolRegistry()
        registry.create(name, _jurors(eps))
        pairs.append(
            (
                registry,
                BatchSelectionEngine(registry=registry, frontier_size=128)
                if frontier_size is None
                else BatchSelectionEngine(registry=registry, frontier_size=0),
            )
        )
    return pairs


def _assert_outcomes_identical(lhs, rhs):
    assert lhs.ok == rhs.ok
    if not lhs.ok:
        assert type(lhs.exception) is type(rhs.exception)
        assert str(lhs.exception) == str(rhs.exception)
        return
    a, b = lhs.result, rhs.result
    assert a.juror_ids == b.juror_ids
    assert a.jer == b.jer  # bitwise float equality, not approx
    assert a.algorithm == b.algorithm and a.model == b.model
    assert a.budget == b.budget
    assert a.stats.juries_considered == b.stats.juries_considered
    assert a.stats.jer_evaluations == b.stats.jer_evaluations


class TestKernelShortCircuit:
    def test_repeat_query_never_calls_execute_plan(self, monkeypatch):
        """The headline guarantee: a frontier hit answers a repeat AltrM
        query with zero ``execute_plan`` invocations."""
        calls = []
        original = batch_module.execute_plan
        monkeypatch.setattr(
            batch_module,
            "execute_plan",
            lambda *args, **kwargs: (calls.append(1), original(*args, **kwargs))[1],
        )
        registry = PoolRegistry()
        registry.create("P", _jurors(EPS))
        engine = BatchSelectionEngine(registry=registry, frontier_size=128)

        cold = engine.run([_query("cold")])[0]
        assert cold.ok and len(calls) == 1  # the cold query plans + executes

        warm = engine.run([_query("warm")])[0]
        assert warm.ok and len(calls) == 1  # the repeat never reached the kernel
        assert engine.stats.frontier_hits == 1
        assert engine.frontier.hits == 1 and engine.frontier.builds == 1
        _assert_outcomes_identical(cold, warm)

    def test_capped_repeats_hit_without_the_kernel_too(self, monkeypatch):
        calls = []
        original = batch_module.execute_plan
        monkeypatch.setattr(
            batch_module,
            "execute_plan",
            lambda *args, **kwargs: (calls.append(1), original(*args, **kwargs))[1],
        )
        registry = PoolRegistry()
        registry.create("P", _jurors(EPS))
        engine = BatchSelectionEngine(registry=registry, frontier_size=128)
        engine.run([_query("cold")])
        baseline = len(calls)
        for cap in (1, 3, 5, len(EPS)):
            outcome = engine.run([_query(f"cap{cap}", max_size=cap)])[0]
            assert outcome.ok and outcome.result.size <= cap
        assert len(calls) == baseline
        assert engine.stats.frontier_hits == 4

    def test_mixed_batch_only_altr_hits(self):
        eps = EPS
        reqs = tuple(0.1 * (i + 1) for i in range(len(eps)))
        jurors = tuple(
            Juror(e, r, juror_id=f"c{i}") for i, (e, r) in enumerate(zip(eps, reqs))
        )
        registry = PoolRegistry()
        registry.create("P", jurors)
        engine = BatchSelectionEngine(registry=registry, frontier_size=128)
        engine.run([_query("warmup")])
        outcomes = engine.run(
            [
                _query("altr"),
                _query("pay", model="pay", budget=1.0),
                _query("exact", model="exact", budget=1.0),
            ]
        )
        assert all(o.ok for o in outcomes)
        assert engine.stats.frontier_hits == 1  # only the AltrM repeat
        assert outcomes[1].result.algorithm == "PayALG"
        assert outcomes[2].result.algorithm.startswith("OPT")


class TestErrorParityOnHits:
    def test_unsatisfiable_max_size_errors_identically(self):
        (reg_a, engine), (reg_b, oracle) = _fresh_pair()
        engine.run([_query("warm")])
        oracle.run([_query("warm")])
        hit = engine.run([_query("bad", max_size=0)])[0]
        miss = oracle.run([_query("bad", max_size=0)])[0]
        assert engine.stats.frontier_hits == 1  # the error still hit the cache
        _assert_outcomes_identical(hit, miss)
        assert isinstance(hit.exception, ValueError)

    def test_invalid_budget_errors_identically(self):
        (reg_a, engine), (reg_b, oracle) = _fresh_pair()
        engine.run([_query("warm")])
        oracle.run([_query("warm")])
        hit = engine.run([_query("bad", budget=-1.0)])[0]
        miss = oracle.run([_query("bad", budget=-1.0)])[0]
        _assert_outcomes_identical(hit, miss)
        assert isinstance(hit.exception, BudgetError)

    def test_raise_errors_propagates_from_the_hit_path(self):
        registry = PoolRegistry()
        registry.create("P", _jurors(EPS))
        engine = BatchSelectionEngine(registry=registry, frontier_size=128)
        engine.run([_query("warm")])
        with pytest.raises(ValueError, match="empty sweep profile"):
            engine.run([_query("bad", max_size=0)], raise_errors=True)


# One churn step: (op, payload) applied identically to both registries.
_churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "update", "query", "capped_query"]),
        st.floats(min_value=0.01, max_value=0.99),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=1,
    max_size=25,
)


class TestChurnBitIdentity:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), ops=_churn_ops)
    @settings(max_examples=40, deadline=None)
    def test_frontier_matches_oracle_across_random_churn(self, seed, ops):
        """Random add/remove/update churn interleaved with AltrM queries at
        random caps: every selection from the frontier engine must equal the
        frontier-disabled oracle bit for bit, at every version."""
        rng = np.random.default_rng(seed)
        base = rng.uniform(0.05, 0.9, size=FRONTIER_MIN_POOL + 5)
        (reg_a, engine), (reg_b, oracle) = _fresh_pair(tuple(base))
        next_id = 0
        task = 0
        for op, value, pick in ops:
            pools = [reg_a.get("P"), reg_b.get("P")]
            if op == "add":
                next_id += 1
                for pool in pools:
                    pool.add_juror(Juror(value, juror_id=f"n{next_id}"))
            elif op == "remove":
                ids = [j.juror_id for j in pools[0].ordered]
                if len(ids) <= 1:
                    continue  # keep the pool non-empty
                victim = ids[pick % len(ids)]
                for pool in pools:
                    pool.remove_juror(victim)
            elif op == "update":
                ids = [j.juror_id for j in pools[0].ordered]
                victim = ids[pick % len(ids)]
                for pool in pools:
                    pool.update_error_rate(victim, value)
            else:
                cap = None if op == "query" else 1 + pick % (len(pools[0]) + 2)
                task += 1
                lhs = engine.run([_query(f"t{task}", max_size=cap)])[0]
                rhs = oracle.run([_query(f"t{task}", max_size=cap)])[0]
                _assert_outcomes_identical(lhs, rhs)
        # Closing sweep: both engines agree on the final version too.
        lhs = engine.run([_query("final")])[0]
        rhs = oracle.run([_query("final")])[0]
        _assert_outcomes_identical(lhs, rhs)
        assert oracle.stats.frontier_hits == 0

    def test_mutation_between_repeats_never_serves_stale_answers(self):
        (reg_a, engine), _ = _fresh_pair((0.3, 0.3, 0.3, 0.3, 0.3))
        before = engine.run([_query("before")])[0]
        reg_a.get("P").add_juror(Juror(0.01, juror_id="ace"))
        after = engine.run([_query("after")])[0]
        assert "ace" in after.result.juror_ids
        assert after.result.jer < before.result.jer
        # And the new version is itself frontier-served on repeat.
        again = engine.run([_query("again")])[0]
        _assert_outcomes_identical(after, again)
        assert engine.stats.frontier_hits >= 1


class TestLivePoolFrontierLifecycle:
    def _pool(self, eps=EPS):
        registry = PoolRegistry()
        return registry.create("P", _jurors(eps))

    def test_built_then_cached(self):
        pool = self._pool()
        _, mode = pool.answer_frontier()
        assert mode == "built" and pool.stats.frontier_builds == 1
        _, mode = pool.answer_frontier()
        assert mode == "cached" and pool.stats.frontier_builds == 1

    def test_tail_churn_repairs_head_entries(self):
        pool = self._pool()
        first, _ = pool.answer_frontier()
        pool.update_error_rate("c6", 0.7)  # churn at the sorted tail
        second, mode = pool.answer_frontier()
        assert mode == "repaired"
        assert pool.stats.frontier_repairs == 1
        assert pool.stats.frontier_entries_reused >= 1
        assert second.version == pool.version

    def test_head_churn_rebuilds(self):
        pool = self._pool()
        pool.answer_frontier()
        pool.update_error_rate("c0", 0.05)  # sorted position 0: nothing clean
        _, mode = pool.answer_frontier()
        assert mode == "rebuilt" and pool.stats.frontier_rebuilds == 1

    def test_repaired_frontier_equals_fresh_build(self, rng):
        pool = self._pool(tuple(rng.uniform(0.05, 0.9, size=21)))
        pool.answer_frontier()
        victims = [j.juror_id for j in pool.ordered][10:15]
        for victim in victims:
            pool.update_error_rate(victim, float(rng.uniform(0.05, 0.9)))
        repaired, _ = pool.answer_frontier()
        ns, jers = pool.sweep_profile()
        from repro.plan.frontier import AnswerFrontier

        fresh = AnswerFrontier.build(ns, jers, fingerprint=pool.fingerprint)
        np.testing.assert_array_equal(repaired.best_ns, fresh.best_ns)
        np.testing.assert_array_equal(repaired.best_jers, fresh.best_jers)


class TestDropEviction:
    def test_drop_evicts_sweep_and_frontier_then_recreate_rebuilds(self):
        """Satellite regression: dropping a pool evicts *every* parent-side
        cache keyed by its fingerprint — sweep profile and answer frontier —
        so re-creating the same pool starts clean and rebuilds."""
        service = JuryService(frontier_size=128)
        candidates = _jurors(EPS)
        service.pool(PoolCommand(action="create", name="P", candidates=candidates))
        service.select(SelectionRequest(task_id="warm", pool="P"))
        repeat = service.select(SelectionRequest(task_id="hot", pool="P"))
        assert repeat.status == "ok"
        engine = service.engine
        assert engine.frontier.hits == 1 and len(engine.frontier) == 1
        assert len(engine.cache) == 1

        service.pool(PoolCommand(action="drop", name="P"))
        assert len(engine.frontier) == 0 and engine.frontier.evictions == 1
        assert len(engine.cache) == 0

        # Same candidates, same fingerprint: the re-created pool must be
        # re-swept and re-built, never served from a ghost of the dropped one.
        service.pool(PoolCommand(action="create", name="P", candidates=candidates))
        fresh = service.select(SelectionRequest(task_id="fresh", pool="P"))
        assert fresh.status == "ok" and fresh.jer == repeat.jer
        assert engine.frontier.builds == 2
        hot = service.select(SelectionRequest(task_id="hot2", pool="P"))
        assert hot.jer == repeat.jer and engine.frontier.hits == 2
        service.close()


class TestShardedShortCircuit:
    def test_repeat_query_skips_the_worker_round_trip(self):
        registry = PoolRegistry()
        registry.create("P", _jurors(EPS))
        engine = BatchSelectionEngine(
            registry=registry, max_workers=2, frontier_size=128
        )
        try:
            cold = engine.run([_query("cold")])[0]
            assert cold.ok
            sharded_after_cold = engine.stats.sharded_queries
            warm = engine.run([_query("warm")])[0]
            assert warm.ok
            # The hit never built a payload: no new worker round trip.
            assert engine.stats.sharded_queries == sharded_after_cold
            assert engine.stats.frontier_hits == 1
            _assert_outcomes_identical(cold, warm)
        finally:
            engine.close()

    def test_sharded_hits_match_the_sequential_oracle(self):
        registry = PoolRegistry()
        registry.create("P", _jurors(EPS))
        sharded = BatchSelectionEngine(
            registry=registry, max_workers=2, frontier_size=128
        )
        oracle_registry = PoolRegistry()
        oracle_registry.create("P", _jurors(EPS))
        oracle = BatchSelectionEngine(registry=oracle_registry, frontier_size=0)
        try:
            for task in ("cold", "warm", "capped"):
                cap = 3 if task == "capped" else None
                lhs = sharded.run([_query(task, max_size=cap)])[0]
                rhs = oracle.run([_query(task, max_size=cap)])[0]
                _assert_outcomes_identical(lhs, rhs)
        finally:
            sharded.close()


class TestDisabledFrontier:
    def test_env_flag_zero_pins_the_pre_frontier_behaviour(self, monkeypatch):
        monkeypatch.setenv(FRONTIER_ENV_FLAG, "0")
        registry = PoolRegistry()
        registry.create("P", _jurors(EPS))
        engine = BatchSelectionEngine(registry=registry)  # size from env
        assert engine.frontier.maxsize == 0 and not engine.frontier.enabled
        first = engine.run([_query("a")])[0]
        second = engine.run([_query("b")])[0]
        _assert_outcomes_identical(first, second)
        assert engine.stats.frontier_hits == 0
        assert engine.frontier.hits == 0 and engine.frontier.misses == 0
        assert engine.cache.hits == 1  # the sweep cache serves repeats again

    def test_results_identical_with_and_without_the_frontier(self):
        (_, engine), (_, oracle) = _fresh_pair()
        for task in ("a", "b", "c"):
            lhs = engine.run([_query(task)])[0]
            rhs = oracle.run([_query(task)])[0]
            _assert_outcomes_identical(lhs, rhs)
        assert engine.stats.frontier_hits == 2
        assert oracle.stats.frontier_hits == 0

    def test_small_pools_never_use_the_frontier(self):
        eps = tuple(0.1 * (i + 1) for i in range(FRONTIER_MIN_POOL - 1))
        registry = PoolRegistry()
        registry.create("tiny", _jurors(eps))
        engine = BatchSelectionEngine(registry=registry, frontier_size=128)
        engine.run([_query("a", name="tiny")])
        engine.run([_query("b", name="tiny")])
        assert engine.stats.frontier_hits == 0 and len(engine.frontier) == 0
        assert engine.cache.hits == 1  # repeats fall back to the sweep cache


class TestInlinePools:
    def test_inline_repeats_hit_by_fingerprint(self):
        """Inline candidate sets with equal fingerprints share one frontier,
        exactly as they share one sweep profile."""
        engine = BatchSelectionEngine(frontier_size=128)
        jurors = _jurors(EPS)
        first = engine.run([SelectionQuery(task_id="a", candidates=jurors)])[0]
        second = engine.run([SelectionQuery(task_id="b", candidates=jurors)])[0]
        assert engine.stats.frontier_hits == 1
        _assert_outcomes_identical(first, second)
