"""Cost-aware shard scheduling: policy-layer unit tests, Zipf-skew oracle
suites (bit-identity across cost/hash/sequential + the skew bar), split-merge
identity at every budget, and the cost-policy eviction regression."""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JuryService, PoolCommand, SelectionRequest
from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.exact import enumerate_best_in_range, enumerate_optimal
from repro.errors import InfeasibleSelectionError
from repro.plan.cost import KERNEL_BACKEND_SPEEDUP, MAX_SCHEDULING_COST, plan_cost
from repro.service import (
    BatchSelectionEngine,
    PoolRegistry,
    SelectionQuery,
    ShardedExecutor,
    WorkScheduler,
)
from repro.service import sched as sched_module
from repro.service.pool import as_pool
from repro.service.sched import (
    DEFAULT_SCHEDULER_POLICY,
    MAX_UNITS_PER_SHARD,
    SCHEDULER_POLICIES,
    balance_groups,
    enumeration_split_ranges,
    scheduler_policy_from_env,
)
from repro.service.shard import (
    PlanPayload,
    PoolColumns,
    WorkUnit,
    hash_units,
    merge_split_answers,
)
from repro.testing import DEFAULT_SEED

#: Zipf popularity exponent of the skewed pool stream (ISSUE: s ~ 1.1).
ZIPF_S = 1.1


def _pool_jurors(rng, n: int, *, tag: str, priced: bool = False):
    eps = rng.uniform(0.05, 0.9, size=n)
    reqs = rng.uniform(0.05, 0.15, size=n) if priced else np.zeros(n)
    return tuple(
        Juror(float(e), float(r), juror_id=f"{tag}-{i}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    )


def _normalise(outcome):
    """Comparable projection of one QueryOutcome (results or errors)."""
    if outcome.ok:
        result = outcome.result
        return (
            "ok",
            result.juror_ids,
            result.jer,  # exact float equality, not approx
            result.algorithm,
            result.model,
            result.stats.juries_considered,
            result.stats.jer_evaluations,
        )
    return ("error", type(outcome.exception).__name__, str(outcome.exception))


def _assert_bit_identical(expected, actual):
    assert len(expected) == len(actual)
    for want, got in zip(expected, actual):
        assert _normalise(got) == _normalise(want)


def _zipf_workload(rng, *, pools: int = 8, n_queries: int = 30):
    """A Zipf-skewed (s ~ 1.1) pool-popularity stream of mixed queries.

    Three heavy exact enumerations (affordable 13 -> ~1.9e5 ops, past
    ``SPLIT_MIN_COST``) ballast every stream so the cost policy always has
    something splittable; the remaining queries draw their pool from a Zipf
    popularity law and mix AltrM / PayM / exact models.
    """
    shared = [
        _pool_jurors(rng, 11 + (i % 5), tag=f"z{i}", priced=True)
        for i in range(pools)
    ]
    popularity = np.arange(1, pools + 1, dtype=float) ** -ZIPF_S
    popularity /= popularity.sum()
    queries = [
        SelectionQuery(
            task_id=f"heavy{b}",
            candidates=_pool_jurors(rng, 13, tag=f"heavy{b}", priced=True),
            model="exact",
            budget=2.0,
            method="enumerate",
        )
        for b in range(3)
    ]
    for i in range(n_queries):
        pool = shared[int(rng.choice(pools, p=popularity))]
        kind = rng.random()
        if kind < 0.6:
            queries.append(
                SelectionQuery(task_id=f"a{i}", candidates=pool)
            )
        elif kind < 0.85:
            queries.append(
                SelectionQuery(
                    task_id=f"p{i}", candidates=pool, model="pay", budget=1.0
                )
            )
        else:
            queries.append(
                SelectionQuery(
                    task_id=f"e{i}",
                    candidates=pool,
                    model="exact",
                    budget=1.5,
                    method="enumerate",
                )
            )
    return queries


class TestPlanCost:
    def test_positive_finite_for_every_planned_query(self, rng):
        engine = BatchSelectionEngine()
        queries = _zipf_workload(rng, n_queries=10)
        for query in queries:
            cost = plan_cost(engine.plan(query))
            assert math.isfinite(cost) and cost >= 1.0

    def test_exact_enumeration_outweighs_altr_sweep(self, rng):
        engine = BatchSelectionEngine()
        cands = _pool_jurors(rng, 13, tag="w", priced=True)
        altr = engine.plan(SelectionQuery(task_id="a", candidates=cands))
        exact = engine.plan(
            SelectionQuery(
                task_id="e",
                candidates=cands,
                model="exact",
                budget=2.0,
                method="enumerate",
            )
        )
        assert plan_cost(exact) > 100 * plan_cost(altr)

    def test_kernel_backend_speedup_discounts(self, rng):
        engine = BatchSelectionEngine()
        plan = engine.plan(
            SelectionQuery(
                task_id="e",
                candidates=_pool_jurors(rng, 13, tag="kb", priced=True),
                model="exact",
                budget=2.0,
                method="enumerate",
            )
        )
        payload = PlanPayload.from_plan(plan, fingerprint="f" * 64)
        numpy_cost = plan_cost(payload)
        for backend, speedup in KERNEL_BACKEND_SPEEDUP.items():
            scaled = plan_cost(replace(payload, kernel_backend=backend))
            assert scaled == pytest.approx(max(1.0, numpy_cost / speedup))

    def test_infinite_estimates_clamp_to_ceiling(self):
        from types import SimpleNamespace

        plan = SimpleNamespace(
            operator="exact-enumerate",
            kernel_backend="numpy",
            cost=SimpleNamespace(
                pool_size=20,
                estimates=(("exact-enumerate", math.inf),),
            ),
        )
        assert plan_cost(plan) == MAX_SCHEDULING_COST


class TestEnumerationSplitRanges:
    @given(
        n_eff=st.integers(min_value=1, max_value=20),
        limit=st.integers(min_value=1, max_value=20),
        parts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_ranges_partition_the_first_index_axis(self, n_eff, limit, parts):
        ranges = enumeration_split_ranges(n_eff, min(limit, n_eff), parts)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_eff
        for (lo, hi), (nlo, _) in zip(ranges, ranges[1:]):
            assert lo < hi
            assert hi == nlo  # contiguous, disjoint
        assert all(lo < hi for lo, hi in ranges)
        assert len(ranges) <= max(1, min(parts, n_eff))

    def test_work_front_loading_narrows_the_first_range(self):
        # Index 0 anchors nearly half of all combinations, so balanced
        # ranges must be much narrower at the front than at the tail.
        ranges = enumeration_split_ranges(16, 16, 4)
        widths = [hi - lo for lo, hi in ranges]
        assert widths[0] < widths[-1]

    def test_ranges_balance_the_exact_work_profile(self):
        weights = sched_module._first_index_weights(18, 18)
        ranges = enumeration_split_ranges(18, 18, 4)
        loads = [sum(weights[lo:hi]) for lo, hi in ranges]
        # A contiguous partition cannot beat the heaviest single index
        # (index 0 anchors over half the combinations), but it must never
        # be worse than that indivisible floor or 2x the ideal share.
        ideal = sum(weights) / len(ranges)
        assert max(loads) <= max(max(weights), 2.0 * ideal)


class TestBalanceGroups:
    @given(
        weights=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=0, max_size=40
        ),
        parts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_assignment_is_deterministic_and_in_range(self, weights, parts):
        first = balance_groups(weights, parts)
        assert first == balance_groups(list(weights), parts)
        assert len(first) == len(weights)
        assert all(0 <= bin_index < parts for bin_index in first)

    def test_every_bin_used_when_enough_groups(self):
        assignment = balance_groups([5.0, 4.0, 3.0, 2.0, 1.0], 3)
        assert set(assignment) == {0, 1, 2}

    def test_lpt_bounds_the_makespan(self, rng):
        weights = list(rng.uniform(1.0, 100.0, size=24))
        parts = 4
        loads = [0.0] * parts
        for weight, bin_index in zip(weights, balance_groups(weights, parts)):
            loads[bin_index] += weight
        ideal = sum(weights) / parts
        assert max(loads) <= (4 / 3) * ideal + max(weights) / parts


class TestPolicySelection:
    def test_env_default_and_leniency(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert scheduler_policy_from_env() == DEFAULT_SCHEDULER_POLICY
        for raw, expected in (
            ("cost", "cost"),
            ("hash", "hash"),
            ("  HASH ", "hash"),
            ("bogus", DEFAULT_SCHEDULER_POLICY),
            ("", DEFAULT_SCHEDULER_POLICY),
        ):
            monkeypatch.setenv("REPRO_SCHEDULER", raw)
            assert scheduler_policy_from_env() == expected

    def test_scheduler_obeys_env_and_rejects_explicit_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "hash")
        assert WorkScheduler().policy == "hash"
        assert WorkScheduler("cost").policy == "cost"
        with pytest.raises(ValueError, match="scheduler policy"):
            WorkScheduler("round-robin")

    def test_steal_enabled_only_under_cost(self):
        assert WorkScheduler("cost").steal_enabled
        assert not WorkScheduler("hash").steal_enabled

    def test_engine_reports_policy_everywhere(self):
        engine = BatchSelectionEngine(scheduler="hash")
        assert engine.scheduler_policy == "hash"
        assert engine.stats.scheduler_policy == "hash"
        assert engine.scheduler_stats()["policy"] == "hash"

    def test_service_rejects_engine_plus_scheduler(self):
        engine = BatchSelectionEngine()
        with pytest.raises(ValueError, match="not both"):
            JuryService(engine=engine, scheduler="hash")

    def test_cli_flag_exports_env(self, tmp_path, monkeypatch, capsys):
        import os

        from repro.cli import main

        monkeypatch.setenv("REPRO_SCHEDULER", "cost")
        rows = [
            '{"pool": "P", "candidates": [{"id": "a", "error_rate": 0.1}, '
            '{"id": "b", "error_rate": 0.2}, {"id": "c", "error_rate": 0.3}]}',
            '{"task": "t1", "pool": "P"}',
        ]
        source = tmp_path / "queries.jsonl"
        source.write_text("\n".join(rows) + "\n", encoding="utf-8")
        assert main(["batch", str(source), "--scheduler", "hash"]) == 0
        assert os.environ["REPRO_SCHEDULER"] == "hash"
        capsys.readouterr()

    def test_cli_rejects_unknown_policy(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["batch", "queries.jsonl", "--scheduler", "round-robin"])
        assert "--scheduler" in capsys.readouterr().err


def _planned(engine, queries):
    """(payloads, blocks) for a batch, built like the engine's shard path."""
    payloads = []
    blocks = {}
    for index, query in enumerate(queries):
        plan = engine.plan(query)
        pool = as_pool(query.candidates)
        fingerprint = pool.fingerprint
        if fingerprint not in blocks:
            blocks[fingerprint] = PoolColumns.from_view(
                plan.view, fingerprint=fingerprint, need_ids=True
            )
        payloads.append(
            (index, PlanPayload.from_plan(plan, fingerprint=fingerprint))
        )
    return payloads, blocks


class TestSchedulerBuild:
    @pytest.fixture
    def executor(self):
        executor = ShardedExecutor(3, dedicated=True)
        yield executor
        executor.close()

    def test_hash_policy_matches_hash_units(self, rng, executor):
        engine = BatchSelectionEngine()
        payloads, blocks = _planned(engine, _zipf_workload(rng, n_queries=12))
        units, splits = WorkScheduler("hash").build(payloads, blocks, executor)
        oracle = hash_units(executor, payloads, blocks)
        assert splits == 0
        assert [(u.shard, [k for k, _ in u.payloads]) for u in units] == [
            (u.shard, [k for k, _ in u.payloads]) for u in oracle
        ]

    def test_cost_policy_preserves_every_key_and_respects_unit_cap(
        self, rng, executor
    ):
        engine = BatchSelectionEngine()
        queries = _zipf_workload(rng, n_queries=12)
        payloads, blocks = _planned(engine, queries)
        units, splits = WorkScheduler("cost").build(payloads, blocks, executor)
        assert splits >= 3  # the ballast exacts are heavy enough to split
        # Every key survives: unsplit keys exactly once, split keys as a
        # sub-payload set whose ranges partition the first-index axis.
        seen: dict[int, list[PlanPayload]] = {}
        per_shard_units: dict[int, int] = {}
        for unit in units:
            per_shard_units[unit.shard] = per_shard_units.get(unit.shard, 0) + 1
            assert unit.cost > 0.0
            for key, payload in unit.payloads:
                seen.setdefault(key, []).append(payload)
        assert sorted(seen) == [key for key, _ in payloads]
        for key, parts in seen.items():
            if len(parts) == 1 and parts[0].split is None:
                continue
            spans = sorted(p.split for p in parts)
            assert spans[0][0] == 0
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        assert all(count <= MAX_UNITS_PER_SHARD for count in per_shard_units.values())

    def test_fingerprint_groups_never_split_across_units(self, rng, executor):
        engine = BatchSelectionEngine()
        pool = _pool_jurors(rng, 13, tag="grp")
        queries = [
            SelectionQuery(task_id=f"t{i}", candidates=pool) for i in range(8)
        ]
        payloads, blocks = _planned(engine, queries)
        units, _ = WorkScheduler("cost").build(payloads, blocks, executor)
        owners = {
            payload.fingerprint: unit.shard
            for unit in units
            for _, payload in unit.payloads
        }
        assert len(units) == 1  # one pool group -> one unit
        assert len(owners) == 1

    def test_single_pool_batch_lands_on_affinity_shard(self, rng, executor):
        engine = BatchSelectionEngine()
        pool = _pool_jurors(rng, 11, tag="aff")
        payloads, blocks = _planned(
            engine, [SelectionQuery(task_id="t", candidates=pool)]
        )
        units, _ = WorkScheduler("cost").build(payloads, blocks, executor)
        fingerprint = payloads[0][1].fingerprint
        assert [unit.shard for unit in units] == [executor.shard_of(fingerprint)]

    def test_in_process_executor_never_splits(self, rng, executor):
        engine = BatchSelectionEngine()
        payloads, blocks = _planned(engine, _zipf_workload(rng, n_queries=4))
        executor._in_process = True
        units, splits = WorkScheduler("cost").build(payloads, blocks, executor)
        assert splits == 0
        assert all(p.split is None for u in units for _, p in u.payloads)


class TestStealing:
    def test_idle_shard_steals_from_the_heaviest_queue(self, rng):
        executor = ShardedExecutor(2, dedicated=True)
        try:
            engine = BatchSelectionEngine()
            pools = [_pool_jurors(rng, 12, tag=f"st{i}") for i in range(6)]
            queries = [
                SelectionQuery(task_id=f"t{i}", candidates=pool)
                for i, pool in enumerate(pools)
            ]
            payloads, blocks = _planned(engine, queries)
            # Pile every unit onto shard 0; shard 1 starts idle and must
            # steal to participate at all.
            units = [
                WorkUnit(
                    shard=0,
                    payloads=[item],
                    blocks={item[1].fingerprint: blocks[item[1].fingerprint]},
                    cost=float(i + 1),
                )
                for i, item in enumerate(payloads)
            ]
            answers, report = executor.run_schedule(units, steal=True)
            assert sorted(key for key, _, _ in answers) == list(range(6))
            assert report.steals >= 1
            slots = executor.utilisation()
            assert slots[1]["stolen"] == report.steals
            assert slots[0]["queue_depth"] == 6
        finally:
            executor.close()

    def test_no_stealing_when_disabled(self, rng):
        executor = ShardedExecutor(2, dedicated=True)
        try:
            engine = BatchSelectionEngine()
            payloads, blocks = _planned(
                engine,
                [
                    SelectionQuery(
                        task_id=f"t{i}",
                        candidates=_pool_jurors(rng, 9, tag=f"ns{i}"),
                    )
                    for i in range(4)
                ],
            )
            units = hash_units(executor, payloads, blocks)
            _, report = executor.run_schedule(units, steal=False)
            assert report.steals == 0
            assert all(slot["stolen"] == 0 for slot in executor.utilisation())
        finally:
            executor.close()


class TestZipfSchedulingOracle:
    """The ISSUE's hypothesis suite: a Zipf-skewed stream must be answered
    bit-identically under cost, hash and sequential dispatch."""

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_policies_bit_identical_to_sequential(self, seed):
        rng = np.random.default_rng(seed)
        queries = _zipf_workload(rng)
        sequential = BatchSelectionEngine().run(list(queries))
        for policy in SCHEDULER_POLICIES:
            engine = BatchSelectionEngine(max_workers=3, scheduler=policy)
            _assert_bit_identical(sequential, engine.run(list(queries)))
            if policy == "cost":
                assert engine.stats.split_queries >= 3

    def test_cost_policy_meets_skew_bar_where_hash_exceeds_it(self, rng):
        """Engineered worst case for hashing: every heavy pool fingerprints
        onto shard 0, so hash piles the whole batch there (skew = workers)
        while the cost policy must keep max/mean assigned cost <= 1.5."""
        workers = 3

        def colliding_pool(tag, n, priced):
            while True:
                pool = _pool_jurors(rng, n, tag=tag, priced=priced)
                fingerprint = as_pool(pool).fingerprint
                if int(fingerprint[:16], 16) % workers == 0:
                    return pool

        queries = []
        for b in range(4):
            queries.append(
                SelectionQuery(
                    task_id=f"h{b}",
                    candidates=colliding_pool(f"h{b}", 13, True),
                    model="exact",
                    budget=2.0,
                    method="enumerate",
                )
            )
        for i in range(8):
            queries.append(
                SelectionQuery(
                    task_id=f"a{i}",
                    candidates=colliding_pool(f"a{i}", 11, False),
                )
            )

        sequential = BatchSelectionEngine().run(list(queries))
        skews = {}
        for policy in SCHEDULER_POLICIES:
            engine = BatchSelectionEngine(max_workers=workers, scheduler=policy)
            _assert_bit_identical(sequential, engine.run(list(queries)))
            stats = engine.scheduler_stats()
            assert stats["policy"] == policy
            assert stats["workers"] == workers
            skews[policy] = stats["assigned_cost_skew"]
        assert skews["hash"] > 1.5  # everything hashed onto one shard
        assert skews["cost"] <= 1.5


class TestSplitMergeIdentity:
    """Split-exact enumeration must equal the unsplit oracle at every
    budget — winners, JER bits, and summed search counters alike."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=14),
        parts=st.integers(min_value=2, max_value=5),
        tightness=st.floats(min_value=0.0, max_value=1.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_fold_matches_enumerate_optimal(self, seed, n, parts, tightness):
        rng = np.random.default_rng(seed)
        candidates = _pool_jurors(rng, n, tag="sm", priced=True)
        budget = tightness * float(sum(j.requirement for j in candidates))
        try:
            oracle = enumerate_optimal(candidates, budget)
            oracle_error = None
        except InfeasibleSelectionError as exc:
            oracle, oracle_error = None, exc

        from repro.plan.view import as_columns

        _, _, ordered = as_columns(candidates)
        ordered_ids = tuple(j.juror_id for j in ordered)
        ranges = enumeration_split_ranges(n, n, parts)
        best = None  # (indices, jer)
        considered = evaluations = 0
        for lo, hi in ranges:
            indices, jer, stats = enumerate_best_in_range(
                candidates, budget, first_lo=lo, first_hi=hi
            )
            considered += stats.juries_considered
            evaluations += stats.jer_evaluations
            if indices is None:
                continue
            if best is None:
                best = (indices, jer)
            else:
                b_indices, b_jer = best
                if jer < b_jer - 1e-15 or (
                    abs(jer - b_jer) <= 1e-15
                    and (
                        (len(indices), tuple(ordered_ids[i] for i in indices))
                        < (len(b_indices), tuple(ordered_ids[i] for i in b_indices))
                    )
                ):
                    best = (indices, jer)
        if oracle_error is not None:
            assert best is None
        else:
            assert best is not None
            indices, jer = best
            assert jer == oracle.jer  # bit-equal
            assert tuple(ordered_ids[i] for i in indices) == oracle.juror_ids
            assert considered == oracle.stats.juries_considered
            assert evaluations == oracle.stats.jer_evaluations

    def test_engine_split_answers_match_at_every_budget(self, rng, monkeypatch):
        """End-to-end satellite: force splitting of even small exacts and
        sweep the budget axis from infeasible to loose — the sharded cost
        engine must agree with the sequential oracle at every point."""
        monkeypatch.setattr(sched_module, "SPLIT_MIN_COST", 1.0)
        candidates = _pool_jurors(rng, 10, tag="bud", priced=True)
        total = float(sum(j.requirement for j in candidates))
        budgets = [total * f for f in (0.0, 0.02, 0.1, 0.3, 0.5, 0.8, 1.0)]
        queries = [
            SelectionQuery(
                task_id=f"b{i}",
                candidates=candidates,
                model="exact",
                budget=budget,
                method="enumerate",
            )
            for i, budget in enumerate(budgets)
        ]
        sequential = BatchSelectionEngine().run(list(queries))
        engine = BatchSelectionEngine(max_workers=3, scheduler="cost")
        _assert_bit_identical(sequential, engine.run(list(queries)))
        # Only budgets with >= 4 individually-affordable candidates split
        # (tighter ones run the unsplit guarded enumeration); with every
        # requirement <= 0.15 * total that is at least the four loosest.
        assert engine.stats.split_queries >= 4
        stats = engine.scheduler_stats()
        assert sum(slot["split_payloads"] for slot in stats["per_shard"]) > 0


class TestSchedulerStatsSurface:
    def test_counters_reset_on_start(self, rng):
        """Satellite: start() is the documented counter reset point — a new
        measurement window never reports a predecessor's load."""
        executor = ShardedExecutor(2, dedicated=True)
        try:
            engine = BatchSelectionEngine(executor=executor, scheduler="cost")
            engine.run(
                [
                    SelectionQuery(
                        task_id=f"t{i}",
                        candidates=_pool_jurors(rng, 9, tag=f"rs{i}"),
                    )
                    for i in range(4)
                ]
            )
            assert sum(s["assigned_cost"] for s in executor.utilisation()) > 0
            executor.start()
            for slot in executor.utilisation():
                assert slot["batches"] == 0
                assert slot["payloads"] == 0
                assert slot["assigned_cost"] == 0.0
                assert slot["busy_seconds"] == 0.0
                assert slot["stolen"] == 0
                assert slot["split_payloads"] == 0
                assert slot["queue_depth"] == 0
            # The reset is counters-only: worker caches survive.
            assert any(executor.cache_stats())
        finally:
            executor.close()

    def test_sequential_engine_reports_virtual_slot(self, rng):
        engine = BatchSelectionEngine(scheduler="cost")
        engine.run(
            [
                SelectionQuery(
                    task_id="t", candidates=_pool_jurors(rng, 9, tag="sq")
                )
            ]
        )
        stats = engine.scheduler_stats()
        assert stats["workers"] == 1
        assert stats["assigned_cost_skew"] == 1.0
        [slot] = stats["per_shard"]
        assert slot["assigned_cost"] > 0.0
        assert slot["busy_seconds"] >= 0.0

    def test_service_stats_carry_the_scheduler_block(self, rng):
        service = JuryService(workers=2, scheduler="cost")
        try:
            requests = [
                SelectionRequest(
                    task_id=f"t{i}", candidates=_pool_jurors(rng, 9, tag=f"ss{i}")
                )
                for i in range(4)
            ]
            assert all(
                response.status == "ok"
                for response in service.select_many(requests)
            )
            stats = service.stats()
            assert stats["engine"]["scheduler_policy"] == "cost"
            assert stats["engine"]["split_queries"] == 0  # nothing heavy here
            assert stats["engine"]["stolen_units"] >= 0
            block = stats["scheduler"]
            assert block["policy"] == "cost"
            assert block["workers"] == 2
            assert len(block["per_shard"]) == 2
            assert block["assigned_cost_skew"] >= 1.0
            for slot in block["per_shard"]:
                assert set(slot) == {
                    "shard",
                    "assigned_cost",
                    "busy_seconds",
                    "stolen",
                    "split_payloads",
                    "queue_depth",
                }
        finally:
            service.close()


class TestCostPolicyEviction:
    def test_drop_then_recreate_is_fresh_on_every_shard(self, rng, monkeypatch):
        """Satellite regression: under the cost scheduler a pool's payloads
        may execute on *any* shard (bin-packing, splits, steals), so a pool
        drop must still broadcast-evict every worker-local cache and the
        frontier — a same-fingerprint re-create can never serve stale state."""
        monkeypatch.setattr(sched_module, "SPLIT_MIN_COST", 1.0)
        executor = ShardedExecutor(3, dedicated=True)
        try:
            members = list(jurors_from_arrays(rng.uniform(0.05, 0.9, size=11)))
            registry = PoolRegistry()
            engine = BatchSelectionEngine(
                executor=executor, registry=registry, scheduler="cost"
            )
            service = JuryService(engine=engine)
            service.pool(
                PoolCommand(action="create", name="P", candidates=tuple(members))
            )
            fingerprint = registry.get("P").fingerprint
            # Mixed traffic (AltrM + split exact on P, plus load elsewhere)
            # so P's payloads spread across shards under the cost policy.
            filler = [
                SelectionRequest(
                    task_id=f"f{i}",
                    candidates=_pool_jurors(rng, 12, tag=f"ev{i}", priced=True),
                    model="exact",
                    budget=2.0,
                    method="enumerate",
                )
                for i in range(3)
            ]
            first = service.select_many(
                [
                    SelectionRequest(task_id="t1", pool="P"),
                    SelectionRequest(
                        task_id="t2",
                        pool="P",
                        model="exact",
                        budget=None,
                        method="enumerate",
                    ),
                    *filler,
                ]
            )
            assert all(response.status == "ok" for response in first)
            assert engine.stats.split_queries >= 1
            assert any(executor.contains(fingerprint))

            live_profiles_before = engine.stats.live_profiles
            service.pool(PoolCommand(action="drop", name="P"))
            assert not any(executor.contains(fingerprint))
            assert fingerprint not in engine.cache

            service.pool(
                PoolCommand(action="create", name="P", candidates=tuple(members))
            )
            assert registry.get("P").fingerprint == fingerprint
            second = service.select(SelectionRequest(task_id="t3", pool="P"))
            assert second.status == "ok"
            assert second.jer == first[0].jer
            assert engine.stats.live_profiles == live_profiles_before + 1

            oracle = BatchSelectionEngine().select(
                SelectionQuery(task_id="oracle", candidates=tuple(members))
            )
            assert second.jer == oracle.jer
            assert tuple(j.juror_id for j in second.members) == oracle.juror_ids
        finally:
            executor.close()
