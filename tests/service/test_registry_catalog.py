"""PoolRegistry over a PoolCatalog: same semantics, durable behaviour."""

from __future__ import annotations

import pytest

from repro.core.juror import Juror
from repro.errors import InvalidJuryError, PoolNotFoundError
from repro.service import PoolRegistry
from repro.storage import PoolCatalog


def _j(e, i):
    return Juror(e, 1.0, juror_id=i)


SEED = [_j(0.1, "a"), _j(0.2, "b"), _j(0.3, "c")]


@pytest.fixture
def catalog(tmp_path):
    cat = PoolCatalog(tmp_path / "cat")
    yield cat
    cat.close()


def test_create_get_drop_parity_with_in_memory(catalog):
    durable = PoolRegistry(catalog=catalog)
    plain = PoolRegistry()
    for registry in (durable, plain):
        pool = registry.create("P", SEED)
        assert registry.get("P") is pool
        assert "P" in registry and len(registry) == 1
        assert registry.names() == ("P",)
        with pytest.raises(InvalidJuryError):
            registry.create("P", SEED)
        dropped = registry.drop("P")
        assert dropped.pool_id == "P"
        assert "P" not in registry
        with pytest.raises(PoolNotFoundError):
            registry.get("P")


def test_mutations_survive_reopen(tmp_path):
    cat = PoolCatalog(tmp_path)
    registry = PoolRegistry(catalog=cat)
    pool = registry.create("P", SEED)
    pool.add_juror(_j(0.15, "d"))
    pool.remove_juror("b")
    fingerprint = pool.fingerprint
    cat.close()

    cat2 = PoolCatalog(tmp_path)
    registry2 = PoolRegistry(catalog=cat2)
    recovered = registry2.get("P")
    assert recovered.fingerprint == fingerprint
    assert recovered.version == 2
    cat2.close()


def test_names_spans_cold_pools_but_iter_stays_resident(tmp_path):
    cat = PoolCatalog(tmp_path)
    PoolRegistry(catalog=cat).create("P1", SEED)
    cat.close()

    cat2 = PoolCatalog(tmp_path)
    registry = PoolRegistry(catalog=cat2)
    registry.create("P2", SEED)
    assert sorted(registry.names()) == ["P1", "P2"]
    assert len(registry) == 2
    # P1 is cold: listing and iteration must not page it in.
    assert [name for name, _ in registry.resident_pools()] == ["P2"]
    assert len(list(registry)) == 1
    assert cat2.stats.lazy_loads == 0
    registry.get("P1")
    assert cat2.stats.lazy_loads == 1
    cat2.close()


def test_catalog_property_round_trip(catalog):
    registry = PoolRegistry(catalog=catalog)
    assert registry.catalog is catalog
    assert PoolRegistry().catalog is None


def test_drop_returns_pool_then_tombstones(catalog):
    registry = PoolRegistry(catalog=catalog)
    registry.create("P", SEED)
    dropped = registry.drop("P")
    assert dropped.size == 3
    assert catalog.stats.tombstones == 1
    with pytest.raises(PoolNotFoundError):
        registry.drop("P")
