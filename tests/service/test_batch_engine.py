"""Tests for the batch jury-selection engine (repro.service)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.exact import select_jury_optimal
from repro.core.selection.pay import select_jury_pay
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError
from repro.service import (
    BatchSelectionEngine,
    CandidatePool,
    PrefixSweepCache,
    SelectionQuery,
)


def _pool_jurors(rng: np.random.Generator, n: int, *, priced: bool = False):
    eps = rng.uniform(0.05, 0.95, size=n)
    reqs = rng.uniform(0.05, 1.0, size=n) if priced else None
    return jurors_from_arrays(eps, reqs)


class TestCandidatePool:
    def test_normalises_order(self):
        a, b = Juror(0.3, juror_id="hi"), Juror(0.1, juror_id="lo")
        assert CandidatePool([a, b]).fingerprint == CandidatePool([b, a]).fingerprint

    def test_distinct_pools_distinct_fingerprints(self):
        one = CandidatePool(jurors_from_arrays([0.1, 0.2]))
        two = CandidatePool(jurors_from_arrays([0.1, 0.3]))
        assert one.fingerprint != two.fingerprint

    def test_requirement_is_part_of_fingerprint(self):
        free = CandidatePool([Juror(0.2, 0.0, juror_id="x")])
        paid = CandidatePool([Juror(0.2, 0.5, juror_id="x")])
        assert free.fingerprint != paid.fingerprint

    def test_empty_pool_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            CandidatePool([])

    def test_duplicate_ids_rejected_upfront(self):
        from repro.errors import InvalidJuryError

        with pytest.raises(InvalidJuryError, match="duplicate"):
            CandidatePool([Juror(0.1, juror_id="x"), Juror(0.2, juror_id="x")])


class TestPrefixSweepCache:
    def test_lru_eviction(self):
        cache = PrefixSweepCache(maxsize=2)
        for key in ("a", "b", "c"):
            cache.put(key, np.array([1]), np.array([0.5]))
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_get_refreshes_recency(self):
        cache = PrefixSweepCache(maxsize=2)
        cache.put("a", np.array([1]), np.array([0.5]))
        cache.put("b", np.array([1]), np.array([0.5]))
        assert cache.get("a") is not None
        cache.put("c", np.array([1]), np.array([0.5]))
        assert "a" in cache and "b" not in cache

    def test_zero_capacity_stores_nothing(self):
        cache = PrefixSweepCache(maxsize=0)
        cache.put("a", np.array([1]), np.array([0.5]))
        assert cache.get("a") is None
        assert len(cache) == 0


class TestSelectionQueryValidation:
    def test_requires_exactly_one_source(self):
        cands = tuple(jurors_from_arrays([0.1, 0.2, 0.3]))
        with pytest.raises(ValueError):
            SelectionQuery(task_id="t", candidates=None, pool=None)
        with pytest.raises(ValueError):
            SelectionQuery(
                task_id="t", candidates=cands, pool=CandidatePool(cands)
            )

    def test_pay_requires_budget(self):
        cands = tuple(jurors_from_arrays([0.1, 0.2, 0.3]))
        with pytest.raises(ValueError, match="budget"):
            SelectionQuery(task_id="t", candidates=cands, model="pay")

    def test_unknown_model_rejected(self):
        cands = tuple(jurors_from_arrays([0.1, 0.2, 0.3]))
        with pytest.raises(ValueError, match="model"):
            SelectionQuery(task_id="t", candidates=cands, model="wat")


class TestBatchMatchesScalar:
    def test_altr_batch_bit_identical_to_single_query(self, rng):
        """The acceptance bar: batch results == scalar path, bit for bit."""
        engine = BatchSelectionEngine()
        pools = [_pool_jurors(rng, int(n)) for n in rng.integers(3, 40, size=12)]
        outcomes = engine.run(
            [
                SelectionQuery(task_id=f"t{i}", candidates=tuple(cands))
                for i, cands in enumerate(pools)
            ]
        )
        for outcome, cands in zip(outcomes, pools):
            single = select_jury_altr(cands)
            assert outcome.ok
            assert outcome.result.jer == single.jer  # exact, not approx
            assert outcome.result.juror_ids == single.juror_ids
            assert outcome.result.stats.jer_evaluations == single.stats.jer_evaluations

    def test_pay_batch_matches_single_query(self, rng):
        engine = BatchSelectionEngine()
        pools = [_pool_jurors(rng, 15, priced=True) for _ in range(5)]
        outcomes = engine.run(
            [
                SelectionQuery(
                    task_id=f"p{i}", candidates=tuple(c), model="pay", budget=2.0
                )
                for i, c in enumerate(pools)
            ]
        )
        for outcome, cands in zip(outcomes, pools):
            single = select_jury_pay(cands, budget=2.0)
            assert outcome.ok
            assert outcome.result.jer == single.jer
            assert set(outcome.result.juror_ids) == set(single.juror_ids)

    def test_exact_batch_matches_single_query(self, rng):
        engine = BatchSelectionEngine()
        pools = [_pool_jurors(rng, 10, priced=True) for _ in range(3)]
        outcomes = engine.run(
            [
                SelectionQuery(
                    task_id=f"e{i}", candidates=tuple(c), model="exact", budget=3.0
                )
                for i, c in enumerate(pools)
            ]
        )
        for outcome, cands in zip(outcomes, pools):
            single = select_jury_optimal(cands, budget=3.0)
            assert outcome.ok
            assert outcome.result.jer == pytest.approx(single.jer, abs=1e-15)
            assert outcome.result.juror_ids == single.juror_ids

    def test_mixed_models_in_one_batch(self, rng):
        cands = tuple(_pool_jurors(rng, 9, priced=True))
        engine = BatchSelectionEngine()
        outcomes = engine.run(
            [
                SelectionQuery(task_id="a", candidates=cands, model="altr"),
                SelectionQuery(task_id="p", candidates=cands, model="pay", budget=2.0),
                SelectionQuery(task_id="e", candidates=cands, model="exact", budget=2.0),
            ]
        )
        assert [o.task_id for o in outcomes] == ["a", "p", "e"]
        assert all(o.ok for o in outcomes)
        assert outcomes[2].result.jer <= outcomes[1].result.jer + 1e-10


class TestSharedPoolCaching:
    def test_shared_pool_swept_once(self, rng):
        pool = CandidatePool(_pool_jurors(rng, 25))
        engine = BatchSelectionEngine()
        outcomes = engine.run(
            [SelectionQuery(task_id=f"t{i}", pool=pool) for i in range(100)]
        )
        assert all(o.ok for o in outcomes)
        assert engine.stats.batch_sweeps == 1
        assert engine.stats.pools_swept == 1

    def test_equal_content_pools_deduplicated(self, rng):
        eps = rng.uniform(0.05, 0.95, size=11)
        make = lambda: tuple(jurors_from_arrays(eps))  # noqa: E731
        engine = BatchSelectionEngine()
        engine.run(
            [
                SelectionQuery(task_id=f"t{i}", candidates=make())
                for i in range(4)
            ]
        )
        assert engine.stats.pools_swept == 1

    def test_cache_reused_across_runs(self, rng):
        # frontier_size=0 pins the sweep-cache path: with the answer
        # frontier on, the repeat run never reaches the sweep cache at all
        # (covered by tests/service/test_frontier_engine.py).
        pool = CandidatePool(_pool_jurors(rng, 13))
        engine = BatchSelectionEngine(frontier_size=0)
        engine.run([SelectionQuery(task_id="t1", pool=pool)])
        engine.run([SelectionQuery(task_id="t2", pool=pool)])
        assert engine.stats.pools_swept == 1
        assert engine.cache.hits >= 1

    def test_cache_size_zero_resweeps_across_runs(self, rng):
        pool = CandidatePool(_pool_jurors(rng, 13))
        engine = BatchSelectionEngine(cache_size=0, frontier_size=0)
        engine.run([SelectionQuery(task_id="t1", pool=pool)])
        engine.run([SelectionQuery(task_id="t2", pool=pool)])
        assert engine.stats.pools_swept == 2

    def test_distinct_sizes_grouped_into_separate_sweeps(self, rng):
        engine = BatchSelectionEngine()
        queries = [
            SelectionQuery(task_id="a", candidates=tuple(_pool_jurors(rng, 7))),
            SelectionQuery(task_id="b", candidates=tuple(_pool_jurors(rng, 7))),
            SelectionQuery(task_id="c", candidates=tuple(_pool_jurors(rng, 9))),
        ]
        assert all(o.ok for o in engine.run(queries))
        assert engine.stats.batch_sweeps == 2  # one per distinct pool size
        assert engine.stats.pools_swept == 3

    def test_max_size_variants_share_one_sweep(self, rng):
        pool = CandidatePool(_pool_jurors(rng, 21))
        engine = BatchSelectionEngine()
        outcomes = engine.run(
            [
                SelectionQuery(task_id=f"m{m}", pool=pool, max_size=m)
                for m in (1, 5, 9, None)
            ]
        )
        assert engine.stats.batch_sweeps == 1
        for outcome, m in zip(outcomes, (1, 5, 9)):
            assert outcome.result.size <= m
        for outcome, cap in zip(outcomes, (1, 5, 9, None)):
            single = select_jury_altr(list(pool.ordered), max_size=cap)
            assert outcome.result.jer == single.jer


class TestErrorHandling:
    def test_infeasible_pay_query_is_isolated(self, rng):
        good = tuple(_pool_jurors(rng, 7))
        pricey = (Juror(0.2, 99.0, juror_id="rich"),)
        engine = BatchSelectionEngine()
        outcomes = engine.run(
            [
                SelectionQuery(task_id="ok", candidates=good),
                SelectionQuery(task_id="bad", candidates=pricey, model="pay", budget=1.0),
            ]
        )
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "affordable" in outcomes[1].error_info.message

    def test_raise_errors_propagates(self, rng):
        pricey = (Juror(0.2, 99.0, juror_id="rich"),)
        engine = BatchSelectionEngine()
        with pytest.raises(InfeasibleSelectionError):
            engine.run(
                [SelectionQuery(task_id="bad", candidates=pricey, model="pay", budget=1.0)],
                raise_errors=True,
            )

    def test_select_raises_and_returns(self, rng):
        cands = _pool_jurors(rng, 9)
        engine = BatchSelectionEngine()
        result = engine.select(
            SelectionQuery(task_id="one", candidates=tuple(cands))
        )
        assert result.jer == select_jury_altr(cands).jer
        assert result.stats.elapsed_seconds >= 0.0


class TestProcessPool:
    def test_parallel_exact_matches_inline(self, rng):
        pools = [tuple(_pool_jurors(rng, 9, priced=True)) for _ in range(4)]
        queries = [
            SelectionQuery(task_id=f"e{i}", candidates=c, model="exact", budget=3.0)
            for i, c in enumerate(pools)
        ]
        inline = BatchSelectionEngine().run(list(queries))
        parallel = BatchSelectionEngine(max_workers=2).run(list(queries))
        for a, b in zip(inline, parallel):
            assert a.ok and b.ok
            assert a.result.jer == pytest.approx(b.result.jer, abs=1e-15)
            assert a.result.juror_ids == b.result.juror_ids

    def test_parallel_exact_captures_infeasible(self):
        pricey = (Juror(0.2, 99.0, juror_id="rich"),)
        queries = [
            SelectionQuery(
                task_id=f"e{i}", candidates=pricey, model="exact", budget=1.0
            )
            for i in range(2)
        ]
        outcomes = BatchSelectionEngine(max_workers=2).run(queries)
        assert all(not o.ok for o in outcomes)
        assert all("affordable" in o.error_info.message for o in outcomes)
