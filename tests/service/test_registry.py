"""Tests for the live pool registry (repro.service.registry).

Covers the versioned mutation API, the delta-maintained sweep profile
(including the churn-oracle acceptance bar: bit-identical to a fresh
CandidatePool at *every* version), registry naming, and the engine
integration with version-keyed sweep-cache behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jer import batch_prefix_jer_sweep
from repro.core.juror import Juror, jurors_from_arrays
from repro.core.selection.altr import select_jury_altr
from repro.errors import (
    EmptyCandidateSetError,
    InvalidJuryError,
    PoolNotFoundError,
)
from repro.service import (
    BatchSelectionEngine,
    CandidatePool,
    LivePool,
    PoolRegistry,
    SelectionQuery,
)


def _live_pool(rng, n: int, *, priced: bool = False, pool_id: str | None = None):
    eps = rng.uniform(0.05, 0.9, size=n)
    reqs = rng.uniform(0.05, 1.0, size=n) if priced else None
    return LivePool(jurors_from_arrays(eps, reqs), pool_id=pool_id)


class TestLivePoolMutation:
    def test_versions_are_monotonic(self, rng):
        pool = _live_pool(rng, 5)
        assert pool.version == 0
        assert pool.add_juror(Juror(0.15, juror_id="n1")) == 1
        assert pool.update_error_rate("n1", 0.4) == 2
        pool.remove_juror("n1")
        assert pool.version == 3

    def test_ordering_is_lemma3_after_churn(self, rng):
        pool = _live_pool(rng, 20)
        pool.add_juror(Juror(0.5, juror_id="mid"))
        pool.update_error_rate("mid", 0.07)
        eps = pool.error_rates
        assert np.all(np.diff(eps) >= 0.0)
        expected = sorted(pool.ordered, key=lambda j: (j.error_rate, j.juror_id))
        assert list(pool.ordered) == expected

    def test_duplicate_add_rejected_without_version_bump(self, rng):
        pool = _live_pool(rng, 3)
        pool.add_juror(Juror(0.2, juror_id="dup"))
        version = pool.version
        with pytest.raises(InvalidJuryError, match="already"):
            pool.add_juror(Juror(0.3, juror_id="dup"))
        assert pool.version == version

    def test_unknown_remove_and_update_rejected(self, rng):
        pool = _live_pool(rng, 3)
        with pytest.raises(InvalidJuryError, match="not in the pool"):
            pool.remove_juror("ghost")
        with pytest.raises(InvalidJuryError, match="not in the pool"):
            pool.update_error_rate("ghost", 0.2)

    def test_update_requirement_only(self, rng):
        pool = _live_pool(rng, 3, priced=True)
        target = pool.ordered[1]
        pool.update_juror(target.juror_id, requirement=9.5)
        refreshed = pool.get(target.juror_id)
        assert refreshed.requirement == 9.5
        assert refreshed.error_rate == target.error_rate

    def test_duplicate_initial_candidates_rejected(self):
        with pytest.raises(InvalidJuryError, match="already"):
            LivePool([Juror(0.1, juror_id="x"), Juror(0.2, juror_id="x")])

    def test_snapshot_matches_candidate_pool(self, rng):
        pool = _live_pool(rng, 9, priced=True)
        pool.add_juror(Juror(0.11, 0.3, juror_id="late"))
        snap = pool.snapshot()
        fresh = CandidatePool(list(pool.ordered))
        assert snap.fingerprint == fresh.fingerprint
        assert snap.ordered == fresh.ordered
        np.testing.assert_array_equal(snap.error_rates, fresh.error_rates)

    def test_empty_pool_cannot_snapshot_or_sweep(self):
        pool = LivePool()
        with pytest.raises(EmptyCandidateSetError):
            pool.snapshot()
        with pytest.raises(EmptyCandidateSetError):
            pool.sweep_profile()

    def test_identical_readd_restores_fingerprint(self, rng):
        pool = _live_pool(rng, 7)
        fingerprint = pool.fingerprint
        juror = pool.remove_juror(pool.ordered[2].juror_id)
        assert pool.fingerprint != fingerprint
        pool.add_juror(juror)
        assert pool.fingerprint == fingerprint


class TestChurnOracle:
    """Acceptance bar: delta-maintained selections are bit-identical to a
    fresh CandidatePool + scalar/batch path at every version."""

    def test_profile_and_selection_bit_identical_at_every_version(self, rng):
        registry = PoolRegistry()
        pool = registry.create("P", jurors_from_arrays(rng.uniform(0.05, 0.9, size=31)))
        engine = BatchSelectionEngine(registry=registry)
        ids = [j.juror_id for j in pool.ordered]
        fresh_id = 1000

        for step in range(120):
            op = rng.integers(3)
            if op == 0 or pool.size <= 3:
                juror = Juror(
                    float(rng.uniform(0.05, 0.95)),
                    float(rng.uniform(0.0, 1.0)),
                    juror_id=f"f{fresh_id}",
                )
                fresh_id += 1
                pool.add_juror(juror)
                ids.append(juror.juror_id)
            elif op == 1:
                pool.remove_juror(ids.pop(int(rng.integers(len(ids)))))
            else:
                pool.update_error_rate(
                    ids[int(rng.integers(len(ids)))],
                    float(rng.uniform(0.05, 0.95)),
                )

            # Profile: bit-identical to the batch kernel on a fresh pool.
            ns, jers = pool.sweep_profile()
            ref_ns, ref_jers = batch_prefix_jer_sweep(pool.error_rates[np.newaxis, :])
            np.testing.assert_array_equal(np.asarray(ns), ref_ns)
            np.testing.assert_array_equal(np.asarray(jers), ref_jers[0])

            # Selection: bit-identical to the scalar path on a fresh pool.
            outcome = engine.run(
                [SelectionQuery(task_id=f"s{step}", pool_name="P")]
            )[0]
            assert outcome.ok, outcome.error_info
            single = select_jury_altr(list(pool.ordered))
            assert outcome.result.jer == single.jer
            assert outcome.result.juror_ids == single.juror_ids

        assert pool.stats.rows_reused > 0  # the delta path actually engaged

    def test_full_rebuild_fallback_past_churn_threshold(self, rng):
        pool = _live_pool(rng, 12)
        pool.sweep_profile()
        ids = [j.juror_id for j in pool.ordered]
        # Churn far past the threshold without querying in between.
        for index, juror_id in enumerate(ids):
            pool.update_error_rate(juror_id, float(rng.uniform(0.05, 0.95)))
        ns, jers = pool.sweep_profile()
        assert pool.stats.full_rebuilds >= 1
        _, ref = batch_prefix_jer_sweep(pool.error_rates[np.newaxis, :])
        np.testing.assert_array_equal(np.asarray(jers), ref[0])

    def test_profile_cached_per_version(self, rng):
        pool = _live_pool(rng, 9)
        first = pool.sweep_profile()
        second = pool.sweep_profile()
        assert first[1] is second[1]  # same arrays, no recompute
        assert pool.stats.repairs == 1
        pool.add_juror(Juror(0.5, juror_id="new"))
        third = pool.sweep_profile()
        assert third[1] is not first[1]
        assert pool.stats.repairs == 2


class TestPoolRegistry:
    def test_create_get_drop_roundtrip(self, rng):
        registry = PoolRegistry()
        pool = registry.create("P1", jurors_from_arrays([0.1, 0.2, 0.3]))
        assert registry.get("P1") is pool
        assert "P1" in registry and len(registry) == 1
        assert registry.names() == ("P1",)
        assert registry.drop("P1") is pool
        assert "P1" not in registry

    def test_duplicate_create_requires_replace(self):
        registry = PoolRegistry()
        registry.create("P1", jurors_from_arrays([0.1, 0.2, 0.3]))
        with pytest.raises(InvalidJuryError, match="already exists"):
            registry.create("P1", jurors_from_arrays([0.4]))
        replaced = registry.create(
            "P1", jurors_from_arrays([0.4]), replace=True
        )
        assert registry.get("P1") is replaced
        assert replaced.version == 0

    def test_unknown_name_raises_pool_not_found(self):
        registry = PoolRegistry()
        with pytest.raises(PoolNotFoundError, match="no pool named"):
            registry.get("nope")
        with pytest.raises(KeyError):  # idiomatic mapping behaviour
            registry.drop("nope")

    def test_bad_names_rejected(self):
        registry = PoolRegistry()
        with pytest.raises(ValueError):
            registry.create("")
        with pytest.raises(ValueError):
            registry.create(42)  # type: ignore[arg-type]


class TestEngineIntegration:
    def _registry_engine(self, rng, n=15):
        registry = PoolRegistry()
        eps = rng.uniform(0.05, 0.9, size=n)
        registry.create("P", jurors_from_arrays(eps))
        return registry, BatchSelectionEngine(registry=registry)

    def test_pool_name_requires_registry(self, rng):
        engine = BatchSelectionEngine()
        outcome = engine.run([SelectionQuery(task_id="t", pool_name="P")])[0]
        assert not outcome.ok and "registry" in outcome.error_info.message
        with pytest.raises(ValueError, match="exactly one"):
            SelectionQuery(
                task_id="t",
                pool_name="P",
                candidates=tuple(jurors_from_arrays([0.2])),
            )

    def test_unknown_pool_name_is_isolated(self, rng):
        registry, engine = self._registry_engine(rng)
        outcomes = engine.run(
            [
                SelectionQuery(task_id="ok", pool_name="P"),
                SelectionQuery(task_id="bad", pool_name="missing"),
            ]
        )
        assert outcomes[0].ok
        assert not outcomes[1].ok and "missing" in outcomes[1].error_info.message

    def test_live_profile_used_instead_of_engine_sweep(self, rng):
        registry, engine = self._registry_engine(rng)
        outcomes = engine.run(
            [SelectionQuery(task_id=f"t{i}", pool_name="P") for i in range(10)]
        )
        assert all(o.ok for o in outcomes)
        assert engine.stats.live_profiles == 1  # one profile pull, shared
        assert engine.stats.batch_sweeps == 0  # no engine-side sweep at all

    def test_pay_and_exact_against_live_pools(self, rng):
        registry = PoolRegistry()
        cands = jurors_from_arrays(
            rng.uniform(0.05, 0.9, size=9), rng.uniform(0.05, 1.0, size=9)
        )
        registry.create("paid", cands)
        engine = BatchSelectionEngine(registry=registry)
        outcomes = engine.run(
            [
                SelectionQuery(task_id="p", pool_name="paid", model="pay", budget=2.0),
                SelectionQuery(task_id="e", pool_name="paid", model="exact", budget=2.0),
            ]
        )
        assert all(o.ok for o in outcomes)
        assert outcomes[1].result.jer <= outcomes[0].result.jer + 1e-10


class TestCacheInvalidation:
    """Satellite: a LivePool mutation must never serve a stale sweep profile
    from PrefixSweepCache — the version bump changes the content fingerprint
    (evicting the old state from reach), and an identical re-add restores
    the old fingerprint's cache hits."""

    def test_mutation_never_serves_stale_profile(self, rng):
        registry = PoolRegistry()
        pool = registry.create("P", jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3]))
        # frontier_size=0 pins the sweep-cache path itself; the frontier's
        # own invalidation story lives in tests/service/test_frontier_engine.py.
        engine = BatchSelectionEngine(registry=registry, frontier_size=0)

        first = engine.run([SelectionQuery(task_id="a", pool_name="P")])[0]
        assert engine.cache.misses == 1 and engine.cache.hits == 0
        repeat = engine.run([SelectionQuery(task_id="b", pool_name="P")])[0]
        assert engine.cache.hits == 1  # unchanged pool: cached profile reused
        assert repeat.result.jer == first.result.jer

        pool.add_juror(Juror(0.05, juror_id="star"))
        mutated = engine.run([SelectionQuery(task_id="c", pool_name="P")])[0]
        # Fresh-state oracle: the result reflects the mutation, not the
        # cached profile of the previous version.
        single = select_jury_altr(list(pool.ordered))
        assert mutated.result.jer == single.jer
        assert mutated.result.juror_ids == single.juror_ids
        assert "star" in mutated.result.juror_ids
        assert engine.cache.misses == 2  # version bump: old profile unusable

    def test_identical_readd_restores_cache_hits(self, rng):
        registry = PoolRegistry()
        pool = registry.create("P", jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3]))
        engine = BatchSelectionEngine(registry=registry, frontier_size=0)

        baseline = engine.run([SelectionQuery(task_id="a", pool_name="P")])[0]
        juror = pool.remove_juror(pool.ordered[-1].juror_id)
        engine.run([SelectionQuery(task_id="b", pool_name="P")])
        pool.add_juror(juror)  # membership now identical to the baseline

        hits_before = engine.cache.hits
        live_profiles_before = engine.stats.live_profiles
        restored = engine.run([SelectionQuery(task_id="c", pool_name="P")])[0]
        assert engine.cache.hits == hits_before + 1
        assert engine.stats.live_profiles == live_profiles_before  # no repull
        assert restored.result.jer == baseline.result.jer
        assert restored.result.juror_ids == baseline.result.juror_ids

    def test_explicit_invalidation_of_dropped_pool(self, rng):
        registry = PoolRegistry()
        pool = registry.create("P", jurors_from_arrays([0.1, 0.2, 0.3]))
        engine = BatchSelectionEngine(registry=registry)
        engine.run([SelectionQuery(task_id="a", pool_name="P")])
        fingerprint = pool.fingerprint
        registry.drop("P")
        assert engine.cache.invalidate(fingerprint) is True
        assert engine.cache.invalidate(fingerprint) is False
        assert engine.cache.evictions == 1
