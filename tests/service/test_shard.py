"""Sharded execution: bit-identity, worker caches, broadcast invalidation,
and end-to-end error-code threading out of worker processes."""

from __future__ import annotations

import asyncio
import io
import json
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import ERROR_CODES, AsyncJuryService, JuryService, PoolCommand, SelectionRequest
from repro.api.codes import error_code
from repro.cli import run_serve
from repro.core.juror import Juror, jurors_from_arrays
from repro.errors import InfeasibleSelectionError, ReproError
from repro.service import (
    BatchSelectionEngine,
    CandidatePool,
    PoolRegistry,
    SelectionQuery,
    ShardedExecutor,
)
from repro.service import shard as shard_module
from repro.service.shard import FAULT_MARKER, PlanPayload, PoolColumns
from repro.testing import DEFAULT_SEED

#: Every registered ReproError subclass and its wire code — the classes the
#: fault-injection seam drives through a real worker process.
REPRO_ERROR_CODES = sorted(
    (
        (cls, code)
        for cls, code in ERROR_CODES.items()
        if isinstance(cls, type) and issubclass(cls, ReproError)
    ),
    key=lambda pair: pair[0].__name__,
)


def _pool_jurors(rng: np.random.Generator, n: int, *, tag: str, priced: bool = False):
    eps = rng.uniform(0.05, 0.9, size=n)
    reqs = rng.uniform(0.05, 1.0, size=n) if priced else np.zeros(n)
    return tuple(
        Juror(float(e), float(r), juror_id=f"{tag}-{i}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    )


def _mixed_queries(rng: np.random.Generator, count: int = 16):
    queries = []
    for i in range(count):
        if i % 5 == 3:
            queries.append(
                SelectionQuery(
                    task_id=f"p{i}",
                    candidates=_pool_jurors(rng, 13, tag=f"p{i}", priced=True),
                    model="pay",
                    budget=2.0,
                )
            )
        elif i % 5 == 4:
            queries.append(
                SelectionQuery(
                    task_id=f"e{i}",
                    candidates=_pool_jurors(rng, 9, tag=f"e{i}", priced=True),
                    model="exact",
                    budget=2.5,
                )
            )
        else:
            queries.append(
                SelectionQuery(
                    task_id=f"a{i}",
                    candidates=_pool_jurors(rng, 11 + 2 * (i % 3), tag=f"a{i}"),
                )
            )
    return queries


@pytest.fixture
def dedicated_executor():
    executor = ShardedExecutor(2, dedicated=True)
    yield executor
    executor.close()


class TestShardRouting:
    def test_shard_of_is_deterministic_and_in_range(self, rng):
        executor = ShardedExecutor(4)
        pools = [
            CandidatePool(_pool_jurors(rng, 7, tag=f"s{i}")) for i in range(32)
        ]
        shards = [executor.shard_of(p.fingerprint) for p in pools]
        assert shards == [executor.shard_of(p.fingerprint) for p in pools]
        assert all(0 <= s < 4 for s in shards)
        assert len(set(shards)) > 1  # fingerprints actually spread

    def test_rejects_non_positive_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedExecutor(0)


class TestBitIdentity:
    def test_sharded_matches_sequential_engine(self, rng):
        """The acceptance bar: sharded selections == sequential, bit for bit."""
        queries = _mixed_queries(rng)
        sequential = BatchSelectionEngine().run(list(queries))
        sharded = BatchSelectionEngine(max_workers=3).run(list(queries))
        for seq, shd in zip(sequential, sharded):
            assert seq.ok and shd.ok
            assert shd.result.jer == seq.result.jer  # exact, not approx
            assert shd.result.juror_ids == seq.result.juror_ids
            assert shd.result.algorithm == seq.result.algorithm
            assert shd.result.model == seq.result.model

    def test_registry_pools_match_sequential(self, rng):
        members = list(jurors_from_arrays(rng.uniform(0.05, 0.9, size=19)))
        queries = [
            SelectionQuery(task_id=f"t{i}", pool_name="P", max_size=m)
            for i, m in enumerate((None, 3, 7))
        ]

        def answers(engine_options):
            registry = PoolRegistry()
            registry.create("P", members)
            engine = BatchSelectionEngine(registry=registry, **engine_options)
            return engine.run(list(queries))

        for seq, shd in zip(answers({}), answers({"max_workers": 2})):
            assert seq.ok and shd.ok
            assert shd.result.jer == seq.result.jer
            assert shd.result.juror_ids == seq.result.juror_ids

    def test_service_wire_rows_match_sequential(self, rng):
        requests = [
            SelectionRequest(
                task_id=f"t{i}", candidates=_pool_jurors(rng, 9, tag=f"t{i}")
            )
            for i in range(6)
        ]

        def rows(**options):
            responses = JuryService(**options).select_many(requests)
            normalised = []
            for response in responses:
                row = response.to_dict()
                row.pop("timings")
                normalised.append(row)
            return normalised

        assert rows() == rows(workers=2)

    def test_in_process_fallback_matches(self, rng, dedicated_executor):
        queries = _mixed_queries(rng, count=8)
        sequential = BatchSelectionEngine().run(list(queries))
        dedicated_executor._in_process = True  # simulate fork-restricted env
        engine = BatchSelectionEngine(executor=dedicated_executor)
        for seq, shd in zip(sequential, engine.run(list(queries))):
            assert shd.result.jer == seq.result.jer
            assert shd.result.juror_ids == seq.result.juror_ids
        assert dedicated_executor.in_process

    def test_payload_round_trip_preserves_plan(self, rng):
        pool = CandidatePool(_pool_jurors(rng, 9, tag="rt", priced=True))
        engine = BatchSelectionEngine()
        plan = engine.plan(
            SelectionQuery(task_id="rt", pool=pool, model="exact", budget=2.0)
        )
        payload = PlanPayload.from_plan(plan, fingerprint=pool.fingerprint)
        columns = PoolColumns.from_view(
            plan.view, fingerprint=pool.fingerprint, need_ids=True
        )
        rebuilt = payload.to_plan(columns.to_view())
        assert rebuilt.describe() == plan.describe()
        # Columns travel as arrays; members rematerialise from ids lazily.
        assert rebuilt.view.ids == plan.view.ids
        assert [j.juror_id for j in rebuilt.view.ordered] == [
            j.juror_id for j in plan.view.ordered
        ]

    def test_shared_pool_ships_one_block_per_shard_batch(self, rng, dedicated_executor):
        """The serve shape: many queries on one pool ship the pool columns
        once (a single PoolColumns block), not once per query."""
        shipped = []
        original = dedicated_executor.submit_batch

        def spy(shard, payloads, blocks):
            shipped.append((len(payloads), len(blocks)))
            return original(shard, payloads, blocks)

        dedicated_executor.submit_batch = spy
        engine = BatchSelectionEngine(executor=dedicated_executor)
        pool = CandidatePool(_pool_jurors(rng, 15, tag="blk"))
        outcomes = engine.run(
            [SelectionQuery(task_id=f"t{i}", pool=pool) for i in range(32)]
        )
        assert all(o.ok for o in outcomes)
        assert shipped == [(32, 1)]


class TestWorkerLocalCache:
    def test_second_run_hits_worker_cache(self, rng, dedicated_executor):
        pool = CandidatePool(_pool_jurors(rng, 15, tag="warm"))
        engine = BatchSelectionEngine(executor=dedicated_executor)
        engine.run([SelectionQuery(task_id="t1", pool=pool)])
        engine.run([SelectionQuery(task_id="t2", pool=pool)])
        stats = dedicated_executor.cache_stats()
        assert sum(s["hits"] for s in stats) >= 1
        # The parent cache saw no sweep work: cold inline pools are the
        # workers' job under sharded execution.
        assert engine.stats.batch_sweeps == 0

    def test_live_pool_profile_is_relayed_not_recomputed(self, rng, dedicated_executor):
        registry = PoolRegistry()
        registry.create("P", list(jurors_from_arrays(rng.uniform(0.05, 0.9, 13))))
        # frontier_size=0 pins the relay path itself; with the frontier on,
        # the repeat query never reaches the shards at all (covered by
        # tests/service/test_frontier_engine.py).
        engine = BatchSelectionEngine(
            executor=dedicated_executor, registry=registry, frontier_size=0
        )
        engine.run([SelectionQuery(task_id="t1", pool_name="P")])
        assert engine.stats.live_profiles == 1
        engine.run([SelectionQuery(task_id="t2", pool_name="P")])
        # Second pass relays the parent-cached profile instead of asking the
        # live pool (or a worker sweep) again.
        assert engine.stats.live_profiles == 1
        assert engine.cache.hits >= 1


class TestBroadcastInvalidation:
    def test_drop_evicts_every_worker_cache(self, rng, dedicated_executor):
        """Regression: dropping a registry pool must evict its fingerprint
        from the worker-local caches, not just the parent cache — and a
        same-fingerprint re-create must recompute, never serve stale."""
        members = list(jurors_from_arrays(rng.uniform(0.05, 0.9, size=11)))
        registry = PoolRegistry()
        engine = BatchSelectionEngine(
            executor=dedicated_executor, registry=registry
        )
        service = JuryService(engine=engine)
        service.pool(
            PoolCommand(action="create", name="P", candidates=tuple(members))
        )
        fingerprint = registry.get("P").fingerprint
        first = service.select(SelectionRequest(task_id="t1", pool="P"))
        assert first.status == "ok"
        assert any(dedicated_executor.contains(fingerprint))

        live_profiles_before = engine.stats.live_profiles
        service.pool(PoolCommand(action="drop", name="P"))
        assert not any(dedicated_executor.contains(fingerprint))
        assert fingerprint not in engine.cache

        # Same-fingerprint re-create: the profile is freshly swept by the
        # new live pool (live_profiles increments) rather than served from
        # any cache, and the answer matches a fresh sequential engine.
        service.pool(
            PoolCommand(action="create", name="P", candidates=tuple(members))
        )
        assert registry.get("P").fingerprint == fingerprint
        second = service.select(SelectionRequest(task_id="t2", pool="P"))
        assert second.status == "ok"
        assert second.jer == first.jer
        assert engine.stats.live_profiles == live_profiles_before + 1
        assert any(dedicated_executor.contains(fingerprint))

        fresh = BatchSelectionEngine().select(
            SelectionQuery(task_id="oracle", candidates=tuple(members))
        )
        assert second.jer == fresh.jer
        assert tuple(j.juror_id for j in second.members) == fresh.juror_ids


def _fault_request(cls: type[BaseException]) -> SelectionRequest:
    return SelectionRequest(
        task_id=f"{FAULT_MARKER}{cls.__name__}",
        candidates=tuple(jurors_from_arrays([0.1, 0.2, 0.3])),
    )


@pytest.fixture
def fault_injection(monkeypatch):
    """Arm the parent-side fault-injection seam for one test."""
    monkeypatch.setattr(shard_module, "FAULT_INJECTION", True)


class TestWorkerErrorCodeThreading:
    """Satellite: every ReproError subclass raised *inside a worker* surfaces
    its registered wire code — never the generic ``internal``."""

    @pytest.mark.parametrize(
        "cls,code", REPRO_ERROR_CODES, ids=lambda p: getattr(p, "__name__", p)
    )
    def test_engine_outcome_carries_registered_code(self, cls, code, fault_injection):
        engine = BatchSelectionEngine(max_workers=2)
        query = SelectionQuery(
            task_id=f"{FAULT_MARKER}{cls.__name__}",
            candidates=tuple(jurors_from_arrays([0.1, 0.2, 0.3])),
        )
        outcome = engine.run([query])[0]
        assert not outcome.ok
        assert type(outcome.exception) is cls
        assert outcome.error_info.code == code
        assert code != "internal"

    @pytest.mark.parametrize(
        "cls,code", REPRO_ERROR_CODES, ids=lambda p: getattr(p, "__name__", p)
    )
    def test_select_many_response_carries_registered_code(
        self, cls, code, fault_injection
    ):
        response = JuryService(workers=2).select_many([_fault_request(cls)])[0]
        assert response.status == "error"
        assert response.error.code == code

    def test_marker_task_ids_execute_normally_without_the_flag(self):
        """The seam is off by default: a production task id that happens to
        carry the marker is answered like any other request."""
        cls, _ = REPRO_ERROR_CODES[0]
        response = JuryService(workers=2).select(_fault_request(cls))
        assert response.status == "ok" and response.size == 3

    def test_async_service_carries_registered_code(self, fault_injection):
        cls, code = REPRO_ERROR_CODES[0]

        async def drive():
            service = AsyncJuryService(workers=2)
            ok_request = SelectionRequest(
                task_id="fine", candidates=tuple(jurors_from_arrays([0.1, 0.2, 0.3]))
            )
            return await asyncio.gather(
                service.select(_fault_request(cls)), service.select(ok_request)
            )

        failed, fine = asyncio.run(drive())
        assert failed.status == "error" and failed.error.code == code
        assert fine.status == "ok"

    def test_real_worker_failure_is_not_injected(self):
        """A genuine domain failure raised inside the worker (infeasible
        budget) threads its own class and code — the seam is not involved."""
        pricey = (Juror(0.2, 99.0, juror_id="rich"),)
        engine = BatchSelectionEngine(max_workers=2)
        outcome = engine.run(
            [SelectionQuery(task_id="bad", candidates=pricey, model="pay", budget=1.0)]
        )[0]
        assert isinstance(outcome.exception, InfeasibleSelectionError)
        assert outcome.error_info.code == error_code(InfeasibleSelectionError)

    def test_serve_cli_row_carries_registered_code(self, fault_injection):
        cls, code = REPRO_ERROR_CODES[0]
        commands = [
            {
                "cmd": "select",
                "task": f"{FAULT_MARKER}{cls.__name__}",
                "candidates": [
                    {"id": "a", "error_rate": 0.1},
                    {"id": "b", "error_rate": 0.2},
                    {"id": "c", "error_rate": 0.3},
                ],
            },
            {"cmd": "quit"},
        ]
        stdin = io.StringIO("\n".join(json.dumps(c) for c in commands) + "\n")
        stdout = io.StringIO()
        args = SimpleNamespace(cache_size=None, workers=2)
        exit_code = run_serve(args, stdin=stdin, stdout=stdout)
        rows = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert exit_code == 2  # the failed select marks the session
        assert rows[0]["ok"] is False
        assert rows[0]["error"]["code"] == code


class TestBrokenShardRecovery:
    def test_killed_worker_degrades_one_batch_then_reforks(self, rng):
        """A shard process dying mid-service answers the affected batch
        in-process and is reforked on the next dispatch — the executor never
        degrades permanently."""
        import os
        import signal

        executor = ShardedExecutor(1, dedicated=True)
        engine = BatchSelectionEngine(executor=executor)
        try:
            queries = [
                SelectionQuery(task_id="t1", candidates=_pool_jurors(rng, 9, tag="k1"))
            ]
            assert engine.run(list(queries))[0].ok
            for pid in list(executor._pools[0]._processes):
                os.kill(pid, signal.SIGKILL)
            # The batch that hits the dead worker still gets answered.
            outcome = engine.run(
                [SelectionQuery(task_id="t2", candidates=_pool_jurors(rng, 9, tag="k2"))]
            )[0]
            assert outcome.ok
            assert not executor.in_process
            # And the next dispatch runs in a freshly forked worker again.
            outcome = engine.run(
                [SelectionQuery(task_id="t3", candidates=_pool_jurors(rng, 9, tag="k3"))]
            )[0]
            assert outcome.ok
            assert executor._pools[0] is not None
        finally:
            executor.close()


class TestSharedPoolLifecycle:
    def test_executor_survives_shutdown_shared_pools(self, rng):
        """shutdown_shared_pools() between dispatches must not orphan or
        deadlock a live shared executor — the next dispatch re-registers
        fresh slots and reforks."""
        engine = BatchSelectionEngine(max_workers=2)
        first = engine.run(
            [SelectionQuery(task_id="t1", candidates=_pool_jurors(rng, 9, tag="s1"))]
        )[0]
        assert first.ok
        shard_module.shutdown_shared_pools()
        second = engine.run(
            [SelectionQuery(task_id="t2", candidates=_pool_jurors(rng, 9, tag="s2"))]
        )[0]
        assert second.ok and not engine.executor.in_process
        shard_module.shutdown_shared_pools()


class TestRaiseErrors:
    def test_worker_exception_propagates_with_raise_errors(self):
        pricey = (Juror(0.2, 99.0, juror_id="rich"),)
        engine = BatchSelectionEngine(max_workers=2)
        with pytest.raises(InfeasibleSelectionError):
            engine.run(
                [
                    SelectionQuery(
                        task_id="bad", candidates=pricey, model="pay", budget=1.0
                    )
                ],
                raise_errors=True,
            )


class TestWorkersKnob:
    def test_env_variable_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert JuryService().engine.executor.workers == 2

    def test_env_variable_ignored_when_unset_or_trivial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert JuryService().engine.executor is None
        for value in ("", "1", "0", "not-a-number"):
            monkeypatch.setenv("REPRO_WORKERS", value)
            assert JuryService().engine.executor is None

    def test_explicit_workers_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert JuryService(workers=3).engine.executor.workers == 3

    def test_workers_and_max_workers_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            JuryService(workers=2, max_workers=2)

    def test_max_workers_alias_still_shards(self):
        assert JuryService(max_workers=2).engine.executor.workers == 2

    def test_engine_rejects_executor_and_max_workers(self):
        with pytest.raises(ValueError, match="not both"):
            BatchSelectionEngine(executor=ShardedExecutor(2), max_workers=2)


class TestAsyncShardFanout:
    def test_coalesced_batches_match_sequential(self):
        """Concurrent clients on a sharded async service get byte-identical
        answers to a sequential in-process loop."""
        rng = np.random.default_rng(DEFAULT_SEED)
        requests = []
        for i in range(24):
            cands = _pool_jurors(rng, 9, tag=f"t{i}", priced=True)
            model = ("altr", "pay", "exact")[i % 3]
            budget = None if model == "altr" else 2.0
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}", candidates=cands, model=model, budget=budget
                )
            )

        sequential = [
            JuryService().select(request).to_dict() for request in requests
        ]
        for row in sequential:
            row.pop("timings")

        async def drive():
            service = AsyncJuryService(workers=2, max_batch=16)
            responses = await asyncio.gather(
                *(service.select(request) for request in requests)
            )
            return responses

        concurrent = [response.to_dict() for response in asyncio.run(drive())]
        for row in concurrent:
            row.pop("timings")
        assert concurrent == sequential


class TestRefcountedClose:
    """Shared shard processes are reaped when the *last* executor closes."""

    # Worker count no other test uses, so the shared-pool refcount this
    # class observes is entirely its own.
    WORKERS = 5

    def test_last_close_reaps_shared_pools(self, rng):
        first = JuryService(workers=self.WORKERS)
        second = JuryService(workers=self.WORKERS)
        request = SelectionRequest(
            task_id="t", candidates=_pool_jurors(rng, 9, tag="rc")
        )
        assert first.select(request).status == "ok"
        assert shard_module._SHARED_REFS[self.WORKERS] == 2

        first.close()
        # The shared pools survive the first close: `second` is still open.
        assert shard_module._SHARED_REFS[self.WORKERS] == 1
        assert second.select(request).status == "ok"

        pids = [
            pid
            for slot in second.engine.executor.utilisation()
            for pid in slot["pids"]
        ]
        second.close()
        assert self.WORKERS not in shard_module._SHARED_REFS
        assert self.WORKERS not in shard_module._SHARED_POOLS
        for pid in pids:  # every worker process is reaped, not orphaned
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_close_is_idempotent_and_lazy_refork_still_works(self, rng):
        service = JuryService(workers=self.WORKERS)
        service.close()
        service.close()
        assert self.WORKERS not in shard_module._SHARED_REFS
        # A fresh service of the same width re-registers and still answers.
        fresh = JuryService(workers=self.WORKERS)
        try:
            request = SelectionRequest(
                task_id="t", candidates=_pool_jurors(rng, 9, tag="rf")
            )
            assert fresh.select(request).status == "ok"
        finally:
            fresh.close()

    def test_dedicated_close_leaves_shared_pools_alone(self, rng):
        shared = ShardedExecutor(2)
        dedicated = ShardedExecutor(2, dedicated=True)
        before = shard_module._SHARED_REFS.get(2, 0)
        dedicated.close()
        assert shard_module._SHARED_REFS.get(2, 0) == before
        shared.close()


class TestUtilisation:
    def test_counters_populate_and_flow_into_service_stats(self, rng):
        service = JuryService(workers=2)
        try:
            requests = [
                SelectionRequest(
                    task_id=f"t{i}", candidates=_pool_jurors(rng, 9, tag=f"u{i}")
                )
                for i in range(6)
            ]
            assert all(
                response.status == "ok"
                for response in service.select_many(requests)
            )
            report = service.engine.executor.utilisation()
            assert [slot["shard"] for slot in report] == [0, 1]
            assert sum(
                slot["batches"] + slot["fallback_batches"] for slot in report
            ) >= 1
            assert sum(slot["payloads"] for slot in report) == 6
            assert all(slot["failures"] == 0 for slot in report)
            assert all(slot["busy_seconds"] >= 0.0 for slot in report)

            stats = service.stats()
            assert stats["workers"] == 2
            assert stats["shards"] == report
        finally:
            service.close()
