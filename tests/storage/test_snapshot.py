"""Columnar snapshot atomicity and verification.

Snapshots must be all-or-nothing on disk and paranoid on load: any
mutation of any blob (or of the manifest) must raise
:class:`~repro.errors.StorageError` rather than decode to a slightly
different pool.  Float columns must survive bit-exactly — they feed the
sweep kernels whose outputs the bit-identity acceptance bar is measured on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.snapshot import (
    gc_snapshots,
    list_snapshot_versions,
    load_snapshot,
    snapshot_dir,
    write_snapshot,
)

EPS = np.array([0.1, 0.2, 1 / 3, 0.30000000000000004], dtype=np.float64)
REQS = np.array([1.0, 0.25, 1e-17, 3.5], dtype=np.float64)
IDS = ("a", "b", "long-juror-identifier", "d")


def _write(pool_dir, version=7, fingerprint="fp-test"):
    return write_snapshot(
        pool_dir, version=version, fingerprint=fingerprint,
        eps=EPS, reqs=REQS, ids=IDS,
    )


def test_roundtrip_bit_exact(tmp_path):
    snap = _write(tmp_path)
    data = load_snapshot(snap)
    assert data.version == 7 and data.fingerprint == "fp-test"
    assert np.array_equal(np.asarray(data.eps), EPS)  # bitwise: == on f64
    assert np.array_equal(np.asarray(data.reqs), REQS)
    assert data.ids == IDS


def test_float_columns_are_memory_mapped(tmp_path):
    data = load_snapshot(_write(tmp_path))
    assert isinstance(data.eps, np.memmap)
    assert isinstance(data.reqs, np.memmap)


def test_empty_pool_snapshot(tmp_path):
    snap = write_snapshot(
        tmp_path, version=0, fingerprint="fp-empty",
        eps=np.array([], dtype=np.float64),
        reqs=np.array([], dtype=np.float64),
        ids=(),
    )
    data = load_snapshot(snap)
    assert data.ids == () and data.eps.size == 0


def test_versions_listed_newest_first(tmp_path):
    for version in (3, 11, 7):
        _write(tmp_path, version=version)
    assert list_snapshot_versions(tmp_path) == [11, 7, 3]


@pytest.mark.parametrize("blob", ["eps.npy", "reqs.npy", "ids.npy"])
def test_bit_flip_in_blob_detected(tmp_path, blob):
    snap = _write(tmp_path)
    target = snap / blob
    data = bytearray(target.read_bytes())
    data[-3] ^= 0x10
    target.write_bytes(bytes(data))
    with pytest.raises(StorageError, match="checksum"):
        load_snapshot(snap)


def test_missing_blob_detected(tmp_path):
    snap = _write(tmp_path)
    (snap / "reqs.npy").unlink()
    with pytest.raises(StorageError, match="missing blob"):
        load_snapshot(snap)


def test_manifest_damage_detected(tmp_path):
    snap = _write(tmp_path)
    manifest = snap / "MANIFEST.json"
    manifest.write_text(manifest.read_text()[:-20])
    with pytest.raises(StorageError, match="manifest"):
        load_snapshot(snap)


def test_count_disagreement_detected(tmp_path):
    snap = _write(tmp_path)
    manifest = snap / "MANIFEST.json"
    payload = json.loads(manifest.read_text())
    payload["count"] = 3
    # Re-checksum nothing: blobs still verify, only the count lies.
    manifest.write_text(json.dumps(payload))
    with pytest.raises(StorageError, match="sizes disagree"):
        load_snapshot(snap)


def test_rewrite_same_version_is_atomic_replace(tmp_path):
    _write(tmp_path, version=5, fingerprint="first")
    snap = _write(tmp_path, version=5, fingerprint="second")
    assert load_snapshot(snap).fingerprint == "second"
    assert list_snapshot_versions(tmp_path) == [5]


def test_gc_keeps_newest_and_sweeps_tmp_debris(tmp_path):
    for version in range(6):
        _write(tmp_path, version=version)
    debris = tmp_path / ".tmp-snap-000000000099.123"
    debris.mkdir()
    (debris / "eps.npy").write_bytes(b"partial")
    removed = gc_snapshots(tmp_path, keep=2)
    assert removed == 5  # four old snapshots + the tmp dir
    assert list_snapshot_versions(tmp_path) == [5, 4]
    assert not debris.exists()


def test_snapshot_dir_naming_sorts_lexicographically(tmp_path):
    assert snapshot_dir(tmp_path, 42).name == "snap-000000000042"
    assert (
        snapshot_dir(tmp_path, 9).name < snapshot_dir(tmp_path, 10).name
    )  # zero-padding keeps lexicographic == numeric order
