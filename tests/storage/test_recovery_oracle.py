"""The churn-then-crash-then-recover oracle (the PR's acceptance bar).

Property: for ANY random churn sequence and ANY hard truncation of the WAL
(a crash may tear the log at any byte, not just at record boundaries), the
recovered pool is **bit-identical** to an in-memory oracle pool that
replays exactly the surviving operation prefix:

* same fingerprint (content hash over ids and exact doubles),
* same version,
* same sweep profile to the last bit,
* same answer-frontier probes,
* same selections through a real :class:`BatchSelectionEngine`.

The recovered version *is* the surviving prefix length (every operation
bumps the version by exactly one), so the oracle needs no knowledge of the
storage layout: it replays ``ops[:version]`` against the same seed members.
Snapshots make the property stronger, not weaker — a truncation that chops
records already folded into a snapshot must still recover to at least the
snapshot version.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.juror import Juror
from repro.errors import StorageError
from repro.service import BatchSelectionEngine, PoolRegistry, SelectionQuery
from repro.service.registry import LivePool
from repro.storage import PoolCatalog, pool_slug, scan_wal
from repro.storage.snapshot import list_snapshot_versions

SEED_EPS = (0.12, 0.2, 0.31, 0.4)

# One abstract churn step: (kind, payload).  Resolution against the current
# membership is deterministic, so replaying a prefix of the same list
# produces the same mutations whatever storage sat underneath.
_op = st.one_of(
    st.tuples(
        st.just("add"),
        st.floats(0.05, 0.6, allow_nan=False).map(lambda v: round(v, 3)),
    ),
    st.tuples(st.just("remove"), st.integers(0, 10**6)),
    st.tuples(
        st.just("update"),
        st.tuples(
            st.integers(0, 10**6),
            st.floats(0.05, 0.6, allow_nan=False).map(lambda v: round(v, 3)),
        ),
    ),
)


def _seed_members():
    return [
        Juror(e, 1.0 + i, juror_id=f"s{i}") for i, e in enumerate(SEED_EPS)
    ]


def _apply(pool: LivePool, op) -> None:
    """Apply one abstract op, made total deterministically.

    ``adds_so_far`` is derived from the membership itself (ids are
    sequential), so a replayed prefix mints the same ids.
    """
    kind, payload = op
    if kind == "remove" and pool.size <= 1:
        kind, payload = "add", 0.5  # never empty the pool
    if kind == "add":
        minted = 1 + max(
            (
                int(j.juror_id[1:])
                for j in pool.ordered
                if j.juror_id.startswith("j")
            ),
            default=-1,
        )
        pool.add_juror(Juror(payload, 1.0, juror_id=f"j{minted}"))
    elif kind == "remove":
        victim = pool.ordered[payload % pool.size]
        pool.remove_juror(victim.juror_id)
    else:
        index, error_rate = payload
        target = pool.ordered[index % pool.size]
        pool.update_juror(target.juror_id, error_rate=error_rate)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=20),
    cut_fraction=st.floats(0.0, 1.0),
    snapshot_interval=st.sampled_from([0, 3, 7]),
)
def test_recovered_pool_bit_identical_to_oracle(
    tmp_path_factory, ops, cut_fraction, snapshot_interval
):
    tmp_path = tmp_path_factory.mktemp("oracle")

    # -- churn a durable pool, then crash it -----------------------------
    catalog = PoolCatalog(
        tmp_path, snapshot_interval=snapshot_interval, fsync_batch=1
    )
    pool = catalog.create("P", _seed_members())
    for op in ops:
        _apply(pool, op)
    assert pool.version == len(ops)
    catalog.close()

    wal = tmp_path / "pools" / pool_slug("P") / "wal.log"
    raw = wal.read_bytes()
    cut = int(round(cut_fraction * len(raw)))
    wal.write_bytes(raw[: len(raw) - cut])  # the crash: a hard tail chop

    # -- recover ---------------------------------------------------------
    recovered_catalog = PoolCatalog(tmp_path, snapshot_interval=snapshot_interval)
    try:
        recovered = recovered_catalog.open("P")
    except StorageError:
        # Only legitimate when the crash destroyed every base: no snapshot
        # survived and the WAL lost even the create record.  Refusing is
        # the contract ("never silently wrong"); serving would be the bug.
        pool_dir = tmp_path / "pools" / pool_slug("P")
        assert list_snapshot_versions(pool_dir) == []
        assert scan_wal(wal).records == []
        recovered_catalog.close()
        return
    version = recovered.version
    assert 0 <= version <= len(ops)

    # -- oracle: replay exactly the surviving prefix in memory -----------
    oracle = LivePool(_seed_members(), pool_id="P")
    for op in ops[:version]:
        _apply(oracle, op)

    assert recovered.fingerprint == oracle.fingerprint
    assert recovered.version == oracle.version
    assert [j.juror_id for j in recovered.ordered] == [
        j.juror_id for j in oracle.ordered
    ]
    assert np.array_equal(recovered.error_rates, oracle.error_rates)

    ns_r, jers_r = recovered.sweep_profile()
    ns_o, jers_o = oracle.sweep_profile()
    assert np.array_equal(ns_r, ns_o)
    assert np.array_equal(jers_r, jers_o)  # bitwise on float64

    frontier_r, _ = recovered.answer_frontier()
    frontier_o, _ = oracle.answer_frontier()
    assert np.array_equal(frontier_r.ns, frontier_o.ns)
    assert np.array_equal(frontier_r.best_ns, frontier_o.best_ns)
    assert np.array_equal(frontier_r.best_jers, frontier_o.best_jers)

    # -- and through the engine: identical selections --------------------
    oracle_registry = PoolRegistry()
    oracle_registry._pools["P"] = oracle
    recovered_registry = PoolRegistry(catalog=recovered_catalog)
    engine_r = BatchSelectionEngine(registry=recovered_registry)
    engine_o = BatchSelectionEngine(registry=oracle_registry)
    query = SelectionQuery(task_id="q", pool_name="P")
    outcome_r = engine_r.run([query])[0]
    outcome_o = engine_o.run([query])[0]
    assert outcome_r.ok and outcome_o.ok
    assert outcome_r.result.jer == outcome_o.result.jer  # bitwise
    assert [j.juror_id for j in outcome_r.result.jury] == [
        j.juror_id for j in outcome_o.result.jury
    ]
    engine_r.close()
    engine_o.close()
    recovered_catalog.close()
