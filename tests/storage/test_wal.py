"""WAL format and torn-tail discipline.

The crash contract under test: a WAL damaged *at the tail* — truncated
final record, bit-flipped checksum, garbage appended — always recovers to
the longest valid record prefix, reported as ``truncated`` with a reason,
and a writer re-opened on that prefix appends cleanly after it.  Damage is
never silently absorbed: a record after the first invalid one is discarded
even if it would checksum, because unframed resync is how logs replay
garbage.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

import pytest

from repro.storage.wal import MAGIC, WalWriter, scan_wal

RECORDS = [
    {"v": 1, "op": "create", "ver": 0, "members": [["a", 0.1, 1.0]]},
    {"v": 1, "op": "add", "ver": 1, "id": "b", "e": 0.25, "r": 2.0},
    {"v": 1, "op": "remove", "ver": 2, "id": "a"},
]


def _write(path: Path, records=RECORDS, fsync_batch=1) -> None:
    writer = WalWriter(path, fsync_batch=fsync_batch)
    for record in records:
        writer.append(record)
    writer.close()


def test_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    _write(path)
    scan = scan_wal(path)
    assert scan.records == RECORDS
    assert not scan.truncated
    assert scan.valid_bytes == path.stat().st_size


def test_floats_roundtrip_bit_exact(tmp_path):
    """JSON uses repr (shortest round-trip) so doubles survive exactly."""
    path = tmp_path / "wal.log"
    values = [0.1, 1 / 3, 0.30000000000000004, 1e-17, 0.7 + 0.1]
    _write(path, [{"op": "add", "ver": i, "e": v} for i, v in enumerate(values)])
    back = [r["e"] for r in scan_wal(path).records]
    assert all(a == b for a, b in zip(values, back))  # == on floats: bitwise


def test_missing_and_empty_files(tmp_path):
    scan = scan_wal(tmp_path / "absent.log")
    assert scan.records == [] and not scan.truncated
    empty = tmp_path / "empty.log"
    empty.write_bytes(b"")
    scan = scan_wal(empty)
    assert scan.records == [] and not scan.truncated
    assert scan.valid_bytes == 0


def test_unknown_magic_rejected(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"RWAL9\n" + b"junk")
    scan = scan_wal(path)
    assert scan.records == [] and scan.truncated
    assert scan.reason == "bad-magic"


@pytest.mark.parametrize("cut", range(1, 12))
def test_torn_final_record(tmp_path, cut):
    """Truncation at every byte offset inside the last record recovers the
    first two records — never fewer, never a partial third."""
    path = tmp_path / "wal.log"
    _write(path)
    whole = path.read_bytes()
    two = scan_wal(path)
    keep_two = _prefix_bytes(2)
    path.write_bytes(whole[: keep_two + cut])
    scan = scan_wal(path)
    assert scan.records == RECORDS[:2]
    assert scan.truncated
    assert scan.reason in ("torn-header", "torn-payload")
    assert scan.valid_bytes == keep_two
    assert two.records[:2] == scan.records


def test_bit_flip_in_tail_checksum(tmp_path):
    path = tmp_path / "wal.log"
    _write(path)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0x40  # flip a payload bit of the final record
    path.write_bytes(bytes(data))
    scan = scan_wal(path)
    assert scan.records == RECORDS[:2]
    assert scan.truncated and scan.reason == "bad-checksum"


def test_corrupt_middle_discards_everything_after(tmp_path):
    """No resync: a valid-looking record after a corrupt one is not trusted."""
    path = tmp_path / "wal.log"
    _write(path)
    data = bytearray(path.read_bytes())
    offset = _prefix_bytes(1) + 8 + 2  # inside record #2's payload
    data[offset] ^= 0x01
    path.write_bytes(bytes(data))
    scan = scan_wal(path)
    assert scan.records == RECORDS[:1]
    assert scan.truncated


def test_absurd_length_field(tmp_path):
    path = tmp_path / "wal.log"
    payload = json.dumps(RECORDS[0]).encode()
    path.write_bytes(
        MAGIC
        + struct.pack("<II", len(payload), zlib.crc32(payload))
        + payload
        + struct.pack("<II", 2**31, 0)
    )
    scan = scan_wal(path)
    assert len(scan.records) == 1
    assert scan.truncated and scan.reason == "bad-length"


def test_checksummed_garbage_payload(tmp_path):
    """A payload that checksums but is not a JSON object stops the scan."""
    path = tmp_path / "wal.log"
    junk = b"\xff\xfenot json"
    path.write_bytes(MAGIC + struct.pack("<II", len(junk), zlib.crc32(junk)) + junk)
    scan = scan_wal(path)
    assert scan.records == [] and scan.reason == "bad-payload"


def test_writer_resumes_after_torn_tail(tmp_path):
    """Re-opening on the scanned prefix truncates the garbage before appending."""
    path = tmp_path / "wal.log"
    _write(path)
    whole = path.read_bytes()
    path.write_bytes(whole + b"\x03\x00")  # torn header appended
    scan = scan_wal(path)
    writer = WalWriter(path, valid_bytes=scan.valid_bytes)
    writer.append({"op": "add", "ver": 3, "id": "z", "e": 0.5, "r": 0.0})
    writer.close()
    rescan = scan_wal(path)
    assert not rescan.truncated
    assert [r["ver"] for r in rescan.records] == [0, 1, 2, 3]


def test_fsync_batching_counters(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path, fsync_batch=3)
    for i in range(7):
        writer.append({"op": "add", "ver": i})
    assert writer.fsyncs == 2  # at records 3 and 6
    writer.flush()
    assert writer.fsyncs == 3  # the straggler
    writer.flush()
    assert writer.fsyncs == 3  # idempotent with nothing pending
    writer.close()


def test_fsync_batch_zero_only_syncs_explicitly(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path, fsync_batch=0)
    for i in range(5):
        writer.append({"op": "add", "ver": i})
    assert writer.fsyncs == 0
    writer.close()
    assert writer.fsyncs == 1  # close always lands pending appends


def test_reset_shrinks_to_magic(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    writer.append({"op": "add", "ver": 1})
    writer.reset()
    writer.append({"op": "add", "ver": 9})
    writer.close()
    scan = scan_wal(path)
    assert [r["ver"] for r in scan.records] == [9]


def test_closed_writer_refuses_appends(tmp_path):
    writer = WalWriter(tmp_path / "wal.log")
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(ValueError):
        writer.append({"op": "add"})


def _prefix_bytes(n: int) -> int:
    """File offset just past record ``n`` of RECORDS."""
    offset = len(MAGIC)
    for record in RECORDS[:n]:
        offset += 8 + len(json.dumps(record, separators=(",", ":")).encode())
    return offset
