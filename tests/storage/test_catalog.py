"""PoolCatalog behaviour: durability, laziness, residency, tombstones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.juror import Juror
from repro.errors import InvalidJuryError, PoolNotFoundError, StorageError
from repro.storage import PoolCatalog, pool_slug, scan_wal
from repro.storage.snapshot import list_snapshot_versions


def _j(e, r, i):
    return Juror(e, r, juror_id=i)


SEED = [_j(0.1, 1.0, "a"), _j(0.2, 2.0, "b"), _j(0.3, 1.5, "c")]


def _churn(pool, rounds=5):
    for i in range(rounds):
        pool.add_juror(_j(0.11 + i / 100, 1.0 + i, f"n{i}"))
        pool.update_juror("a", error_rate=0.1 + i / 1000)
        if i % 2:
            pool.remove_juror(f"n{i - 1}")


def test_create_and_reopen_bit_identical(tmp_path):
    cat = PoolCatalog(tmp_path)
    pool = cat.create("alpha", SEED)
    _churn(pool)
    fingerprint, version = pool.fingerprint, pool.version
    ns, jers = pool.sweep_profile()
    cat.close()

    cat2 = PoolCatalog(tmp_path)
    recovered = cat2.open("alpha")
    assert recovered.fingerprint == fingerprint
    assert recovered.version == version
    ns2, jers2 = recovered.sweep_profile()
    assert np.array_equal(ns, ns2) and np.array_equal(jers, jers2)
    cat2.close()


def test_duplicate_create_raises_and_replace_restarts(tmp_path):
    cat = PoolCatalog(tmp_path)
    cat.create("alpha", SEED)
    with pytest.raises(InvalidJuryError):
        cat.create("alpha", SEED)
    fresh = cat.create("alpha", SEED[:1], replace=True)
    assert fresh.version == 0 and fresh.size == 1
    cat.close()
    cat2 = PoolCatalog(tmp_path)
    assert cat2.open("alpha").size == 1
    cat2.close()


def test_lazy_loading_counts_and_is_idempotent(tmp_path):
    cat = PoolCatalog(tmp_path)
    for i in range(4):
        cat.create(f"pool-{i}", SEED)
    cat.close()

    cat2 = PoolCatalog(tmp_path)
    assert cat2.stats.lazy_loads == 0 and cat2.resident == 0
    assert len(cat2) == 4  # indexed without loading
    first = cat2.open("pool-2")
    assert cat2.stats.lazy_loads == 1
    assert cat2.open("pool-2") is first  # resident: no second load
    assert cat2.stats.lazy_loads == 1
    cat2.close()


def test_lru_eviction_bounds_residency(tmp_path):
    cat = PoolCatalog(tmp_path, max_resident=3)
    for i in range(8):
        cat.create(f"pool-{i}", SEED)
    assert cat.resident == 3
    assert cat.stats.evictions == 5
    assert len(cat) == 8
    # Evicted pools transparently reload, evicting the now-coldest.
    pool = cat.open("pool-0")
    assert pool.size == len(SEED)
    assert cat.resident == 3
    cat.close()


def test_evicted_pool_mutations_were_flushed(tmp_path):
    cat = PoolCatalog(tmp_path, max_resident=1, fsync_batch=100)
    pool = cat.create("alpha", SEED)
    pool.add_juror(_j(0.15, 1.0, "x"))  # pending in the fsync batch
    cat.create("beta", SEED)  # evicts alpha -> flush + close
    reloaded = cat.open("alpha")
    assert "x" in reloaded
    cat.close()


def test_snapshot_interval_compacts_wal(tmp_path):
    cat = PoolCatalog(tmp_path, snapshot_interval=4)
    pool = cat.create("alpha", SEED)
    _churn(pool, rounds=6)
    assert cat.stats.snapshots >= 2
    directory = tmp_path / "pools" / pool_slug("alpha")
    assert list_snapshot_versions(directory)
    # The WAL holds only the tail the kept snapshots cannot reproduce.
    assert len(scan_wal(directory / "wal.log").records) <= 8
    fingerprint = pool.fingerprint
    cat.close()
    cat2 = PoolCatalog(tmp_path)
    assert cat2.open("alpha").fingerprint == fingerprint
    cat2.close()


def test_recovery_prefers_snapshot_and_replays_tail(tmp_path):
    cat = PoolCatalog(tmp_path, snapshot_interval=4)
    pool = cat.create("alpha", SEED)
    _churn(pool, rounds=3)  # crosses one interval, then trails
    version = pool.version
    cat.close()
    cat2 = PoolCatalog(tmp_path, snapshot_interval=4)
    recovered = cat2.open("alpha")
    assert recovered.version == version
    assert cat2.stats.replays == 1
    assert cat2.stats.records_replayed < 1 + 3 * 3  # tail only, not the log
    assert cat2.stats.last_recovery_ms > 0
    cat2.close()


def test_corrupt_snapshot_falls_back_to_older(tmp_path):
    cat = PoolCatalog(tmp_path, snapshot_interval=3, keep_snapshots=2)
    pool = cat.create("alpha", SEED)
    _churn(pool, rounds=4)
    fingerprint, version = pool.fingerprint, pool.version
    cat.close()

    directory = tmp_path / "pools" / pool_slug("alpha")
    newest = list_snapshot_versions(directory)[0]
    blob = directory / f"snap-{newest:012d}" / "eps.npy"
    data = bytearray(blob.read_bytes())
    data[-1] ^= 0xFF
    blob.write_bytes(bytes(data))

    cat2 = PoolCatalog(tmp_path)
    recovered = cat2.open("alpha")
    assert recovered.fingerprint == fingerprint
    assert recovered.version == version
    assert cat2.stats.snapshot_fallbacks == 1
    cat2.close()


def test_truncated_wal_tail_recovers_prefix(tmp_path):
    cat = PoolCatalog(tmp_path, snapshot_interval=0, fsync_batch=0)
    pool = cat.create("alpha", SEED)
    pool.add_juror(_j(0.4, 1.0, "x"))
    pool.add_juror(_j(0.5, 1.0, "y"))
    cat.close()
    directory = tmp_path / "pools" / pool_slug("alpha")
    wal = directory / "wal.log"
    wal.write_bytes(wal.read_bytes()[:-7])  # tear the final record

    cat2 = PoolCatalog(tmp_path)
    recovered = cat2.open("alpha")
    assert recovered.version == 1  # the torn 'y' append rolled back
    assert "x" in recovered and "y" not in recovered
    assert cat2.stats.recovered_truncated == 1
    # The replacement tail appends cleanly after the recovered prefix.
    recovered.add_juror(_j(0.5, 1.0, "z"))
    cat2.close()
    cat3 = PoolCatalog(tmp_path)
    assert "z" in cat3.open("alpha")
    assert cat3.stats.recovered_truncated == 0
    cat3.close()


def test_never_silently_wrong_pool(tmp_path):
    """Non-tail inconsistency must refuse loudly, not serve a maybe-pool."""
    cat = PoolCatalog(tmp_path, snapshot_interval=0)
    pool = cat.create("alpha", SEED)
    pool.add_juror(_j(0.4, 1.0, "x"))
    cat.close()
    directory = tmp_path / "pools" / pool_slug("alpha")
    wal = directory / "wal.log"
    # Duplicate the add record: a perfectly checksummed log that no single
    # pool history could have produced (the juror is added twice).
    from repro.storage.wal import _encode

    wal.write_bytes(wal.read_bytes() + _encode(scan_wal(wal).records[-1]))
    cat2 = PoolCatalog(tmp_path)
    with pytest.raises(StorageError):
        cat2.open("alpha")
    cat2.close()


def test_drop_tombstones_across_restart(tmp_path):
    cat = PoolCatalog(tmp_path)
    cat.create("alpha", SEED)
    cat.create("beta", SEED)
    cat.drop("alpha")
    assert cat.stats.tombstones == 1
    with pytest.raises(PoolNotFoundError):
        cat.open("alpha")
    cat.close()
    cat2 = PoolCatalog(tmp_path)
    assert cat2.names() == ("beta",)
    with pytest.raises(PoolNotFoundError):
        cat2.open("alpha")
    cat2.close()


def test_drop_of_cold_pool(tmp_path):
    cat = PoolCatalog(tmp_path)
    cat.create("alpha", SEED)
    cat.close()
    cat2 = PoolCatalog(tmp_path)
    cat2.drop("alpha")  # never opened in this process
    cat2.close()
    cat3 = PoolCatalog(tmp_path)
    assert "alpha" not in cat3
    cat3.close()


def test_crashed_drop_directory_is_gced(tmp_path):
    """A drop that crashed after the WAL record but before rmtree must not
    resurrect the pool on restart."""
    cat = PoolCatalog(tmp_path, snapshot_interval=0)
    pool = cat.create("alpha", SEED)
    directory = tmp_path / "pools" / pool_slug("alpha")
    # Simulate the crash window: append the drop record directly, leave
    # every file in place.
    from repro.storage.wal import WalWriter

    scan = scan_wal(directory / "wal.log")
    cat.close()
    writer = WalWriter(directory / "wal.log")
    writer.append({"v": 1, "op": "drop", "ver": pool.version + 1})
    writer.close()

    cat2 = PoolCatalog(tmp_path)
    with pytest.raises(PoolNotFoundError):
        cat2.open("alpha")
    assert not directory.exists()  # reclaimed during the failed open
    cat2.close()


def test_distinct_names_never_share_a_directory(tmp_path):
    cat = PoolCatalog(tmp_path)
    # Sanitisation collides ("p/x" and "p_x" both sanitise to "p_x"); the
    # content hash must keep the directories apart.
    cat.create("p/x", SEED)
    cat.create("p_x", SEED[:1])
    cat.close()
    cat2 = PoolCatalog(tmp_path)
    assert cat2.open("p/x").size == 3
    assert cat2.open("p_x").size == 1
    cat2.close()


def test_closed_catalog_refuses_work(tmp_path):
    cat = PoolCatalog(tmp_path)
    cat.create("alpha", SEED)
    cat.close()
    cat.close()  # idempotent
    with pytest.raises(StorageError):
        cat.open("alpha")
    with pytest.raises(StorageError):
        cat.create("beta", SEED)


def test_stats_snapshot_shape(tmp_path):
    cat = PoolCatalog(tmp_path)
    pool = cat.create("alpha", SEED)
    pool.add_juror(_j(0.4, 1.0, "x"))
    snapshot = cat.stats_snapshot()
    for key in (
        "data_dir", "pools", "resident", "max_resident", "wal_appends",
        "fsyncs", "snapshots", "replays", "records_replayed", "lazy_loads",
        "recovered_truncated", "evictions", "tombstones", "recovery_ms",
        "last_recovery_ms", "snapshot_fallbacks",
    ):
        assert key in snapshot
    assert snapshot["wal_appends"] == 2  # create + add
    assert snapshot["fsyncs"] >= 2
    cat.close()
