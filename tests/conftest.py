"""Shared fixtures for the test suite.

Seeds and oracle tolerances come from :mod:`repro.testing`, which
``benchmarks/conftest.py`` imports too — keeping the two suites' tolerances
in sync by construction.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

from repro.core.juror import Juror
from repro.testing import DEFAULT_SEED, ORACLE_ATOL, PMF_ATOL


@pytest.fixture(autouse=True)
def _isolated_data_dir(monkeypatch):
    """Give each test its own catalog directory under ``REPRO_DATA_DIR``.

    CI runs the whole suite with ``REPRO_DATA_DIR`` set so every
    ``JuryService()`` (and surface on top of it) transparently exercises the
    durable catalog.  Pool names are only unique per test, so sharing one
    directory across the run would collide; this fixture points each test at
    a fresh subdirectory of the configured root.  A no-op when the variable
    is unset — the default in-memory path stays the default.
    """
    root = os.environ.get("REPRO_DATA_DIR", "").strip()
    if not root:
        yield
        return
    os.makedirs(root, exist_ok=True)
    monkeypatch.setenv(
        "REPRO_DATA_DIR", tempfile.mkdtemp(prefix="case-", dir=root)
    )
    yield


@pytest.fixture
def table2_jurors() -> list[Juror]:
    """The seven candidates A-G from the paper's Figure 1 / Table 2.

    Error rates: A=0.1, B=0.2, C=0.2, D=0.3, E=0.3, F=0.4, G=0.4.
    Requirements (from the motivation example): D=$0.4, E=$0.65, and we give
    the remaining users the modest prices that make {A,B,C,F,G} affordable
    under the $1 budget while {A,B,C,D,E} is not, as in the paper's story.
    """
    return [
        Juror(0.1, 0.20, juror_id="A"),
        Juror(0.2, 0.20, juror_id="B"),
        Juror(0.2, 0.20, juror_id="C"),
        Juror(0.3, 0.40, juror_id="D"),
        Juror(0.3, 0.65, juror_id="E"),
        Juror(0.4, 0.10, juror_id="F"),
        Juror(0.4, 0.10, juror_id="G"),
    ]


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(DEFAULT_SEED)


@pytest.fixture
def oracle_atol() -> float:
    """Tolerance for cross-backend (naive/dp/cba) oracle agreement."""
    return ORACLE_ATOL


@pytest.fixture
def pmf_atol() -> float:
    """Tolerance for pmf-vector comparisons across backends."""
    return PMF_ATOL
