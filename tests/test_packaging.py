"""Packaging: the native kernel C source must ship with the package.

PR 8 moved the backend's C out of a Python string into
``repro_kernels.c``; an sdist/wheel that forgot to list it as package
data would import fine and pass every test from a source checkout, then
silently lose the compiled backend on an installed tree.  These tests
simulate an installed tree (copy the package out of ``src/``, import from
there) rather than trusting the setup() metadata by inspection alone.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_c_source_is_listed_as_package_data():
    text = (REPO / "setup.py").read_text(encoding="utf-8")
    assert '"repro.core.kernels"' in text and '"*.c"' in text


def test_c_source_exists_next_to_native_module():
    from repro.core.kernels import _native

    assert _native._C_SOURCE_PATH.name == "repro_kernels.c"
    assert _native._C_SOURCE_PATH.is_file()
    source = _native._read_source()
    for symbol in ("k_sweep", "k_jury_jer", "k_pay_scan", "pairwise_sum"):
        assert symbol in source


def test_installed_tree_ships_and_uses_the_c_source(tmp_path):
    """Copy the package as an install would lay it out and import from it.

    ``shutil.copytree`` honouring the package_data pattern is simulated by
    copying everything ``setup.py`` would package: all modules plus
    ``*.c``.  The subprocess asserts (a) the source file travelled, and
    (b) ``_read_source`` serves it from the installed location — i.e. the
    backend does not secretly depend on the repo checkout.
    """
    site = tmp_path / "site-packages"
    shutil.copytree(
        REPO / "src" / "repro",
        site / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    probe = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from pathlib import Path\n"
        "from repro.core.kernels import _native\n"
        "assert Path(_native.__file__).is_relative_to(sys.argv[1]), _native.__file__\n"
        "assert _native._C_SOURCE_PATH.is_relative_to(sys.argv[1])\n"
        "src = _native._read_source()\n"
        "assert 'k_sweep' in src and 'k_pay_scan' in src\n"
        "print('ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe, str(site)],
        capture_output=True,
        text=True,
        timeout=60,
        cwd=str(tmp_path),  # not the repo root: no accidental src/ imports
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
