"""Tests for the ablation experiments (bounds, weighted voting, adaptive)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_adaptive import (
    AblationAdaptiveConfig,
    run_ablation_adaptive,
)
from repro.experiments.ablation_bounds import (
    AblationBoundsConfig,
    run_ablation_bounds,
)
from repro.experiments.ablation_weighted import (
    AblationWeightedConfig,
    run_ablation_weighted,
)


class TestAblationBounds:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_bounds(AblationBoundsConfig.small())

    def test_lower_bound_below_exact_where_present(self, result):
        exact = result.series_named("exact")
        pz = result.series_named("pz-lower")
        for point in pz.points:
            assert point.y <= exact.y_at(point.x) + 1e-12

    def test_upper_bounds_above_exact(self, result):
        exact = result.series_named("exact")
        for name in ("markov-upper", "cantelli-upper", "hoeffding-upper",
                     "chernoff-upper"):
            series = result.series_named(name)
            for point in series.points:
                assert point.y >= exact.y_at(point.x) - 1e-12

    def test_pz_applicability_cliff(self, result):
        """The Lemma 2 bound only exists once the mean crosses ~0.5."""
        pz_xs = set(result.series_named("pz-lower").xs)
        assert 0.2 not in pz_xs
        assert 0.6 in pz_xs and 0.8 in pz_xs

    def test_exact_jer_increases_with_mean(self, result):
        ys = result.series_named("exact").ys
        assert ys == sorted(ys)


class TestAblationWeighted:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_weighted(AblationWeightedConfig.small())

    def test_weighted_never_worse(self, result):
        majority = result.series_named("majority")
        weighted = result.series_named("weighted")
        for x in majority.xs:
            assert weighted.y_at(x) <= majority.y_at(x) + 1e-9

    def test_rules_coincide_for_identical_jurors(self, result):
        majority = result.series_named("majority")
        weighted = result.series_named("weighted")
        assert weighted.y_at(0.0) == pytest.approx(majority.y_at(0.0), abs=1e-9)

    def test_gap_positive_for_heterogeneous_jury(self, result):
        majority = result.series_named("majority")
        weighted = result.series_named("weighted")
        widest = max(majority.xs)
        assert weighted.y_at(widest) < majority.y_at(widest)


class TestAblationAdaptive:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_adaptive(AblationAdaptiveConfig.small())

    def test_questions_bounded_by_jury_size(self, result):
        size = result.metadata["jury_size"]
        for point in result.series_named("adaptive-questions").points:
            assert 1.0 <= point.y <= size

    def test_stricter_delta_asks_more(self, result):
        questions = result.series_named("adaptive-questions")
        ordered = sorted(questions.points, key=lambda p: p.x)  # delta asc
        # Smaller delta (stricter certainty) must not ask fewer questions.
        assert ordered[0].y >= ordered[-1].y - 1e-9

    def test_adaptive_saves_questions(self, result):
        questions = result.series_named("adaptive-questions")
        static = result.series_named("static-questions")
        loosest = max(questions.xs)
        assert questions.y_at(loosest) < static.y_at(loosest)

    def test_accuracies_in_unit_interval(self, result):
        for name in ("adaptive-accuracy", "static-accuracy"):
            for point in result.series_named(name).points:
                assert 0.0 <= point.y <= 1.0
