"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, render_ascii_chart


def make_result(points_a, points_b=None):
    result = ExperimentResult("chart-demo", "Chart Demo", "x", "y")
    series = result.new_series("alpha")
    for x, y in points_a:
        series.add(x, y)
    if points_b is not None:
        other = result.new_series("beta")
        for x, y in points_b:
            other.add(x, y)
    return result


class TestRenderAsciiChart:
    def test_contains_title_axes_legend(self):
        chart = render_ascii_chart(make_result([(0, 1), (1, 2)]))
        assert "Chart Demo" in chart
        assert "alpha" in chart
        assert "x" in chart and "y" in chart

    def test_empty_result(self):
        result = ExperimentResult("empty", "Empty", "x", "y")
        assert "(no data)" in render_ascii_chart(result)

    def test_two_series_get_distinct_symbols(self):
        chart = render_ascii_chart(
            make_result([(0, 1), (1, 2)], [(0, 2), (1, 1)])
        )
        assert "*=alpha" in chart
        assert "o=beta" in chart
        body = chart.split("legend")[0]
        assert "*" in body and "o" in body

    def test_dimensions_respected(self):
        chart = render_ascii_chart(
            make_result([(0, 1), (5, 9), (10, 4)]), width=30, height=8
        )
        plot_lines = [l for l in chart.splitlines() if l.startswith("|")]
        assert len(plot_lines) == 8
        assert all(len(l) <= 31 for l in plot_lines)

    def test_log_scale_skips_nonpositive(self):
        chart = render_ascii_chart(
            make_result([(0, 0.0), (1, 10.0), (2, 100.0)]), log_y=True
        )
        assert "log10" in chart

    def test_constant_series_does_not_crash(self):
        chart = render_ascii_chart(make_result([(0, 5), (1, 5), (2, 5)]))
        assert "Chart Demo" in chart

    def test_single_point(self):
        chart = render_ascii_chart(make_result([(3, 7)]))
        assert "[3 .. 3]" in chart

    def test_range_annotations(self):
        chart = render_ascii_chart(make_result([(0, 1), (10, 3)]))
        assert "[0 .. 10]" in chart
        assert "[1 .. 3]" in chart


class TestRunnerChartFlag:
    def test_cli_chart_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
