"""Integration tests: every paper artefact regenerates with the right shape.

These run the bench-scale (``small``) configurations and assert the
*qualitative* findings of the paper — orderings, monotonicity, crossovers —
not absolute numbers (our substrate differs from the authors' testbed).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig3a import Fig3aConfig, run_fig3a
from repro.experiments.fig3b import Fig3bConfig, run_fig3b
from repro.experiments.fig3c import Fig3cConfig, run_fig3c
from repro.experiments.fig3d import run_fig3d
from repro.experiments.fig3e import Fig3eConfig, run_fig3e
from repro.experiments.fig3f import run_fig3f
from repro.experiments.fig3g import Fig3gConfig, run_fig3g
from repro.experiments.fig3h import Fig3hConfig, run_fig3h
from repro.experiments.fig3i import run_fig3i
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table2 import TABLE2_ROWS, run_table2


class TestTable2:
    def test_reproduced_matches_paper_within_rounding(self):
        result = run_table2()
        reproduced = result.series_named("reproduced")
        printed = result.series_named("paper")
        for row in range(1, len(TABLE2_ROWS) + 1):
            ours = reproduced.y_at(row)
            paper = printed.y_at(row)
            # Row 6 is the paper's known misprint (0.0805 vs exact 0.0852).
            tolerance = 0.006 if row == 6 else 5e-4
            assert ours == pytest.approx(paper, abs=tolerance)

    def test_five_juror_crowd_is_best(self):
        result = run_table2()
        reproduced = result.series_named("reproduced")
        values = {p.note: p.y for p in reproduced.points}
        assert min(values, key=values.get) == "A,B,C,D,E"


class TestFig3a:
    def test_shape_collapse_above_half(self):
        result = run_fig3a(Fig3aConfig.small())
        tight = result.series_named("var(0.1)")
        # Below the 0.5 threshold the optimum uses many jurors; above it the
        # jury collapses to "the hands of the few".
        below = [tight.y_at(x) for x in (0.1, 0.3)]
        above = [tight.y_at(x) for x in (0.7, 0.9)]
        assert max(above) < max(below)
        assert min(above) <= 5

    def test_all_sizes_odd(self):
        result = run_fig3a(Fig3aConfig.small())
        for series in result.series:
            for point in series.points:
                assert int(point.y) % 2 == 1


class TestFig3b:
    def test_bound_helps_error_prone_population(self):
        cfg = Fig3bConfig(sizes=(300, 600), means=(0.1, 0.6), seed=32)
        result = run_fig3b(cfg)
        n = 600
        # Pruning fires for the mean-0.6 population and must help there.
        assert result.series_named("m(0.6,b)").y_at(n) < result.series_named(
            "m(0.6)"
        ).y_at(n)
        # For mean 0.1 the bound never applies; overhead must stay small.
        plain = result.series_named("m(0.1)").y_at(n)
        bounded = result.series_named("m(0.1,b)").y_at(n)
        assert bounded < plain * 1.5

    def test_time_grows_with_n(self):
        result = run_fig3b(Fig3bConfig.small())
        series = result.series_named("m(0.1)")
        assert series.ys == sorted(series.ys)


class TestFig3cAnd3d:
    def test_cost_never_exceeds_budget(self):
        result = run_fig3c(Fig3cConfig.small())
        for series in result.series:
            for point in series.points:
                assert point.y <= point.x + 1e-9

    def test_cost_monotone_in_budget(self):
        result = run_fig3c(Fig3cConfig.small())
        for series in result.series:
            assert series.ys == sorted(series.ys)

    def test_jer_monotone_decreasing_in_budget(self):
        result = run_fig3d(Fig3cConfig.small())
        for series in result.series:
            ys = series.ys
            assert all(a >= b - 1e-12 for a, b in zip(ys, ys[1:]))

    def test_lower_mean_population_dominates(self):
        """Paper: 'a candidate set with lower individual error-rates forms a
        better jury within the same budget'."""
        result = run_fig3d(Fig3cConfig.small())
        good = result.series_named("m(0.3)")
        bad = result.series_named("m(0.6)")
        for x in good.xs:
            assert good.y_at(x) <= bad.y_at(x) + 1e-12


class TestFig3eAnd3f:
    def test_opt_dominates_appx_on_jer(self):
        result = run_fig3f(Fig3eConfig.small())
        appx = result.series_named("APPX")
        opt = result.series_named("OPT")
        for x in appx.xs:
            assert opt.y_at(x) <= appx.y_at(x) + 1e-12

    def test_costs_within_budget(self):
        result = run_fig3e(Fig3eConfig.small())
        for series in result.series:
            for point in series.points:
                assert point.y <= point.x + 1e-9

    def test_opt_jer_monotone_in_budget(self):
        result = run_fig3f(Fig3eConfig.small())
        ys = result.series_named("OPT").ys
        assert all(a >= b - 1e-12 for a, b in zip(ys, ys[1:]))


class TestFig3g:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3g(Fig3gConfig.small())

    def test_all_series_present(self, result):
        names = {s.name for s in result.series}
        assert names == {"HT", "HT-B", "PR", "PR-B"}

    def test_bounding_prunes_on_normalised_data(self, result):
        """After Section 4.1.3 normalisation most users sit near error rate
        1, so the lower bound fires and the -B series run faster at scale."""
        largest = max(result.series_named("HT").xs)
        assert result.series_named("HT-B").y_at(largest) <= result.series_named(
            "HT"
        ).y_at(largest)
        assert result.series_named("PR-B").y_at(largest) <= result.series_named(
            "PR"
        ).y_at(largest)

    def test_time_grows_with_candidates(self, result):
        for name in ("HT", "PR"):
            ys = result.series_named(name).ys
            assert ys == sorted(ys)


class TestFig3hAnd3i:
    @pytest.fixture(scope="class")
    def cfg(self):
        return Fig3hConfig.small()

    def test_precision_recall_in_unit_interval(self, cfg):
        result = run_fig3h(cfg)
        for series in result.series:
            for point in series.points:
                assert 0.0 <= point.y <= 1.0

    def test_sizes_odd_and_positive(self, cfg):
        result = run_fig3i(cfg)
        for series in result.series:
            for point in series.points:
                assert point.y >= 1
                assert int(point.y) % 2 == 1

    def test_true_sizes_never_larger_jer(self, cfg):
        """The OPT jury's JER lower-bounds PayALG's on the same workload."""
        from repro.experiments.fig3h import paym_twitter_sweep

        records = paym_twitter_sweep(cfg)
        for rows in records.values():
            for row in rows:
                assert row["opt_jer"] <= row["appx_jer"] + 1e-12


class TestRunnerDispatch:
    def test_all_ids_registered(self):
        expected = {
            "table2",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig3e",
            "fig3f",
            "fig3g",
            "fig3h",
            "fig3i",
            "ablation-bounds",
            "ablation-weighted",
            "ablation-adaptive",
            "ablation-planner",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig9z")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            run_experiment("table2", scale="galactic")

    def test_table2_runs_via_dispatcher(self):
        result = run_experiment("table2", scale="small")
        assert result.experiment_id == "table2"

    def test_cli_main_table2(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "completed" in out
