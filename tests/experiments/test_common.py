"""Tests for the experiment plumbing (series, results, precision/recall)."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ExperimentResult,
    Series,
    SeriesPoint,
    precision_recall,
)


class TestSeries:
    def test_add_and_accessors(self):
        s = Series("demo")
        s.add(1, 10.0)
        s.add(2, 20.0, note="peak")
        assert s.xs == [1.0, 2.0]
        assert s.ys == [10.0, 20.0]
        assert s.points[1].note == "peak"

    def test_y_at(self):
        s = Series("demo")
        s.add(0.1, 5.0)
        assert s.y_at(0.1) == 5.0
        with pytest.raises(KeyError):
            s.y_at(0.2)

    def test_point_is_frozen(self):
        point = SeriesPoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            point.y = 3.0


class TestExperimentResult:
    def make_result(self):
        result = ExperimentResult(
            experiment_id="demo",
            title="Demo",
            x_label="x",
            y_label="y",
        )
        a = result.new_series("a")
        a.add(1, 10)
        a.add(2, 20)
        b = result.new_series("b")
        b.add(1, 11)
        return result

    def test_series_named(self):
        result = self.make_result()
        assert result.series_named("a").y_at(2) == 20
        with pytest.raises(KeyError):
            result.series_named("zzz")

    def test_to_table_contains_all_cells(self):
        table = self.make_result().to_table()
        assert "demo" in table
        assert "a" in table and "b" in table
        # b has no point at x=2 -> dash placeholder.
        assert "-" in table

    def test_to_table_with_metadata(self):
        result = self.make_result()
        result.metadata["n"] = 10
        assert "n=10" in result.to_table()

    def test_empty_result_table(self):
        result = ExperimentResult("empty", "Empty", "x", "y")
        assert "empty" in result.to_table()


class TestPrecisionRecall:
    def test_perfect_match(self):
        assert precision_recall(["a", "b"], ["a", "b"]) == (1.0, 1.0)

    def test_disjoint(self):
        assert precision_recall(["a"], ["b"]) == (0.0, 0.0)

    def test_partial(self):
        precision, recall = precision_recall(["a", "b", "c"], ["b", "c", "d", "e"])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert precision_recall([], ["a"]) == (0.0, 0.0)
        assert precision_recall(["a"], []) == (0.0, 0.0)

    def test_duplicates_collapsed(self):
        assert precision_recall(["a", "a"], ["a"]) == (1.0, 1.0)
