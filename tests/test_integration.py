"""End-to-end integration tests across subsystem boundaries.

These walk the same paths the examples do: simulate a service, estimate
parameters, select juries, validate by simulation — asserting the
cross-module contracts rather than any single unit.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import diagnose_jury
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.exact import branch_and_bound_optimal
from repro.core.selection.pay import select_jury_pay
from repro.estimation import estimate_candidates
from repro.estimation.history import jurors_from_history
from repro.microblog import account_age_map, generate_microblog_service
from repro.simulation import sample_votes, validate_jer


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.estimation
        import repro.experiments
        import repro.microblog
        import repro.simulation
        import repro.synth

        for module in (
            repro.core,
            repro.estimation,
            repro.microblog,
            repro.simulation,
            repro.synth,
            repro.analysis,
            repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestSimulateEstimateSelectValidate:
    """The full loop: raw tweets in, validated jury decision quality out."""

    @pytest.fixture(scope="class")
    def service(self):
        return generate_microblog_service(350, seed=1234)

    def test_altr_loop(self, service):
        population, _, corpus = service
        estimate = estimate_candidates(corpus, ranking="hits", top_k=60)
        selection = select_jury_altr(estimate.jurors)
        assert selection.size % 2 == 1
        # The selection must be validated by its own Monte-Carlo model.
        check = validate_jer(
            selection.jury, trials=20_000, rng=np.random.default_rng(0)
        )
        assert check.consistent(z_threshold=5.0)

    def test_paym_loop_budget_respected(self, service):
        population, _, corpus = service
        ages = account_age_map(population, observation_day=2000.0)
        estimate = estimate_candidates(
            corpus, ranking="pagerank", top_k=40, account_ages=ages
        )
        budget = 0.75
        greedy = select_jury_pay(estimate.jurors, budget=budget)
        assert greedy.total_cost <= budget + 1e-9
        exact = branch_and_bound_optimal(estimate.jurors[:18], budget=budget)
        assert exact.jer <= greedy.jer + 1e-9 or exact.size > 0

    def test_selected_jury_outperforms_average_user(self, service):
        population, _, corpus = service
        estimate = estimate_candidates(corpus, ranking="hits", top_k=60)
        selection = select_jury_altr(estimate.jurors)
        mean_estimated_eps = float(
            np.mean([j.error_rate for j in estimate.jurors])
        )
        assert selection.jer < mean_estimated_eps


class TestHistoryLoop:
    """Voting history -> EM error rates -> selection -> better voting."""

    def test_em_estimates_drive_good_selection(self):
        rng = np.random.default_rng(7)
        true_eps = np.array([0.05, 0.1, 0.15, 0.25, 0.35, 0.45, 0.45, 0.4, 0.3])
        truth = rng.integers(0, 2, size=600)
        wrong = rng.random((600, true_eps.size)) < true_eps
        history = np.where(wrong, 1 - truth[:, None], truth[:, None])

        candidates = jurors_from_history(history)
        selection = select_jury_altr(candidates)

        # Score the selected subset under the TRUE error rates.
        chosen_indices = [
            int(juror_id.split("-")[1]) - 1 for juror_id in selection.juror_ids
        ]
        true_jer = repro.jury_error_rate(true_eps[chosen_indices])
        best_single = float(true_eps.min())
        assert true_jer < best_single  # the jury beats the best individual

    def test_diagnostics_on_history_jury(self):
        rng = np.random.default_rng(8)
        true_eps = np.array([0.1, 0.2, 0.3, 0.25, 0.15])
        truth = rng.integers(0, 2, size=500)
        wrong = rng.random((500, true_eps.size)) < true_eps
        history = np.where(wrong, 1 - truth[:, None], truth[:, None])
        candidates = jurors_from_history(history)
        selection = select_jury_altr(candidates)
        report = diagnose_jury(selection.jury)
        assert report.weighted_jer <= report.jer + 1e-12


class TestVotingMatricesRoundTrip:
    def test_sampled_votes_feed_em_back(self):
        """Simulation output is valid EM input — the two substrates agree on
        the vote-matrix convention."""
        from repro.core.juror import Jury
        from repro.estimation.history import estimate_error_rates_em

        rng = np.random.default_rng(9)
        jury = Jury.from_error_rates([0.1, 0.2, 0.3, 0.4, 0.25])
        votes = sample_votes(jury, ground_truth=1, trials=800, rng=rng)
        fit = estimate_error_rates_em(votes)
        np.testing.assert_allclose(
            fit.error_rates, jury.error_rates, atol=0.08
        )
