"""Legacy setup shim.

Kept so that ``pip install -e . --no-use-pep517`` works in offline
environments whose pip/setuptools lack PEP 660 editable-wheel support.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
