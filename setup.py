"""Packaging metadata for the jury-selection reproduction.

Kept as a classic ``setup.py`` (no ``pyproject.toml``) so that
``pip install -e . --no-use-pep517`` works in offline environments whose
pip/setuptools lack PEP 660 editable-wheel support.

The compiled kernel backends are optional: the ``native`` backend needs
only a C compiler at runtime, while the numba JIT backend installs via
the ``compiled`` extra (``pip install -e ".[compiled]"``).  Without
either, every kernel runs on the NumPy reference implementation.
"""

from setuptools import find_packages, setup

setup(
    name="repro-jury-selection",
    version="0.8.0",
    description=(
        "Reproduction of 'Whom to Ask? Jury Selection for Decision Making "
        "Tasks on Micro-blog Services' (PVLDB 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The native kernel backend compiles repro_kernels.c at runtime; the
    # source must ship with the package or installed trees (as opposed to
    # source checkouts) would silently lose the backend.
    package_data={"repro.core.kernels": ["*.c"]},
    include_package_data=True,
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        # Optional JIT backend for the hot JER/PMF kernels; see the
        # "Compiled kernels" section of the README.  Absence degrades
        # gracefully to the cc-built native backend or NumPy.
        "compiled": ["numba>=0.58"],
    },
    entry_points={
        "console_scripts": ["repro-select=repro.cli:main"],
    },
)
