#!/usr/bin/env python3
"""The full Section 4 estimation pipeline on raw micro-blog data.

Demonstrates every stage the paper describes for going from a tweet dump to
a ready-to-ask jury — including persisting/reloading the corpus, comparing
HITS against PageRank quality scores, and pricing jurors by account age for
a PayM selection.

1. simulate a service and dump its corpus to JSONL (stand-in for a crawl);
2. reload the corpus and build the retweet graph (Algorithm 5);
3. rank users with HITS (Algorithm 6) and PageRank (Algorithm 7) and
   compare their top-10 lists;
4. normalise scores to error rates (Section 4.1.3, alpha = beta = 10) and
   account ages to payment requirements (Section 4.2);
5. select juries: AltrALG (free jurors) and PayALG under a budget.

Run:  python examples/twitter_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import select_jury_altr, select_jury_pay
from repro.estimation import (
    TweetCorpus,
    build_user_graph,
    estimate_candidates,
    hits,
    pagerank,
)
from repro.microblog import account_age_map, generate_microblog_service

N_USERS = 600
SEED = 77


def main() -> None:
    print(f"== 1. 'crawling' a {N_USERS}-user service, dumping JSONL ==")
    population, _, corpus = generate_microblog_service(N_USERS, seed=SEED)
    with tempfile.TemporaryDirectory() as tmp:
        dump = Path(tmp) / "timeline.jsonl"
        corpus.save_jsonl(dump)
        print(f"  wrote {len(corpus)} tweets to {dump.name}")

        corpus = TweetCorpus.load_jsonl(dump)
    print(f"  reloaded {len(corpus)} tweets, "
          f"{corpus.retweet_count()} RT markers")

    print("\n== 2. retweet graph (Algorithm 5) ==")
    graph = build_user_graph(corpus)
    print(f"  {graph.num_nodes} users, {graph.num_edges} retweet edges")
    hub = max(graph.nodes(), key=graph.in_degree)
    print(f"  most-retweeted user: {hub} (in-degree {graph.in_degree(hub)})")

    print("\n== 3. HITS vs PageRank (Algorithms 6 and 7) ==")
    authority = hits(graph).authorities
    pr_scores = pagerank(graph)
    top_hits = sorted(authority, key=authority.get, reverse=True)[:10]
    top_pr = sorted(pr_scores, key=pr_scores.get, reverse=True)[:10]
    overlap = len(set(top_hits) & set(top_pr))
    print(f"  top-10 by HITS    : {', '.join(top_hits[:5])}, ...")
    print(f"  top-10 by PageRank: {', '.join(top_pr[:5])}, ...")
    print(f"  overlap: {overlap}/10 (the paper found the same agreement)")

    print("\n== 4. error rates + account-age requirements ==")
    ages = account_age_map(population, observation_day=2000.0)
    estimate = estimate_candidates(
        corpus, ranking="hits", top_k=50, account_ages=ages
    )
    best = estimate.jurors[0]
    print(
        f"  best candidate {best.juror_id}: eps = {best.error_rate:.2e}, "
        f"requirement = {best.requirement:.3f}"
    )

    print("\n== 5. jury selection ==")
    altr = select_jury_altr(estimate.jurors)
    print(f"  AltrM : {altr.summary()}")
    paym = select_jury_pay(estimate.jurors, budget=1.0)
    print(f"  PayM  : {paym.summary()}")
    print(
        "\n  -> identical pipeline to the paper's Twitter study; swap the\n"
        "     simulated JSONL for a real crawl and nothing else changes."
    )


if __name__ == "__main__":
    main()
