#!/usr/bin/env python3
"""Live pools: selection under juror churn, without resweeping the world.

A platform's candidate population is never frozen — jurors arrive, leave,
and their estimated error rates drift as the microblog stream flows.  This
example shows the live-pool stack at its three levels:

1. a :class:`LivePool` mutated directly — versions, delta-maintained sweep
   profiles, and what the repair actually reused;
2. the registry-backed engine — ``pool_name`` queries interleaved with
   churn, with the sweep cache restoring hits when membership reverts;
3. the estimation pipeline's incremental mode — a fresh
   ``estimate_candidates`` result diffed onto the pool instead of replacing
   it — plus the ``repro-select serve`` wire format for the same session.

Run:  python examples/live_pool_session.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import (
    BatchSelectionEngine,
    Juror,
    PoolRegistry,
    SelectionQuery,
    jurors_from_arrays,
)
from repro.estimation import estimate_candidates, sync_pool_with_estimate
from repro.estimation.tweets import Tweet, TweetCorpus


def main() -> None:
    rng = np.random.default_rng(11)
    registry = PoolRegistry()
    engine = BatchSelectionEngine(registry=registry)

    # -- 1. a live pool under churn ------------------------------------------
    print("== 1. LivePool: versioned churn with delta-maintained sweeps ==")
    pool = registry.create(
        "workers", jurors_from_arrays(rng.uniform(0.05, 0.5, size=101))
    )
    pool.sweep_profile()  # warm the prefix pmf matrix
    pool.add_juror(Juror(0.03, juror_id="star"))
    pool.update_error_rate("j50", 0.49)
    pool.remove_juror("j13")
    ns, jers = pool.sweep_profile()
    best = int(ns[int(np.argmin(jers))])
    print(f"  version {pool.version}, size {pool.size}, best odd prefix {best}")
    # A churn burst that only touches unreliable (high-position) jurors
    # leaves the low-error prefix rows clean — the repair reuses them.
    worst = [j.juror_id for j in pool.ordered[-3:]]
    for juror_id in worst:
        pool.update_error_rate(juror_id, float(rng.uniform(0.45, 0.5)))
    pool.sweep_profile()
    print(
        f"  repair work: {pool.stats.repairs} repairs, "
        f"{pool.stats.rows_reused} prefix rows reused, "
        f"{pool.stats.rows_recomputed} recomputed"
    )

    # -- 2. churn interleaved with registry-backed queries -------------------
    print("== 2. engine queries against the live pool ==")
    before = engine.run([SelectionQuery(task_id="t-before", pool_name="workers")])[0]
    print(f"  t-before (v{pool.version}): {before.result.summary()}")
    star = pool.remove_juror("star")
    after = engine.run([SelectionQuery(task_id="t-after", pool_name="workers")])[0]
    print(f"  t-after  (v{pool.version}): {after.result.summary()}")
    pool.add_juror(star)  # membership reverts -> the old profile hits again
    engine.run([SelectionQuery(task_id="t-revert", pool_name="workers")])
    print(
        f"  cache: {engine.cache.hits} hit(s), {engine.cache.misses} miss(es) "
        "(the revert restored the first profile's fingerprint)"
    )

    # -- 3. incremental estimation refresh -----------------------------------
    print("== 3. estimation pipeline in incremental mode ==")
    corpus = TweetCorpus(
        [
            Tweet("fan1", "RT @guru insight"),
            Tweet("fan2", "RT @guru more insight"),
            Tweet("fan2", "RT @sage wisdom"),
            Tweet("guru", "original thought"),
            Tweet("sage", "calm thought"),
        ]
    )
    estimated = registry.create(
        "estimated", estimate_candidates(corpus, ranking="pagerank").jurors
    )
    refreshed = estimate_candidates(
        TweetCorpus(list(corpus) + [Tweet("fan3", "RT @guru late insight")]),
        ranking="pagerank",
    )
    report = sync_pool_with_estimate(estimated, refreshed)
    print(f"  {report.summary()}")

    print("== equivalent repro-select serve session ==")
    for row in [
        {"cmd": "pool", "action": "create", "name": "workers",
         "candidates": [{"id": "A", "error_rate": 0.1}, {"id": "B", "error_rate": 0.2},
                        {"id": "C", "error_rate": 0.3}]},
        {"cmd": "select", "task": "t-before", "pool": "workers"},
        {"cmd": "pool", "action": "update", "name": "workers",
         "add": [{"id": "star", "error_rate": 0.03}],
         "set": [{"id": "C", "error_rate": 0.49}]},
        {"cmd": "select", "task": "t-after", "pool": "workers"},
        {"cmd": "stats"},
    ]:
        print(f"  {json.dumps(row)}")
    print("  (feed to:  repro-select serve)")


if __name__ == "__main__":
    main()
