#!/usr/bin/env python3
"""Batch-engine quickstart: select juries for many tasks in one pass.

A crowdsourcing platform rarely asks "whom should we ask?" once — it asks
thousands of times concurrently, usually against the same candidate pool.
This example shows the three ways to drive the batch engine:

1. many altruistic (AltrM) queries sharing one pool — swept exactly once;
2. mixed AltrM / PayM / exact queries in a single batch;
3. the JSONL wire format accepted by ``repro-select batch``.

Run:  python examples/batch_quickstart.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import (
    BatchSelectionEngine,
    CandidatePool,
    SelectionQuery,
    jurors_from_arrays,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # -- 1. one shared pool, many decision tasks -----------------------------
    print("== 1. 200 altruistic tasks over one 51-candidate pool ==")
    pool = CandidatePool(
        jurors_from_arrays(rng.uniform(0.05, 0.5, size=51)), pool_id="workers"
    )
    engine = BatchSelectionEngine()
    outcomes = engine.run(
        [SelectionQuery(task_id=f"task-{i}", pool=pool) for i in range(200)]
    )
    first = outcomes[0].result
    print(f"  every task -> size {first.size}, JER {first.jer:.6g}")
    print(
        f"  engine work: {engine.stats.batch_sweeps} vectorized sweep(s), "
        f"{engine.stats.pools_swept} pool(s) swept for "
        f"{engine.stats.queries_run} queries"
    )

    # -- 2. mixed strategies in one batch ------------------------------------
    print("== 2. mixed AltrM / PayM / exact batch ==")
    priced = jurors_from_arrays(
        rng.uniform(0.1, 0.4, size=9), rng.uniform(0.1, 0.6, size=9)
    )
    mixed = engine.run(
        [
            SelectionQuery(task_id="altruistic", candidates=tuple(priced)),
            SelectionQuery(
                task_id="budgeted", candidates=tuple(priced), model="pay", budget=1.0
            ),
            SelectionQuery(
                task_id="optimal", candidates=tuple(priced), model="exact", budget=1.0
            ),
        ]
    )
    for outcome in mixed:
        print(f"  {outcome.task_id:>11}: {outcome.result.summary()}")

    # -- 3. the JSONL wire format --------------------------------------------
    print("== 3. equivalent repro-select batch input ==")
    rows = [
        {
            "pool": "workers",
            "candidates": [
                {"id": j.juror_id, "error_rate": j.error_rate} for j in pool.ordered[:5]
            ],
        },
        {"task": "task-0", "pool": "workers"},
        {"task": "task-1", "pool": "workers", "model": "pay", "budget": 1.0},
    ]
    for row in rows:
        print(f"  {json.dumps(row)}")
    print("  (feed to:  repro-select batch queries.jsonl --out results.jsonl)")


if __name__ == "__main__":
    main()
