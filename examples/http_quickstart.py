#!/usr/bin/env python3
"""Quickstart for the network serving tier: ``HttpServer`` end to end.

Walks the HTTP transport over wire protocol v1:

1. start an :class:`repro.api.HttpServer` on an ephemeral port (the same
   server ``repro-select http`` runs);
2. register the paper's Figure 1 candidates as a live pool with
   ``POST /v1/pool``;
3. answer selections over a persistent keep-alive connection
   (``POST /v1/select``, then a coalesced ``POST /v1/select_many``);
4. read the live counters from ``GET /v1/stats`` and ``GET /healthz``;
5. shut down gracefully with ``aclose()`` — in-flight work drains, worker
   processes are reaped.

Everything uses :func:`repro.api.http_call`, a tiny stdlib client helper —
any HTTP client (curl, requests, a browser) speaks the same protocol.

Run:  PYTHONPATH=src python examples/http_quickstart.py
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import HttpServer, http_call  # noqa: E402

FIGURE1 = [
    ("A", 0.1, 0.20), ("B", 0.2, 0.20), ("C", 0.2, 0.20),
    ("D", 0.3, 0.40), ("E", 0.3, 0.65), ("F", 0.4, 0.10), ("G", 0.4, 0.10),
]


async def main() -> None:
    # -- 1. start the server on an ephemeral port --------------------------
    async with HttpServer(port=0) as server:
        print(f"server up on {server.address}")
        reader, writer = await asyncio.open_connection(server.host, server.port)

        # -- 2. register a live pool over the wire -------------------------
        status, ack = await http_call(
            reader, writer, "POST", "/v1/pool",
            {
                "cmd": "pool",
                "action": "create",
                "name": "figure1",
                "candidates": [
                    {"id": cid, "error_rate": eps, "requirement": req}
                    for cid, eps, req in FIGURE1
                ],
            },
        )
        print(f"pool created: HTTP {status}, version {ack['version']}, "
              f"size {ack['size']}")

        # -- 3a. one selection: the AltrM optimum over the pool ------------
        status, answer = await http_call(
            reader, writer, "POST", "/v1/select",
            {"v": 1, "task": "who-to-ask", "pool": "figure1"},
        )
        members = ", ".join(member["id"] for member in answer["members"])
        print(f"AltrM optimum: HTTP {status}, jury [{members}], "
              f"JER {answer['jer']:.6f}")

        # -- 3b. a coalesced batch, mixed with a budgeted (PayM) request ---
        status, batch = await http_call(
            reader, writer, "POST", "/v1/select_many",
            {
                "v": 1,
                "requests": [
                    {"v": 1, "task": "plain", "pool": "figure1"},
                    {"v": 1, "task": "budgeted", "pool": "figure1",
                     "model": "pay", "budget": 1.0},
                    {"v": 1, "task": "impossible", "pool": "figure1",
                     "model": "pay", "budget": 0.01},
                ],
            },
        )
        for row in batch["responses"]:
            if row["status"] == "ok":
                print(f"  {row['task']}: size {row['size']}, "
                      f"JER {row['jer']:.6f}")
            else:  # domain errors stay structured, per request
                print(f"  {row['task']}: error [{row['error']['code']}] "
                      f"{row['error']['message']}")

        # -- 4. live counters ----------------------------------------------
        _, stats = await http_call(reader, writer, "GET", "/v1/stats")
        _, health = await http_call(reader, writer, "GET", "/healthz")
        print(f"stats: {stats['async']['answered']} answered in "
              f"{stats['async']['batches']} coalesced batches; "
              f"healthz says {health['status']!r}")

        writer.close()

    # -- 5. the async-with exit already drained and closed everything -----
    print("server drained and closed; no workers left behind")


if __name__ == "__main__":
    asyncio.run(main())
