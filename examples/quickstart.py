#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 example, end to end.

"Is Turkey in Europe or in Asia?" — we have seven candidate jurors (A..G)
with known error rates and payment requirements, and one dollar of budget.
This walks through everything the library does:

1. compute Jury Error Rates for hand-picked crowds (paper Table 2);
2. select the optimal altruistic jury (AltrALG, paper Algorithm 3);
3. select the best affordable jury (PayALG, paper Algorithm 4) and compare
   it with the exact optimum;
4. sanity-check the analytic JER with a Monte-Carlo voting simulation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Juror,
    Jury,
    jury_error_rate,
    select_jury_altr,
    select_jury_optimal,
    select_jury_pay,
)
from repro.simulation import validate_jer


def main() -> None:
    # The Figure 1 cast: (error rate, payment requirement).
    candidates = [
        Juror(0.1, 0.20, juror_id="A"),
        Juror(0.2, 0.20, juror_id="B"),
        Juror(0.2, 0.20, juror_id="C"),
        Juror(0.3, 0.40, juror_id="D"),
        Juror(0.3, 0.65, juror_id="E"),
        Juror(0.4, 0.10, juror_id="F"),
        Juror(0.4, 0.10, juror_id="G"),
    ]

    print("== 1. Jury Error Rates of hand-picked crowds (paper Table 2) ==")
    for crowd in (["C"], ["A"], ["C", "D", "E"], ["A", "B", "C"],
                  ["A", "B", "C", "D", "E"], list("ABCDEFG"),
                  ["A", "B", "C", "F", "G"]):
        eps = [j.error_rate for j in candidates if j.juror_id in crowd]
        print(f"  {{{','.join(crowd)}}}: JER = {jury_error_rate(eps):.6g}")

    print("\n== 2. Optimal altruistic jury (AltrALG) ==")
    altr = select_jury_altr(candidates)
    print(f"  {altr.summary()}")
    print(f"  members: {', '.join(sorted(altr.juror_ids))}")

    print("\n== 3. Best affordable jury under a $1 budget (PayALG vs OPT) ==")
    budget = 1.0
    greedy = select_jury_pay(candidates, budget=budget)
    optimal = select_jury_optimal(candidates, budget=budget)
    print(f"  greedy : {greedy.summary()}")
    print(f"  optimum: {optimal.summary()}")
    print(
        "  -> the $1 budget rules out the D+E enlargement; the smaller\n"
        "     {A,B,C} crowd beats the cheaper-but-noisy {A,B,C,F,G}."
    )

    print("\n== 4. Monte-Carlo check of the analytic JER ==")
    jury = Jury([j for j in candidates if j.juror_id in ("A", "B", "C")])
    check = validate_jer(jury, trials=100_000, rng=np.random.default_rng(0))
    print(
        f"  analytic JER = {check.analytic:.5f}, "
        f"empirical over {check.trials} votings = {check.empirical:.5f} "
        f"(z = {check.z_score:+.2f})"
    )
    assert check.consistent(), "simulation drifted from the analytic JER"
    print("  simulation agrees with the closed-form Jury Error Rate.")


if __name__ == "__main__":
    main()
