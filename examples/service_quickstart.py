#!/usr/bin/env python3
"""Quickstart for the public API: ``JuryService`` and wire protocol v1.

Walks the typed request/response protocol end to end:

1. build a :class:`repro.api.JuryService` and register a live pool with a
   :class:`repro.api.PoolCommand`;
2. answer requests — selections, an EXPLAIN, and a structured error —
   through one dispatch path;
3. round-trip a request/response pair through its canonical wire form
   (``to_dict`` / ``from_dict``, the ``"v": 1`` protocol);
4. multiplex concurrent clients onto the same engine with
   :class:`repro.api.AsyncJuryService` and watch the batches coalesce.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (  # noqa: E402
    AsyncJuryService,
    JuryService,
    PoolCommand,
    SelectionRequest,
    SelectionResponse,
)
from repro.core.juror import Juror  # noqa: E402

FIGURE1 = [
    ("A", 0.1, 0.20), ("B", 0.2, 0.20), ("C", 0.2, 0.20),
    ("D", 0.3, 0.40), ("E", 0.3, 0.65), ("F", 0.4, 0.10), ("G", 0.4, 0.10),
]


def main() -> None:
    service = JuryService()

    # -- 1. register the paper's Figure 1 candidates as a live pool --------
    ack = service.pool(
        PoolCommand(
            action="create",
            name="figure1",
            candidates=tuple(
                Juror(eps, req, juror_id=cid) for cid, eps, req in FIGURE1
            ),
        )
    )
    print(f"pool created: {ack['name']} v{ack['version']}, {ack['size']} candidates")

    # -- 2. one dispatch path for selections, explains, and errors ---------
    altr = service.select(SelectionRequest(task_id="altr", pool="figure1"))
    print(f"AltrM: {altr.summary()}")

    pay = service.select(
        SelectionRequest(task_id="pay", pool="figure1", model="pay", budget=1.0)
    )
    print(f"PayM : {pay.summary()}")

    plan = service.explain(
        SelectionRequest(task_id="why", pool="figure1", model="pay", budget=1.0)
    )
    print(f"plan : operator={plan.plan['operator']}, "
          f"jer_backend={plan.plan['jer_backend']}")

    broken = service.select(SelectionRequest(task_id="oops", pool="nonexistent"))
    print(f"error: code={broken.error.code!r} message={broken.error.message!r}")

    # -- 3. the canonical wire form (protocol v1) --------------------------
    request = SelectionRequest(task_id="wire", pool="figure1", model="AltrM")
    wire = json.dumps(request.to_dict())
    print(f"wire request : {wire}")
    echoed = SelectionRequest.from_dict(json.loads(wire), where="<example>")
    assert echoed == request  # lossless round trip, aliases canonicalised
    response = service.select(echoed)
    rewired = SelectionResponse.from_dict(json.loads(json.dumps(response.to_dict())))
    assert rewired == response
    print(f"wire response: v={response.to_dict()['v']}, "
          f"status={rewired.status}, jer={rewired.jer:.4f}")

    # -- 4. concurrent clients coalesce into engine batches ----------------
    async def serve_concurrently() -> None:
        async_service = AsyncJuryService(service)

        async def client(name: str, budget: float | None):
            req = (
                SelectionRequest(task_id=name, pool="figure1")
                if budget is None
                else SelectionRequest(
                    task_id=name, pool="figure1", model="pay", budget=budget
                )
            )
            resp = await async_service.select(req)
            return f"{name}: size={resp.size}, jer={resp.jer:.4f}"

        answers = await asyncio.gather(
            *(client(f"task-{i}", None if i % 2 else 1.0) for i in range(6))
        )
        for line in answers:
            print(f"  {line}")

    print("6 concurrent clients, one engine:")
    asyncio.run(serve_concurrently())
    stats = service.stats()
    print(f"stats: {stats['queries_run']} queries, "
          f"cache hits={stats['cache']['hits']}")


if __name__ == "__main__":
    main()
