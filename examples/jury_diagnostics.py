#!/usr/bin/env python3
"""Jury diagnostics and interactive curation — the extension toolkit.

Beyond reproducing the paper, the library ships analysis tools a deployment
actually needs.  This example walks a "jury operations" session:

1. full diagnostics of a selected jury (JER, bounds, per-juror sensitivity
   via the Lemma 3 decomposition, what plain majority voting gives up
   against optimal weighted voting, Monte-Carlo cross-check);
2. interactive what-if curation with the O(n)-per-edit incremental jury;
3. the budget/quality frontier and "cheapest budget for a target JER";
4. sequential (SPRT) polling: same accuracy, fewer questions;
5. robustness: how much estimation noise the selection tolerates.

Run:  python examples/jury_diagnostics.py
"""

from __future__ import annotations

import numpy as np

from repro import IncrementalJury, Juror, select_jury_pay
from repro.analysis import (
    budget_frontier,
    diagnose_jury,
    minimal_budget_for_target,
    selection_regret_under_noise,
)
from repro.simulation import compare_with_static
from repro.synth import generate_workload

SEED = 99


def main() -> None:
    workload = generate_workload(
        40, eps_mean=0.25, eps_variance=0.01, req_mean=0.4, req_variance=0.04,
        seed=SEED, id_prefix="panel-",
    )
    candidates = list(workload.jurors)

    print("== 1. diagnose the budget-1.0 jury ==")
    selection = select_jury_pay(candidates, budget=1.0)
    report = diagnose_jury(
        selection.jury, monte_carlo_trials=50_000, rng=np.random.default_rng(0)
    )
    print(report.summary())

    print("\n== 2. what-if curation (incremental jury) ==")
    builder = IncrementalJury(selection.jury.jurors)
    print(f"  current JER: {builder.jer():.5f}")
    weakest = report.most_pivotal
    replacement = Juror(0.05, 0.9, juror_id="hired-expert")
    hypothetical = builder.what_if_swap(weakest.juror_id, replacement)
    print(
        f"  swap {weakest.juror_id} (eps={weakest.error_rate:.3f}) for a "
        f"hired expert (eps=0.05): JER {builder.jer():.5f} -> {hypothetical:.5f}"
    )
    pair = (Juror(0.15, 0.3, juror_id="vol-1"), Juror(0.18, 0.3, juror_id="vol-2"))
    print(
        f"  add two volunteers instead: JER -> "
        f"{builder.what_if_add(*pair):.5f} (jury untouched: size {builder.size})"
    )

    print("\n== 3. budget/quality frontier ==")
    points = budget_frontier(candidates, [0.25, 0.5, 1.0, 1.5, 2.0])
    for point in points:
        jer_txt = f"{point.jer:.5f}" if point.feasible else "infeasible"
        print(f"  B={point.budget:<4}: size={point.size:>2}  JER={jer_txt}")
    target = 0.02
    needed = minimal_budget_for_target(candidates, target)
    print(f"  cheapest budget reaching JER <= {target}: "
          f"{'unreachable' if needed is None else f'{needed:.3f}'}")

    print("\n== 4. sequential polling vs convening everyone ==")
    comparison = compare_with_static(
        selection.jury, trials=1500, delta=0.02, rng=np.random.default_rng(1)
    )
    print(
        f"  static : accuracy {comparison.static_accuracy:.3f} with "
        f"{comparison.static_questions} questions per task"
    )
    print(
        f"  adaptive: accuracy {comparison.adaptive_accuracy:.3f} with "
        f"{comparison.adaptive_mean_questions:.1f} questions per task "
        f"({comparison.question_savings:.0%} saved)"
    )

    print("\n== 5. robustness to estimation noise ==")
    true_rates = [j.error_rate for j in candidates]
    for sigma in (0.02, 0.1, 0.2):
        robustness = selection_regret_under_noise(
            true_rates, noise_sigma=sigma, n_trials=20,
            rng=np.random.default_rng(2),
        )
        print(
            f"  sigma={sigma:<5}: oracle JER {robustness.oracle_jer:.5f}, "
            f"mean realised {robustness.mean_true_jer:.5f}, "
            f"mean regret {robustness.mean_regret:.5f}"
        )
    print("\n  -> small estimation errors cost little; the selection only\n"
          "     degrades once noise rivals the error-rate spread itself.")


if __name__ == "__main__":
    main()
