#!/usr/bin/env python3
"""Rumor verification on a micro-blog service (paper Section 1's use case).

The paper motivates jury selection with rumor discernment: "to discern such
rumors is ... a typical decision making problem for online users", citing
earthquake monitoring during the Japan and Chile disasters.  This example
plays the full story on a simulated service:

1. simulate a micro-blog platform (users, follower graph, two days of
   retweet cascades);
2. estimate every user's error rate from the raw tweet stream alone
   (retweet graph -> HITS -> Section 4.1.3 normalisation) — no access to the
   latent ground-truth qualities;
3. select a jury with AltrALG;
4. stream 300 rumor-verification tasks through the jury via Majority Voting
   and compare the jury's accuracy against (a) the single best-looking user
   and (b) a random crowd of the same size.

Run:  python examples/rumor_verification.py
"""

from __future__ import annotations

import numpy as np

from repro import Jury, select_jury_altr
from repro.estimation import estimate_candidates
from repro.microblog import generate_microblog_service
from repro.simulation import generate_tasks, simulate_accuracy_over_tasks

N_USERS = 800
N_TASKS = 300
SEED = 2012


def main() -> None:
    rng = np.random.default_rng(SEED)

    print(f"== simulating a micro-blog service with {N_USERS} users ==")
    population, network, corpus = generate_microblog_service(N_USERS, seed=SEED)
    print(
        f"  {len(corpus)} tweets, {corpus.retweet_count()} retweet markers, "
        f"{network.num_follow_edges} follow edges"
    )

    print("\n== estimating juror error rates from the raw tweet stream ==")
    estimate = estimate_candidates(corpus, ranking="hits", top_k=100)
    print(f"  retweet graph: {estimate.graph.num_nodes} users, "
          f"{estimate.graph.num_edges} edges")
    top = estimate.jurors[:5]
    print("  top-5 candidates (estimated error rate):")
    for juror in top:
        print(f"    {juror.juror_id}: eps = {juror.error_rate:.4g}")

    print("\n== selecting the jury (AltrALG) ==")
    selection = select_jury_altr(estimate.jurors)
    print(f"  {selection.summary()}")

    # The simulator's latent quality drives actual voting behaviour.  We map
    # quality q to an answer error rate of 0.5 * (1 - q): a hopeless user
    # guesses (error 0.5), a perfect authority never errs — the "intrinsic
    # divergence but collaborative reliability" regime of Section 2.1.2.
    latent_error = {u.username: 0.5 * (1.0 - u.quality) for u in population}

    def true_jury(juror_ids) -> Jury:
        members = [
            j for j in estimate.jurors if j.juror_id in set(juror_ids)
        ]
        # Re-ground each juror in the *latent* error rate for simulation.
        from repro import Juror

        return Jury(
            [
                Juror(
                    min(max(latent_error[j.juror_id], 1e-6), 1 - 1e-6),
                    juror_id=j.juror_id,
                )
                for j in members
            ]
        )

    print(f"\n== streaming {N_TASKS} rumor-verification tasks ==")
    tasks = list(generate_tasks(N_TASKS, rng=rng))

    jury = true_jury(selection.juror_ids)
    jury_accuracy = simulate_accuracy_over_tasks(jury, tasks, rng=rng)

    best_single = true_jury([estimate.jurors[0].juror_id])
    single_accuracy = simulate_accuracy_over_tasks(best_single, tasks, rng=rng)

    random_ids = rng.choice(
        [u.username for u in population], size=jury.size, replace=False
    )
    from repro import Juror

    random_jury = Jury(
        [
            Juror(
                min(max(latent_error[name], 1e-6), 1 - 1e-6),
                juror_id=str(name),
            )
            for name in random_ids
        ]
    )
    random_accuracy = simulate_accuracy_over_tasks(random_jury, tasks, rng=rng)

    print(f"  selected jury   (n={jury.size}): accuracy = {jury_accuracy:.3f}")
    print(f"  best single user        : accuracy = {single_accuracy:.3f}")
    print(f"  random crowd   (n={jury.size}): accuracy = {random_accuracy:.3f}")
    print(
        "\n  -> the estimated-and-selected jury beats both the lone expert\n"
        "     and an unselected crowd: whom you ask matters."
    )


if __name__ == "__main__":
    main()
