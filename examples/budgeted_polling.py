#!/usr/bin/env python3
"""Budgeted decision polling under PayM (paper Section 3.3's use case).

A product team wants to crowdsource a yes/no market question ("will our
users adopt feature X?") to paid micro-blog panellists.  Each panellist has
an estimated error rate and a payment requirement; the team sweeps its
budget and watches how jury quality responds — the Figure 3(c)/(d) story at
example scale — then compares three selectors at one budget:

* PayALG (paper Algorithm 4, first-fit pairing);
* PayALG-improved (steepest-descent ablation);
* the exact optimum (branch and bound).

Run:  python examples/budgeted_polling.py
"""

from __future__ import annotations

from repro import (
    branch_and_bound_optimal,
    select_jury_pay,
)
from repro.synth import generate_workload

N_PANELLISTS = 60
SEED = 424


def main() -> None:
    workload = generate_workload(
        N_PANELLISTS,
        eps_mean=0.25,
        eps_variance=0.01,
        req_mean=0.4,
        req_variance=0.04,
        seed=SEED,
        id_prefix="panellist-",
    )
    candidates = list(workload.jurors)
    print(
        f"== panel of {N_PANELLISTS} paid candidates "
        f"(eps ~ N(0.25, 0.1^2), r ~ N(0.4, 0.2^2)) =="
    )

    print("\n== budget sweep (PayALG) ==")
    print(f"  {'budget':>8}  {'size':>4}  {'cost':>8}  {'JER':>10}")
    for budget in (0.2, 0.4, 0.8, 1.2, 1.6, 2.0):
        result = select_jury_pay(candidates, budget=budget)
        print(
            f"  {budget:>8.2f}  {result.size:>4}  {result.total_cost:>8.3f}  "
            f"{result.jer:>10.5f}"
        )
    print("  -> raising the budget buys larger juries and lower error.")

    budget = 1.2
    print(f"\n== selector comparison at budget {budget} ==")
    greedy = select_jury_pay(candidates, budget=budget)
    improved = select_jury_pay(candidates, budget=budget, variant="improved")
    exact = branch_and_bound_optimal(candidates, budget=budget)
    for label, result in (
        ("PayALG (paper)", greedy),
        ("PayALG-improved", improved),
        ("exact optimum", exact),
    ):
        print(
            f"  {label:<16} size={result.size:>2}  cost={result.total_cost:.3f}  "
            f"JER={result.jer:.5f}"
        )
    assert exact.jer <= improved.jer + 1e-12 <= greedy.jer + 2e-12
    gap = (greedy.jer - exact.jer) / exact.jer if exact.jer else 0.0
    print(f"\n  greedy-vs-optimal JER gap: {gap:.1%}")
    print(
        "  -> the improved pairing closes part of the gap; branch-and-bound\n"
        "     certifies the optimum for panels this size."
    )


if __name__ == "__main__":
    main()
