"""Benchmark + reproduction of Figure 3(h): PayALG precision & recall."""

from __future__ import annotations

from repro.experiments.fig3h import Fig3hConfig, run_fig3h


def bench_fig3h(benchmark, save_artifact):
    """Regenerate Figure 3(h); precision/recall live in [0, 1] and the
    greedy recovers the optimum at most budgets (paper: HT scores 1.0)."""
    result = benchmark.pedantic(
        run_fig3h, args=(Fig3hConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    values = []
    for series in result.series:
        for point in series.points:
            assert 0.0 <= point.y <= 1.0
            values.append(point.y)
    assert values, "sweep produced no feasible budgets"
    assert max(values) == 1.0
