#!/usr/bin/env python3
"""Durable catalog benchmark: WAL mutation throughput + crash recovery time.

Two measurements over ``repro.storage.PoolCatalog``:

* **Durable mutation throughput by fsync policy.**  The same churn stream
  (interleaved add/update/remove against catalog-backed ``LivePool``s) is
  replayed under ``fsync_batch=1`` (fsync per record — an acked mutation
  is durable), ``fsync_batch=64`` (group commit) and ``fsync_batch=0``
  (deferred: fsync only on flush/close), reporting mutations/second for
  each.  The spread is the price of the durability guarantee.

* **Cold-restart recovery vs catalog size.**  Catalogs of increasing pool
  count — each pool carrying a columnar snapshot plus a WAL tail past it,
  the shape a crash leaves behind — are closed and reopened cold; the
  bench times the index scan (startup) and the full recovery of every
  pool (snapshot load + WAL-tail replay through the delta kernels),
  reporting ms/pool.

Every recovered pool is verified **bit-identical** to its pre-restart
live state on every run: fingerprint, version, member ids, error rates
and requirements compared by ``float.hex``, and a full engine selection
(jury ids + JER bitwise) — a recovery that drifts by one bit fails the
bench, so the perf numbers can never outlive the correctness claim.

Run:  PYTHONPATH=src python benchmarks/bench_catalog.py [--smoke]
      [--mutations N] [--pool-counts A,B,C] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs; any bit-identity
failure exits non-zero in either mode.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _common import verification_failure, write_artifact  # noqa: E402
from repro.core.juror import Juror, jurors_from_arrays  # noqa: E402
from repro.service import BatchSelectionEngine, SelectionQuery  # noqa: E402
from repro.storage import PoolCatalog  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402

#: Snapshot cadence for the recovery phase: low enough that every pool
#: has at least one columnar snapshot *and* a WAL tail beyond it, so the
#: timed recovery exercises both the mmap load and the delta replay.
RECOVERY_SNAPSHOT_INTERVAL = 24

#: Churn applied to every pool in the recovery phase (> interval above).
RECOVERY_CHURN = 36

#: The fsync policies compared by the throughput phase.
FSYNC_POLICIES = (
    ("per-record", 1),
    ("group-64", 64),
    ("deferred", 0),
)


def _seed_pools(
    catalog: PoolCatalog, count: int, size: int, rng: np.random.Generator
) -> list[str]:
    names = []
    for p in range(count):
        eps = rng.uniform(0.05, 0.45, size=size)
        reqs = rng.uniform(0.1, 2.0, size=size)
        catalog.create(f"pool-{p}", jurors_from_arrays(eps, requirements=reqs))
        names.append(f"pool-{p}")
    return names


def _churn(pool, steps: int, rng: np.random.Generator, tag: str) -> None:
    """Interleaved add/update/remove stream (deterministic given rng)."""
    for step in range(steps):
        kind = step % 3
        if kind == 0:
            pool.add_juror(
                Juror(
                    float(rng.uniform(0.05, 0.45)),
                    juror_id=f"{tag}{step}",
                    requirement=float(rng.uniform(0.1, 2.0)),
                )
            )
        elif kind == 1:
            victim = pool.ordered[int(rng.integers(pool.size))]
            pool.update_error_rate(
                victim.juror_id, float(rng.uniform(0.05, 0.45))
            )
        else:
            victim = pool.ordered[int(rng.integers(pool.size))]
            pool.remove_juror(victim.juror_id)


def bench_mutation_throughput(
    root: Path, pools: int, size: int, mutations: int
) -> list[dict]:
    """Replay one churn stream under each fsync policy; mutations/sec."""
    rows = []
    for label, batch in FSYNC_POLICIES:
        rng = np.random.default_rng(BENCH_SEED)
        data_dir = root / f"throughput-{label}"
        catalog = PoolCatalog(
            data_dir,
            fsync_batch=batch,
            snapshot_interval=0,  # isolate WAL append cost from snapshots
        )
        names = _seed_pools(catalog, pools, size, rng)
        handles = [catalog.open(name) for name in names]
        per_pool = mutations // pools
        start = time.perf_counter()
        for i, pool in enumerate(handles):
            _churn(pool, per_pool, rng, tag=f"m{i}-")
        catalog.flush()  # deferred policy pays its fsync here, inside the clock
        elapsed = time.perf_counter() - start
        stats = catalog.stats_snapshot()
        catalog.close()
        applied = per_pool * pools
        rows.append(
            {
                "policy": label,
                "fsync_batch": batch,
                "mutations": applied,
                "seconds": elapsed,
                "mutations_per_sec": applied / elapsed,
                "wal_appends": stats["wal_appends"],
                "fsyncs": stats["fsyncs"],
            }
        )
    return rows


def _pool_state(pool, engine: BatchSelectionEngine, task_id: str) -> tuple:
    """Everything a recovered pool must reproduce, in bit-exact form."""
    members = tuple(
        (j.juror_id, j.error_rate.hex(), j.requirement.hex())
        for j in pool.ordered
    )
    outcome = engine.run([SelectionQuery(task_id=task_id, pool=pool)])[0]
    assert outcome.ok, outcome.exception
    result = outcome.result
    return (
        pool.fingerprint,
        pool.version,
        members,
        result.juror_ids,
        result.jer.hex(),
    )


def bench_recovery(
    root: Path, pool_counts: list[int], size: int
) -> tuple[list[dict], int]:
    """Cold-restart recovery time vs pool count, bit-identity verified."""
    rows = []
    mismatches = 0
    for count in pool_counts:
        rng = np.random.default_rng(BENCH_SEED + count)
        data_dir = root / f"recovery-{count}"
        catalog = PoolCatalog(
            data_dir,
            snapshot_interval=RECOVERY_SNAPSHOT_INTERVAL,
            max_resident=max(count, 1),
        )
        names = _seed_pools(catalog, count, size, rng)
        engine = BatchSelectionEngine()
        expected = {}
        for i, name in enumerate(names):
            pool = catalog.open(name)
            _churn(pool, RECOVERY_CHURN, rng, tag=f"r{i}-")
            expected[name] = _pool_state(pool, engine, f"pre-{name}")
        catalog.close()

        start = time.perf_counter()
        reopened = PoolCatalog(
            data_dir,
            snapshot_interval=RECOVERY_SNAPSHOT_INTERVAL,
            max_resident=max(count, 1),
        )
        index_seconds = time.perf_counter() - start
        engine2 = BatchSelectionEngine()
        start = time.perf_counter()
        recovered = {name: reopened.open(name) for name in names}
        recover_seconds = time.perf_counter() - start
        for name, pool in recovered.items():
            if _pool_state(pool, engine2, f"post-{name}") != expected[name]:
                mismatches += 1
                verification_failure(f"pool {name!r} diverged after recovery")
        stats = reopened.stats_snapshot()
        reopened.close()
        rows.append(
            {
                "pools": count,
                "pool_size": size,
                "churn_per_pool": RECOVERY_CHURN,
                "snapshot_interval": RECOVERY_SNAPSHOT_INTERVAL,
                "index_ms": index_seconds * 1e3,
                "recovery_seconds": recover_seconds,
                "recovery_ms_per_pool": recover_seconds * 1e3 / count,
                "pools_per_sec": count / recover_seconds,
                "records_replayed": stats["records_replayed"],
                "snapshots_loaded": stats["lazy_loads"],
            }
        )
    return rows, mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pools", type=int, default=16,
        help="pools in the throughput phase",
    )
    parser.add_argument(
        "--pool-size", type=int, default=101, help="initial candidates per pool"
    )
    parser.add_argument(
        "--mutations", type=int, default=4800,
        help="total durable mutations per fsync policy",
    )
    parser.add_argument(
        "--pool-counts", default="16,64,256",
        help="comma-separated catalog sizes for the recovery phase",
    )
    parser.add_argument(
        "--out", default="BENCH_catalog.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + identity check only (CI smoke job)",
    )
    args = parser.parse_args(argv)

    pools, size, mutations = args.pools, args.pool_size, args.mutations
    pool_counts = [int(c) for c in args.pool_counts.split(",") if c]
    if args.smoke:
        pools, size, mutations = 4, 31, 480
        pool_counts = [4, 16]

    root = Path(tempfile.mkdtemp(prefix="bench-catalog-"))
    try:
        print(
            f"bench_catalog: {mutations} durable mutations over {pools} pools "
            f"of {size} candidates, per fsync policy"
        )
        throughput = bench_mutation_throughput(root, pools, size, mutations)
        for row in throughput:
            print(
                f"  {row['policy']:>10} (fsync_batch={row['fsync_batch']:>2}) "
                f"{row['seconds']:8.3f}s  "
                f"{row['mutations_per_sec']:10.1f} mut/s  "
                f"({row['fsyncs']} fsyncs)"
            )

        print(
            f"bench_catalog: cold-restart recovery at catalog sizes "
            f"{pool_counts} ({RECOVERY_CHURN} churn events/pool, snapshot "
            f"every {RECOVERY_SNAPSHOT_INTERVAL})"
        )
        recovery, mismatches = bench_recovery(root, pool_counts, size)
        for row in recovery:
            print(
                f"  {row['pools']:>5} pools  index {row['index_ms']:7.2f}ms  "
                f"recover {row['recovery_seconds']:8.3f}s  "
                f"{row['recovery_ms_per_pool']:7.2f} ms/pool  "
                f"({row['records_replayed']} records replayed)"
            )
        identical = mismatches == 0
        print(f"  bit-identical after recovery: {identical}")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    artifact = {
        "benchmark": "catalog",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "throughput_pools": pools,
            "pool_size": size,
            "mutations_per_policy": mutations,
            "recovery_pool_counts": pool_counts,
            "recovery_churn_per_pool": RECOVERY_CHURN,
            "recovery_snapshot_interval": RECOVERY_SNAPSHOT_INTERVAL,
        },
        "mutation_throughput": throughput,
        "recovery": recovery,
        "verified_identical": identical,
    }
    write_artifact(args.out, artifact)

    if not identical:
        return verification_failure(
            f"{mismatches} pool(s) were not bit-identical after recovery"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
