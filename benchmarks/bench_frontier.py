#!/usr/bin/env python3
"""Answer-frontier benchmark: O(log n) repeat selections vs the plan pipeline.

Scenario: a serving tier answering a Zipf-skewed stream of repeat AltrM
queries — the workload the frontier cache exists for.  ``P`` candidate
pools of ~``n`` jurors each (a handful of strong candidates followed by a
long tail of weak ones, so the winning jury is a small prefix) are queried
``Q`` times; pool popularity follows a Zipf law, so a few hot pools absorb
most of the stream, and a slice of the queries carry ``max_size`` caps.

Two engine configurations answer the identical stream:

* ``oracle``  — ``frontier_size=0``: every repeat query runs the full
  pipeline (``plan_query`` + ``execute_plan``); the sweep cache is warm, so
  this measures the plan/scan cost the frontier removes, not resweeping.
* ``frontier`` — default frontier cache: repeats are answered by one
  ``np.searchsorted`` probe of the materialised budget→jury frontier,
  before planning ever starts.

Responses are verified **bit-identical** (juror ids, JER compared by
``float.hex``, work counters) between the two policies on every run, and a
machine-readable ``BENCH_frontier.json`` artifact is written.

Run:  PYTHONPATH=src python benchmarks/bench_frontier.py [--smoke]
      [--pools N] [--pool-size N] [--queries N] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs and exits non-zero if the
frontier fails to beat the oracle pipeline at all, or if any response
diverges.  The full-size acceptance bar is >= 5x on the repeat phase.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _common import verification_failure, write_artifact  # noqa: E402
from repro.core.juror import jurors_from_arrays  # noqa: E402
from repro.service import BatchSelectionEngine, CandidatePool, SelectionQuery  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402

#: Zipf exponent for pool popularity (s > 1: a few pools absorb the stream).
ZIPF_EXPONENT = 1.3

#: Fraction of repeat queries carrying a ``max_size`` cap.
CAPPED_FRACTION = 0.25


def build_pools(count: int, size: int, rng: np.random.Generator) -> list[CandidatePool]:
    """Pools with a short strong head and a long weak tail.

    A handful of low-error candidates followed by near-coin-flip filler
    keeps the optimal jury a small prefix — the regime where the paper's
    AltrALG sweep spends almost all its time scanning prefixes it will
    reject, which is exactly the scan the frontier probe replaces.
    """
    pools = []
    strong = max(3, size // 100)
    for _ in range(count):
        eps = np.concatenate(
            [
                rng.uniform(0.05, 0.20, size=strong),
                rng.uniform(0.45, 0.49, size=size - strong),
            ]
        )
        pools.append(CandidatePool(jurors_from_arrays(eps)))
    return pools


def build_stream(
    pools: list[CandidatePool], queries: int, rng: np.random.Generator
) -> list[SelectionQuery]:
    """Zipf-skewed repeat-query stream over the shared pools."""
    ranks = np.minimum(rng.zipf(ZIPF_EXPONENT, size=queries), len(pools)) - 1
    capped = rng.random(queries) < CAPPED_FRACTION
    caps = rng.choice([3, 5, 9, 15], size=queries)
    return [
        SelectionQuery(
            task_id=f"q{i}",
            pool=pools[int(rank)],
            max_size=int(caps[i]) if capped[i] else None,
        )
        for i, rank in enumerate(ranks)
    ]


def _normalise(outcome) -> tuple:
    result = outcome.result
    return (
        result.juror_ids,
        result.jer.hex(),  # bitwise, not approximate
        result.algorithm,
        result.stats.juries_considered,
        result.stats.jer_evaluations,
    )


def run_policy(
    pools: list[CandidatePool],
    stream: list[SelectionQuery],
    *,
    frontier_size: int,
) -> tuple[float, list[tuple], dict]:
    """Warm one engine, then time the repeat phase query by query."""
    engine = BatchSelectionEngine(frontier_size=frontier_size)
    # Warm phase (untimed): one cold query per pool fills the sweep cache —
    # and, when enabled, materialises the frontiers — so the timed phase
    # measures repeat answering, not first-touch sweeping.
    warm = [
        SelectionQuery(task_id=f"warm{i}", pool=pool)
        for i, pool in enumerate(pools)
    ]
    for query in warm:
        outcome = engine.run([query])[0]
        assert outcome.ok, outcome.exception
    start = time.perf_counter()
    outcomes = [engine.run([query])[0] for query in stream]
    elapsed = time.perf_counter() - start
    assert all(outcome.ok for outcome in outcomes)
    counters = {
        "frontier_hits": engine.stats.frontier_hits,
        "frontier": engine.frontier.snapshot(),
        "sweep_cache_hits": engine.cache.hits,
    }
    return elapsed, [_normalise(outcome) for outcome in outcomes], counters


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pools", type=int, default=50, help="distinct pools")
    parser.add_argument(
        "--pool-size", type=int, default=1001, help="candidates per pool"
    )
    parser.add_argument(
        "--queries", type=int, default=2000, help="repeat-phase stream length"
    )
    parser.add_argument(
        "--out", default="BENCH_frontier.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    pool_count, pool_size, queries = args.pools, args.pool_size, args.queries
    if args.smoke:
        pool_count, pool_size, queries = 10, 301, 300

    rng = np.random.default_rng(BENCH_SEED)
    pools = build_pools(pool_count, pool_size, rng)
    stream = build_stream(pools, queries, rng)
    hot = np.bincount(
        [pools.index(q.pool) for q in stream[:200]], minlength=len(pools)
    ).max()
    print(
        f"bench_frontier: {queries} repeat queries over {pool_count} pools "
        f"of {pool_size} candidates (Zipf s={ZIPF_EXPONENT}, "
        f"{int(CAPPED_FRACTION * 100)}% capped; hottest pool serves "
        f"{hot}/200 of the opening stream)"
    )

    oracle_seconds, oracle_rows, _ = run_policy(pools, stream, frontier_size=0)
    print(
        f"  oracle   (frontier off) {oracle_seconds:8.3f}s  "
        f"{queries / oracle_seconds:10.1f} q/s"
    )
    frontier_seconds, frontier_rows, counters = run_policy(
        pools, stream, frontier_size=128
    )
    speedup = oracle_seconds / frontier_seconds
    print(
        f"  frontier (cache on)     {frontier_seconds:8.3f}s  "
        f"{queries / frontier_seconds:10.1f} q/s   {speedup:5.2f}x"
    )

    identical = oracle_rows == frontier_rows
    hits = counters["frontier_hits"]
    print(f"  bit-identical: {identical}; frontier hits {hits}/{queries}")

    artifact = {
        "benchmark": "frontier",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "pools": pool_count,
            "pool_size": pool_size,
            "queries": queries,
            "zipf_exponent": ZIPF_EXPONENT,
            "capped_fraction": CAPPED_FRACTION,
        },
        "oracle_seconds": oracle_seconds,
        "oracle_qps": queries / oracle_seconds,
        "frontier_seconds": frontier_seconds,
        "frontier_qps": queries / frontier_seconds,
        "speedup": speedup,
        "verified_identical": identical,
        "counters": counters,
    }
    write_artifact(args.out, artifact)

    if not identical:
        return verification_failure(
            "frontier responses diverged from the oracle pipeline"
        )
    if hits != queries:
        return verification_failure("some repeat queries missed the frontier cache")
    floor = 1.5 if args.smoke else 5.0
    if speedup < floor:
        return verification_failure(
            f"speedup {speedup:.2f}x below the {floor}x acceptance bar"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
