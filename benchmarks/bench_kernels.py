#!/usr/bin/env python3
"""Kernel-backend benchmark: compiled JER/PMF kernels vs the NumPy reference.

Scenario: the two hot loops the compiled backends exist for, at the pool
sizes the paper's experiments run at (~1,000 candidates):

* **sweep** — the batched odd-prefix JER sweep behind every AltrM query
  (:func:`repro.core.jer.batch_prefix_jer_sweep`), measured at a single
  1,001-candidate pool and at stacked 2-D batches (the batch engine's
  shape).
* **pay_scan** — the PayALG paper scan behind every PayM query
  (:func:`repro.core.selection.pay.run_pay_greedy`), whose pair trials a
  compiled backend scores in one fused call.
* **score_block** — the blocked trial scorer the improved PayALG variant
  and the exact solvers lean on.

Each workload runs the NumPy reference backend against every available
compiled backend (numba and/or the cc-compiled native backend) and
verifies the outputs **bit-identical** — the same invariant the backends'
activation self-check enforces, re-checked here on the benchmark inputs.
A machine-readable ``BENCH_kernels.json`` artifact is written with the
uniform host-metadata block.

Run:  PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke]
      [--pool-size N] [--repeats N] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs (bit-identity is still
enforced; the speedup bar is not).  The full-size acceptance bar is >= 3x
over NumPy on the sweep or the PayM scan at the 1,000-candidate pool for
at least one compiled backend; when no compiled backend is available the
bench records that in the artifact and exits 0 (the degradation path is
itself a supported configuration).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from _common import verification_failure, write_artifact  # noqa: E402
from repro.core import kernels  # noqa: E402
from repro.core.jer import extend_pmf  # noqa: E402
from repro.core.juror import Juror  # noqa: E402
from repro.core.selection.pay import run_pay_greedy  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    return a.shape == b.shape and bool(
        np.array_equal(a.view(np.uint64), b.view(np.uint64))
    )


def bench_sweep(rng, batch: int, pool_size: int, repeats: int, backend: str) -> dict:
    eps = rng.uniform(0.05, 0.6, size=(batch, pool_size))
    reference = kernels.backend_for("sweep", pool_size, forced="numpy")
    compiled = kernels.backend_for("sweep", pool_size, forced=backend)
    expected = reference.sweep(eps)
    got = compiled.sweep(eps)
    identical = _bits_equal(expected, got)
    numpy_seconds = _best_of(lambda: reference.sweep(eps), repeats)
    compiled_seconds = _best_of(lambda: compiled.sweep(eps), repeats)
    return {
        "kernel": "sweep",
        "backend": backend,
        "batch": batch,
        "pool_size": pool_size,
        "numpy_seconds": numpy_seconds,
        "compiled_seconds": compiled_seconds,
        "speedup": numpy_seconds / compiled_seconds,
        "verified_identical": identical,
    }


def _normalise_pay(result) -> tuple:
    return (
        result.juror_ids,
        result.jer.hex(),  # bitwise, not approximate
        result.stats.juries_considered,
        result.stats.jer_evaluations,
    )


def bench_pay(rng, pool_size: int, budget: float, repeats: int, backend: str) -> dict:
    eps = rng.uniform(0.05, 0.45, size=pool_size)
    reqs = rng.uniform(0.01, 0.05, size=pool_size)
    jurors = [
        Juror(float(e), float(r), juror_id=f"w{i}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    ]
    expected = _normalise_pay(run_pay_greedy(jurors, budget, backend="numpy"))
    got = _normalise_pay(run_pay_greedy(jurors, budget, backend=backend))
    identical = expected == got
    numpy_seconds = _best_of(
        lambda: run_pay_greedy(jurors, budget, backend="numpy"), repeats
    )
    compiled_seconds = _best_of(
        lambda: run_pay_greedy(jurors, budget, backend=backend), repeats
    )
    return {
        "kernel": "pay_scan",
        "backend": backend,
        "pool_size": pool_size,
        "budget": budget,
        "numpy_seconds": numpy_seconds,
        "compiled_seconds": compiled_seconds,
        "speedup": numpy_seconds / compiled_seconds,
        "verified_identical": identical,
    }


def bench_score_block(
    rng, jury_size: int, block: int, repeats: int, backend: str
) -> dict:
    base = np.ones(1, dtype=np.float64)
    for e in rng.uniform(0.05, 0.45, size=jury_size):
        base = extend_pmf(base, float(e))
    eps = rng.uniform(0.05, 0.45, size=block)
    threshold = (jury_size + 2) // 2
    reference = kernels.backend_for("score_block", block * (base.size + 1), forced="numpy")
    compiled = kernels.backend_for("score_block", block * (base.size + 1), forced=backend)
    ref_jers, ref_rows = reference.score_block(base, eps, threshold)
    got_jers, got_rows = compiled.score_block(base, eps, threshold)
    identical = _bits_equal(ref_jers, got_jers) and _bits_equal(ref_rows, got_rows)
    numpy_seconds = _best_of(
        lambda: reference.score_block(base, eps, threshold), repeats
    )
    compiled_seconds = _best_of(
        lambda: compiled.score_block(base, eps, threshold), repeats
    )
    return {
        "kernel": "score_block",
        "backend": backend,
        "jury_size": jury_size,
        "block": block,
        "numpy_seconds": numpy_seconds,
        "compiled_seconds": compiled_seconds,
        "speedup": numpy_seconds / compiled_seconds,
        "verified_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pool-size", type=int, default=1001, help="candidates per pool"
    )
    parser.add_argument(
        "--budget", type=float, default=3.0, help="PayM budget for the scan bench"
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of repeats")
    parser.add_argument(
        "--out", default="BENCH_kernels.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes; bit-identity enforced, the 3x bar is not (CI smoke)",
    )
    args = parser.parse_args(argv)

    pool_size, repeats = args.pool_size, args.repeats
    batches = (1, 8, 16)
    block = 1000
    if args.smoke:
        pool_size, repeats, batches, block = 151, 2, (1, 4), 120

    active = kernels.ensure_ready()
    compiled_backends = [
        name for name in kernels.available_backends() if name != "numpy"
    ]
    print(
        f"bench_kernels: pool {pool_size}, repeats {repeats} "
        f"({'smoke' if args.smoke else 'full'} mode); active backend "
        f"{active!r}, compiled available: {compiled_backends or 'none'}"
    )

    rows: list[dict] = []
    rng = np.random.default_rng(BENCH_SEED)
    for backend in compiled_backends:
        for batch in batches:
            rows.append(bench_sweep(rng, batch, pool_size, repeats, backend))
        rows.append(bench_pay(rng, pool_size - 1, args.budget, repeats, backend))
        rows.append(
            bench_score_block(rng, min(pool_size, 201), block, repeats, backend)
        )

    for row in rows:
        shape = ", ".join(
            f"{k}={row[k]}"
            for k in ("batch", "pool_size", "jury_size", "block")
            if k in row
        )
        verdict = "identical" if row["verified_identical"] else "DIVERGED"
        print(
            f"  {row['kernel']:<12} [{row['backend']}] {shape:<28} "
            f"numpy {row['numpy_seconds'] * 1e3:9.3f} ms   "
            f"{row['backend']} {row['compiled_seconds'] * 1e3:9.3f} ms   "
            f"{row['speedup']:6.2f}x  ({verdict})"
        )

    anchor_rows = [
        row
        for row in rows
        if (row["kernel"] == "sweep" and row["batch"] == 1)
        or row["kernel"] == "pay_scan"
    ]
    anchor = max((row["speedup"] for row in anchor_rows), default=None)

    write_artifact(
        args.out,
        {
            "benchmark": "kernels",
            "mode": "smoke" if args.smoke else "full",
            "requested_backend": kernels.requested_backend(),
            "active_backend": active,
            "backend_status": kernels.backend_status(),
            "workload": {
                "pool_size": pool_size,
                "batches": list(batches),
                "budget": args.budget,
                "block": block,
                "repeats": repeats,
            },
            "results": rows,
            "anchor_speedup": anchor,
            "verified_identical": all(row["verified_identical"] for row in rows),
        },
    )

    if not all(row["verified_identical"] for row in rows):
        return verification_failure(
            "a compiled kernel diverged from the NumPy reference"
        )
    if not compiled_backends:
        print(
            "  note: no compiled backend available on this host — NumPy "
            "reference numbers only"
        )
        return 0
    if not args.smoke and (anchor is None or anchor < 3.0):
        return verification_failure(
            f"anchor speedup {anchor if anchor is None else f'{anchor:.2f}x'} "
            "below the 3x acceptance bar at the 1,000-candidate pool"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
