"""Benchmark + reproduction of Figure 3(e): APPX vs OPT on total cost."""

from __future__ import annotations

from repro.experiments.fig3e import Fig3eConfig, run_fig3e


def bench_fig3e(benchmark, save_artifact):
    """Regenerate Figure 3(e); both selections stay within budget and OPT's
    spending is monotone in B (the paper: 'budget is indeed the constraint
    of forming better jury')."""
    result = benchmark.pedantic(
        run_fig3e, args=(Fig3eConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    for series in result.series:
        for point in series.points:
            assert point.y <= point.x + 1e-9
    opt = result.series_named("OPT").ys
    assert opt == sorted(opt)
