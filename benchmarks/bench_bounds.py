"""Ablation bench: Lemma 2 lower bound vs exact JER computation.

The paper's pruning argument rests on the bound being much cheaper than the
JER it screens ("the time cost of lower bound calculation is smaller than
that of both algorithms" — Section 3.1.3).  This bench quantifies the gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import paley_zygmund_lower_bound
from repro.core.jer import jer_cba, jer_dp

N = 2001


@pytest.fixture(scope="module")
def error_prone_eps():
    # gamma < 1 regime so the bound is actually applicable.
    rng = np.random.default_rng(63)
    return rng.uniform(0.55, 0.95, size=N)


def bench_paley_zygmund_bound(benchmark, error_prone_eps):
    """O(n) bound evaluation."""
    value = benchmark(paley_zygmund_lower_bound, error_prone_eps)
    assert value is not None
    assert 0.0 < value < 1.0


def bench_exact_jer_same_jury_dp(benchmark, error_prone_eps):
    """The O(n^2) computation the bound is screening."""
    value = benchmark(jer_dp, error_prone_eps)
    bound = paley_zygmund_lower_bound(error_prone_eps)
    assert bound is not None and bound <= value + 1e-12


def bench_exact_jer_same_jury_cba(benchmark, error_prone_eps):
    """The O(n log n) computation the bound is screening."""
    value = benchmark(jer_cba, error_prone_eps)
    assert 0.0 <= value <= 1.0
