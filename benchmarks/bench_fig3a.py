"""Benchmark + reproduction of Figure 3(a): jury size vs mean error rate."""

from __future__ import annotations

from repro.experiments.fig3a import Fig3aConfig, run_fig3a


def bench_fig3a(benchmark, save_artifact):
    """Regenerate Figure 3(a) at bench scale and check the 0.5 collapse."""
    result = benchmark.pedantic(
        run_fig3a, args=(Fig3aConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    tight = result.series_named("var(0.1)")
    below = max(tight.y_at(x) for x in (0.1, 0.3))
    above = max(tight.y_at(x) for x in (0.7, 0.9))
    # Paper's finding: the optimal jury collapses once the population mean
    # crosses 0.5 ("truth rests in the hands of a few").
    assert above < below
