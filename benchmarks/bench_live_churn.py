#!/usr/bin/env python3
"""Churn benchmark: delta-maintained live pools vs full rebuild per mutation.

Scenario: a platform serving selection queries from a 1,000-candidate pool
while ~1% of the pool churns between query bursts (arrivals, departures,
re-estimated error rates — the workload ``repro-select serve`` sees).  Two
maintenance policies answer identical queries:

* ``rebuild`` — the pre-registry behaviour: every mutation rebuilds a fresh
  immutable ``CandidatePool`` and resweeps it in full, so each churn event
  costs ``O(n^2)``.
* ``delta``   — a ``LivePool``: mutations are ``O(n)`` sorted edits; the
  next query repairs only the dirtied suffix of the prefix pmf matrix,
  coalescing the whole churn burst into one partial sweep.

Selections are verified identical between the two policies (the delta path
is bit-identical by construction), timings are printed, and a
machine-readable ``BENCH_live_churn.json`` artifact is written so the perf
trajectory can be tracked across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_live_churn.py [--smoke]
      [--pool-size N] [--rounds N] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs and exits non-zero if
the delta policy fails to beat full rebuilds at all (a regression canary,
kept loose on purpose so shared CI runners do not flake).  The full-size
acceptance bar is the printed ``speedup`` >= 5x.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from _common import verification_failure, write_artifact  # noqa: E402
from repro.core.jer import batch_prefix_jer_sweep, best_odd_prefix  # noqa: E402
from repro.core.juror import Juror  # noqa: E402
from repro.service import CandidatePool, LivePool  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402


def _make_jurors(rng: np.random.Generator, size: int) -> list[Juror]:
    eps = rng.uniform(0.05, 0.6, size=size)
    return [Juror(float(e), juror_id=f"w{i}") for i, e in enumerate(eps)]


def _plan_workload(rng, jurors, rounds, churn, queries_per_round):
    """Pre-generate the mutation/query schedule so both policies replay it."""
    live_ids = [j.juror_id for j in jurors]
    fresh = len(jurors)
    plan = []
    for _ in range(rounds):
        mutations = []
        for slot in range(churn):
            kind = ("update", "add", "remove")[slot % 3]
            if kind == "add":
                fresh += 1
                mutations.append(
                    ("add", Juror(float(rng.uniform(0.05, 0.6)), juror_id=f"w{fresh}"))
                )
                live_ids.append(f"w{fresh}")
            elif kind == "remove":
                victim = live_ids.pop(int(rng.integers(len(live_ids))))
                mutations.append(("remove", victim))
            else:
                target = live_ids[int(rng.integers(len(live_ids)))]
                mutations.append(
                    ("update", target, float(rng.uniform(0.05, 0.6)))
                )
        plan.append((mutations, queries_per_round))
    return plan


def _run_delta(jurors, plan):
    pool = LivePool(jurors, pool_id="bench")
    pool.sweep_profile()  # warm start, outside the timed region
    answers = []
    start = time.perf_counter()
    for mutations, queries in plan:
        for mutation in mutations:
            if mutation[0] == "add":
                pool.add_juror(mutation[1])
            elif mutation[0] == "remove":
                pool.remove_juror(mutation[1])
            else:
                pool.update_error_rate(mutation[1], mutation[2])
        for _ in range(queries):
            ns, jers = pool.sweep_profile()
            answers.append(best_odd_prefix(ns, jers))
    elapsed = time.perf_counter() - start
    return elapsed, answers, pool.stats


def _run_rebuild(jurors, plan):
    members = {j.juror_id: j for j in jurors}

    def resweep():
        pool = CandidatePool(list(members.values()))
        ns, jers = batch_prefix_jer_sweep(np.asarray(pool.error_rates)[np.newaxis, :])
        return ns, jers[0]

    profile = resweep()  # warm start, matching the delta policy
    answers = []
    start = time.perf_counter()
    for mutations, queries in plan:
        for mutation in mutations:
            if mutation[0] == "add":
                members[mutation[1].juror_id] = mutation[1]
            elif mutation[0] == "remove":
                del members[mutation[1]]
            else:
                old = members[mutation[1]]
                members[mutation[1]] = Juror(
                    mutation[2], old.requirement, juror_id=old.juror_id
                )
            profile = resweep()  # full rebuild per mutation
        for _ in range(queries):
            answers.append(best_odd_prefix(*profile))
    elapsed = time.perf_counter() - start
    return elapsed, answers


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pool-size", type=int, default=1000, help="candidates")
    parser.add_argument("--rounds", type=int, default=15, help="churn+query rounds")
    parser.add_argument(
        "--churn-percent", type=float, default=1.0,
        help="percent of the pool mutated per round",
    )
    parser.add_argument(
        "--queries", type=int, default=5, help="queries per round after the churn"
    )
    parser.add_argument(
        "--out", default="BENCH_live_churn.json",
        help="where to write the JSON artifact",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    pool_size, rounds = args.pool_size, args.rounds
    if args.smoke:
        # Compiled kernel backends (repro.core.kernels) make small full
        # resweeps nearly free, which moved the delta-vs-rebuild crossover
        # up to ~700 candidates on the reference host — the smoke pool must
        # sit above it for the >= 1x regression canary to be meaningful.
        pool_size, rounds = 800, 6
    churn = max(1, int(round(pool_size * args.churn_percent / 100.0)))

    rng = np.random.default_rng(BENCH_SEED)
    jurors = _make_jurors(rng, pool_size)
    plan = _plan_workload(rng, list(jurors), rounds, churn, args.queries)
    total_mutations = sum(len(m) for m, _ in plan)
    total_queries = sum(q for _, q in plan)
    print(
        f"bench_live_churn: pool {pool_size}, {rounds} rounds x "
        f"({churn} mutations + {args.queries} queries) "
        f"({'smoke' if args.smoke else 'full'} mode)"
    )

    delta_seconds, delta_answers, stats = _run_delta(jurors, plan)
    rebuild_seconds, rebuild_answers = _run_rebuild(jurors, plan)

    identical = delta_answers == rebuild_answers
    speedup = rebuild_seconds / delta_seconds
    print(
        f"  delta:   {delta_seconds:8.3f}s  "
        f"[repairs={stats.repairs}, rows reused={stats.rows_reused}, "
        f"recomputed={stats.rows_recomputed}, full rebuilds={stats.full_rebuilds}]"
    )
    print(f"  rebuild: {rebuild_seconds:8.3f}s  [{total_mutations} full resweeps]")
    verdict = "verified identical" if identical else "DIVERGED"
    print(
        f"  speedup: {speedup:6.1f}x over full-rebuild-per-mutation "
        f"({total_queries} selections {verdict})"
    )

    artifact = {
        "benchmark": "live_churn",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "pool_size": pool_size,
            "rounds": rounds,
            "mutations_per_round": churn,
            "queries_per_round": args.queries,
            "total_mutations": total_mutations,
            "total_queries": total_queries,
        },
        "delta_seconds": delta_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": speedup,
        "delta_stats": {
            "repairs": stats.repairs,
            "rows_reused": stats.rows_reused,
            "rows_recomputed": stats.rows_recomputed,
            "full_rebuilds": stats.full_rebuilds,
        },
        "verified_identical": identical,
    }
    write_artifact(args.out, artifact)

    if not identical:
        return verification_failure("delta policy diverged from full rebuilds")
    if args.smoke and speedup < 1.0:
        print("SMOKE FAILURE: delta maintenance slower than full rebuilds",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
