"""Benchmark + reproduction of Figure 3(g): AltrALG time on Twitter data."""

from __future__ import annotations

from repro.experiments.fig3g import Fig3gConfig, run_fig3g


def bench_fig3g(benchmark, save_artifact):
    """Regenerate Figure 3(g) on the simulated-Twitter workload; after the
    Section 4.1.3 normalisation the lower bound prunes, so the -B series
    must not lose at the largest candidate count."""
    result = benchmark.pedantic(
        run_fig3g, args=(Fig3gConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    largest = max(result.series_named("HT").xs)
    for label in ("HT", "PR"):
        assert result.series_named(f"{label}-B").y_at(largest) <= result.series_named(
            label
        ).y_at(largest) * 1.1
