#!/usr/bin/env python3
"""Throughput benchmark: batch engine vs looped single-query selection.

Scenario mirrors the platform workload the service subsystem targets: many
concurrent decision tasks selecting juries from candidate pools.

* ``shared``   — all tasks draw from one shared candidate pool (the common
  case on a micro-blog service: one user population, many tasks).
* ``distinct`` — every task has its own pool (worst case for caching; the
  2-D vectorized kernel still sweeps them together).

For each scenario the benchmark times (a) a loop of single-query
``select_jury_altr`` calls and (b) one ``BatchSelectionEngine.run`` over the
same queries, verifies the selections are bit-identical, and reports
queries/second plus the speedup.  The acceptance bar for the shared
scenario at the default size (1,000 tasks, 101 candidates) is >= 5x.

Run:  PYTHONPATH=src python benchmarks/bench_batch.py [--smoke] [--tasks N]
      [--pool-size N]

``--smoke`` shrinks the workload for CI smoke jobs and exits non-zero if
batch execution fails to beat the loop at all (a regression canary, kept
loose on purpose so shared CI runners do not flake).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from _common import verification_failure, write_artifact  # noqa: E402
from repro.core.juror import jurors_from_arrays  # noqa: E402
from repro.core.selection.altr import select_jury_altr  # noqa: E402
from repro.service import BatchSelectionEngine, CandidatePool, SelectionQuery  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402


def _make_pool(rng: np.random.Generator, size: int, tag: str) -> CandidatePool:
    eps = rng.uniform(0.05, 0.6, size=size)
    return CandidatePool(jurors_from_arrays(eps, id_prefix=f"{tag}-j"), pool_id=tag)


def _run_scenario(
    name: str, pools: list[CandidatePool], tasks: int
) -> tuple[float, float, bool]:
    """Time loop vs batch over ``tasks`` queries round-robined over ``pools``."""
    task_pools = [pools[i % len(pools)] for i in range(tasks)]
    queries = [
        SelectionQuery(task_id=f"{name}-{i}", pool=pool)
        for i, pool in enumerate(task_pools)
    ]

    start = time.perf_counter()
    loop_results = [select_jury_altr(list(pool.ordered)) for pool in task_pools]
    loop_seconds = time.perf_counter() - start

    engine = BatchSelectionEngine()
    start = time.perf_counter()
    outcomes = engine.run(queries)
    batch_seconds = time.perf_counter() - start

    identical = True
    for outcome, single in zip(outcomes, loop_results):
        assert outcome.ok, outcome.error_info
        if outcome.result.jer != single.jer or (
            outcome.result.juror_ids != single.juror_ids
        ):
            identical = False
            print(
                f"  {name}: batch result diverged from scalar path for "
                f"task {outcome.task_id}",
                file=sys.stderr,
            )

    loop_qps = tasks / loop_seconds
    batch_qps = tasks / batch_seconds
    speedup = loop_seconds / batch_seconds
    print(
        f"  {name:<9} loop: {loop_seconds:8.3f}s ({loop_qps:10.1f} q/s)   "
        f"batch: {batch_seconds:8.3f}s ({batch_qps:10.1f} q/s)   "
        f"speedup: {speedup:6.1f}x   [sweeps={engine.stats.batch_sweeps}, "
        f"pools={engine.stats.pools_swept}]"
    )
    return speedup, batch_qps, identical


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=1000, help="queries per scenario")
    parser.add_argument("--pool-size", type=int, default=101, help="candidates per pool")
    parser.add_argument(
        "--distinct-pools", type=int, default=50,
        help="number of distinct pools in the 'distinct' scenario",
    )
    parser.add_argument(
        "--out", default="BENCH_batch.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    tasks, pool_size, distinct = args.tasks, args.pool_size, args.distinct_pools
    if args.smoke:
        tasks, pool_size, distinct = 60, 31, 12

    rng = np.random.default_rng(BENCH_SEED)
    print(
        f"bench_batch: {tasks} tasks, pool size {pool_size} "
        f"({'smoke' if args.smoke else 'full'} mode)"
    )

    shared_pool = _make_pool(rng, pool_size, "shared")
    shared_speedup, shared_qps, shared_ok = _run_scenario(
        "shared", [shared_pool], tasks
    )

    distinct_pools = [_make_pool(rng, pool_size, f"d{i}") for i in range(distinct)]
    distinct_speedup, distinct_qps, distinct_ok = _run_scenario(
        "distinct", distinct_pools, tasks
    )

    identical = shared_ok and distinct_ok
    print(
        f"  summary   shared-pool speedup {shared_speedup:.1f}x, "
        f"distinct-pool speedup {distinct_speedup:.1f}x "
        f"({'results verified bit-identical to the scalar path' if identical else 'RESULTS DIVERGED'})"
    )
    write_artifact(
        args.out,
        {
            "benchmark": "batch",
            "mode": "smoke" if args.smoke else "full",
            "workload": {
                "tasks": tasks,
                "pool_size": pool_size,
                "distinct_pools": distinct,
            },
            "shared": {"speedup": shared_speedup, "batch_qps": shared_qps},
            "distinct": {"speedup": distinct_speedup, "batch_qps": distinct_qps},
            "verified_identical": identical,
        },
    )
    if not identical:
        return verification_failure("batch results diverged from the scalar path")
    if args.smoke and shared_speedup < 1.0:
        print("SMOKE FAILURE: batch path slower than the single-query loop",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
