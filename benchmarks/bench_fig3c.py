"""Benchmark + reproduction of Figure 3(c): budget vs total jury cost."""

from __future__ import annotations

from repro.experiments.fig3c import Fig3cConfig, run_fig3c


def bench_fig3c(benchmark, save_artifact):
    """Regenerate Figure 3(c); spending grows with, and never exceeds, B."""
    result = benchmark.pedantic(
        run_fig3c, args=(Fig3cConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    for series in result.series:
        assert series.ys == sorted(series.ys)  # monotone in budget
        for point in series.points:
            assert point.y <= point.x + 1e-9  # never over budget
