"""Shared plumbing for the runnable ``bench_*.py`` scripts.

Every benchmark that commits a ``BENCH_*.json`` artifact writes it through
:func:`write_artifact`, which stamps one uniform ``host`` metadata block
(cpu count, platform, interpreter and numpy/numba versions, the active
compiled-kernel backend) plus a UTC timestamp — so artifacts recorded on
different machines or PRs stay comparable, and a perf number can always be
traced back to the backend that produced it.

Bit-identity verification failures go through :func:`verification_failure`
(or the :func:`check_identical` convenience), which print a ``FAILURE:``
line to stderr and hand back the non-zero exit code every bench must
propagate: a benchmark whose fast path diverges from its oracle baseline
has no perf number worth recording.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import kernels  # noqa: E402

# Activate (compile + bitwise-verify + warm) the configured kernel backend
# before any bench starts timing — the same up-front activation the engines
# perform at construction, so first-dispatch compile/self-check cost never
# lands inside a timed region.
kernels.ensure_ready()

__all__ = [
    "host_metadata",
    "write_artifact",
    "verification_failure",
    "check_identical",
]


def _git_commit() -> str | None:
    """The repo HEAD this artifact was produced from (None outside git).

    Recorded so a committed perf number is attributable to the exact tree
    that produced it — "which commit regressed this" must not depend on
    the artifact's own git blame.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(Path(__file__).resolve().parent),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else None


def host_metadata() -> dict:
    """The uniform ``host`` block stamped into every ``BENCH_*.json``."""
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "git_commit": _git_commit(),
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_backend": kernels.ensure_ready(),
        "kernel_backends_available": list(kernels.available_backends()),
    }


def write_artifact(out: str | Path, artifact: dict) -> Path:
    """Write ``artifact`` as indented JSON with host metadata + timestamp."""
    payload = dict(artifact)
    payload["host"] = host_metadata()
    payload.setdefault(
        "timestamp", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"  artifact: {path}")
    return path


def verification_failure(message: str) -> int:
    """Report a bit-identity failure; returns the exit code to propagate."""
    print(f"FAILURE: {message}", file=sys.stderr)
    return 1


def check_identical(label: str, baseline, candidate) -> bool:
    """True when the two normalised result sets are identical.

    On divergence the failure is reported to stderr (callers still must
    exit non-zero — typically via ``return verification_failure(...)`` or
    by propagating this predicate).
    """
    if baseline == candidate:
        return True
    verification_failure(f"{label}: results diverged from the baseline path")
    return False
