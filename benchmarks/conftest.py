"""Shared fixtures for the benchmark suite.

Every figure/table bench saves its reproduced series to
``benchmarks/results/<experiment_id>.txt`` so the artefacts survive pytest's
stdout capture; EXPERIMENTS.md indexes them.

Seeds and oracle tolerances are imported from :mod:`repro.testing` — the
same module ``tests/conftest.py`` uses — so benchmark assertions can never
drift out of sync with the unit-test oracle tolerances.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.testing import BENCH_SEED, ORACLE_ATOL

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the reproduced tables/series."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """Callable writing an ExperimentResult's table to the results dir."""

    def _save(result) -> Path:
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.to_table() + "\n", encoding="utf-8")
        return path

    return _save


@pytest.fixture
def bench_rng() -> np.random.Generator:
    """Deterministic generator for synthetic benchmark workloads."""
    return np.random.default_rng(BENCH_SEED)


@pytest.fixture
def oracle_atol() -> float:
    """Cross-backend agreement tolerance, shared with the test suite."""
    return ORACLE_ATOL
