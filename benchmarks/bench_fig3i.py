"""Benchmark + reproduction of Figure 3(i): jury size vs budget."""

from __future__ import annotations

from repro.experiments.fig3h import Fig3hConfig
from repro.experiments.fig3i import run_fig3i


def bench_fig3i(benchmark, save_artifact):
    """Regenerate Figure 3(i); sizes are odd, positive and grow (weakly)
    with the budget for the exact optimum."""
    result = benchmark.pedantic(
        run_fig3i, args=(Fig3hConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    for series in result.series:
        for point in series.points:
            assert point.y >= 1 and int(point.y) % 2 == 1
    for label in ("HT-TRUE", "PR-TRUE"):
        ys = result.series_named(label).ys
        assert ys == sorted(ys)
