#!/usr/bin/env python3
"""Planner benchmark: plan-layer operators vs the pre-refactor scalar paths.

Two head-to-head comparisons, selections verified identical in both:

* **PayM greedy** — the columnar plan-layer operator (incremental pmf,
  block-scored pair trials via ``extend_pmf_block``) against a literal
  replay of the pre-refactor scalar loop (one ``O(|jury|^2)`` dynamic
  program per affordable pair).  Acceptance bar on the full-size run:
  ``speedup >= 5x`` on a 1,000-candidate pool.
* **Planned exact** — ``plan_query(model="exact")`` against the two seed
  baselines for the same query: the scalar enumeration the seed auto rule
  actually ran at this pool size (one Python pmf-extension chain per
  combination — the planned path replaces it with blocked
  ``batch_jury_jer`` scoring), and the seed branch-and-bound.  B&B's JER
  bound prunes hard on random instances and stays the fastest exact
  operator; the planner preserves the seed's enumerate-below-15 choice, so
  the win to read here is planned vs ``seed_enumerate``.

Timings are printed and a machine-readable ``BENCH_planner.json`` artifact
is written so the perf trajectory can be tracked across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_planner.py [--smoke]
      [--pool-size N] [--budget B] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs and only requires the
planned paths not to regress (kept loose on purpose so shared CI runners
do not flake).  The full-size acceptance bar is the printed PayM
``speedup`` >= 5x.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from _common import verification_failure, write_artifact  # noqa: E402
from repro.core.jer import jury_error_rate  # noqa: E402
from repro.core.juror import Juror  # noqa: E402
from repro.core.selection.exact import branch_and_bound_optimal  # noqa: E402
from repro.errors import InfeasibleSelectionError  # noqa: E402
from repro.plan import execute_plan, plan_query  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402


def _make_jurors(rng: np.random.Generator, size: int) -> list[Juror]:
    eps = rng.uniform(0.05, 0.45, size=size)
    reqs = rng.uniform(0.01, 0.05, size=size)
    return [
        Juror(float(e), float(r), juror_id=f"w{i}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    ]


def _scalar_pay_greedy(candidates, budget):
    """Literal replay of the pre-refactor PayALG loop (paper Algorithm 4,
    one jer_dp evaluation per affordable pair)."""
    ordered = sorted(
        candidates,
        key=lambda j: (j.error_rate * j.requirement, j.error_rate, j.juror_id),
    )
    seed_index = next(
        (i for i, j in enumerate(ordered) if j.requirement <= budget), None
    )
    if seed_index is None:
        raise InfeasibleSelectionError("no affordable candidate")
    selected = [ordered[seed_index]]
    accumulated = ordered[seed_index].requirement
    current = jury_error_rate([j.error_rate for j in selected])
    partner = None
    for juror in ordered[seed_index + 1 :]:
        if partner is None:
            if juror.requirement + accumulated <= budget:
                partner = juror
            continue
        enlarged = juror.requirement + partner.requirement + accumulated
        if enlarged > budget:
            continue
        trial = jury_error_rate(
            [j.error_rate for j in selected]
            + [partner.error_rate, juror.error_rate]
        )
        if trial <= current:
            selected = selected + [partner, juror]
            accumulated = enlarged
            current = trial
            partner = None
    return tuple(j.juror_id for j in selected), current


def bench_pay(jurors, budget, repeats):
    planned_best, scalar_best = float("inf"), float("inf")
    planned_result = None
    scalar_ids = None
    for _ in range(repeats):
        start = time.perf_counter()
        plan = plan_query(candidates=jurors, model="pay", budget=budget)
        planned_result = execute_plan(plan)
        planned_best = min(planned_best, time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        scalar_ids, scalar_jer = _scalar_pay_greedy(jurors, budget)
        scalar_best = min(scalar_best, time.perf_counter() - start)
    assert planned_result.juror_ids == scalar_ids, (
        "planned PayM selection diverged from the scalar replay"
    )
    assert abs(planned_result.jer - scalar_jer) < 1e-10
    return {
        "jury_size": planned_result.size,
        "planned_seconds": planned_best,
        "scalar_seconds": scalar_best,
        "speedup": scalar_best / planned_best if planned_best > 0 else float("inf"),
    }


def _scalar_enumerate(jurors, budget):
    """Literal replay of the pre-refactor scalar enumeration (one Python
    pmf-extension chain per odd combination)."""
    import itertools

    ordered = sorted(jurors, key=lambda j: (j.error_rate, j.juror_id))
    best_members, best_jer = None, float("inf")
    for k in range(1, len(ordered) + 1, 2):
        threshold = (k + 1) // 2
        for combo in itertools.combinations(ordered, k):
            cost = sum(j.requirement for j in combo)
            if cost > budget:
                continue
            pmf = np.ones(1, dtype=np.float64)
            for juror in combo:
                out = np.empty(pmf.size + 1, dtype=np.float64)
                out[0] = pmf[0] * (1.0 - juror.error_rate)
                out[1:-1] = (
                    pmf[1:] * (1.0 - juror.error_rate)
                    + pmf[:-1] * juror.error_rate
                )
                out[-1] = pmf[-1] * juror.error_rate
                pmf = out
            jer = float(np.sum(pmf[threshold:]))
            if jer < best_jer - 1e-15:
                best_jer, best_members = jer, combo
    return tuple(j.juror_id for j in best_members), best_jer


def bench_exact(jurors, budget, repeats):
    planned_best, bb_best, enum_best = float("inf"), float("inf"), float("inf")
    planned_result = None
    bb_result = None
    operator = ""
    for _ in range(repeats):
        start = time.perf_counter()
        plan = plan_query(candidates=jurors, model="exact", budget=budget)
        planned_result = execute_plan(plan)
        planned_best = min(planned_best, time.perf_counter() - start)
        operator = plan.operator
    for _ in range(repeats):
        start = time.perf_counter()
        enum_ids, enum_jer = _scalar_enumerate(jurors, budget)
        enum_best = min(enum_best, time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        bb_result = branch_and_bound_optimal(jurors, budget)
        bb_best = min(bb_best, time.perf_counter() - start)
    assert planned_result.juror_ids == bb_result.juror_ids, (
        "planned exact selection diverged from the seed branch and bound"
    )
    assert sorted(planned_result.juror_ids) == sorted(enum_ids), (
        "planned exact selection diverged from the scalar enumeration replay"
    )
    assert abs(planned_result.jer - enum_jer) < 1e-12
    return {
        "operator": operator,
        "jury_size": planned_result.size,
        "planned_seconds": planned_best,
        "seed_enumerate_seconds": enum_best,
        "seed_bb_seconds": bb_best,
        "speedup_vs_seed_enumerate": (
            enum_best / planned_best if planned_best > 0 else float("inf")
        ),
        "speedup_vs_seed_bb": (
            bb_best / planned_best if planned_best > 0 else float("inf")
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pool-size", type=int, default=1000, help="PayM candidates")
    parser.add_argument("--budget", type=float, default=3.0, help="PayM budget")
    parser.add_argument(
        "--exact-size", type=int, default=14, help="candidates for the exact bench"
    )
    parser.add_argument(
        "--exact-budget", type=float, default=0.4, help="budget for the exact bench"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--out", default="BENCH_planner.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + loose regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    pool_size, exact_size, repeats = args.pool_size, args.exact_size, args.repeats
    if args.smoke:
        pool_size, exact_size, repeats = 200, 12, 1

    rng = np.random.default_rng(BENCH_SEED)
    pay_jurors = _make_jurors(rng, pool_size)
    exact_jurors = _make_jurors(rng, exact_size)

    print(
        f"PayM greedy: {pool_size} candidates, budget {args.budget:g} "
        f"(best of {repeats})"
    )
    pay = bench_pay(pay_jurors, args.budget, repeats)
    print(
        f"  planned  {pay['planned_seconds'] * 1e3:9.2f} ms   "
        f"(jury of {pay['jury_size']})"
    )
    print(f"  scalar   {pay['scalar_seconds'] * 1e3:9.2f} ms")
    print(f"  speedup  {pay['speedup']:9.1f}x")

    print(
        f"Exact: {exact_size} candidates, budget {args.exact_budget:g} "
        f"(best of {repeats})"
    )
    exact = bench_exact(exact_jurors, args.exact_budget, repeats)
    print(f"  planned        {exact['planned_seconds'] * 1e3:9.2f} ms   ({exact['operator']})")
    print(f"  seed enumerate {exact['seed_enumerate_seconds'] * 1e3:9.2f} ms")
    print(f"  seed B&B       {exact['seed_bb_seconds'] * 1e3:9.2f} ms")
    print(
        f"  speedup        {exact['speedup_vs_seed_enumerate']:9.1f}x vs seed "
        f"enumerate, {exact['speedup_vs_seed_bb']:.2f}x vs seed B&B"
    )

    payload = {
        "benchmark": "planner",
        "smoke": bool(args.smoke),
        "pay": {"pool_size": pool_size, "budget": args.budget, **pay},
        "exact": {"pool_size": exact_size, "budget": args.exact_budget, **exact},
    }
    write_artifact(args.out, payload)

    bar = 1.0 if args.smoke else 5.0
    if pay["speedup"] < bar:
        return verification_failure(
            f"PayM speedup {pay['speedup']:.2f}x below the "
            f"{'smoke' if args.smoke else 'acceptance'} bar {bar:g}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
