"""Benchmarks for the extension subsystems.

Quantifies the design claims of DESIGN.md systems 19-24: incremental jury
edits are O(n) (vs full recomputation), sensitivity analysis is quadratic
not cubic, EM estimation is practical at realistic history sizes, and the
Lagrangian selector sits between PayALG and the exact optimum in cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import IncrementalJury
from repro.core.jer import jer_dp
from repro.core.juror import Juror
from repro.core.selection.lagrangian import select_jury_lagrangian
from repro.core.selection.pay import select_jury_pay
from repro.core.sensitivity import juror_influence_report
from repro.core.weighted import weighted_jury_error_rate
from repro.estimation.history import estimate_error_rates_em
from repro.synth.generators import generate_workload

N = 501


@pytest.fixture(scope="module")
def eps():
    rng = np.random.default_rng(91)
    return rng.uniform(0.05, 0.95, size=N)


@pytest.fixture(scope="module")
def builder(eps):
    return IncrementalJury(
        [Juror(float(e), juror_id=f"m{i}") for i, e in enumerate(eps)]
    )


def bench_incremental_swap(benchmark, builder, eps):
    """One O(n) swap + JER query on a 501-member jury."""
    replacement = Juror(0.42, juror_id="replacement")

    def swap_and_query():
        builder.swap("m0", replacement)
        value = builder.jer()
        builder.swap("replacement", Juror(float(eps[0]), juror_id="m0"))
        return value

    value = benchmark(swap_and_query)
    assert 0.0 <= value <= 1.0


def bench_batch_recompute_equivalent(benchmark, eps):
    """The from-scratch O(n^2) recomputation the incremental edit replaces."""
    swapped = eps.copy()
    swapped[0] = 0.42
    value = benchmark(jer_dp, swapped)
    assert 0.0 <= value <= 1.0


def bench_sensitivity_report(benchmark, eps):
    """Full per-juror gradient report on a 501-member jury (O(n^2))."""
    report = benchmark.pedantic(
        juror_influence_report, args=(eps,), rounds=1, iterations=1
    )
    assert len(report) == N


def bench_weighted_jer_monte_carlo(benchmark):
    """Weighted JER for a 51-member jury via the Monte-Carlo path."""
    rng = np.random.default_rng(92)
    sample = rng.uniform(0.1, 0.45, size=51)
    value = benchmark.pedantic(
        weighted_jury_error_rate,
        args=(sample,),
        kwargs={"trials": 100_000, "rng": np.random.default_rng(93)},
        rounds=1,
        iterations=1,
    )
    assert 0.0 <= value <= 1.0


def bench_em_estimation(benchmark):
    """EM over a 500-task x 50-juror voting history."""
    rng = np.random.default_rng(94)
    true_eps = rng.uniform(0.05, 0.45, size=50)
    truth = rng.integers(0, 2, size=500)
    wrong = rng.random((500, 50)) < true_eps
    votes = np.where(wrong, 1 - truth[:, None], truth[:, None])

    fit = benchmark.pedantic(
        estimate_error_rates_em, args=(votes,), rounds=1, iterations=1
    )
    assert np.all(np.abs(fit.error_rates - true_eps) < 0.15)


def bench_lagrangian_selector(benchmark):
    """Lagrangian sweep on 400 PayM candidates (vs PayALG in bench_selection)."""
    wl = generate_workload(
        400, eps_mean=0.3, eps_variance=0.01, req_mean=0.5, req_variance=0.04,
        seed=95,
    )
    candidates = list(wl.jurors)
    result = benchmark.pedantic(
        select_jury_lagrangian, args=(candidates, 1.0), rounds=1, iterations=1
    )
    greedy = select_jury_pay(candidates, budget=1.0)
    # The multiplier sweep should never lose to the single-ordering greedy
    # by much; typically it wins.
    assert result.jer <= greedy.jer * 1.5 + 1e-9
