"""Benchmarks for the extension ablations (bounds, weighted, adaptive)."""

from __future__ import annotations

from repro.experiments.ablation_adaptive import (
    AblationAdaptiveConfig,
    run_ablation_adaptive,
)
from repro.experiments.ablation_bounds import (
    AblationBoundsConfig,
    run_ablation_bounds,
)
from repro.experiments.ablation_weighted import (
    AblationWeightedConfig,
    run_ablation_weighted,
)


def bench_ablation_bounds(benchmark, save_artifact):
    """Bound tightness sweep; the Lemma 2 bound must respect the exact JER."""
    result = benchmark.pedantic(
        run_ablation_bounds, args=(AblationBoundsConfig.small(),),
        rounds=1, iterations=1,
    )
    save_artifact(result)
    exact = result.series_named("exact")
    for point in result.series_named("pz-lower").points:
        assert point.y <= exact.y_at(point.x) + 1e-12


def bench_ablation_weighted(benchmark, save_artifact):
    """Majority vs optimal weighted voting; weighted never loses."""
    result = benchmark.pedantic(
        run_ablation_weighted, args=(AblationWeightedConfig.small(),),
        rounds=1, iterations=1,
    )
    save_artifact(result)
    majority = result.series_named("majority")
    weighted = result.series_named("weighted")
    for x in majority.xs:
        assert weighted.y_at(x) <= majority.y_at(x) + 1e-9


def bench_ablation_adaptive(benchmark, save_artifact):
    """Sequential vs static polling; sequential must save questions."""
    result = benchmark.pedantic(
        run_ablation_adaptive, args=(AblationAdaptiveConfig.small(),),
        rounds=1, iterations=1,
    )
    save_artifact(result)
    questions = result.series_named("adaptive-questions")
    static = result.series_named("static-questions")
    loosest = max(questions.xs)
    assert questions.y_at(loosest) < static.y_at(loosest)
