"""Benchmark + reproduction of Figure 3(d): budget vs JER."""

from __future__ import annotations

from repro.experiments.fig3c import Fig3cConfig
from repro.experiments.fig3d import run_fig3d


def bench_fig3d(benchmark, save_artifact):
    """Regenerate Figure 3(d); more budget means (weakly) lower JER and the
    lower-error-rate population dominates at every budget."""
    result = benchmark.pedantic(
        run_fig3d, args=(Fig3cConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    for series in result.series:
        ys = series.ys
        assert all(a >= b - 1e-12 for a, b in zip(ys, ys[1:]))
    good = result.series_named("m(0.3)")
    bad = result.series_named("m(0.6)")
    for x in good.xs:
        assert good.y_at(x) <= bad.y_at(x) + 1e-12
