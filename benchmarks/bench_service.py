#!/usr/bin/env python3
"""Service benchmark: concurrent ``AsyncJuryService`` vs a sequential loop.

Scenario: one serving process answering a mixed 1,000-request stream —
80% AltrM, 10% PayM, 10% exact, each decision task drawing from its own
candidate pool (the per-task subsets a platform extracts from its user
base).  Two dispatch policies answer identical requests:

* ``sequential`` — the pre-``repro.api`` serve-loop behaviour: one
  ``JuryService.select()`` per request, one engine pass each, so every
  AltrM request pays its own prefix sweep.
* ``concurrent`` — 128 closed-loop async clients multiplexed by
  :class:`repro.api.AsyncJuryService`: requests coalesce into batches and
  each batch is answered by one ``select_many`` pass, so same-sized pools
  are stacked into single vectorized 2-D sweep kernel calls.

Responses are verified bit-identical between the two policies (batching
changes only *when* queries run), timings are printed, and a
machine-readable ``BENCH_service.json`` artifact is written so the perf
trajectory can be tracked across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
      [--requests N] [--pool-size N] [--clients N] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs and exits non-zero if
concurrent dispatch fails to beat the sequential loop at all (a regression
canary, kept loose on purpose so shared CI runners do not flake).  The
full-size acceptance bar is the printed ``speedup`` >= 3x.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from _common import verification_failure, write_artifact  # noqa: E402
from repro.api import AsyncJuryService, JuryService, SelectionRequest  # noqa: E402
from repro.core.juror import Juror  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402

#: Candidate-pool size for the small pools the exact queries draw from
#: (exact search cost grows combinatorially; the budget keeps the
#: affordable subset small enough for interactive latency).
EXACT_POOL_SIZE = 18


def _make_candidates(rng, size: int, tag: str) -> tuple[Juror, ...]:
    eps = rng.uniform(0.05, 0.6, size=size)
    reqs = rng.uniform(0.0, 1.0, size=size)
    return tuple(
        Juror(float(e), float(r), juror_id=f"{tag}-{i}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    )


def build_stream(count: int, pool_size: int) -> list[SelectionRequest]:
    """A deterministic mixed AltrM/PayM/exact stream over per-task pools."""
    rng = np.random.default_rng(BENCH_SEED)
    requests: list[SelectionRequest] = []
    for i in range(count):
        mode = i % 16
        if mode == 7:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}",
                    candidates=_make_candidates(rng, pool_size, f"t{i}"),
                    model="pay",
                    budget=2.0,
                )
            )
        elif mode == 15:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}",
                    candidates=_make_candidates(rng, EXACT_POOL_SIZE, f"t{i}"),
                    model="exact",
                    budget=1.5,
                )
            )
        else:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}",
                    candidates=_make_candidates(rng, pool_size, f"t{i}"),
                )
            )
    return requests


def _normalise(response) -> dict:
    """Wire form minus timings (the only dispatch-dependent field)."""
    row = response.to_dict()
    row.pop("timings")
    return row


def run_sequential(requests: list[SelectionRequest]) -> tuple[float, list[dict]]:
    service = JuryService()
    start = time.perf_counter()
    responses = [service.select(request) for request in requests]
    elapsed = time.perf_counter() - start
    return elapsed, [_normalise(r) for r in responses]


def run_concurrent(
    requests: list[SelectionRequest], clients: int, max_batch: int
) -> tuple[float, list[dict], object]:
    async def drive():
        service = AsyncJuryService(max_batch=max_batch, max_pending=4 * max_batch)

        async def client(worker: int):
            # Closed loop: each client answers its interleaved slice one
            # request at a time, like a real JSONL session would.
            return worker, [
                await service.select(request) for request in requests[worker::clients]
            ]

        start = time.perf_counter()
        results = await asyncio.gather(*(client(w) for w in range(clients)))
        elapsed = time.perf_counter() - start
        merged: dict[str, dict] = {}
        for worker, answers in results:
            for request, response in zip(requests[worker::clients], answers):
                merged[request.task_id] = _normalise(response)
        stats = service.service.engine.stats
        return elapsed, [merged[r.task_id] for r in requests], stats

    return asyncio.run(drive())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000, help="stream length")
    parser.add_argument(
        "--pool-size", type=int, default=201, help="candidates per AltrM/PayM task"
    )
    parser.add_argument(
        "--clients", type=int, default=128, help="concurrent closed-loop clients"
    )
    parser.add_argument(
        "--max-batch", type=int, default=256, help="AsyncJuryService batch cap"
    )
    parser.add_argument(
        "--out", default="BENCH_service.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    count, pool_size, clients = args.requests, args.pool_size, args.clients
    if args.smoke:
        count, pool_size, clients = 150, 61, 24

    requests = build_stream(count, pool_size)
    models = [r.model for r in requests]
    print(
        f"bench_service: {count} requests "
        f"({models.count('altr')} altr / {models.count('pay')} pay / "
        f"{models.count('exact')} exact), pool {pool_size}, "
        f"{clients} concurrent clients ({'smoke' if args.smoke else 'full'} mode)"
    )

    sequential_seconds, sequential_rows = run_sequential(requests)
    concurrent_seconds, concurrent_rows, stats = run_concurrent(
        requests, clients, args.max_batch
    )

    identical = sequential_rows == concurrent_rows
    speedup = sequential_seconds / concurrent_seconds
    verdict = "verified identical" if identical else "DIVERGED"
    print(
        f"  sequential: {sequential_seconds:8.3f}s  "
        f"({count / sequential_seconds:8.1f} req/s, one engine pass each)"
    )
    print(
        f"  concurrent: {concurrent_seconds:8.3f}s  "
        f"({count / concurrent_seconds:8.1f} req/s, "
        f"{stats.batch_sweeps} stacked sweeps)"
    )
    print(f"  speedup: {speedup:6.2f}x over the sequential loop ({verdict})")

    artifact = {
        "benchmark": "service",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "requests": count,
            "pool_size": pool_size,
            "exact_pool_size": EXACT_POOL_SIZE,
            "mix": {
                "altr": models.count("altr"),
                "pay": models.count("pay"),
                "exact": models.count("exact"),
            },
            "clients": clients,
            "max_batch": args.max_batch,
        },
        "sequential_seconds": sequential_seconds,
        "concurrent_seconds": concurrent_seconds,
        "sequential_rps": count / sequential_seconds,
        "concurrent_rps": count / concurrent_seconds,
        "speedup": speedup,
        "batch_sweeps": stats.batch_sweeps,
        "verified_identical": identical,
    }
    write_artifact(args.out, artifact)

    if not identical:
        return verification_failure(
            "concurrent dispatch diverged from sequential"
        )
    if args.smoke and speedup < 1.0:
        print("SMOKE FAILURE: concurrent dispatch slower than sequential loop",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
