"""Benchmark + reproduction of Figure 3(f): APPX vs OPT on JER."""

from __future__ import annotations

from repro.experiments.fig3e import Fig3eConfig
from repro.experiments.fig3f import run_fig3f


def bench_fig3f(benchmark, save_artifact):
    """Regenerate Figure 3(f); OPT's JER is a lower envelope of APPX's."""
    result = benchmark.pedantic(
        run_fig3f, args=(Fig3eConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    appx = result.series_named("APPX")
    opt = result.series_named("OPT")
    for x in appx.xs:
        assert opt.y_at(x) <= appx.y_at(x) + 1e-12
