#!/usr/bin/env python3
"""Regenerate every paper artefact at (near-)paper scale.

Writes each reproduced table to ``benchmarks/results/paper_scale/<id>.txt``.
The bench suite (``pytest benchmarks/ --benchmark-only``) runs the same
experiments at ``small()`` scale; this script is the slow, faithful pass
whose outputs EXPERIMENTS.md quotes.

Run:  python benchmarks/run_paper_scale.py [ids...]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.ablation_adaptive import run_ablation_adaptive
from repro.experiments.ablation_bounds import run_ablation_bounds
from repro.experiments.ablation_weighted import run_ablation_weighted
from repro.experiments.fig3a import Fig3aConfig, run_fig3a
from repro.experiments.fig3b import Fig3bConfig, run_fig3b
from repro.experiments.fig3c import Fig3cConfig, run_fig3c
from repro.experiments.fig3d import run_fig3d
from repro.experiments.fig3e import Fig3eConfig, run_fig3e
from repro.experiments.fig3f import run_fig3f
from repro.experiments.fig3g import Fig3gConfig, run_fig3g
from repro.experiments.fig3h import Fig3hConfig, run_fig3h
from repro.experiments.fig3i import run_fig3i
from repro.experiments.table2 import run_table2
from repro.experiments.twitter_data import TwitterWorkloadConfig

RESULTS = Path(__file__).parent / "results" / "paper_scale"

# fig3b at the paper's N=6000 with the O(N^2 logN) per-jury strategy takes
# tens of minutes in pure Python; 1000-3000 shows the same growth and
# pruning behaviour in a few minutes.
FIG3B = Fig3bConfig(sizes=(1000, 2000, 3000), means=(0.1, 0.2, 0.6))
TWITTER = TwitterWorkloadConfig(n_users=3000)
FIG3G = Fig3gConfig(workload=TWITTER, candidate_counts=(500, 1000, 2000))
FIG3H = Fig3hConfig(workload=TWITTER)

RUNNERS = {
    "table2": lambda: run_table2(),
    "fig3a": lambda: run_fig3a(Fig3aConfig()),
    "fig3b": lambda: run_fig3b(FIG3B),
    "fig3c": lambda: run_fig3c(Fig3cConfig()),
    "fig3d": lambda: run_fig3d(Fig3cConfig()),
    "fig3e": lambda: run_fig3e(Fig3eConfig()),
    "fig3f": lambda: run_fig3f(Fig3eConfig()),
    "fig3g": lambda: run_fig3g(FIG3G),
    "fig3h": lambda: run_fig3h(FIG3H),
    "fig3i": lambda: run_fig3i(FIG3H),
    "ablation-bounds": lambda: run_ablation_bounds(),
    "ablation-weighted": lambda: run_ablation_weighted(),
    "ablation-adaptive": lambda: run_ablation_adaptive(),
}


def main(argv: list[str]) -> int:
    RESULTS.mkdir(parents=True, exist_ok=True)
    chosen = argv or list(RUNNERS)
    for experiment_id in chosen:
        runner = RUNNERS[experiment_id]
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        path = RESULTS / f"{experiment_id}.txt"
        path.write_text(result.to_table() + f"\n[runtime: {elapsed:.1f}s]\n")
        print(f"{experiment_id}: {elapsed:.1f}s -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
