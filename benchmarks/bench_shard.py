#!/usr/bin/env python3
"""Sharded-execution benchmark: worker shards vs the sequential serve loop.

Scenario: the ``BENCH_service.json`` workload — a mixed 1,000-request stream
(80% AltrM / 10% PayM / 10% exact, each decision task drawing from its own
201-candidate pool) — answered by three dispatch policies:

* ``sequential`` — the PR 4 serve baseline: one ``JuryService.select()``
  per request, one in-process engine pass each.
* ``sharded`` (``cost`` and ``hash`` side by side) — the stream arrives in
  coalesced batches (the shape the async drainer produces, 256 requests per
  ``select_many`` pass) and each batch fans out across ``N`` worker shards:
  under ``hash`` statically by pool fingerprint, under ``cost`` bin-packed
  by planner cost with exact-query splitting and idle-shard stealing.
  Measured at 1, 2, 4 and 8 workers.

Responses are verified **bit-identical** across every policy (scheduling
changes where queries run, never what they answer), timings are printed,
and a machine-readable ``BENCH_shard.json`` artifact is written.  Each
sharded run records the scheduler's realized balance — per-shard assigned
cost, busy seconds, splits/steals, and ``assigned_cost_skew`` (max/mean
assigned cost; the number the cost policy keeps near 1.0 where hashing
skews).  The artifact records ``cpus`` and — explicitly — whether the
full-size scaling bar was enforced: on a host with fewer than 4 cores the
2.5x@4-workers bar cannot be meaningful (workers cannot run in parallel),
so ``bar_enforced`` is ``false`` there and the recorded numbers measure
the batching the sharded path retains, not multi-core scaling.

Run:  PYTHONPATH=src python benchmarks/bench_shard.py [--smoke]
      [--requests N] [--pool-size N] [--workers 1,2,4,8] [--out PATH]
      [--schedulers cost,hash]

``--smoke`` shrinks the workload for CI smoke jobs and exits non-zero if
sharded dispatch fails to beat the sequential loop at all, or if any policy
diverges.  The full-size acceptance bar is >= 2.5x at 4 workers under the
cost scheduler, enforced only when ``bar_enforced`` is true.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _common import verification_failure, write_artifact  # noqa: E402
from bench_service import build_stream  # noqa: E402
from repro.api import JuryService  # noqa: E402
from repro.core import kernels  # noqa: E402
from repro.service import BatchSelectionEngine, PoolRegistry, ShardedExecutor  # noqa: E402
from repro.service.shard import shutdown_shared_pools  # noqa: E402

#: Coalesced-batch size — matches the async drainer's default ceiling.
BATCH = 256

#: Per-shard utilisation counters copied into the artifact (the scheduler's
#: realized-balance view; pids/liveness are runtime details, not results).
_SHARD_KEYS = (
    "shard",
    "assigned_cost",
    "busy_seconds",
    "stolen",
    "split_payloads",
    "queue_depth",
)


def _normalise(response) -> dict:
    row = response.to_dict()
    row.pop("timings")
    return row


def run_sequential(requests) -> tuple[float, list[dict]]:
    """The PR 4 baseline: one select() (one engine pass) per request.

    ``workers=1`` pins the in-process path explicitly so an exported
    ``REPRO_WORKERS`` cannot shard the baseline itself.
    """
    service = JuryService(workers=1)
    start = time.perf_counter()
    responses = [service.select(request) for request in requests]
    elapsed = time.perf_counter() - start
    return elapsed, [_normalise(r) for r in responses]


def run_sharded(
    requests, workers: int, scheduler: str
) -> tuple[float, list[dict], dict]:
    """Coalesced batches fanned out across ``workers`` shards.

    Returns ``(seconds, normalised rows, scheduler stats)`` — the stats are
    the engine's :meth:`scheduler_stats` snapshot taken right after the
    timed region, so the per-shard assigned-cost/busy-seconds counters cover
    exactly this run (``executor.start()`` is the reset point).
    """
    # Built via an explicit executor so that workers=1 still measures one
    # worker *process* (the service knob treats 1 as in-process).
    executor = ShardedExecutor(workers)
    engine = BatchSelectionEngine(
        executor=executor, registry=PoolRegistry(), scheduler=scheduler
    )
    service = JuryService(engine=engine)
    # Fork the shard processes before timing — a serving process pays that
    # cost once at startup, not per batch — and reset the per-shard
    # utilisation counters so the stats below cover this run only.
    executor.start()
    start = time.perf_counter()
    responses = []
    for offset in range(0, len(requests), BATCH):
        responses.extend(service.select_many(requests[offset : offset + BATCH]))
    elapsed = time.perf_counter() - start
    stats = engine.scheduler_stats()
    return elapsed, [_normalise(r) for r in responses], stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000, help="stream length")
    parser.add_argument(
        "--pool-size", type=int, default=201, help="candidates per AltrM/PayM task"
    )
    parser.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated shard counts to measure (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--schedulers",
        default="cost,hash",
        help="comma-separated scheduling policies to measure side by side "
        "(default: cost,hash)",
    )
    parser.add_argument(
        "--out", default="BENCH_shard.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    count, pool_size = args.requests, args.pool_size
    worker_counts = [int(w) for w in str(args.workers).split(",") if w.strip()]
    schedulers = [s.strip() for s in str(args.schedulers).split(",") if s.strip()]
    if args.smoke:
        count, pool_size, worker_counts = 150, 61, [1, 2]
        # Pin the reference kernels for the smoke canary (exported so the
        # worker shards inherit it): compiled backends shrink per-query
        # kernel cost below the shard IPC overhead at smoke sizes —
        # especially on 1-CPU CI hosts — which would turn this machinery
        # check into a kernel-crossover measurement.  The full-size run
        # keeps the session backend and interprets scaling against the
        # recorded core count.
        os.environ["REPRO_KERNEL_BACKEND"] = "numpy"
        kernels.set_kernel_backend("numpy")

    requests = build_stream(count, pool_size)
    models = [r.model for r in requests]
    cpus = os.cpu_count() or 1
    print(
        f"bench_shard: {count} requests "
        f"({models.count('altr')} altr / {models.count('pay')} pay / "
        f"{models.count('exact')} exact), pool {pool_size}, "
        f"batch {BATCH}, {cpus} cpus ({'smoke' if args.smoke else 'full'} mode), "
        f"schedulers {'/'.join(schedulers)}"
    )

    sequential_seconds, sequential_rows = run_sequential(requests)
    print(
        f"  sequential        : {sequential_seconds:8.3f}s  "
        f"({count / sequential_seconds:8.1f} req/s, one engine pass each)"
    )

    runs = []
    identical = True
    for workers in worker_counts:
        for scheduler in schedulers:
            shutdown_shared_pools()  # fresh shard processes per configuration
            elapsed, rows, sched_stats = run_sharded(requests, workers, scheduler)
            same = rows == sequential_rows
            identical = identical and same
            speedup = sequential_seconds / elapsed
            runs.append(
                {
                    "workers": workers,
                    "scheduler": scheduler,
                    "seconds": elapsed,
                    "rps": count / elapsed,
                    "speedup_vs_sequential": speedup,
                    "verified_identical": same,
                    "assigned_cost_skew": sched_stats["assigned_cost_skew"],
                    "splits": sched_stats["splits"],
                    "steals": sched_stats["steals"],
                    "per_shard": [
                        {key: slot.get(key) for key in _SHARD_KEYS}
                        for slot in sched_stats["per_shard"]
                    ],
                }
            )
            print(
                f"  sharded x{workers:<2d} {scheduler:<5s}: {elapsed:8.3f}s  "
                f"({count / elapsed:8.1f} req/s, {speedup:5.2f}x, "
                f"skew {sched_stats['assigned_cost_skew']:4.2f}, "
                f"{sched_stats['splits']} splits, {sched_stats['steals']} steals"
                f"{', verified identical' if same else ', DIVERGED'})"
            )
    shutdown_shared_pools()
    ones = {
        entry["scheduler"]: entry["seconds"]
        for entry in runs
        if entry["workers"] == 1
    }
    for entry in runs:
        one_seconds = ones.get(entry["scheduler"])
        entry["scaling_vs_one_worker"] = (
            one_seconds / entry["seconds"] if one_seconds is not None else None
        )

    # The full-size acceptance bar (>= 2.5x at 4 workers, cost scheduler)
    # presumes the workers can actually run in parallel — recorded
    # explicitly instead of silently skipped on small hosts.
    bar_policy = "cost" if "cost" in schedulers else schedulers[0]
    bar_run = next(
        (
            e
            for e in runs
            if e["workers"] == 4 and e["scheduler"] == bar_policy
        ),
        None,
    )
    bar_enforced = not args.smoke and bar_run is not None and cpus >= 4

    artifact = {
        "benchmark": "shard",
        "mode": "smoke" if args.smoke else "full",
        "cpus": cpus,
        "workload": {
            "requests": count,
            "pool_size": pool_size,
            "mix": {
                "altr": models.count("altr"),
                "pay": models.count("pay"),
                "exact": models.count("exact"),
            },
            "batch": BATCH,
        },
        "schedulers": schedulers,
        "sequential_seconds": sequential_seconds,
        "sequential_rps": count / sequential_seconds,
        "runs": runs,
        "verified_identical": identical,
        "bar": {
            "description": ">= 2.5x vs sequential at 4 workers (cost scheduler)",
            "bar_enforced": bar_enforced,
            "reason": (
                "enforced"
                if bar_enforced
                else (
                    "smoke mode"
                    if args.smoke
                    else (
                        "no 4-worker cost run"
                        if bar_run is None
                        else f"{cpus} cpu(s) < 4 workers"
                    )
                )
            ),
        },
    }
    write_artifact(args.out, artifact)

    if not identical:
        return verification_failure(
            "sharded dispatch diverged from sequential"
        )
    best = max((entry["speedup_vs_sequential"] for entry in runs), default=0.0)
    if args.smoke and best < 1.0:
        # Checked against the *best* configuration: a shared CI runner with
        # fewer cores than workers cannot scale, but some shard count must
        # still beat the unbatched sequential loop.
        print(
            "SMOKE FAILURE: no shard count beat the sequential loop",
            file=sys.stderr,
        )
        return 1
    if bar_run is not None and not bar_enforced and not args.smoke:
        print(
            f"  note: 2.5x bar not enforced on this host "
            f"(recorded bar_enforced=false: {artifact['bar']['reason']})"
        )
    if bar_enforced and bar_run["speedup_vs_sequential"] < 2.5:
        print(
            f"FAILURE: 4-worker cost-scheduler speedup "
            f"{bar_run['speedup_vs_sequential']:.2f}x is below the 2.5x "
            "acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
