#!/usr/bin/env python3
"""Sharded-execution benchmark: worker shards vs the sequential serve loop.

Scenario: the ``BENCH_service.json`` workload — a mixed 1,000-request stream
(80% AltrM / 10% PayM / 10% exact, each decision task drawing from its own
201-candidate pool) — answered by two dispatch policies:

* ``sequential`` — the PR 4 serve baseline: one ``JuryService.select()``
  per request, one in-process engine pass each.
* ``sharded`` — the stream arrives in coalesced batches (the shape the
  async drainer produces, 256 requests per ``select_many`` pass) and each
  batch fans out across ``N`` worker shards partitioned by pool
  fingerprint: the parent plans, the shards sweep/solve with worker-local
  caches.  Measured at 1, 2, 4 and 8 workers.

Responses are verified **bit-identical** across every policy (sharding
changes where queries run, never what they answer), timings are printed,
and a machine-readable ``BENCH_shard.json`` artifact is written.  The
artifact records ``cpus``: on a single-core host the speedup comes from the
batching the sharded path retains (stacked 2-D sweeps inside each shard);
adding workers beyond the core count cannot help, so interpret the scaling
column against the recorded core count.

Run:  PYTHONPATH=src python benchmarks/bench_shard.py [--smoke]
      [--requests N] [--pool-size N] [--workers 1,2,4,8] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs and exits non-zero if
sharded dispatch fails to beat the sequential loop at all, or if any policy
diverges.  The full-size acceptance bar is >= 2.5x at 4 workers.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _common import verification_failure, write_artifact  # noqa: E402
from bench_service import build_stream  # noqa: E402
from repro.api import JuryService  # noqa: E402
from repro.core import kernels  # noqa: E402
from repro.service import BatchSelectionEngine, PoolRegistry, ShardedExecutor  # noqa: E402
from repro.service.shard import shutdown_shared_pools  # noqa: E402

#: Coalesced-batch size — matches the async drainer's default ceiling.
BATCH = 256


def _normalise(response) -> dict:
    row = response.to_dict()
    row.pop("timings")
    return row


def run_sequential(requests) -> tuple[float, list[dict]]:
    """The PR 4 baseline: one select() (one engine pass) per request.

    ``workers=1`` pins the in-process path explicitly so an exported
    ``REPRO_WORKERS`` cannot shard the baseline itself.
    """
    service = JuryService(workers=1)
    start = time.perf_counter()
    responses = [service.select(request) for request in requests]
    elapsed = time.perf_counter() - start
    return elapsed, [_normalise(r) for r in responses]


def run_sharded(requests, workers: int) -> tuple[float, list[dict]]:
    """Coalesced batches fanned out across ``workers`` shards."""
    # Built via an explicit executor so that workers=1 still measures one
    # worker *process* (the service knob treats 1 as in-process).
    executor = ShardedExecutor(workers)
    service = JuryService(
        engine=BatchSelectionEngine(executor=executor, registry=PoolRegistry())
    )
    # Fork the shard processes before timing: a serving process pays that
    # cost once at startup, not per batch.
    executor.start()
    start = time.perf_counter()
    responses = []
    for offset in range(0, len(requests), BATCH):
        responses.extend(service.select_many(requests[offset : offset + BATCH]))
    elapsed = time.perf_counter() - start
    return elapsed, [_normalise(r) for r in responses]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000, help="stream length")
    parser.add_argument(
        "--pool-size", type=int, default=201, help="candidates per AltrM/PayM task"
    )
    parser.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated shard counts to measure (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--out", default="BENCH_shard.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + regression check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    count, pool_size = args.requests, args.pool_size
    worker_counts = [int(w) for w in str(args.workers).split(",") if w.strip()]
    if args.smoke:
        count, pool_size, worker_counts = 150, 61, [1, 2]
        # Pin the reference kernels for the smoke canary (exported so the
        # worker shards inherit it): compiled backends shrink per-query
        # kernel cost below the shard IPC overhead at smoke sizes —
        # especially on 1-CPU CI hosts — which would turn this machinery
        # check into a kernel-crossover measurement.  The full-size run
        # keeps the session backend and interprets scaling against the
        # recorded core count.
        os.environ["REPRO_KERNEL_BACKEND"] = "numpy"
        kernels.set_kernel_backend("numpy")

    requests = build_stream(count, pool_size)
    models = [r.model for r in requests]
    cpus = os.cpu_count() or 1
    print(
        f"bench_shard: {count} requests "
        f"({models.count('altr')} altr / {models.count('pay')} pay / "
        f"{models.count('exact')} exact), pool {pool_size}, "
        f"batch {BATCH}, {cpus} cpus ({'smoke' if args.smoke else 'full'} mode)"
    )

    sequential_seconds, sequential_rows = run_sequential(requests)
    print(
        f"  sequential      : {sequential_seconds:8.3f}s  "
        f"({count / sequential_seconds:8.1f} req/s, one engine pass each)"
    )

    runs = []
    identical = True
    for workers in worker_counts:
        shutdown_shared_pools()  # fresh shard processes per configuration
        elapsed, rows = run_sharded(requests, workers)
        same = rows == sequential_rows
        identical = identical and same
        speedup = sequential_seconds / elapsed
        runs.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "rps": count / elapsed,
                "speedup_vs_sequential": speedup,
                "verified_identical": same,
            }
        )
        print(
            f"  sharded x{workers:<2d}     : {elapsed:8.3f}s  "
            f"({count / elapsed:8.1f} req/s, {speedup:5.2f}x"
            f"{', verified identical' if same else ', DIVERGED'})"
        )
    shutdown_shared_pools()
    one = next((e for e in runs if e["workers"] == 1), None)
    for entry in runs:
        entry["scaling_vs_one_worker"] = (
            one["seconds"] / entry["seconds"] if one is not None else None
        )

    artifact = {
        "benchmark": "shard",
        "mode": "smoke" if args.smoke else "full",
        "cpus": cpus,
        "workload": {
            "requests": count,
            "pool_size": pool_size,
            "mix": {
                "altr": models.count("altr"),
                "pay": models.count("pay"),
                "exact": models.count("exact"),
            },
            "batch": BATCH,
        },
        "sequential_seconds": sequential_seconds,
        "sequential_rps": count / sequential_seconds,
        "runs": runs,
        "verified_identical": identical,
    }
    write_artifact(args.out, artifact)

    if not identical:
        return verification_failure("sharded dispatch diverged from sequential")
    best = max((entry["speedup_vs_sequential"] for entry in runs), default=0.0)
    if args.smoke and best < 1.0:
        # Checked against the *best* configuration: a shared CI runner with
        # fewer cores than workers cannot scale, but some shard count must
        # still beat the unbatched sequential loop.
        print(
            "SMOKE FAILURE: no shard count beat the sequential loop",
            file=sys.stderr,
        )
        return 1
    four = next((e for e in runs if e["workers"] == 4), None)
    if not args.smoke and four is not None:
        # The full-size acceptance bar: >= 2.5x at 4 workers over the
        # sequential serve baseline.  It presumes the workers can actually
        # run in parallel, so it is only enforced on >= 4 cores; on smaller
        # hosts the artifact still records the (batching-only) numbers.
        if cpus < 4:
            print(
                f"  note: {cpus} cpu(s) < 4 workers — 2.5x bar not enforced "
                "on this host"
            )
        elif four["speedup_vs_sequential"] < 2.5:
            print(
                f"FAILURE: 4-worker speedup {four['speedup_vs_sequential']:.2f}x "
                "is below the 2.5x acceptance bar",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
