"""Benchmark + reproduction of paper Table 2 (motivating example JERs)."""

from __future__ import annotations

import pytest

from repro.experiments.table2 import TABLE2_ROWS, run_table2


def bench_table2(benchmark, save_artifact):
    """Regenerate Table 2 and time the (tiny) JER computations."""
    result = benchmark(run_table2)
    save_artifact(result)
    reproduced = result.series_named("reproduced")
    # The jury {A,B,C,D,E} must be the best crowd, as the paper argues.
    values = {p.note: p.y for p in reproduced.points}
    assert min(values, key=values.get) == "A,B,C,D,E"
    # Every reproduced value matches the printed one up to the paper's
    # rounding (row 6 is the paper's known 0.0805-vs-0.0852 misprint).
    for row, (_, paper_value) in enumerate(TABLE2_ROWS, start=1):
        tolerance = 0.006 if row == 6 else 5e-4
        assert reproduced.y_at(row) == pytest.approx(paper_value, abs=tolerance)
