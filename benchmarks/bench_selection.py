"""Ablation bench: selection-algorithm design choices called out in DESIGN.md.

* AltrALG execution strategies: incremental ``sweep`` vs the paper-faithful
  ``per-jury`` recomputation (with DP and CBA back-ends);
* PayALG first-fit pairing vs the steepest-descent ``improved`` variant;
* exact solvers: enumeration vs branch-and-bound (with/without JER bound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection.altr import select_jury_altr
from repro.core.selection.exact import branch_and_bound_optimal, enumerate_optimal
from repro.core.selection.pay import select_jury_pay
from repro.synth.generators import generate_workload

ALTR_N = 801
PAY_N = 400
EXACT_N = 14


@pytest.fixture(scope="module")
def altr_candidates():
    wl = generate_workload(ALTR_N, eps_mean=0.3, eps_variance=0.01, seed=71)
    return list(wl.jurors)


@pytest.fixture(scope="module")
def pay_candidates():
    wl = generate_workload(
        PAY_N, eps_mean=0.3, eps_variance=0.01, req_mean=0.5, req_variance=0.04,
        seed=72,
    )
    return list(wl.jurors)


@pytest.fixture(scope="module")
def exact_candidates():
    wl = generate_workload(
        EXACT_N, eps_mean=0.25, eps_variance=0.005, req_mean=0.5,
        req_variance=0.04, seed=73,
    )
    return list(wl.jurors)


def bench_altr_sweep(benchmark, altr_candidates):
    """Our O(N^2) incremental sweep."""
    result = benchmark(select_jury_altr, altr_candidates)
    assert result.size % 2 == 1


def bench_altr_per_jury_dp(benchmark, altr_candidates):
    """Paper-faithful AltrALG with per-prefix Algorithm 1."""
    result = benchmark.pedantic(
        select_jury_altr,
        args=(altr_candidates,),
        kwargs={"strategy": "per-jury", "jer_method": "dp"},
        rounds=1,
        iterations=1,
    )
    sweep = select_jury_altr(altr_candidates)
    assert result.jer == pytest.approx(sweep.jer, abs=1e-10)


def bench_altr_per_jury_cba(benchmark, altr_candidates):
    """Paper-faithful AltrALG with per-prefix Algorithm 2 (CBA)."""
    result = benchmark.pedantic(
        select_jury_altr,
        args=(altr_candidates,),
        kwargs={"strategy": "per-jury", "jer_method": "cba"},
        rounds=1,
        iterations=1,
    )
    assert result.size % 2 == 1


def bench_pay_paper_variant(benchmark, pay_candidates):
    result = benchmark(select_jury_pay, pay_candidates, 1.0)
    assert result.total_cost <= 1.0 + 1e-9


def bench_pay_improved_variant(benchmark, pay_candidates):
    """Steepest-descent pairing: better juries, quadratic step cost."""
    result = benchmark.pedantic(
        select_jury_pay,
        args=(pay_candidates, 1.0),
        kwargs={"variant": "improved"},
        rounds=1,
        iterations=1,
    )
    paper = select_jury_pay(pay_candidates, 1.0)
    assert result.jer <= paper.jer + 1e-12


def bench_exact_enumeration(benchmark, exact_candidates):
    result = benchmark.pedantic(
        enumerate_optimal, args=(exact_candidates, 1.5), rounds=1, iterations=1
    )
    assert result.total_cost <= 1.5 + 1e-9


def bench_exact_branch_and_bound(benchmark, exact_candidates):
    result = benchmark(branch_and_bound_optimal, exact_candidates, 1.5)
    reference = enumerate_optimal(exact_candidates, 1.5)
    assert result.jer == pytest.approx(reference.jer, abs=1e-12)


def bench_exact_bb_without_jer_bound(benchmark, exact_candidates):
    """Cost/count pruning only — quantifies the monotonicity bound's value."""
    result = benchmark.pedantic(
        branch_and_bound_optimal,
        args=(exact_candidates, 1.5),
        kwargs={"use_jer_bound": False},
        rounds=1,
        iterations=1,
    )
    assert result.size % 2 == 1


def bench_exact_bb_paper_scale_n22(benchmark):
    """The paper's ground-truth setting (N=22) through branch-and-bound."""
    rng = np.random.default_rng(74)
    wl = generate_workload(
        22, eps_mean=0.2, eps_variance=0.0025, req_mean=0.5, req_variance=0.04,
        rng=rng,
    )

    result = benchmark.pedantic(
        branch_and_bound_optimal, args=(list(wl.jurors), 1.0), rounds=1, iterations=1
    )
    assert result.total_cost <= 1.0 + 1e-9
