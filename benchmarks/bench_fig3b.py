"""Benchmark + reproduction of Figure 3(b): AltrALG efficiency, +/- bound."""

from __future__ import annotations

from repro.experiments.fig3b import Fig3bConfig, run_fig3b


def bench_fig3b(benchmark, save_artifact):
    """Regenerate Figure 3(b) at bench scale; pruning must help where the
    Paley-Zygmund bound applies (error-prone population) and cost little
    where it does not (reliable population)."""
    result = benchmark.pedantic(
        run_fig3b, args=(Fig3bConfig.small(),), rounds=1, iterations=1
    )
    save_artifact(result)
    largest = max(result.series_named("m(0.1)").xs)
    assert result.series_named("m(0.6,b)").y_at(largest) <= result.series_named(
        "m(0.6)"
    ).y_at(largest)
    assert result.series_named("m(0.1,b)").y_at(largest) <= result.series_named(
        "m(0.1)"
    ).y_at(largest) * 1.6
