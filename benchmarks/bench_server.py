#!/usr/bin/env python3
"""Server benchmark: closed-loop HTTP load against the network tier.

Scenario: one serving process (:class:`repro.api.HttpServer` over an
:class:`repro.api.AsyncJuryService`) answering a mixed AltrM/PayM/exact
request stream over real TCP sockets, driven by N closed-loop clients —
each client holds one persistent keep-alive connection and POSTs its
interleaved slice of the stream to ``/v1/select`` one request at a time,
like a real platform session would.

For each client count the harness reports wall-clock RPS and the
per-request latency distribution (p50/p95/p99): as concurrency grows, the
coalescing drainer stacks more requests per engine pass, so throughput
should rise far faster than latency.  Every run is verified bit-identical
to a sequential in-process ``JuryService`` loop over the same requests —
the transport and the batching may change *when* queries run, never their
answers.

Run:  PYTHONPATH=src python benchmarks/bench_server.py [--smoke]
      [--requests N] [--pool-size N] [--clients 1,16,64,128] [--out PATH]

``--smoke`` shrinks the workload for CI smoke jobs.  The run (either mode)
exits non-zero if any client count diverges from sequential dispatch.
A machine-readable ``BENCH_server.json`` artifact is written so the
serving-tier perf trajectory can be tracked across PRs.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from _common import verification_failure, write_artifact  # noqa: E402
from repro.api import AsyncJuryService, JuryService, SelectionRequest  # noqa: E402
from repro.api.server import HttpServer, http_call  # noqa: E402
from repro.core.juror import Juror  # noqa: E402
from repro.testing import BENCH_SEED  # noqa: E402

#: Candidate-pool size for the exact queries (combinatorial cost; the
#: budget keeps the affordable subset small enough for interactive latency).
EXACT_POOL_SIZE = 18


def _make_candidates(rng, size: int, tag: str) -> tuple[Juror, ...]:
    eps = rng.uniform(0.05, 0.6, size=size)
    reqs = rng.uniform(0.0, 1.0, size=size)
    return tuple(
        Juror(float(e), float(r), juror_id=f"{tag}-{i}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    )


def build_stream(count: int, pool_size: int) -> list[SelectionRequest]:
    """A deterministic mixed AltrM/PayM/exact stream over per-task pools."""
    rng = np.random.default_rng(BENCH_SEED)
    requests: list[SelectionRequest] = []
    for i in range(count):
        mode = i % 16
        if mode == 7:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}",
                    candidates=_make_candidates(rng, pool_size, f"t{i}"),
                    model="pay",
                    budget=2.0,
                )
            )
        elif mode == 15:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}",
                    candidates=_make_candidates(rng, EXACT_POOL_SIZE, f"t{i}"),
                    model="exact",
                    budget=1.5,
                )
            )
        else:
            requests.append(
                SelectionRequest(
                    task_id=f"t{i}",
                    candidates=_make_candidates(rng, pool_size, f"t{i}"),
                )
            )
    return requests


def run_sequential(requests: list[SelectionRequest]) -> tuple[float, list[dict]]:
    """The reference answers: one in-process engine pass per request."""
    service = JuryService()
    try:
        start = time.perf_counter()
        responses = [service.select(request) for request in requests]
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    rows = []
    for response in responses:
        # Round-trip through JSON so float/tuple encodings match what the
        # HTTP clients read off the wire.
        row = json.loads(json.dumps(response.to_dict()))
        row.pop("timings")
        rows.append(row)
    return elapsed, rows


def run_http(
    requests: list[SelectionRequest], clients: int, max_batch: int
) -> tuple[float, list[float], list[dict]]:
    """One closed-loop HTTP run; returns (seconds, latencies, wire rows)."""
    wire = [request.to_dict() for request in requests]

    async def drive():
        service = AsyncJuryService(
            max_batch=max_batch, max_pending=max(4 * max_batch, 2 * clients)
        )
        async with HttpServer(
            service, port=0, max_connections=clients + 4
        ) as server:

            async def client(worker: int):
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                answers = []
                for position in range(worker, len(wire), clients):
                    t0 = time.perf_counter()
                    status, body = await http_call(
                        reader, writer, "POST", "/v1/select", wire[position]
                    )
                    latency = time.perf_counter() - t0
                    if status != 200:
                        raise RuntimeError(
                            f"client {worker}: HTTP {status} for "
                            f"{wire[position]['task']}: {body}"
                        )
                    answers.append((position, body, latency))
                writer.close()
                return answers

            start = time.perf_counter()
            results = await asyncio.gather(*(client(w) for w in range(clients)))
            elapsed = time.perf_counter() - start
        return elapsed, results

    elapsed, results = asyncio.run(drive())
    rows: list[dict | None] = [None] * len(requests)
    latencies: list[float] = []
    for answers in results:
        for position, body, latency in answers:
            body.pop("timings", None)
            rows[position] = body
            latencies.append(latency)
    return elapsed, latencies, rows  # type: ignore[return-value]


def _percentiles(latencies: list[float]) -> dict:
    p50, p95, p99 = np.percentile(np.asarray(latencies), [50, 95, 99])
    return {
        "p50_ms": float(p50) * 1e3,
        "p95_ms": float(p95) * 1e3,
        "p99_ms": float(p99) * 1e3,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=800, help="stream length")
    parser.add_argument(
        "--pool-size", type=int, default=121, help="candidates per AltrM/PayM task"
    )
    parser.add_argument(
        "--clients",
        default="1,16,64,128",
        help="comma-separated closed-loop client counts (default: 1,16,64,128)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=256, help="AsyncJuryService batch cap"
    )
    parser.add_argument(
        "--out", default="BENCH_server.json", help="where to write the JSON artifact"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + bit-identity check (CI smoke job)",
    )
    args = parser.parse_args(argv)

    count, pool_size = args.requests, args.pool_size
    client_counts = [int(c) for c in str(args.clients).split(",") if c]
    if args.smoke:
        count, pool_size, client_counts = 96, 61, [1, 8]

    requests = build_stream(count, pool_size)
    models = [r.model for r in requests]
    print(
        f"bench_server: {count} requests over HTTP "
        f"({models.count('altr')} altr / {models.count('pay')} pay / "
        f"{models.count('exact')} exact), pool {pool_size}, "
        f"clients {client_counts} ({'smoke' if args.smoke else 'full'} mode)"
    )

    sequential_seconds, sequential_rows = run_sequential(requests)
    print(
        f"  sequential reference: {sequential_seconds:8.3f}s  "
        f"({count / sequential_seconds:8.1f} req/s in-process)"
    )

    runs = []
    all_identical = True
    for clients in client_counts:
        seconds, latencies, rows = run_http(requests, clients, args.max_batch)
        identical = rows == sequential_rows
        all_identical = all_identical and identical
        pct = _percentiles(latencies)
        verdict = "verified identical" if identical else "DIVERGED"
        print(
            f"  {clients:4d} clients: {seconds:8.3f}s  "
            f"({count / seconds:8.1f} req/s)  "
            f"p50 {pct['p50_ms']:7.1f}ms  p95 {pct['p95_ms']:7.1f}ms  "
            f"p99 {pct['p99_ms']:7.1f}ms  ({verdict})"
        )
        runs.append(
            {
                "clients": clients,
                "seconds": seconds,
                "rps": count / seconds,
                "latency": pct,
                "verified_identical": identical,
            }
        )

    artifact = {
        "benchmark": "server",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "requests": count,
            "pool_size": pool_size,
            "exact_pool_size": EXACT_POOL_SIZE,
            "mix": {
                "altr": models.count("altr"),
                "pay": models.count("pay"),
                "exact": models.count("exact"),
            },
            "transport": "http/1.1 keep-alive, POST /v1/select",
            "max_batch": args.max_batch,
        },
        "sequential_seconds": sequential_seconds,
        "sequential_rps": count / sequential_seconds,
        "runs": runs,
        "verified_identical": all_identical,
    }
    write_artifact(args.out, artifact)

    if not all_identical:
        return verification_failure("HTTP dispatch diverged from sequential")
    return 0


if __name__ == "__main__":
    sys.exit(main())
