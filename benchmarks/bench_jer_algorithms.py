"""Ablation bench: the three JER algorithms of paper Section 3.1.

Backs the paper's complexity claims — Algorithm 1 (DP, O(n^2)) versus
Algorithm 2 (CBA, O(n log n)) versus naive enumeration (O(2^n)) — and our
incremental prefix sweeper (DESIGN.md system 3).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jer import PrefixJERSweeper, jer_cba, jer_dp, jer_naive

SMALL_N = 15
LARGE_N = 2001


@pytest.fixture(scope="module")
def small_eps():
    rng = np.random.default_rng(61)
    return rng.uniform(0.05, 0.95, size=SMALL_N)


@pytest.fixture(scope="module")
def large_eps():
    rng = np.random.default_rng(62)
    return rng.uniform(0.05, 0.95, size=LARGE_N)


def bench_jer_naive_small(benchmark, small_eps):
    """Exponential enumeration — only feasible for tiny juries."""
    value = benchmark(jer_naive, small_eps)
    assert value == pytest.approx(jer_dp(small_eps), abs=1e-10)


def bench_jer_dp_small(benchmark, small_eps):
    value = benchmark(jer_dp, small_eps)
    assert 0.0 <= value <= 1.0


def bench_jer_cba_small(benchmark, small_eps):
    value = benchmark(jer_cba, small_eps)
    assert value == pytest.approx(jer_dp(small_eps), abs=1e-10)


def bench_jer_dp_large(benchmark, large_eps):
    """Algorithm 1 at n=2001 — the quadratic baseline."""
    value = benchmark(jer_dp, large_eps)
    assert 0.0 <= value <= 1.0


def bench_jer_cba_large(benchmark, large_eps):
    """Algorithm 2 at n=2001 — the FFT divide-and-conquer contender."""
    value = benchmark(jer_cba, large_eps)
    assert value == pytest.approx(jer_dp(large_eps), abs=1e-8)


def bench_prefix_sweeper_large(benchmark, large_eps):
    """All 1001 odd-prefix JERs in one incremental pass (our optimisation:
    cheaper than 1001 independent CBA calls)."""
    ordered = np.sort(large_eps)

    def sweep():
        return PrefixJERSweeper(ordered).best_prefix()

    best_n, best_jer = benchmark(sweep)
    assert best_n % 2 == 1
    assert 0.0 <= best_jer <= 1.0
