"""Shared simulated-Twitter workload for the Section 5.2 experiments.

The paper's real-data experiments estimate candidates from a two-day Twitter
sample (689,050 users, top 5,000 kept).  Our substitute (see DESIGN.md,
"Substitutions") simulates a micro-blog service with
:func:`repro.microblog.generate_microblog_service` and runs the *identical*
Section 4 pipeline on its corpus.  This module builds that workload once per
configuration and hands the experiments the HITS- and PageRank-derived
candidate sets, with account-age-based requirements for the PayM studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.juror import Juror
from repro.estimation.pipeline import estimate_candidates
from repro.microblog.activity import generate_microblog_service
from repro.microblog.users import account_age_map

__all__ = ["TwitterWorkloadConfig", "TwitterWorkload", "build_twitter_workload"]


@dataclass(frozen=True)
class TwitterWorkloadConfig:
    """Simulated-service knobs for the Figure 3(g)-(i) experiments.

    Attributes
    ----------
    n_users:
        Simulated population size (paper: 689,050 observed users; pick what
        the machine affords — the pipeline is identical at any size).
    days:
        Simulated observation window (paper: two days).
    alpha, beta:
        Error-rate normalisation factors (paper Section 5.2: both 10).
    seed:
        Simulation seed.
    observation_day:
        Day at which account ages are measured for requirements.
    """

    n_users: int = 3000
    days: int = 2
    alpha: float = 10.0
    beta: float = 10.0
    seed: int = 52
    observation_day: float = 2000.0

    @classmethod
    def small(cls) -> "TwitterWorkloadConfig":
        """Bench-scale: 600 simulated users."""
        return cls(n_users=600)


@dataclass(frozen=True)
class TwitterWorkload:
    """Candidate sets estimated from one simulated corpus.

    Attributes
    ----------
    hits_candidates / pagerank_candidates:
        Jurors sorted by descending quality score, error rates normalised
        per Section 4.1.3 and requirements from account age (Section 4.2).
    config:
        The generating configuration.
    """

    hits_candidates: tuple[Juror, ...]
    pagerank_candidates: tuple[Juror, ...]
    config: TwitterWorkloadConfig

    def candidates(self, ranking: str) -> tuple[Juror, ...]:
        """Candidate set by ranker name (``"hits"`` or ``"pagerank"``)."""
        if ranking == "hits":
            return self.hits_candidates
        if ranking == "pagerank":
            return self.pagerank_candidates
        raise ValueError(f"unknown ranking {ranking!r}")


@lru_cache(maxsize=4)
def build_twitter_workload(config: TwitterWorkloadConfig) -> TwitterWorkload:
    """Simulate a service and estimate candidates with both rankers.

    Cached per configuration: Figures 3(g), 3(h) and 3(i) share one corpus,
    like the paper's single Twitter dataset.
    """
    population, _, corpus = generate_microblog_service(
        config.n_users, seed=config.seed, days=config.days
    )
    ages = account_age_map(population, config.observation_day)
    hits_result = estimate_candidates(
        corpus,
        ranking="hits",
        alpha=config.alpha,
        beta=config.beta,
        account_ages=ages,
    )
    pagerank_result = estimate_candidates(
        corpus,
        ranking="pagerank",
        alpha=config.alpha,
        beta=config.beta,
        account_ages=ages,
    )
    return TwitterWorkload(
        hits_candidates=tuple(hits_result.jurors),
        pagerank_candidates=tuple(pagerank_result.jurors),
        config=config,
    )
