"""Figures 3(e)/3(f) shared sweep — PayALG ("APPX") versus ground truth ("OPT").

Paper setup (Section 5.1.2, "Effectiveness on PayM"): a small candidate set
(N = 22) with error rates ~ N(0.2, 0.05) and requirements ~ N(0.05, 0.2);
budgets swept over the 0.5..1.5 range shown on the figures' x axes (the
running text says "1 to 3 with step 0.2" — another text/figure mismatch; we
follow the figures).  Ground truth comes from exact search; the paper
enumerates, we use the equivalent branch-and-bound solver which handles
N = 22 in milliseconds.

Expected shape: OPT's JER is a lower envelope of APPX's; the largest gap
appears at the tightest budget and the curves converge as B grows (paper:
"with an increasing budget, the JER given by PayALG is getting closer to the
one of ground truth").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection.exact import branch_and_bound_optimal
from repro.core.selection.pay import select_jury_pay
from repro.errors import InfeasibleSelectionError
from repro.experiments.common import ExperimentResult
from repro.synth.generators import generate_workload

__all__ = ["Fig3eConfig", "run_appx_vs_opt_sweep", "run_fig3e"]


@dataclass(frozen=True)
class Fig3eConfig:
    """Workload knobs shared by Figures 3(e) and 3(f)."""

    n_candidates: int = 22
    eps_mean: float = 0.2
    #: sigma 0.05 for error rates, sigma 0.2 for requirements.  The paper
    #: states requirement mean 0.05, but with that value no budget in the
    #: figures' 0.5..1.5 range ever binds (most requirements clip to zero and
    #: the whole candidate set is affordable) — the published cost curve
    #: requires a mean near 0.5, so we treat 0.05 as a misprint
    #: (EXPERIMENTS.md, F3e).
    eps_variance: float = 0.0025
    req_mean: float = 0.5
    req_variance: float = 0.04
    budgets: tuple[float, ...] = tuple(np.round(np.arange(0.5, 1.51, 0.1), 2))
    seed: int = 35

    @classmethod
    def small(cls) -> "Fig3eConfig":
        """Bench-scale: N = 14 so even plain enumeration is instant."""
        return cls(n_candidates=14, budgets=(0.5, 0.9, 1.3))


def run_appx_vs_opt_sweep(
    cfg: Fig3eConfig,
    *,
    metric: str,
    experiment_id: str,
    title: str,
    y_label: str,
) -> ExperimentResult:
    """Run PayALG and the exact solver over the budget sweep.

    Records total cost (``metric="cost"``) or JER (``metric="jer"``) for the
    ``APPX`` (greedy) and ``OPT`` (exact) series.
    """
    if metric not in ("cost", "jer"):
        raise ValueError(f"metric must be 'cost' or 'jer', got {metric!r}")
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="Budget B",
        y_label=y_label,
        metadata={
            "n_candidates": cfg.n_candidates,
            "eps_mean": cfg.eps_mean,
            "req_mean": cfg.req_mean,
            "seed": cfg.seed,
        },
    )
    workload = generate_workload(
        cfg.n_candidates,
        eps_mean=cfg.eps_mean,
        eps_variance=cfg.eps_variance,
        req_mean=cfg.req_mean,
        req_variance=cfg.req_variance,
        seed=cfg.seed,
    )
    candidates = list(workload.jurors)
    appx = result.new_series("APPX")
    opt = result.new_series("OPT")
    for budget in cfg.budgets:
        try:
            greedy = select_jury_pay(candidates, budget=budget)
            exact = branch_and_bound_optimal(candidates, budget=budget)
        except InfeasibleSelectionError:
            continue
        if metric == "cost":
            appx.add(budget, greedy.total_cost, note=f"size={greedy.size}")
            opt.add(budget, exact.total_cost, note=f"size={exact.size}")
        else:
            appx.add(budget, greedy.jer, note=f"size={greedy.size}")
            opt.add(budget, exact.jer, note=f"size={exact.size}")
    return result


def run_fig3e(config: Fig3eConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(e): APPX vs OPT on total cost."""
    cfg = config if config is not None else Fig3eConfig()
    return run_appx_vs_opt_sweep(
        cfg,
        metric="cost",
        experiment_id="fig3e",
        title="APPX v.s. OPT on Total Cost",
        y_label="Total Cost of Selected Jury",
    )
