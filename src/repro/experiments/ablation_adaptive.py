"""Ablation — sequential polling vs the paper's convene-everyone scheme.

On a micro-blog every `@`-mention costs attention (and under PayM, money),
so asking fewer jurors matters.  This ablation runs the SPRT-style
sequential poll (see :mod:`repro.simulation.adaptive`) against static
Majority Voting over the same jury, sweeping the certainty target, and
reports accuracy alongside the mean number of questions asked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.juror import Jury
from repro.experiments.common import ExperimentResult
from repro.simulation.adaptive import compare_with_static
from repro.synth.generators import generate_error_rates

__all__ = ["AblationAdaptiveConfig", "run_ablation_adaptive"]


@dataclass(frozen=True)
class AblationAdaptiveConfig:
    """Knobs for the adaptive-polling ablation."""

    jury_size: int = 15
    eps_mean: float = 0.25
    spread: float = 0.1
    deltas: tuple[float, ...] = (0.2, 0.1, 0.05, 0.02, 0.01)
    trials: int = 2000
    seed: int = 83

    @classmethod
    def small(cls) -> "AblationAdaptiveConfig":
        """Bench-scale: fewer trials, three certainty targets."""
        return cls(deltas=(0.1, 0.05, 0.01), trials=600)


def run_ablation_adaptive(
    config: AblationAdaptiveConfig | None = None,
) -> ExperimentResult:
    """Sweep the SPRT certainty target delta.

    Series: ``adaptive-accuracy``, ``static-accuracy`` (flat — the full-jury
    analytic value), ``adaptive-questions`` and ``static-questions`` (flat at
    the jury size).
    """
    cfg = config if config is not None else AblationAdaptiveConfig()
    rng = np.random.default_rng(cfg.seed)
    eps = generate_error_rates(cfg.jury_size, cfg.eps_mean, cfg.spread**2, rng)
    jury = Jury.from_error_rates(eps.tolist())

    result = ExperimentResult(
        experiment_id="ablation-adaptive",
        title="Sequential (SPRT) vs static majority polling",
        x_label="Certainty target delta",
        y_label="Accuracy / questions",
        metadata={
            "jury_size": cfg.jury_size,
            "eps_mean": cfg.eps_mean,
            "trials": cfg.trials,
            "seed": cfg.seed,
        },
    )
    adaptive_acc = result.new_series("adaptive-accuracy")
    static_acc = result.new_series("static-accuracy")
    adaptive_q = result.new_series("adaptive-questions")
    static_q = result.new_series("static-questions")
    for delta in cfg.deltas:
        comparison = compare_with_static(
            jury, trials=cfg.trials, delta=float(delta), rng=rng
        )
        adaptive_acc.add(delta, comparison.adaptive_accuracy)
        static_acc.add(delta, comparison.static_accuracy)
        adaptive_q.add(
            delta,
            comparison.adaptive_mean_questions,
            note=f"savings={comparison.question_savings:.0%}",
        )
        static_q.add(delta, comparison.static_questions)
    return result
