"""Figure 3(h) — precision and recall of PayALG on (simulated) Twitter data.

Paper setup (Section 5.2.2): the top 20 candidates from HITS and PageRank,
error rates normalised with alpha = beta = 10 and requirements from account
age; budgets set to {0.1%, 1%, 10%, 20%} of ``M``, where ``M`` is the mean
estimated requirement times the candidate count.  For each budget, PayALG's
jury is compared against the enumerated optimum in set precision and recall.

Expected shape: precision/recall are high overall and higher for the ranker
whose error-rate distribution leaves fewer near-optimal juries (HITS scores
1.0/1.0 in the paper; PageRank trails because "a relatively larger number of
jurors ... have low error-rates ... broadens the feasible solution space").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection.exact import branch_and_bound_optimal
from repro.core.selection.pay import select_jury_pay
from repro.errors import InfeasibleSelectionError
from repro.experiments.common import ExperimentResult, precision_recall
from repro.experiments.twitter_data import TwitterWorkloadConfig, build_twitter_workload

__all__ = ["Fig3hConfig", "run_fig3h", "paym_twitter_sweep"]


@dataclass(frozen=True)
class Fig3hConfig:
    """Knobs shared by Figures 3(h) and 3(i)."""

    workload: TwitterWorkloadConfig = TwitterWorkloadConfig()
    top_k: int = 20
    budget_fractions: tuple[float, ...] = (0.001, 0.01, 0.1, 0.2)

    @classmethod
    def small(cls) -> "Fig3hConfig":
        """Bench-scale: smaller simulated service, same top-20 cut."""
        return cls(workload=TwitterWorkloadConfig.small())


def paym_twitter_sweep(cfg: Fig3hConfig) -> dict[str, list[dict[str, object]]]:
    """Shared PayALG-vs-OPT sweep behind Figures 3(h) and 3(i).

    Returns, per ranker label (``HT``/``PR``), one record per budget with the
    budget fraction, absolute budget, both selections' juror ids, sizes,
    JERs, and precision/recall of APPX against OPT.
    """
    workload = build_twitter_workload(cfg.workload)
    records: dict[str, list[dict[str, object]]] = {}
    for ranking, label in (("hits", "HT"), ("pagerank", "PR")):
        pool = list(workload.candidates(ranking))[: cfg.top_k]
        mean_requirement = sum(j.requirement for j in pool) / len(pool)
        m_value = mean_requirement * len(pool)
        rows: list[dict[str, object]] = []
        for fraction in cfg.budget_fractions:
            budget = fraction * m_value
            try:
                greedy = select_jury_pay(pool, budget=budget)
                exact = branch_and_bound_optimal(pool, budget=budget)
            except InfeasibleSelectionError:
                continue
            precision, recall = precision_recall(
                greedy.juror_ids, exact.juror_ids
            )
            rows.append(
                {
                    "fraction": fraction,
                    "budget": budget,
                    "appx_ids": greedy.juror_ids,
                    "opt_ids": exact.juror_ids,
                    "appx_size": greedy.size,
                    "opt_size": exact.size,
                    "appx_jer": greedy.jer,
                    "opt_jer": exact.jer,
                    "precision": precision,
                    "recall": recall,
                }
            )
        records[label] = rows
    return records


def run_fig3h(config: Fig3hConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(h): precision & recall of PayALG vs ground truth."""
    cfg = config if config is not None else Fig3hConfig()
    records = paym_twitter_sweep(cfg)
    result = ExperimentResult(
        experiment_id="fig3h",
        title="Precision & Recall on Twitter Data",
        x_label="Budget B (fraction of M)",
        y_label="Precision and Recall",
        metadata={
            "n_users": cfg.workload.n_users,
            "top_k": cfg.top_k,
            "seed": cfg.workload.seed,
        },
    )
    for label, rows in records.items():
        prec = result.new_series(f"{label}-Prec")
        rec = result.new_series(f"{label}-Rec")
        for row in rows:
            prec.add(row["fraction"], row["precision"], note=f"B={row['budget']:.3g}")
            rec.add(row["fraction"], row["recall"], note=f"B={row['budget']:.3g}")
    return result
