"""Figure 3(a) — optimal jury size versus mean individual error rate.

Paper setup (Section 5.1.1): 1,000 candidate jurors with error rates from a
normal distribution, mean swept 0.1..0.9, variance in {0.1, 0.2, 0.3}; run
AltrALG and record the size of the optimal jury.

Expected shape (the paper's finding): while the population is reliable
(mean < 0.5) the JER landscape is a "very flat slope" and the optimal size is
large and noisy; once candidates are error-prone (mean > 0.5) the optimal
jury collapses to a handful of members — "the hands of the few" — with the
turning point at mean 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection.altr import select_jury_altr
from repro.experiments.common import ExperimentResult
from repro.synth.generators import generate_workload

__all__ = ["Fig3aConfig", "run_fig3a"]


@dataclass(frozen=True)
class Fig3aConfig:
    """Workload knobs for Figure 3(a).

    Defaults follow the paper; :meth:`small` scales the candidate count down
    for quick benchmark runs.

    ``spreads`` carries the paper's legend values ``var(0.1..0.3)``.  We
    interpret them as the normal distribution's *scale* (sigma): read as true
    variances they imply sigma up to 0.55, which piles most samples onto the
    clipping boundaries and contradicts the paper's own right-hand-side
    curves (see EXPERIMENTS.md).
    """

    n_candidates: int = 1000
    means: tuple[float, ...] = tuple(np.round(np.arange(0.1, 0.91, 0.1), 2))
    spreads: tuple[float, ...] = (0.1, 0.2, 0.3)
    seed: int = 31

    @classmethod
    def small(cls) -> "Fig3aConfig":
        """Bench-scale: 200 candidates, coarser mean grid."""
        return cls(
            n_candidates=200,
            means=(0.1, 0.3, 0.5, 0.7, 0.9),
            spreads=(0.1, 0.3),
        )


def run_fig3a(config: Fig3aConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(a): jury size vs individual error rate.

    One series per variance, labelled ``var(v)`` as in the paper's legend;
    each point is (mean error rate, optimal jury size under AltrALG).
    """
    cfg = config if config is not None else Fig3aConfig()
    result = ExperimentResult(
        experiment_id="fig3a",
        title="Jury Size v.s. Individual Error-rate",
        x_label="Mean of Individual Error Rate",
        y_label="Jury Size",
        metadata={"n_candidates": cfg.n_candidates, "seed": cfg.seed},
    )
    rng = np.random.default_rng(cfg.seed)
    for spread in cfg.spreads:
        series = result.new_series(f"var({spread:g})")
        for mean in cfg.means:
            workload = generate_workload(
                cfg.n_candidates,
                eps_mean=float(mean),
                eps_variance=float(spread) ** 2,
                rng=rng,
            )
            selection = select_jury_altr(list(workload.jurors))
            series.add(mean, selection.size, note=f"jer={selection.jer:.4g}")
    return result
