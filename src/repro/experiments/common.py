"""Shared plumbing for the paper-reproduction experiments (Section 5).

Every experiment module exposes a ``Config`` dataclass (paper-scale defaults,
with a ``small()`` constructor the benchmarks use) and a ``run`` function
returning an :class:`ExperimentResult` — a set of named series that mirror
the rows/curves of the corresponding paper table or figure, plus a plain-text
rendering for terminal inspection.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "SeriesPoint",
    "Series",
    "ExperimentResult",
    "precision_recall",
    "render_ascii_chart",
]


@dataclass(frozen=True)
class SeriesPoint:
    """One (x, y) measurement of a series, with optional annotations."""

    x: float
    y: float
    note: str = ""


@dataclass
class Series:
    """A named curve, e.g. the paper's ``m(0.1,b)`` line of Figure 3(b).

    Attributes
    ----------
    name:
        Legend label, matching the paper's where one exists.
    points:
        Ordered measurements.
    """

    name: str
    points: list[SeriesPoint] = field(default_factory=list)

    def add(self, x: float, y: float, note: str = "") -> None:
        """Append one measurement."""
        self.points.append(SeriesPoint(float(x), float(y), note))

    @property
    def xs(self) -> list[float]:
        """The x coordinates in order."""
        return [p.x for p in self.points]

    @property
    def ys(self) -> list[float]:
        """The y coordinates in order."""
        return [p.y for p in self.points]

    def y_at(self, x: float, *, tol: float = 1e-9) -> float:
        """The y value measured at ``x`` (exact match within ``tol``)."""
        for point in self.points:
            if abs(point.x - x) <= tol:
                return point.y
        raise KeyError(f"series {self.name!r} has no point at x={x!r}")


@dataclass
class ExperimentResult:
    """The reproduced artefact of one paper table/figure.

    Attributes
    ----------
    experiment_id:
        Short id, e.g. ``"table2"`` or ``"fig3a"``.
    title:
        The paper's caption.
    x_label, y_label:
        Axis labels of the figure (or column meanings for tables).
    series:
        The reproduced curves/rows.
    metadata:
        Workload parameters, seeds and scaling notes.
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        """Look up a series by its legend name."""
        for candidate in self.series:
            if candidate.name == name:
                return candidate
        raise KeyError(
            f"experiment {self.experiment_id!r} has no series {name!r}; "
            f"available: {[s.name for s in self.series]}"
        )

    def new_series(self, name: str) -> Series:
        """Create, register and return an empty series."""
        series = Series(name)
        self.series.append(series)
        return series

    def to_table(self, *, float_fmt: str = "{:.6g}") -> str:
        """Render the result as an aligned plain-text table.

        One row per x value, one column per series — the same information the
        paper's figure panel conveys.
        """
        xs: list[float] = []
        for series in self.series:
            for x in series.xs:
                if not any(abs(x - seen) <= 1e-12 for seen in xs):
                    xs.append(x)
        xs.sort()

        header = [self.x_label] + [s.name for s in self.series]
        rows: list[list[str]] = []
        for x in xs:
            row = [float_fmt.format(x)]
            for series in self.series:
                try:
                    row.append(float_fmt.format(series.y_at(x)))
                except KeyError:
                    row.append("-")
            rows.append(row)

        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items()))
            lines.append(f"[{meta}]")
        return "\n".join(lines)


def _scale_positions(values: list[float], width: int) -> list[int]:
    low, high = min(values), max(values)
    if high == low:
        return [0 for _ in values]
    return [round((v - low) / (high - low) * (width - 1)) for v in values]


def render_ascii_chart(
    result: "ExperimentResult",
    *,
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render an experiment's series as a terminal scatter chart.

    One symbol per series (`` *o+x#@%& ``), x positions min-max scaled to
    ``width`` columns and y positions to ``height`` rows.  ``log_y`` applies
    a log10 transform (used for the efficiency figures the paper plots on a
    log axis).  Intended for quick shape inspection in a terminal, not for
    publication graphics.

    >>> result = ExperimentResult("demo", "Demo", "x", "y")
    >>> series = result.new_series("a")
    >>> series.add(0, 1); series.add(1, 2)
    >>> "Demo" in render_ascii_chart(result)
    True
    """
    import math

    symbols = "*o+x#@%&"
    points: list[tuple[float, float, str]] = []
    for index, series in enumerate(result.series):
        symbol = symbols[index % len(symbols)]
        for point in series.points:
            y = point.y
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            points.append((point.x, y, symbol))
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    columns = _scale_positions(xs, width)
    rows = _scale_positions(ys, height)
    grid = [[" "] * width for _ in range(height)]
    for (x, y, symbol), col, row in zip(points, columns, rows):
        grid[height - 1 - row][col] = symbol
    y_high, y_low = max(ys), min(ys)
    axis_label = f"log10({result.y_label})" if log_y else result.y_label
    lines.append(f"{axis_label}  [{y_low:.4g} .. {y_high:.4g}]")
    for row_cells in grid:
        lines.append("|" + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(f" {result.x_label}  [{min(xs):.4g} .. {max(xs):.4g}]")
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={s.name}" for i, s in enumerate(result.series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def precision_recall(
    selected: Iterable[str], ground_truth: Sequence[str]
) -> tuple[float, float]:
    """Set precision and recall of a selected jury versus the optimum.

    Used by Figure 3(h): ``precision = |S ∩ T| / |S|`` and
    ``recall = |S ∩ T| / |T|`` over juror-id sets.  An empty ground truth
    yields (0, 0) by convention.

    >>> precision_recall(["a", "b"], ["b", "c"])
    (0.5, 0.5)
    """
    selected_set = set(selected)
    truth_set = set(ground_truth)
    if not selected_set or not truth_set:
        return (0.0, 0.0)
    overlap = len(selected_set & truth_set)
    return (overlap / len(selected_set), overlap / len(truth_set))
