"""Figure 3(i) — jury size versus budget on (simulated) Twitter data.

Same sweep as Figure 3(h); records the jury sizes selected by PayALG
(``-Pay``) and by the exact optimum (``-TRUE``) for both rankers.

Expected shape: sizes grow with the budget; PayALG's sizes track the
optimum's closely (identical for HITS in the paper, near-identical for
PageRank).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig3h import Fig3hConfig, paym_twitter_sweep

__all__ = ["Fig3iConfig", "run_fig3i"]

#: Figure 3(i) shares Figure 3(h)'s workload definition.
Fig3iConfig = Fig3hConfig


def run_fig3i(config: Fig3iConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(i): selected jury size vs budget."""
    cfg = config if config is not None else Fig3iConfig()
    records = paym_twitter_sweep(cfg)
    result = ExperimentResult(
        experiment_id="fig3i",
        title="Jury Size on Twitter Data",
        x_label="Budget B (fraction of M)",
        y_label="Size of Jury",
        metadata={
            "n_users": cfg.workload.n_users,
            "top_k": cfg.top_k,
            "seed": cfg.workload.seed,
        },
    )
    for label, rows in records.items():
        pay = result.new_series(f"{label}-Pay")
        true = result.new_series(f"{label}-TRUE")
        for row in rows:
            pay.add(row["fraction"], row["appx_size"], note=f"jer={row['appx_jer']:.3g}")
            true.add(row["fraction"], row["opt_size"], note=f"jer={row['opt_jer']:.3g}")
    return result
