"""Figure 3(f) — PayALG ("APPX") versus ground truth ("OPT") on JER.

Shares Figure 3(e)'s workload; see :mod:`repro.experiments.fig3e` for the
setup and the text/figure budget-range discrepancy.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig3e import Fig3eConfig, run_appx_vs_opt_sweep

__all__ = ["Fig3fConfig", "run_fig3f"]

#: Figure 3(f) shares Figure 3(e)'s workload definition.
Fig3fConfig = Fig3eConfig


def run_fig3f(config: Fig3fConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(f): APPX vs OPT on JER."""
    cfg = config if config is not None else Fig3fConfig()
    return run_appx_vs_opt_sweep(
        cfg,
        metric="jer",
        experiment_id="fig3f",
        title="APPX v.s. OPT on JER",
        y_label="JER",
    )
