"""Ablation — how tight is the Paley-Zygmund bound (and the classic upper
bounds) across population regimes?

The paper's pruning power (Lemma 2) depends on two things: *where* the bound
applies (gamma < 1, i.e. an expected wrong-majority) and *how close* it sits
to the true JER there.  This ablation sweeps the population mean error rate
and reports, for a fixed jury size, the exact JER next to the Paley-Zygmund
lower bound and the Markov/Cantelli/Hoeffding/Chernoff upper bounds —
quantifying the "applicability cliff" at mean 0.5 that drives the Figure
3(b)/(g) behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import (
    cantelli_upper_bound,
    chernoff_upper_bound,
    hoeffding_upper_bound,
    markov_upper_bound,
    paley_zygmund_lower_bound,
)
from repro.core.jer import jer_dp
from repro.experiments.common import ExperimentResult
from repro.synth.generators import generate_error_rates

__all__ = ["AblationBoundsConfig", "run_ablation_bounds"]


@dataclass(frozen=True)
class AblationBoundsConfig:
    """Knobs for the bound-tightness ablation."""

    jury_size: int = 101
    means: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9)
    spread: float = 0.05
    seed: int = 81

    @classmethod
    def small(cls) -> "AblationBoundsConfig":
        """Bench-scale: smaller jury, coarser grid."""
        return cls(jury_size=51, means=(0.2, 0.5, 0.6, 0.8))


def run_ablation_bounds(
    config: AblationBoundsConfig | None = None,
) -> ExperimentResult:
    """Sweep population mean and compare exact JER against every bound.

    Series: ``exact`` (the JER), ``pz-lower`` (Lemma 2; absent where
    inapplicable), and the four upper bounds.
    """
    cfg = config if config is not None else AblationBoundsConfig()
    result = ExperimentResult(
        experiment_id="ablation-bounds",
        title="Bound tightness vs population mean error rate",
        x_label="Mean of Individual Error Rate",
        y_label="Probability",
        metadata={"jury_size": cfg.jury_size, "spread": cfg.spread, "seed": cfg.seed},
    )
    exact = result.new_series("exact")
    pz = result.new_series("pz-lower")
    markov = result.new_series("markov-upper")
    cantelli = result.new_series("cantelli-upper")
    hoeffding = result.new_series("hoeffding-upper")
    chernoff = result.new_series("chernoff-upper")

    rng = np.random.default_rng(cfg.seed)
    for mean in cfg.means:
        eps = generate_error_rates(cfg.jury_size, float(mean), cfg.spread**2, rng)
        exact.add(mean, jer_dp(eps))
        bound = paley_zygmund_lower_bound(eps)
        if bound is not None:
            pz.add(mean, bound)
        markov.add(mean, markov_upper_bound(eps))
        cantelli.add(mean, cantelli_upper_bound(eps))
        hoeffding.add(mean, hoeffding_upper_bound(eps))
        chernoff.add(mean, chernoff_upper_bound(eps))
    return result
