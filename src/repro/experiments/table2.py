"""Table 2 — error rates of the motivating example (paper Section 1).

Recomputes the JER of every crowd listed in Table 2 over the Figure 1 cast
(A..G with error rates 0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4) and reports both
the exact value and the figure the paper printed.  Two of the paper's
entries are roundings/misprints, flagged in the output:

* {A..E}: exact 0.07036, printed 0.0703 (table) / 0.0704 (text);
* {A..G}: exact 0.085248, printed 0.0805 (table) / 0.085 (text).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.jer import jury_error_rate
from repro.experiments.common import ExperimentResult

__all__ = ["Table2Config", "TABLE2_ROWS", "run_table2"]

#: The Figure 1 cast: juror label -> individual error rate.
FIGURE1_CAST: dict[str, float] = {
    "A": 0.1,
    "B": 0.2,
    "C": 0.2,
    "D": 0.3,
    "E": 0.3,
    "F": 0.4,
    "G": 0.4,
}

#: The crowds of Table 2 with the JER value the paper printed.
TABLE2_ROWS: list[tuple[tuple[str, ...], float]] = [
    (("C",), 0.2),
    (("A",), 0.1),
    (("C", "D", "E"), 0.174),
    (("A", "B", "C"), 0.072),
    (("A", "B", "C", "D", "E"), 0.0703),
    (("A", "B", "C", "D", "E", "F", "G"), 0.0805),
    (("A", "B", "C", "F", "G"), 0.104),
]


@dataclass(frozen=True)
class Table2Config:
    """Configuration for the Table 2 reproduction (exists for uniformity)."""

    jer_method: str = "dp"

    @classmethod
    def small(cls) -> "Table2Config":
        """Bench-scale config (Table 2 is tiny; identical to the default)."""
        return cls()


def run_table2(config: Table2Config | None = None) -> ExperimentResult:
    """Reproduce paper Table 2.

    Returns an :class:`~repro.experiments.common.ExperimentResult` with two
    series — ``reproduced`` (our exact JERs) and ``paper`` (the printed
    values) — indexed by row number, plus per-row notes naming the crowd.

    >>> result = run_table2()
    >>> round(result.series_named("reproduced").points[2].y, 3)
    0.174
    """
    cfg = config if config is not None else Table2Config()
    result = ExperimentResult(
        experiment_id="table2",
        title="Error-rate of Example in Figure 1",
        x_label="row",
        y_label="Jury Error Rate",
        metadata={"jer_method": cfg.jer_method},
    )
    reproduced = result.new_series("reproduced")
    printed = result.new_series("paper")
    for row_number, (crowd, paper_value) in enumerate(TABLE2_ROWS, start=1):
        eps = [FIGURE1_CAST[label] for label in crowd]
        value = jury_error_rate(eps, method=cfg.jer_method)
        reproduced.add(row_number, value, note=",".join(crowd))
        printed.add(row_number, paper_value, note=",".join(crowd))
    return result
