"""Paper-evaluation reproduction harness (Section 5, Table 2 + Figure 3a-i).

One module per artefact; every module exposes a ``Config`` dataclass (paper
defaults plus a bench-scale ``small()``) and a ``run_*`` function returning
an :class:`~repro.experiments.common.ExperimentResult`.  The
``repro-experiments`` console script (see :mod:`repro.experiments.runner`)
prints the reproduced series.
"""

from repro.experiments.ablation_adaptive import (
    AblationAdaptiveConfig,
    run_ablation_adaptive,
)
from repro.experiments.ablation_bounds import AblationBoundsConfig, run_ablation_bounds
from repro.experiments.ablation_weighted import (
    AblationWeightedConfig,
    run_ablation_weighted,
)
from repro.experiments.common import ExperimentResult, Series, precision_recall
from repro.experiments.fig3a import Fig3aConfig, run_fig3a
from repro.experiments.fig3b import Fig3bConfig, run_fig3b
from repro.experiments.fig3c import Fig3cConfig, run_fig3c
from repro.experiments.fig3d import Fig3dConfig, run_fig3d
from repro.experiments.fig3e import Fig3eConfig, run_fig3e
from repro.experiments.fig3f import Fig3fConfig, run_fig3f
from repro.experiments.fig3g import Fig3gConfig, run_fig3g
from repro.experiments.fig3h import Fig3hConfig, run_fig3h
from repro.experiments.fig3i import Fig3iConfig, run_fig3i
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.twitter_data import (
    TwitterWorkload,
    TwitterWorkloadConfig,
    build_twitter_workload,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "precision_recall",
    "run_table2",
    "Table2Config",
    "run_fig3a",
    "Fig3aConfig",
    "run_fig3b",
    "Fig3bConfig",
    "run_fig3c",
    "Fig3cConfig",
    "run_fig3d",
    "Fig3dConfig",
    "run_fig3e",
    "Fig3eConfig",
    "run_fig3f",
    "Fig3fConfig",
    "run_fig3g",
    "Fig3gConfig",
    "run_fig3h",
    "Fig3hConfig",
    "run_fig3i",
    "Fig3iConfig",
    "TwitterWorkload",
    "TwitterWorkloadConfig",
    "build_twitter_workload",
    "EXPERIMENTS",
    "run_experiment",
    "AblationBoundsConfig",
    "run_ablation_bounds",
    "AblationWeightedConfig",
    "run_ablation_weighted",
    "AblationAdaptiveConfig",
    "run_ablation_adaptive",
]
