"""Figure 3(g) — AltrALG efficiency on (simulated) Twitter data.

Paper setup (Section 5.2.1): candidate sets of 1,000..5,000 users estimated
from the Twitter sample via HITS (``HT``) and PageRank (``PR``), normalised
with alpha = beta = 10; AltrALG timed with (``-B``) and without the Lemma 2
lower-bound enhancement; y axis is the logarithm of time cost.

Expected shape: after the Section 4.1.3 normalisation a large share of users
sits at error rates near 1, so sorted prefixes cross the gamma < 1 threshold
and the bound prunes aggressively — the ``-B`` series runs faster at scale,
more so for the ranker whose score distribution pushes more users to the
extremes (PageRank in the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.selection.altr import select_jury_altr
from repro.experiments.common import ExperimentResult
from repro.experiments.twitter_data import TwitterWorkloadConfig, build_twitter_workload

__all__ = ["Fig3gConfig", "run_fig3g"]


@dataclass(frozen=True)
class Fig3gConfig:
    """Knobs for Figure 3(g)."""

    workload: TwitterWorkloadConfig = TwitterWorkloadConfig()
    candidate_counts: tuple[int, ...] = (1000, 2000, 3000)
    jer_method: str = "cba"

    @classmethod
    def small(cls) -> "Fig3gConfig":
        """Bench-scale: 600 simulated users, top 200/400 candidates."""
        return cls(
            workload=TwitterWorkloadConfig.small(),
            candidate_counts=(200, 400),
        )


def run_fig3g(config: Fig3gConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(g): AltrALG time on HITS/PageRank candidate sets.

    Series names follow the paper's legend: ``HT``, ``HT-B``, ``PR``,
    ``PR-B`` (``-B`` = with lower-bound pruning).
    """
    cfg = config if config is not None else Fig3gConfig()
    workload = build_twitter_workload(cfg.workload)
    result = ExperimentResult(
        experiment_id="fig3g",
        title="Efficiency of JSP on Twitter Data",
        x_label="Number of Candidate Jurors",
        y_label="Time Cost (seconds)",
        metadata={
            "n_users": cfg.workload.n_users,
            "seed": cfg.workload.seed,
            "jer_method": cfg.jer_method,
        },
    )
    labels = {"hits": "HT", "pagerank": "PR"}
    for ranking, label in labels.items():
        pool = list(workload.candidates(ranking))
        plain = result.new_series(label)
        bounded = result.new_series(f"{label}-B")
        for count in cfg.candidate_counts:
            candidates = pool[: min(count, len(pool))]
            start = time.perf_counter()
            select_jury_altr(
                candidates,
                strategy="per-jury",
                jer_method=cfg.jer_method,
                use_bound=False,
            )
            plain.add(count, time.perf_counter() - start)

            start = time.perf_counter()
            bounded_run = select_jury_altr(
                candidates,
                strategy="per-jury",
                jer_method=cfg.jer_method,
                use_bound=True,
            )
            bounded.add(
                count,
                time.perf_counter() - start,
                note=f"pruned={bounded_run.stats.pruned_by_bound}",
            )
    return result
