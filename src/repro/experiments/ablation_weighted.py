"""Ablation — what does plain Majority Voting leave on the table?

The paper aggregates with unweighted Majority Voting (Definition 3).  With
known error rates the Nitzan-Paroush weighted rule is optimal; the gap
between the two grows with the *heterogeneity* of the jury (for identical
jurors the rules coincide).  This ablation sweeps the error-rate spread at a
fixed mean and reports both error rates — motivating weighted voting as the
natural extension of the paper's scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.jer import jer_dp
from repro.core.weighted import weighted_jury_error_rate
from repro.experiments.common import ExperimentResult
from repro.synth.generators import generate_error_rates

__all__ = ["AblationWeightedConfig", "run_ablation_weighted"]


@dataclass(frozen=True)
class AblationWeightedConfig:
    """Knobs for the majority-vs-weighted ablation."""

    jury_size: int = 15
    mean: float = 0.3
    spreads: tuple[float, ...] = (0.0, 0.05, 0.1, 0.15, 0.2)
    seed: int = 82

    @classmethod
    def small(cls) -> "AblationWeightedConfig":
        """Bench-scale: 9 jurors, three spreads."""
        return cls(jury_size=9, spreads=(0.0, 0.1, 0.2))


def run_ablation_weighted(
    config: AblationWeightedConfig | None = None,
) -> ExperimentResult:
    """Sweep jury heterogeneity; report majority vs optimal-weighted error.

    Series: ``majority`` (the paper's MV JER) and ``weighted`` (Nitzan-
    Paroush WJER).  The weighted rule never loses, and its edge widens with
    the spread.
    """
    cfg = config if config is not None else AblationWeightedConfig()
    result = ExperimentResult(
        experiment_id="ablation-weighted",
        title="Majority vs optimally-weighted voting",
        x_label="Error-rate spread (sigma)",
        y_label="Group error probability",
        metadata={"jury_size": cfg.jury_size, "mean": cfg.mean, "seed": cfg.seed},
    )
    majority = result.new_series("majority")
    weighted = result.new_series("weighted")
    rng = np.random.default_rng(cfg.seed)
    for spread in cfg.spreads:
        if spread == 0.0:
            eps = np.full(cfg.jury_size, cfg.mean)
        else:
            eps = generate_error_rates(
                cfg.jury_size, cfg.mean, float(spread) ** 2, rng
            )
        majority.add(spread, jer_dp(eps))
        weighted.add(spread, weighted_jury_error_rate(eps))
    return result
