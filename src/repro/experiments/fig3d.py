"""Figure 3(d) — budget versus JER of the selected jury (PayM).

Same workload as Figure 3(c); records the JER of the PayALG jury instead of
its cost.  Expected shape (the paper's reading): "a raising budget can
improve jury quality by reducing JER, and a candidate set with lower
individual error-rates forms a better jury within the same budget" — i.e.
every series is non-increasing in B and the series are vertically ordered by
population mean.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig3c import Fig3cConfig, run_paym_budget_sweep

__all__ = ["Fig3dConfig", "run_fig3d"]

#: Figure 3(d) shares Figure 3(c)'s workload definition.
Fig3dConfig = Fig3cConfig


def run_fig3d(config: Fig3dConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(d): budget vs JER."""
    cfg = config if config is not None else Fig3dConfig()
    return run_paym_budget_sweep(
        cfg,
        metric="jer",
        experiment_id="fig3d",
        title="Budget v.s. JER",
        y_label="JER",
    )
