"""Run-all entry point for the paper-reproduction experiments.

Installed as the ``repro-experiments`` console script:

    repro-experiments                 # run everything at bench scale
    repro-experiments --scale paper   # paper-scale parameters (slow)
    repro-experiments table2 fig3a    # selected experiments only

Every selection an experiment performs executes through the plan layer
(:mod:`repro.plan`): the scalar selectors the figure modules call are thin
wrappers over ``plan_query() -> execute_plan()``, so the timings reported
here measure the same physical operators the batch engine and the
``repro-select`` CLI run.  The ``ablation-planner`` experiment probes the
cost model itself (planned vs forced exact operators).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable, Sequence

from repro.experiments.ablation_adaptive import (
    AblationAdaptiveConfig,
    run_ablation_adaptive,
)
from repro.experiments.ablation_bounds import (
    AblationBoundsConfig,
    run_ablation_bounds,
)
from repro.experiments.ablation_planner import (
    AblationPlannerConfig,
    run_ablation_planner,
)
from repro.experiments.ablation_weighted import (
    AblationWeightedConfig,
    run_ablation_weighted,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.fig3a import Fig3aConfig, run_fig3a
from repro.experiments.fig3b import Fig3bConfig, run_fig3b
from repro.experiments.fig3c import Fig3cConfig, run_fig3c
from repro.experiments.fig3d import run_fig3d
from repro.experiments.fig3e import Fig3eConfig, run_fig3e
from repro.experiments.fig3f import run_fig3f
from repro.experiments.fig3g import Fig3gConfig, run_fig3g
from repro.experiments.fig3h import Fig3hConfig, run_fig3h
from repro.experiments.fig3i import run_fig3i
from repro.experiments.table2 import Table2Config, run_table2

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: experiment id -> (paper-scale runner, bench-scale runner)
EXPERIMENTS: dict[str, tuple[Callable[[], ExperimentResult], Callable[[], ExperimentResult]]] = {
    "table2": (lambda: run_table2(), lambda: run_table2(Table2Config.small())),
    "fig3a": (lambda: run_fig3a(), lambda: run_fig3a(Fig3aConfig.small())),
    "fig3b": (lambda: run_fig3b(), lambda: run_fig3b(Fig3bConfig.small())),
    "fig3c": (lambda: run_fig3c(), lambda: run_fig3c(Fig3cConfig.small())),
    "fig3d": (lambda: run_fig3d(), lambda: run_fig3d(Fig3cConfig.small())),
    "fig3e": (lambda: run_fig3e(), lambda: run_fig3e(Fig3eConfig.small())),
    "fig3f": (lambda: run_fig3f(), lambda: run_fig3f(Fig3eConfig.small())),
    "fig3g": (lambda: run_fig3g(), lambda: run_fig3g(Fig3gConfig.small())),
    "fig3h": (lambda: run_fig3h(), lambda: run_fig3h(Fig3hConfig.small())),
    "fig3i": (lambda: run_fig3i(), lambda: run_fig3i(Fig3hConfig.small())),
    # Ablations beyond the paper's figures (DESIGN.md, "extensions").
    "ablation-bounds": (
        lambda: run_ablation_bounds(),
        lambda: run_ablation_bounds(AblationBoundsConfig.small()),
    ),
    "ablation-weighted": (
        lambda: run_ablation_weighted(),
        lambda: run_ablation_weighted(AblationWeightedConfig.small()),
    ),
    "ablation-adaptive": (
        lambda: run_ablation_adaptive(),
        lambda: run_ablation_adaptive(AblationAdaptiveConfig.small()),
    ),
    "ablation-planner": (
        lambda: run_ablation_planner(),
        lambda: run_ablation_planner(AblationPlannerConfig.small()),
    ),
}


def run_experiment(experiment_id: str, *, scale: str = "small") -> ExperimentResult:
    """Run one experiment by id at the requested scale.

    Parameters
    ----------
    experiment_id:
        One of :data:`EXPERIMENTS`.
    scale:
        ``"small"`` (bench defaults) or ``"paper"`` (the paper's parameters).
    """
    try:
        paper_runner, small_runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    if scale == "paper":
        return paper_runner()
    if scale == "small":
        return small_runner()
    raise ValueError(f"scale must be 'small' or 'paper', got {scale!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; prints each experiment's table to stdout."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Cao et al., VLDB 2012.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="workload scale: 'small' finishes in minutes, 'paper' mirrors "
        "the paper's parameters (default: small)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render an ASCII chart of each figure",
    )
    args = parser.parse_args(argv)

    chosen = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in chosen if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; available: {sorted(EXPERIMENTS)}")

    for experiment_id in chosen:
        start = time.perf_counter()
        result = run_experiment(experiment_id, scale=args.scale)
        elapsed = time.perf_counter() - start
        print(result.to_table())
        if args.chart:
            from repro.experiments.common import render_ascii_chart

            print(render_ascii_chart(result))
        print(f"[completed in {elapsed:.2f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
