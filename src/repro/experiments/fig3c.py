"""Figure 3(c) — budget versus total cost of the selected jury (PayM).

Paper setup (Section 5.1.2): 1,000 candidates; requirements normal
(mean 0.5, variance 0.2); budgets 0.1..0.5; legends ``m(0.3)..m(0.6)``
denote the *mean error rate* of the candidate population (the running text
and the legend disagree — we follow the legend, see DESIGN.md).

Expected shape: total cost grows with the budget and saturates below it;
error-prone populations (mean > 0.5) concentrate spending on fewer, pricier
jurors (the Section 5.1.1 "hands of the few" effect resurfacing under PayM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection.pay import select_jury_pay
from repro.errors import InfeasibleSelectionError
from repro.experiments.common import ExperimentResult
from repro.synth.generators import generate_workload

__all__ = ["Fig3cConfig", "run_fig3c", "run_paym_budget_sweep"]


@dataclass(frozen=True)
class Fig3cConfig:
    """Workload knobs shared by Figures 3(c) and 3(d)."""

    n_candidates: int = 1000
    eps_means: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6)
    #: Error-rate sigma 0.1 and requirement sigma 0.2 (the paper's "variance
    #: 0.05 / 0.2" figures read as scales; see EXPERIMENTS.md) keep the
    #: budget binding across the whole 0.1..0.5 sweep instead of saturating
    #: on boundary-clipped free experts.
    eps_variance: float = 0.01
    req_mean: float = 0.5
    req_variance: float = 0.04
    budgets: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    seed: int = 33

    @classmethod
    def small(cls) -> "Fig3cConfig":
        """Bench-scale: 200 candidates, two populations."""
        return cls(n_candidates=200, eps_means=(0.3, 0.6))


def run_paym_budget_sweep(
    cfg: Fig3cConfig,
    *,
    metric: str,
    experiment_id: str,
    title: str,
    y_label: str,
) -> ExperimentResult:
    """Shared sweep behind Figures 3(c) and 3(d).

    Runs PayALG for every (population mean, budget) pair and records either
    the selected jury's total cost (``metric="cost"``) or its JER
    (``metric="jer"``).
    """
    if metric not in ("cost", "jer"):
        raise ValueError(f"metric must be 'cost' or 'jer', got {metric!r}")
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="Budget B",
        y_label=y_label,
        metadata={
            "n_candidates": cfg.n_candidates,
            "req_mean": cfg.req_mean,
            "req_variance": cfg.req_variance,
            "seed": cfg.seed,
        },
    )
    rng = np.random.default_rng(cfg.seed)
    for mean in cfg.eps_means:
        workload = generate_workload(
            cfg.n_candidates,
            eps_mean=float(mean),
            eps_variance=cfg.eps_variance,
            req_mean=cfg.req_mean,
            req_variance=cfg.req_variance,
            rng=rng,
        )
        candidates = list(workload.jurors)
        series = result.new_series(f"m({mean:g})")
        for budget in cfg.budgets:
            try:
                selection = select_jury_pay(candidates, budget=budget)
            except InfeasibleSelectionError:
                continue
            value = selection.total_cost if metric == "cost" else selection.jer
            series.add(budget, value, note=f"size={selection.size}")
    return result


def run_fig3c(config: Fig3cConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(c): budget vs total cost of the selected jury."""
    cfg = config if config is not None else Fig3cConfig()
    return run_paym_budget_sweep(
        cfg,
        metric="cost",
        experiment_id="fig3c",
        title="Budget v.s. Total Cost",
        y_label="Total Cost of Selected Jury",
    )
