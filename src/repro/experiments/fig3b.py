"""Figure 3(b) — efficiency of AltrALG with and without bound pruning.

Paper setup (Section 5.1.1): candidate counts 2,000..6,000, error rates
normal with mean 0.1 (legend ``m(0.1)``/``m(0.2)`` — the running text and
legend disagree on whether the second parameter is a mean or a variance; we
sweep the *mean* per the legend, with a fixed variance), timing AltrALG with
(``-b`` suffix, Lemma 2 pruning enabled) and without the lower-bound check.

Reproduction note (recorded in EXPERIMENTS.md): the Paley-Zygmund bound only
applies when the expected number of wrong jurors exceeds the majority
threshold (gamma < 1), i.e. when the sorted prefix's *average* error rate
exceeds 0.5.  For candidate populations with mean 0.1-0.2 that never
happens, so the bound can only add overhead in this synthetic setting — the
speedup the paper draws is reproducible on the real-data experiment (Figure
3(g), PageRank series) where the normalised error rates do cross 0.5.  We
therefore include an additional error-prone population, ``m(0.6)``, which
demonstrates the pruning payoff within the same figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.selection.altr import select_jury_altr
from repro.experiments.common import ExperimentResult
from repro.synth.generators import generate_workload

__all__ = ["Fig3bConfig", "run_fig3b"]


@dataclass(frozen=True)
class Fig3bConfig:
    """Workload knobs for Figure 3(b)."""

    sizes: tuple[int, ...] = (2000, 3000, 4000, 5000, 6000)
    means: tuple[float, ...] = (0.1, 0.2, 0.6)
    #: Normal scale (sigma) of the error rates; see the Fig3aConfig note on
    #: the paper's variance-vs-sigma ambiguity.
    spread: float = 0.1
    seed: int = 32
    jer_method: str = "cba"

    @classmethod
    def small(cls) -> "Fig3bConfig":
        """Bench-scale: N up to 1,000."""
        return cls(sizes=(250, 500, 1000), means=(0.1, 0.6))


def run_fig3b(config: Fig3bConfig | None = None) -> ExperimentResult:
    """Reproduce Figure 3(b): AltrALG running time vs candidate count.

    Series ``m(x)`` times the plain per-jury AltrALG on a mean-``x``
    population; ``m(x,b)`` times the same sweep with Lemma 2 lower-bound
    pruning enabled.
    """
    cfg = config if config is not None else Fig3bConfig()
    result = ExperimentResult(
        experiment_id="fig3b",
        title="Efficiency of JSP on AltrM",
        x_label="Number of Candidate Jurors",
        y_label="Time Cost (seconds)",
        metadata={
            "spread": cfg.spread,
            "seed": cfg.seed,
            "jer_method": cfg.jer_method,
        },
    )
    rng = np.random.default_rng(cfg.seed)
    for mean in cfg.means:
        plain = result.new_series(f"m({mean:g})")
        bounded = result.new_series(f"m({mean:g},b)")
        for n in cfg.sizes:
            workload = generate_workload(
                n, eps_mean=float(mean), eps_variance=cfg.spread**2, rng=rng
            )
            candidates = list(workload.jurors)

            start = time.perf_counter()
            unbounded_run = select_jury_altr(
                candidates,
                strategy="per-jury",
                jer_method=cfg.jer_method,
                use_bound=False,
            )
            plain.add(n, time.perf_counter() - start)

            start = time.perf_counter()
            bounded_run = select_jury_altr(
                candidates,
                strategy="per-jury",
                jer_method=cfg.jer_method,
                use_bound=True,
            )
            bounded.add(
                n,
                time.perf_counter() - start,
                note=f"pruned={bounded_run.stats.pruned_by_bound}",
            )
            # Pruning must never change the answer.
            assert abs(bounded_run.jer - unbounded_run.jer) < 1e-9
    return result
