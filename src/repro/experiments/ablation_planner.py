"""Ablation — does the planner's cost model pick the right exact operator?

The plan layer (:mod:`repro.plan`) chooses between exhaustive enumeration
and branch and bound from the *budget-affordable* candidate count.  This
ablation sweeps the candidate count across the enumeration crossover and
times three executions of the identical query:

* ``planned`` — ``plan_query() -> execute_plan()`` with ``method="auto"``
  (the cost model decides);
* ``enumerate`` — the enumeration operator forced;
* ``branch-and-bound`` — the branch-and-bound operator forced.

All three must return the same jury (asserted); the planned curve should
track the lower envelope of the two forced curves, which is exactly the
claim the cost model makes.  Each point's note records the operator the
planner picked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.plan import execute_plan, plan_query
from repro.synth.generators import generate_workload

__all__ = ["AblationPlannerConfig", "run_ablation_planner"]


@dataclass(frozen=True)
class AblationPlannerConfig:
    """Knobs for the planner cost-model ablation."""

    candidate_counts: tuple[int, ...] = (8, 10, 12, 14, 16, 18)
    budget: float = 1.5
    eps_mean: float = 0.3
    eps_variance: float = 0.01
    req_mean: float = 0.3
    req_variance: float = 0.02
    repeats: int = 3
    seed: int = 97

    @classmethod
    def small(cls) -> "AblationPlannerConfig":
        """Bench-scale: straddle the crossover with single timings."""
        return cls(candidate_counts=(8, 12, 16), repeats=1)


def _timed(func) -> tuple[float, object]:
    start = time.perf_counter()
    value = func()
    return time.perf_counter() - start, value


def run_ablation_planner(
    config: AblationPlannerConfig | None = None,
) -> ExperimentResult:
    """Time planned vs forced exact operators on identical queries.

    Series: ``planned``, ``enumerate``, ``branch-and-bound`` — seconds per
    query (best of ``repeats``).  Selections are asserted identical across
    the three paths, so the curves measure pure operator cost.
    """
    cfg = config if config is not None else AblationPlannerConfig()
    result = ExperimentResult(
        experiment_id="ablation-planner",
        title="Planner cost model: exact-operator choice vs candidate count",
        x_label="Number of Candidates",
        y_label="Seconds per query",
        metadata={"budget": cfg.budget, "repeats": cfg.repeats, "seed": cfg.seed},
    )
    planned = result.new_series("planned")
    enum_series = result.new_series("enumerate")
    bb_series = result.new_series("branch-and-bound")

    rng = np.random.default_rng(cfg.seed)
    for n in cfg.candidate_counts:
        workload = generate_workload(
            n,
            eps_mean=cfg.eps_mean,
            eps_variance=cfg.eps_variance,
            req_mean=cfg.req_mean,
            req_variance=cfg.req_variance,
            rng=rng,
        )
        candidates = tuple(workload.jurors)
        timings: dict[str, float] = {}
        outcomes: dict[str, tuple[tuple[str, ...], float]] = {}
        chosen_operator = ""
        for label, method in (
            ("planned", "auto"),
            ("enumerate", "enumerate"),
            ("branch-and-bound", "branch-and-bound"),
        ):
            if label == "enumerate" and n > 20:
                continue
            best = float("inf")
            for _ in range(max(1, cfg.repeats)):
                plan = plan_query(
                    candidates=candidates,
                    model="exact",
                    budget=cfg.budget,
                    method=method,
                    task_id=f"planner-{n}",
                )
                elapsed, selection = _timed(lambda: execute_plan(plan))
                best = min(best, elapsed)
                outcomes[label] = (tuple(sorted(selection.juror_ids)), selection.jer)
                if label == "planned":
                    chosen_operator = plan.operator
            timings[label] = best
        reference = outcomes["planned"]
        for label, outcome in outcomes.items():
            assert outcome[0] == reference[0], (
                f"{label} selected {outcome[0]} but planned path selected "
                f"{reference[0]} at n={n}"
            )
        planned.add(n, timings["planned"], note=chosen_operator)
        if "enumerate" in timings:
            enum_series.add(n, timings["enumerate"])
        bb_series.add(n, timings["branch-and-bound"])
    return result
