"""Shared constants for the test and benchmark suites.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` import their seeds
and tolerances from here so that the oracle tolerances used to cross-check
the JER/pmf backends can never drift apart between the two suites.

The constants are intentionally small in number; add a new one only when a
value genuinely needs to be shared across suites.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_SEED",
    "ORACLE_ATOL",
    "PMF_ATOL",
    "DECONV_ATOL",
    "KERNEL_EQUIVALENCE_ULPS",
    "BENCH_SEED",
]

#: Deterministic RNG seed for reproducible tests (VLDB 2012 started Aug 27).
DEFAULT_SEED = 20120827

#: Absolute tolerance when asserting ``jer_naive == jer_dp == jer_cba`` and
#: other exact-backend agreement (the backends are exact up to round-off).
ORACLE_ATOL = 1e-12

#: Absolute tolerance for pmf-vector comparisons, slightly looser because FFT
#: convolution accumulates more round-off than the sequential DP.
PMF_ATOL = 1e-10

#: Absolute tolerance for pmfs maintained through convolve/deconvolve delta
#: sequences (IncrementalJury, the core/jer batch delta kernels) when
#: compared against a from-scratch rebuild.  Deconvolution near eps = 0.5
#: amplifies pre-existing round-off by up to ~2n per removal, so this bound
#: only holds for removal chains kept short — IncrementalJury enforces that
#: by rebuilding from its member list every REBUILD_AFTER_REMOVALS removals,
#: which keeps adversarial chains below ~1e-12 with a wide safety margin.
DECONV_ATOL = 1e-8

#: Permitted ULP divergence between kernel backends (numpy vs numba vs
#: native): **zero**.  The compiled kernels replicate NumPy's pairwise
#: summation and ufunc evaluation order exactly, and a backend that fails
#: the bitwise activation self-check (:mod:`repro.core.kernels._verify`) is
#: deactivated rather than tolerated — so cross-backend tests assert
#: bit-identity, not closeness.
KERNEL_EQUIVALENCE_ULPS = 0

#: Seed for synthetic benchmark workloads, offset from the test seed so that
#: benchmarks never accidentally share fixtures with the unit tests.
BENCH_SEED = DEFAULT_SEED + 1
