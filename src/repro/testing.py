"""Shared constants for the test and benchmark suites.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` import their seeds
and tolerances from here so that the oracle tolerances used to cross-check
the JER/pmf backends can never drift apart between the two suites.

The constants are intentionally small in number; add a new one only when a
value genuinely needs to be shared across suites.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_SEED",
    "ORACLE_ATOL",
    "PMF_ATOL",
    "DECONV_ATOL",
    "BENCH_SEED",
]

#: Deterministic RNG seed for reproducible tests (VLDB 2012 started Aug 27).
DEFAULT_SEED = 20120827

#: Absolute tolerance when asserting ``jer_naive == jer_dp == jer_cba`` and
#: other exact-backend agreement (the backends are exact up to round-off).
ORACLE_ATOL = 1e-12

#: Absolute tolerance for pmf-vector comparisons, slightly looser because FFT
#: convolution accumulates more round-off than the sequential DP.
PMF_ATOL = 1e-10

#: Absolute tolerance for pmfs maintained through convolve/deconvolve delta
#: sequences (IncrementalJury, the core/jer batch delta kernels) when
#: compared against a from-scratch rebuild.  Deconvolution near eps = 0.5
#: amplifies pre-existing round-off by up to ~2n per removal, so this bound
#: only holds for removal chains kept short — IncrementalJury enforces that
#: by rebuilding from its member list every REBUILD_AFTER_REMOVALS removals,
#: which keeps adversarial chains below ~1e-12 with a wide safety margin.
DECONV_ATOL = 1e-8

#: Seed for synthetic benchmark workloads, offset from the test seed so that
#: benchmarks never accidentally share fixtures with the unit tests.
BENCH_SEED = DEFAULT_SEED + 1
