"""Synthetic workload generators matching paper Section 5.1.

The paper's synthetic experiments draw individual error rates and payment
requirements from normal distributions with a grid of means and variances
("we generate 1,000 candidate jurors, whose individual error rates follow a
normal distribution with mean values varying from 0.1 to 0.9, and variance
values from 0.1 to 0.3").  Raw normal samples can fall outside the legal
domains — error rates must lie in the open interval (0, 1) and requirements
must be non-negative — so samples are clipped, the standard reading of such
setups.

Note the paper specifies *variances*; NumPy's ``normal`` takes a standard
deviation, hence the ``sqrt`` below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.juror import Juror
from repro.errors import SimulationError

__all__ = [
    "generate_error_rates",
    "generate_requirements",
    "SyntheticWorkload",
    "generate_workload",
]

#: Clip keeping synthetic error rates inside the open interval (0, 1).
_EPS_CLIP = 1e-3


def generate_error_rates(
    n: int,
    mean: float,
    variance: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``n`` individual error rates from ``N(mean, variance)``.

    Samples are clipped into ``[1e-3, 1 - 1e-3]`` to respect Definition 4's
    open-interval requirement.

    >>> eps = generate_error_rates(100, 0.2, 0.05, np.random.default_rng(0))
    >>> bool((eps > 0).all() and (eps < 1).all())
    True
    """
    if n < 1:
        raise SimulationError(f"n must be positive, got {n!r}")
    if variance < 0.0:
        raise SimulationError(f"variance must be non-negative, got {variance!r}")
    generator = rng if rng is not None else np.random.default_rng()
    samples = generator.normal(mean, np.sqrt(variance), size=n)
    return np.clip(samples, _EPS_CLIP, 1.0 - _EPS_CLIP)


def generate_requirements(
    n: int,
    mean: float,
    variance: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``n`` payment requirements from ``N(mean, variance)``.

    Negative samples are clipped to 0 (Definition 8 requires ``r_i >= 0``).
    """
    if n < 1:
        raise SimulationError(f"n must be positive, got {n!r}")
    if variance < 0.0:
        raise SimulationError(f"variance must be non-negative, got {variance!r}")
    generator = rng if rng is not None else np.random.default_rng()
    samples = generator.normal(mean, np.sqrt(variance), size=n)
    return np.clip(samples, 0.0, None)


@dataclass(frozen=True)
class SyntheticWorkload:
    """A generated candidate set plus the parameters that produced it.

    Attributes
    ----------
    jurors:
        The candidate jurors.
    eps_mean, eps_variance:
        Parameters of the error-rate distribution.
    req_mean, req_variance:
        Parameters of the requirement distribution (both 0 under AltrM).
    seed:
        Seed used (None when an external rng was supplied).
    """

    jurors: tuple[Juror, ...]
    eps_mean: float
    eps_variance: float
    req_mean: float
    req_variance: float
    seed: int | None

    @property
    def size(self) -> int:
        """Number of candidates."""
        return len(self.jurors)

    def error_rates(self) -> np.ndarray:
        """Vector of candidate error rates."""
        return np.array([j.error_rate for j in self.jurors])

    def requirements(self) -> np.ndarray:
        """Vector of candidate requirements."""
        return np.array([j.requirement for j in self.jurors])


def generate_workload(
    n: int,
    *,
    eps_mean: float,
    eps_variance: float,
    req_mean: float = 0.0,
    req_variance: float = 0.0,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    id_prefix: str = "s",
) -> SyntheticWorkload:
    """Generate a Section 5.1-style synthetic candidate set.

    Parameters
    ----------
    n:
        Candidate count (the paper uses 1,000 for trait studies and up to
        6,000 for efficiency studies).
    eps_mean, eps_variance:
        Error-rate normal parameters.
    req_mean, req_variance:
        Requirement normal parameters; both 0 yields altruistic candidates.
    seed:
        Convenience seed (ignored when ``rng`` is given).
    rng:
        External generator for callers managing their own streams.
    id_prefix:
        Prefix of generated juror ids.

    >>> wl = generate_workload(10, eps_mean=0.2, eps_variance=0.05, seed=1)
    >>> wl.size
    10
    """
    generator = rng if rng is not None else np.random.default_rng(seed)
    eps = generate_error_rates(n, eps_mean, eps_variance, generator)
    if req_mean == 0.0 and req_variance == 0.0:
        reqs = np.zeros(n)
    else:
        reqs = generate_requirements(n, req_mean, req_variance, generator)
    jurors = tuple(
        Juror(float(e), float(r), juror_id=f"{id_prefix}{i + 1}")
        for i, (e, r) in enumerate(zip(eps, reqs))
    )
    return SyntheticWorkload(
        jurors=jurors,
        eps_mean=eps_mean,
        eps_variance=eps_variance,
        req_mean=req_mean,
        req_variance=req_variance,
        seed=seed if rng is None else None,
    )
