"""Synthetic workload generators for the Section 5.1 experiments."""

from repro.synth.generators import (
    SyntheticWorkload,
    generate_error_rates,
    generate_requirements,
    generate_workload,
)

__all__ = [
    "generate_error_rates",
    "generate_requirements",
    "SyntheticWorkload",
    "generate_workload",
]
