"""Wire protocol v1: typed, versioned request/response dataclasses.

One protocol for every surface.  The library, the ``repro-select`` CLI modes
(``single``/``explain``/``batch``/``serve``) and any future socket transport
all speak the same three shapes:

:class:`SelectionRequest`
    "Whom should we ask for this task?" — candidates inline or a registry
    pool by name, the selection model, and the knobs the planner accepts.
:class:`SelectionResponse`
    The answer: the selected jury, its JER/cost, per-response timings, an
    optional embedded physical plan (the EXPLAIN surface), or a structured
    :class:`ErrorInfo` when the request failed.
:class:`PoolCommand`
    A registry mutation: ``create`` / ``update`` / ``drop`` of a live pool.

Every shape round-trips losslessly through ``to_dict()`` / ``from_dict()``
and stamps the stable wire tag ``"v": 1`` (:data:`PROTOCOL_VERSION`) on its
serialized form.  ``from_dict`` performs *located* validation: malformed
payloads raise :class:`~repro.errors.ProtocolError` whose message carries
the caller-supplied ``where`` (``file:line``) and whose ``detail`` mapping
preserves the position machine-readably (field name, array index), so
transports never re-implement their own parsers.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.api.codes import error_code
from repro.core.juror import Juror
from repro.core.selection.base import SelectionResult
from repro.errors import ProtocolError
from repro.plan import normalize_model

__all__ = [
    "PROTOCOL_VERSION",
    "ErrorInfo",
    "SelectionRequest",
    "SelectionResponse",
    "PoolCommand",
]

#: Stable wire tag stamped on every serialized protocol object.  Bump only
#: on a breaking change to the shapes below; additive fields do not count.
PROTOCOL_VERSION = 1

_VARIANTS = ("paper", "improved")
_METHODS = ("auto", "enumerate", "branch-and-bound")
_POOL_ACTIONS = ("create", "update", "drop")


def _located(message: str, where: str, **positions: object) -> ProtocolError:
    """A :class:`ProtocolError` with the position mirrored into ``detail``."""
    detail: dict = {"where": where}
    detail.update({k: v for k, v in positions.items() if v is not None})
    return ProtocolError(f"{where}: {message}", detail=detail)


def _encode_juror(juror: Juror) -> dict:
    return {
        "id": juror.juror_id,
        "error_rate": juror.error_rate,
        "requirement": juror.requirement,
    }


def _decode_candidates(
    value: object, where: str, *, field_name: str = "candidates"
) -> tuple[Juror, ...]:
    """Parse a JSON candidate array into jurors, with located errors."""
    if not isinstance(value, list) or not value:
        raise _located(
            f"'{field_name}' must be a non-empty array", where, field=field_name
        )
    jurors: list[Juror] = []
    for position, entry in enumerate(value):
        if not isinstance(entry, Mapping):
            raise _located(
                f"candidate #{position} must be an object, "
                f"got {type(entry).__name__}",
                where,
                field=field_name,
                position=position,
            )
        try:
            jurors.append(
                Juror(
                    float(entry["error_rate"]),
                    float(entry.get("requirement", 0.0)),
                    juror_id=str(entry["id"]),
                )
            )
        except KeyError as exc:
            raise _located(
                f"candidate #{position} is missing field {exc}",
                where,
                field=field_name,
                position=position,
            ) from exc
        except (TypeError, ValueError) as exc:
            raise _located(
                f"candidate #{position}: {exc}",
                where,
                field=field_name,
                position=position,
            ) from exc
    return tuple(jurors)


# ----------------------------------------------------------------------
# ErrorInfo
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorInfo:
    """A structured, wire-stable error: code + message (+ position detail).

    ``code`` comes from the registry in :mod:`repro.api.codes` and is the
    machine-readable half of the contract; ``message`` is human-readable and
    may be rephrased between releases.  ``detail``, when present, locates
    the failure (``where``/``field``/``position`` from protocol parsing).
    """

    code: str
    message: str
    detail: Mapping | None = None

    @classmethod
    def from_exception(cls, exc: BaseException, *, where: str | None = None) -> "ErrorInfo":
        """Map an exception to its stable code, preserving parser detail."""
        detail = getattr(exc, "detail", None)
        if where is not None and not (detail and "where" in detail):
            detail = {**(detail or {}), "where": where}
        return cls(code=error_code(exc), message=str(exc), detail=detail)

    def to_dict(self) -> dict:
        payload: dict = {"code": self.code, "message": self.message}
        if self.detail is not None:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, obj: Mapping) -> "ErrorInfo":
        return cls(
            code=str(obj["code"]),
            message=str(obj["message"]),
            detail=dict(obj["detail"]) if "detail" in obj else None,
        )


# ----------------------------------------------------------------------
# SelectionRequest
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelectionRequest:
    """One "whom should we ask?" request (wire protocol v1).

    Exactly one candidate source must be given: inline ``candidates`` or a
    registry ``pool`` name.  ``explain=True`` asks for the physical plan
    instead of an executed selection (the response carries ``plan`` and no
    members).  Construction canonicalises the payload — the model string is
    parsed through the plan layer's single parser, numbers are coerced — so
    ``from_dict(request.to_dict()) == request`` holds for every valid
    request.
    """

    task_id: str = "task"
    candidates: tuple[Juror, ...] | None = None
    pool: str | None = None
    model: str = "altr"
    budget: float | None = None
    max_size: int | None = None
    variant: str = "paper"
    method: str = "auto"
    explain: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "task_id", str(self.task_id))
        if self.candidates is not None:
            members = tuple(self.candidates)
            if not members:
                raise ValueError("'candidates' must be a non-empty array")
            if not all(isinstance(j, Juror) for j in members):
                raise ValueError("all candidates must be Juror instances")
            object.__setattr__(self, "candidates", members)
        if self.pool is not None and (
            not isinstance(self.pool, str) or not self.pool
        ):
            raise ValueError(f"'pool' must be a non-empty string, got {self.pool!r}")
        if (self.candidates is None) == (self.pool is None):
            raise ValueError(
                "give either 'pool' or 'candidates', not both"
                if self.candidates is not None
                else "request needs a 'pool' reference or inline 'candidates'"
            )
        object.__setattr__(self, "model", normalize_model(self.model))
        if self.budget is not None:
            object.__setattr__(self, "budget", float(self.budget))
        if self.max_size is not None:
            object.__setattr__(self, "max_size", int(self.max_size))
        if self.model == "pay" and self.budget is None:
            raise ValueError("model 'pay' requires a budget")
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected 'paper' or 'improved'"
            )
        if self.method not in _METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; expected 'auto', 'enumerate' "
                "or 'branch-and-bound'"
            )
        object.__setattr__(self, "explain", bool(self.explain))

    def to_dict(self) -> dict:
        """Wire form; stable under ``from_dict`` round trips."""
        payload: dict = {"v": PROTOCOL_VERSION, "task": self.task_id}
        if self.pool is not None:
            payload["pool"] = self.pool
        else:
            payload["candidates"] = [_encode_juror(j) for j in self.candidates]
        payload["model"] = self.model
        if self.budget is not None:
            payload["budget"] = self.budget
        if self.max_size is not None:
            payload["max_size"] = self.max_size
        payload["variant"] = self.variant
        payload["method"] = self.method
        if self.explain:
            payload["explain"] = True
        return payload

    @classmethod
    def from_dict(cls, obj: Mapping, *, where: str = "<request>") -> "SelectionRequest":
        """Parse one wire request, raising located :class:`ProtocolError`.

        This is the single request parser behind every transport: the batch
        JSONL query rows, the serve-session ``select`` commands, and the CSV
        single-query mode all build their requests here.
        """
        if not isinstance(obj, Mapping):
            raise _located(
                f"request must be a JSON object, got {type(obj).__name__}", where
            )
        candidates: tuple[Juror, ...] | None = None
        pool: str | None = None
        if "pool" in obj and "candidates" in obj:
            raise _located("give either 'pool' or 'candidates', not both", where)
        if "pool" in obj:
            pool = str(obj["pool"])
        elif "candidates" in obj:
            candidates = _decode_candidates(obj["candidates"], where)
        else:
            raise _located(
                "request needs a 'pool' reference or inline 'candidates'", where
            )
        budget = obj.get("budget")
        max_size = obj.get("max_size")
        try:
            return cls(
                task_id=str(obj.get("task", "task")),
                candidates=candidates,
                pool=pool,
                model=obj.get("model", "altr"),
                budget=None if budget is None else float(budget),
                max_size=None if max_size is None else int(max_size),
                variant=str(obj.get("variant", "paper")),
                method=str(obj.get("method", "auto")),
                explain=bool(obj.get("explain", False)),
            )
        except (TypeError, ValueError) as exc:
            detail = getattr(exc, "detail", None)
            if detail is not None:  # already a located ProtocolError
                raise
            raise _located(str(exc), where) from exc


# ----------------------------------------------------------------------
# SelectionResponse
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelectionResponse:
    """The service's answer to one :class:`SelectionRequest`.

    ``status`` is ``"ok"`` or ``"error"``.  Ok responses carry the selection
    (or, for explain requests, the embedded ``plan`` and no members); error
    responses carry a structured :class:`ErrorInfo`.  ``elapsed_seconds`` is
    the per-response execution timing, serialized under ``"timings"`` so the
    envelope can grow more phases without a version bump.
    """

    task_id: str
    status: str
    model: str | None = None
    algorithm: str | None = None
    jer: float | None = None
    size: int | None = None
    total_cost: float | None = None
    budget: float | None = None
    members: tuple[Juror, ...] = ()
    pool_version: int | None = None
    plan: Mapping | None = None
    error: ErrorInfo | None = None
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in ("ok", "error"):
            raise ValueError(f"status must be 'ok' or 'error', got {self.status!r}")
        if (self.status == "error") != (self.error is not None):
            raise ValueError("error responses carry ErrorInfo; ok responses do not")
        object.__setattr__(self, "members", tuple(self.members))

    @property
    def ok(self) -> bool:
        """True when the request produced a selection (or a plan)."""
        return self.status == "ok"

    @classmethod
    def from_result(
        cls,
        task_id: str,
        result: SelectionResult,
        *,
        elapsed_seconds: float = 0.0,
        pool_version: int | None = None,
    ) -> "SelectionResponse":
        """Wrap an executed :class:`SelectionResult`."""
        return cls(
            task_id=task_id,
            status="ok",
            model=result.model,
            algorithm=result.algorithm,
            jer=result.jer,
            size=result.size,
            total_cost=result.total_cost,
            budget=result.budget,
            members=tuple(result.jury),
            pool_version=pool_version,
            elapsed_seconds=elapsed_seconds,
        )

    @classmethod
    def from_plan(
        cls,
        task_id: str,
        plan: Mapping,
        *,
        pool_version: int | None = None,
        elapsed_seconds: float = 0.0,
    ) -> "SelectionResponse":
        """Wrap an EXPLAIN answer (a ``SelectionPlan.describe()`` mapping)."""
        return cls(
            task_id=task_id,
            status="ok",
            plan=dict(plan),
            pool_version=pool_version,
            elapsed_seconds=elapsed_seconds,
        )

    @classmethod
    def from_error(
        cls,
        task_id: str,
        error: ErrorInfo,
        *,
        elapsed_seconds: float = 0.0,
    ) -> "SelectionResponse":
        """Wrap a failure as a structured error response."""
        return cls(
            task_id=task_id,
            status="error",
            error=error,
            elapsed_seconds=elapsed_seconds,
        )

    def summary(self) -> str:
        """One-line human-readable description (the CLI text rendering)."""
        if self.status == "error":
            return f"error[{self.error.code}]: {self.error.message}"
        if self.plan is not None:
            return f"plan[{self.plan.get('operator')}]: task={self.task_id}"
        budget_txt = f", budget={self.budget:g}" if self.budget is not None else ""
        return (
            f"{self.algorithm}[{self.model}{budget_txt}]: size={self.size}, "
            f"JER={self.jer:.6g}, cost={self.total_cost:.6g}"
        )

    def to_dict(self) -> dict:
        """Wire form; stable under ``from_dict`` round trips."""
        payload: dict = {
            "v": PROTOCOL_VERSION,
            "task": self.task_id,
            "status": self.status,
        }
        if self.status == "error":
            payload["error"] = self.error.to_dict()
        elif self.plan is not None:
            payload["plan"] = dict(self.plan)
        else:
            payload.update(
                model=self.model,
                algorithm=self.algorithm,
                jer=self.jer,
                size=self.size,
                total_cost=self.total_cost,
                budget=self.budget,
                members=[_encode_juror(j) for j in self.members],
            )
        if self.pool_version is not None:
            payload["pool_version"] = self.pool_version
        payload["timings"] = {"elapsed_seconds": self.elapsed_seconds}
        return payload

    @classmethod
    def from_dict(cls, obj: Mapping, *, where: str = "<response>") -> "SelectionResponse":
        """Parse one wire response (the client half of the protocol)."""
        if not isinstance(obj, Mapping):
            raise _located(
                f"response must be a JSON object, got {type(obj).__name__}", where
            )
        timings = obj.get("timings") or {}
        try:
            return cls(
                task_id=str(obj.get("task", "task")),
                status=str(obj.get("status", "")),
                model=obj.get("model"),
                algorithm=obj.get("algorithm"),
                jer=obj.get("jer"),
                size=obj.get("size"),
                total_cost=obj.get("total_cost"),
                budget=obj.get("budget"),
                members=_decode_candidates(obj["members"], where, field_name="members")
                if obj.get("members")
                else (),
                pool_version=obj.get("pool_version"),
                plan=dict(obj["plan"]) if "plan" in obj else None,
                error=ErrorInfo.from_dict(obj["error"]) if "error" in obj else None,
                elapsed_seconds=float(timings.get("elapsed_seconds", 0.0)),
            )
        except (TypeError, ValueError, KeyError) as exc:
            detail = getattr(exc, "detail", None)
            if detail is not None:
                raise
            raise _located(str(exc), where) from exc


# ----------------------------------------------------------------------
# PoolCommand
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoolCommand:
    """A registry mutation: create, update or drop a live pool.

    ``updates`` holds the ``"set"`` entries as ``(juror_id, error_rate,
    requirement)`` triples where ``None`` means "keep the current value";
    the fill happens at apply time against the pool's live state, so the
    command itself stays a pure value object.
    """

    action: str
    name: str
    candidates: tuple[Juror, ...] | None = None
    add: tuple[Juror, ...] = ()
    remove: tuple[str, ...] = ()
    updates: tuple[tuple[str, float | None, float | None], ...] = ()
    replace: bool = False

    def __post_init__(self) -> None:
        if self.action not in _POOL_ACTIONS:
            raise ValueError(
                f"pool action must be 'create', 'update' or 'drop', "
                f"got {self.action!r}"
            )
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("pool command needs a non-empty 'name'")
        if self.candidates is not None:
            object.__setattr__(self, "candidates", tuple(self.candidates))
        if self.action == "create" and not self.candidates:
            raise ValueError("pool create needs 'candidates'")
        object.__setattr__(self, "add", tuple(self.add))
        object.__setattr__(self, "remove", tuple(str(r) for r in self.remove))
        object.__setattr__(
            self,
            "updates",
            tuple(
                (
                    str(juror_id),
                    None if eps is None else float(eps),
                    None if req is None else float(req),
                )
                for juror_id, eps, req in self.updates
            ),
        )
        object.__setattr__(self, "replace", bool(self.replace))

    def to_dict(self) -> dict:
        """Wire form; stable under ``from_dict`` round trips."""
        payload: dict = {
            "v": PROTOCOL_VERSION,
            "cmd": "pool",
            "action": self.action,
            "name": self.name,
        }
        if self.candidates is not None:
            payload["candidates"] = [_encode_juror(j) for j in self.candidates]
        if self.replace:
            payload["replace"] = True
        if self.add:
            payload["add"] = [_encode_juror(j) for j in self.add]
        if self.remove:
            payload["remove"] = list(self.remove)
        if self.updates:
            payload["set"] = [
                {"id": juror_id}
                | ({} if eps is None else {"error_rate": eps})
                | ({} if req is None else {"requirement": req})
                for juror_id, eps, req in self.updates
            ]
        return payload

    @classmethod
    def from_dict(cls, obj: Mapping, *, where: str = "<pool>") -> "PoolCommand":
        """Parse one wire pool command, raising located errors."""
        if not isinstance(obj, Mapping):
            raise _located(
                f"pool command must be a JSON object, got {type(obj).__name__}",
                where,
            )
        action = obj.get("action")
        if action not in _POOL_ACTIONS:
            raise _located(
                f"pool action must be 'create', 'update' or 'drop', "
                f"got {action!r}",
                where,
                field="action",
            )
        name = str(obj.get("name") or "")
        if not name:
            raise _located(
                "pool command needs a non-empty 'name'", where, field="name"
            )
        candidates = None
        if action == "create":
            if "candidates" not in obj:
                raise _located(
                    "pool create needs 'candidates'", where, field="candidates"
                )
            candidates = _decode_candidates(obj["candidates"], where)
        removes = obj.get("remove", [])
        adds = obj.get("add", [])
        sets = obj.get("set", [])
        for field_name, value in (("remove", removes), ("add", adds), ("set", sets)):
            if not isinstance(value, list):
                raise _located(
                    f"'{field_name}' must be an array, got {type(value).__name__}",
                    where,
                    field=field_name,
                )
        updates: list[tuple[str, float | None, float | None]] = []
        for position, entry in enumerate(sets):
            if not isinstance(entry, Mapping) or "id" not in entry:
                raise _located(
                    f"set entry #{position} must be an object with an 'id'",
                    where,
                    field="set",
                    position=position,
                )
            try:
                eps = entry.get("error_rate")
                req = entry.get("requirement")
                updates.append(
                    (
                        str(entry["id"]),
                        None if eps is None else float(eps),
                        None if req is None else float(req),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise _located(
                    f"set entry #{position}: {exc}",
                    where,
                    field="set",
                    position=position,
                ) from exc
        return cls(
            action=str(action),
            name=name,
            candidates=candidates,
            add=_decode_candidates(adds, where, field_name="add") if adds else (),
            remove=tuple(str(r) for r in removes),
            updates=tuple(updates),
            replace=bool(obj.get("replace", False)),
        )
