"""HTTP serving tier: wire protocol v1 over plain asyncio sockets.

The ROADMAP's north star is a service millions of users can actually hit,
and until now the only long-lived surface was a JSONL stdin/stdout session.
:class:`HttpServer` is the network transport on top of
:class:`~repro.api.AsyncJuryService`: a small, dependency-free HTTP/1.1
server built on :func:`asyncio.start_server` that multiplexes every
connection into the existing coalescing drainer — concurrent HTTP clients
get exactly the batch-kernel throughput the async façade already provides,
and exactly the bit-identical answers (the transport changes nothing about
*what* runs, only how requests arrive).

Endpoints (all bodies are JSON; protocol shapes from :mod:`repro.api`):

``POST /v1/select``
    One :class:`~repro.api.SelectionRequest` wire object in, one
    :class:`~repro.api.SelectionResponse` wire object out.  Domain failures
    (infeasible budget, unknown pool, …) come back as HTTP 200 with a
    ``status: "error"`` envelope — the RPC itself succeeded; malformed
    payloads are HTTP 400 with a structured ``error`` body.
``POST /v1/select_many``
    ``{"requests": [...]}`` in, ``{"v": 1, "responses": [...]}`` out, input
    order preserved.  The batch rides the same coalescing queue.
``POST /v1/pool``
    One :class:`~repro.api.PoolCommand` wire object; answers the registry
    acknowledgement.  Unknown pools are 404, invalid commands 400.
``GET /v1/stats``
    The service's lock-free counter snapshot plus transport counters —
    never waits on the engine lock, so it stays answerable during a long
    exact-enumeration batch.  Surfaces every cache tier: the prefix-sweep
    cache, the planner's memoised choice, and the answer frontier's
    hit/miss/build/repair/rebuild lifecycle (``frontier`` +
    ``engine.frontier_hits``).  The ``scheduler`` block reports the shard
    scheduling policy (``cost``/``hash``) with per-shard assigned cost,
    busy seconds, steals, split sub-payloads and the realized
    ``assigned_cost_skew``, so load balance is observable over HTTP.
``GET /healthz``
    Pure liveness: counters only, no engine, no locks, no threads.

**Backpressure.**  Two bounds, both returning structured HTTP 503
(``error.code == "overloaded"``) instead of queueing unboundedly: at most
``max_connections`` simultaneous connections are served, and a selection
arriving while the service's pending queue (``max_pending``) is full is
shed rather than suspended.

**Graceful shutdown.**  :meth:`HttpServer.aclose` (the SIGTERM path of the
``repro-select http`` CLI) stops accepting, closes idle keep-alive
connections, lets every in-flight request finish, drains the service
through :meth:`AsyncJuryService.aclose`, and reaps any worker shard
processes — no orphaned workers, no abandoned futures.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import Mapping

from repro.api.aio import AsyncJuryService
from repro.api.protocol import (
    ErrorInfo,
    PoolCommand,
    PROTOCOL_VERSION,
    SelectionRequest,
)
from repro.errors import (
    OverloadedError,
    PoolNotFoundError,
    ProtocolError,
    ReproError,
    ServiceClosedError,
)

__all__ = ["HttpServer", "http_call"]

#: Default bound on simultaneously served connections; further clients get
#: an immediate structured 503 instead of growing an unbounded accept queue.
DEFAULT_MAX_CONNECTIONS = 512

#: Default cap on one request body (a 1M-candidate inline pool is ~60 MB of
#: JSON; anything bigger belongs in the registry, not on every request).
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """A transport-level failure with its HTTP status and wire error body."""

    def __init__(self, status: int, info: ErrorInfo) -> None:
        super().__init__(info.message)
        self.status = status
        self.info = info


def _error_payload(info: ErrorInfo) -> dict:
    """The structured error envelope every failure body carries."""
    return {"v": PROTOCOL_VERSION, "status": "error", "error": info.to_dict()}


async def http_call(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: Mapping | None = None,
) -> tuple[int, dict]:
    """One HTTP/1.1 JSON request over an open client connection.

    The client half of the protocol, shared by the tests, the load
    benchmark and the quickstart example; the connection stays usable for
    the next call (keep-alive).  Returns ``(status, decoded_body)``.
    """
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: repro\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("connection closed inside response headers")
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    raw = await reader.readexactly(length) if length else b""
    return status, (json.loads(raw) if raw else {})


class HttpServer:
    """Asyncio HTTP transport over an :class:`AsyncJuryService`.

    Parameters
    ----------
    service:
        The async service to serve; one is built from ``service_options``
        (forwarded to :class:`AsyncJuryService`) if omitted.
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port; read it back
        from :attr:`port` after :meth:`start`.
    max_connections:
        Simultaneous-connection bound; beyond it new connections receive an
        immediate structured 503 and are closed.
    max_body_bytes:
        Largest accepted request body (413 beyond it).
    **service_options:
        Forwarded to :class:`AsyncJuryService` when no service is given —
        ``max_batch``, ``max_pending``, ``workers``, ``cache_size``.

    Examples
    --------
    >>> import asyncio
    >>> from repro.api.server import HttpServer, http_call
    >>> async def demo():
    ...     async with HttpServer(port=0) as server:
    ...         reader, writer = await asyncio.open_connection(
    ...             server.host, server.port)
    ...         status, body = await http_call(reader, writer, "GET", "/healthz")
    ...         writer.close()
    ...         return status, body["ok"]
    >>> asyncio.run(demo())
    (200, True)
    """

    def __init__(
        self,
        service: AsyncJuryService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        **service_options,
    ) -> None:
        if service is not None and service_options:
            raise ValueError("pass either a service or service options, not both")
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        self._service = (
            service if service is not None else AsyncJuryService(**service_options)
        )
        self._bind_host = host
        self._bind_port = port
        self._max_connections = max_connections
        self._max_body_bytes = max_body_bytes
        self._server: asyncio.Server | None = None
        self._host: str | None = None
        self._port: int | None = None
        self._closing = False
        self._closed = False
        #: Live connection records: handler task -> {"writer", "busy"}.
        self._connections: dict[asyncio.Task, dict] = {}
        self._requests_served = 0
        self._rejected = 0
        self._routes: dict[str, tuple[str, object]] = {
            "/v1/select": ("POST", self._route_select),
            "/v1/select_many": ("POST", self._route_select_many),
            "/v1/pool": ("POST", self._route_pool),
            "/v1/stats": ("GET", self._route_stats),
            "/healthz": ("GET", self._route_healthz),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "HttpServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`aclose` (or task cancellation) stops us."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            if not self._closing:
                raise

    async def aclose(self) -> None:
        """Graceful shutdown: drain in-flight work, reap every resource.

        Stops accepting, closes idle keep-alive connections, waits for
        in-flight requests to answer, then drains and closes the wrapped
        service (which reaps any worker shard processes).  Idempotent.
        """
        if self._closed:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections are parked on readline(); closing the
        # transport EOFs them out of the loop.  Busy ones finish their
        # in-flight response first — their handler exits because _closing.
        for record in list(self._connections.values()):
            if not record["busy"]:
                record["writer"].close()
        if self._connections:
            await asyncio.gather(
                *self._connections.keys(), return_exceptions=True
            )
        await self._service.aclose()
        self._closed = True

    async def __aenter__(self) -> "HttpServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def service(self) -> AsyncJuryService:
        """The wrapped async service."""
        return self._service

    @property
    def host(self) -> str:
        """Bound host (after :meth:`start`)."""
        assert self._host is not None, "call start() first"
        return self._host

    @property
    def port(self) -> int:
        """Bound port (after :meth:`start`; useful with ``port=0``)."""
        assert self._port is not None, "call start() first"
        return self._port

    @property
    def address(self) -> str:
        """``http://host:port`` of the bound listener."""
        return f"http://{self.host}:{self.port}"

    @property
    def connections(self) -> int:
        """Currently served connections."""
        return len(self._connections)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closing or len(self._connections) >= self._max_connections:
            self._rejected += 1
            try:
                await self._write_response(
                    writer,
                    503,
                    _error_payload(
                        ErrorInfo(
                            code="overloaded",
                            message=(
                                "server draining"
                                if self._closing
                                else f"connection limit {self._max_connections} reached"
                            ),
                        )
                    ),
                    keep_alive=False,
                )
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
            return
        task = asyncio.current_task()
        assert task is not None
        record = {"writer": writer, "busy": False}
        self._connections[task] = record
        try:
            while True:
                record["busy"] = False
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    record["busy"] = True
                    await self._write_response(
                        writer, exc.status, _error_payload(exc.info), keep_alive=False
                    )
                    break
                if request is None:  # client EOF / disconnect
                    break
                record["busy"] = True
                method, path, headers, body = request
                status, payload = await self._dispatch(method, path, body)
                self._requests_served += 1
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self._closing
                )
                await self._write_response(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes] | None:
        """Parse one request; ``None`` on clean disconnect, 4xx via _HttpError."""

        def bad(message: str, status: int = 400) -> _HttpError:
            return _HttpError(status, ErrorInfo(code="bad-request", message=message))

        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise bad("request line too long") from exc
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise bad("malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None  # disconnect inside headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise bad(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise bad("too many header lines", status=431)
        if "transfer-encoding" in headers:
            raise bad("chunked request bodies are not supported", status=501)
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise bad("invalid Content-Length") from None
        if length > self._max_body_bytes:
            raise bad(
                f"request body of {length} bytes exceeds the "
                f"{self._max_body_bytes}-byte limit",
                status=413,
            )
        try:
            body = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping,
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # dispatch + routes
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Route one request; every failure becomes a structured error body."""
        route = self._routes.get(path.split("?", 1)[0])
        if route is None:
            return 404, _error_payload(
                ErrorInfo(code="not-found", message=f"no route {path!r}")
            )
        allowed, handler = route
        if method != allowed:
            return 405, _error_payload(
                ErrorInfo(
                    code="bad-request",
                    message=f"{path} expects {allowed}, got {method}",
                )
            )
        try:
            return await handler(body)
        except _HttpError as exc:
            return exc.status, _error_payload(exc.info)
        except (ServiceClosedError, OverloadedError) as exc:
            return 503, _error_payload(ErrorInfo.from_exception(exc))
        except PoolNotFoundError as exc:
            return 404, _error_payload(ErrorInfo.from_exception(exc))
        except (ProtocolError, ReproError, TypeError, ValueError) as exc:
            return 400, _error_payload(ErrorInfo.from_exception(exc))
        except Exception as exc:  # noqa: BLE001 — the 500 of last resort
            return 500, _error_payload(ErrorInfo.from_exception(exc))

    def _json_body(self, body: bytes, where: str) -> Mapping:
        if not body:
            raise ProtocolError(
                f"{where}: request needs a JSON object body",
                detail={"where": where},
            )
        try:
            obj = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(
                400,
                ErrorInfo(
                    code="invalid-json",
                    message=f"{where}: invalid JSON: {exc.msg}",
                    detail={"where": where},
                ),
            ) from exc
        if not isinstance(obj, Mapping):
            raise ProtocolError(
                f"{where}: request body must be a JSON object, "
                f"got {type(obj).__name__}",
                detail={"where": where},
            )
        return obj

    def _shed_if_saturated(self) -> None:
        """The pending-queue half of backpressure: shed instead of suspend."""
        if self._service.saturated:
            raise OverloadedError(
                "pending queue full "
                f"(max_pending={self._service._max_pending}); retry later"
            )

    async def _route_select(self, body: bytes) -> tuple[int, dict]:
        obj = self._json_body(body, "POST /v1/select")
        request = SelectionRequest.from_dict(obj, where="POST /v1/select")
        self._shed_if_saturated()
        response = await self._service.select(request)
        return 200, response.to_dict()

    async def _route_select_many(self, body: bytes) -> tuple[int, dict]:
        where = "POST /v1/select_many"
        obj = self._json_body(body, where)
        rows = obj.get("requests")
        if not isinstance(rows, list) or not rows:
            raise ProtocolError(
                f"{where}: 'requests' must be a non-empty array",
                detail={"where": where, "field": "requests"},
            )
        requests = [
            SelectionRequest.from_dict(row, where=f"{where}[{position}]")
            for position, row in enumerate(rows)
        ]
        self._shed_if_saturated()
        responses = await self._service.select_many(requests)
        return 200, {
            "v": PROTOCOL_VERSION,
            "responses": [response.to_dict() for response in responses],
        }

    async def _route_pool(self, body: bytes) -> tuple[int, dict]:
        obj = self._json_body(body, "POST /v1/pool")
        command = PoolCommand.from_dict(obj, where="POST /v1/pool")
        return 200, await self._service.pool(command)

    async def _route_stats(self, body: bytes) -> tuple[int, dict]:
        snapshot = self._service.stats_snapshot()
        snapshot["server"] = {
            "connections": len(self._connections),
            "max_connections": self._max_connections,
            "requests_served": self._requests_served,
            "rejected": self._rejected,
            "draining": self._closing,
        }
        return 200, snapshot

    async def _route_healthz(self, body: bytes) -> tuple[int, dict]:
        # Counters only: no engine, no locks, no thread hops — a liveness
        # probe must answer even while a long batch owns the engine.
        return 200, {
            "v": PROTOCOL_VERSION,
            "ok": not self._closing,
            "status": "draining" if self._closing else "serving",
            "queued": self._service.queued,
            "connections": len(self._connections),
        }
