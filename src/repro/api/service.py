"""``JuryService`` — the one dispatch path behind every surface.

The service owns a :class:`~repro.service.registry.PoolRegistry` of live
pools and a :class:`~repro.service.batch.BatchSelectionEngine`, and speaks
the typed protocol of :mod:`repro.api.protocol`: requests in, responses out,
pool commands applied atomically.  The CLI modes (``single``/``explain``/
``batch``/``serve``), the examples, and library callers all dispatch through
it — there is no second parser and no second encoder anywhere in the repo.

Domain failures never escape :meth:`JuryService.select` /
:meth:`~JuryService.select_many`: they come back as ``status="error"``
responses carrying a structured :class:`~repro.api.protocol.ErrorInfo`
(stable code + message), which is what a service answering thousands of
independent tasks needs — one bad request must not poison its batch.  Pool
commands, being imperative registry mutations, raise instead.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable

from repro.api.protocol import (
    ErrorInfo,
    PoolCommand,
    PROTOCOL_VERSION,
    SelectionRequest,
    SelectionResponse,
)
from repro.core import kernels
from repro.core.juror import Juror
from repro.errors import InvalidJuryError, ReproError
from repro.plan import planner_cache_info
from repro.service.batch import BatchSelectionEngine, SelectionQuery
from repro.service.registry import LivePool, PoolRegistry

__all__ = ["JuryService"]


def _workers_from_env() -> int | None:
    """Shard-count default from ``REPRO_WORKERS`` (unset/invalid -> None)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError:
        return None
    return workers if workers > 1 else None


def _data_dir_from_env() -> str | None:
    """Durable-catalog default from ``REPRO_DATA_DIR`` (unset/blank -> None)."""
    raw = os.environ.get("REPRO_DATA_DIR", "").strip()
    return raw or None


class JuryService:
    """Typed request/response façade over the batch engine and registry.

    Parameters
    ----------
    registry:
        The live-pool namespace ``pool``-referencing requests resolve
        against.  A fresh one is created when omitted.
    engine:
        Advanced: adopt an existing :class:`BatchSelectionEngine`.  It must
        have been constructed with a registry (which becomes the service's
        registry); mutually exclusive with ``cache_size``/
        ``frontier_size``/``workers``.
    cache_size:
        Prefix-sweep cache capacity for the internally built engine.
    frontier_size:
        Answer-frontier cache capacity for the internally built engine;
        ``0`` disables the frontier (every query runs the oracle
        plan→operator path).  When omitted, the ``REPRO_FRONTIER_CACHE``
        environment flag decides (enabled by default) — which is how CI
        pins the no-cache oracle path across the whole suite.
    workers:
        Shard count for the internally built engine: ``> 1`` fans every
        query model out across that many worker processes partitioned by
        pool fingerprint (see :class:`~repro.service.shard.ShardedExecutor`).
        When omitted, the ``REPRO_WORKERS`` environment variable supplies
        the default — which is how CI exercises the sharded path across the
        whole suite — and an unset variable means in-process execution.
    max_workers:
        Deprecated alias for ``workers`` (the PR 1 knob that parallelised
        exact queries only; it now shards every model).
    data_dir:
        Directory for a durable :class:`~repro.storage.PoolCatalog`.  The
        service builds (and **owns** — :meth:`close` closes it) a catalog
        there and binds a catalog-backed registry: every pool command is
        WAL-logged, pools are lazily recovered on first access, and
        ``stats()`` gains a ``catalog`` block.  When omitted — and no
        explicit ``registry``/``engine``/``catalog`` was passed — the
        ``REPRO_DATA_DIR`` environment variable supplies the default, which
        is how CI runs the whole suite durably.
    catalog:
        Advanced: adopt an existing :class:`~repro.storage.PoolCatalog`
        instead of building one from ``data_dir``.  The caller keeps
        ownership (:meth:`close` flushes but does not close it).
    scheduler:
        Shard scheduling policy for the internally built engine: ``"cost"``
        (planner-costed bin-packing with query splitting and stealing) or
        ``"hash"`` (static fingerprint hashing, the oracle path).  When
        omitted, the ``REPRO_SCHEDULER`` environment variable decides
        (default ``cost``).  Selections are bit-identical under every
        policy.

    Examples
    --------
    >>> from repro.api import JuryService, SelectionRequest
    >>> from repro.core.juror import jurors_from_arrays
    >>> service = JuryService()
    >>> cands = tuple(jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3]))
    >>> response = service.select(SelectionRequest(task_id="t1", candidates=cands))
    >>> response.status, response.size, round(response.jer, 4)
    ('ok', 5, 0.0704)
    """

    def __init__(
        self,
        *,
        registry: PoolRegistry | None = None,
        engine: BatchSelectionEngine | None = None,
        cache_size: int | None = None,
        frontier_size: int | None = None,
        workers: int | None = None,
        max_workers: int | None = None,
        data_dir=None,
        catalog=None,
        scheduler: str | None = None,
    ) -> None:
        if workers is not None and max_workers is not None:
            raise ValueError("pass either workers or max_workers, not both")
        if max_workers is not None:
            workers = max_workers
        if data_dir is not None and catalog is not None:
            raise ValueError("pass either data_dir or catalog, not both")
        if registry is not None and (data_dir is not None or catalog is not None):
            raise ValueError(
                "pass either a registry or data_dir/catalog, not both"
            )
        self._catalog = None
        self._owns_catalog = False
        if engine is not None:
            if (
                cache_size is not None
                or frontier_size is not None
                or workers is not None
                or scheduler is not None
            ):
                raise ValueError(
                    "pass either an engine or cache_size/frontier_size/"
                    "workers/scheduler, not both"
                )
            if data_dir is not None or catalog is not None:
                raise ValueError(
                    "pass either an engine or data_dir/catalog, not both"
                )
            if engine.registry is None:
                raise ValueError(
                    "JuryService requires an engine constructed with a registry"
                )
            if registry is not None and engine.registry is not registry:
                raise ValueError("engine and registry arguments disagree")
            self._registry = engine.registry
            self._catalog = getattr(self._registry, "catalog", None)
            self._engine = engine
        else:
            if workers is None:
                workers = _workers_from_env()
            if (
                registry is None
                and catalog is None
                and data_dir is None
            ):
                data_dir = _data_dir_from_env()
            if data_dir is not None:
                from repro.storage import PoolCatalog

                catalog = PoolCatalog(data_dir)
                self._owns_catalog = True
            if registry is not None:
                self._registry = registry
                self._catalog = getattr(registry, "catalog", None)
            elif catalog is not None:
                self._registry = PoolRegistry(catalog=catalog)
                self._catalog = catalog
            else:
                self._registry = PoolRegistry()
            options: dict = {}
            if cache_size is not None:
                options["cache_size"] = cache_size
            if frontier_size is not None:
                options["frontier_size"] = frontier_size
            self._engine = BatchSelectionEngine(
                max_workers=workers,
                registry=self._registry,
                scheduler=scheduler,
                **options,
            )

    @property
    def engine(self) -> BatchSelectionEngine:
        """The underlying batch engine (inspectable in tests/ops)."""
        return self._engine

    @property
    def registry(self) -> PoolRegistry:
        """The live-pool namespace requests resolve against."""
        return self._registry

    @property
    def catalog(self):
        """The durable :class:`~repro.storage.PoolCatalog`, or ``None``."""
        return self._catalog

    def flush(self) -> None:
        """Fsync every resident pool's WAL, when catalog-backed.

        The drain path: the async tier and the HTTP server call this on
        graceful shutdown (``aclose()`` / SIGTERM) so every acknowledged
        mutation is on stable storage before the process exits.  A no-op
        without a catalog.
        """
        if self._catalog is not None and not self._catalog.closed:
            self._catalog.flush()

    def close(self) -> None:
        """Release the engine's worker shard processes and durable state.

        Every entry point that builds a service with ``workers > 1`` (or
        under ``REPRO_WORKERS``) must close it — the CLI modes do so in
        ``try/finally`` — or worker processes outlive the work.  A
        service-owned catalog (built from ``data_dir``/``REPRO_DATA_DIR``)
        is flushed and closed; an adopted one is only flushed, since the
        caller may still hold pools from it.  Idempotent; an in-process,
        in-memory service closes as a no-op.
        """
        self._engine.close()
        if self._catalog is not None and not self._catalog.closed:
            if self._owns_catalog:
                self._catalog.close()
            else:
                self._catalog.flush()

    # ------------------------------------------------------------------
    # selection dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def _to_query(request: SelectionRequest) -> SelectionQuery:
        """Lower a protocol request to the engine's native query type."""
        return SelectionQuery(
            task_id=request.task_id,
            candidates=request.candidates,
            pool_name=request.pool,
            model=request.model,
            budget=request.budget,
            max_size=request.max_size,
            variant=request.variant,
            method=request.method,
        )

    def _pool_version(self, request: SelectionRequest) -> int | None:
        """The referenced pool's version at dispatch time (echoed back)."""
        if request.pool is None or request.pool not in self._registry:
            return None
        return self._registry.get(request.pool).version

    def select(self, request: SelectionRequest) -> SelectionResponse:
        """Answer one request (honouring its ``explain`` flag); never raises
        for domain failures — they come back as error responses."""
        return self.select_many([request])[0]

    def select_many(
        self, requests: Iterable[SelectionRequest]
    ) -> list[SelectionResponse]:
        """Answer a batch of requests, in input order.

        Non-explain requests run through one
        :meth:`BatchSelectionEngine.run` pass, so shared and same-sized
        pools are swept together by the vectorized 2-D kernel; explain
        requests are planned without executing.  Each response carries the
        referenced pool's version at dispatch time.
        """
        batch = list(requests)
        responses: list[SelectionResponse | None] = [None] * len(batch)
        versions = [self._pool_version(request) for request in batch]
        queries: list[SelectionQuery] = []
        positions: list[int] = []
        for index, request in enumerate(batch):
            if request.explain:
                responses[index] = self._explain_one(request, versions[index])
                continue
            try:
                queries.append(self._to_query(request))
            except Exception as exc:
                responses[index] = SelectionResponse.from_error(
                    request.task_id, ErrorInfo.from_exception(exc)
                )
                continue
            positions.append(index)
        outcomes = self._engine.run(queries)
        for index, outcome in zip(positions, outcomes):
            if outcome.ok:
                responses[index] = SelectionResponse.from_result(
                    outcome.task_id,
                    outcome.result,
                    elapsed_seconds=outcome.elapsed_seconds,
                    pool_version=versions[index],
                )
            else:
                responses[index] = SelectionResponse.from_error(
                    outcome.task_id,
                    outcome.error_info,
                    elapsed_seconds=outcome.elapsed_seconds,
                )
        return responses  # type: ignore[return-value]

    def _explain_one(
        self, request: SelectionRequest, pool_version: int | None
    ) -> SelectionResponse:
        start = time.perf_counter()
        try:
            plan = self._engine.plan(self._to_query(request))
        except Exception as exc:
            return SelectionResponse.from_error(
                request.task_id, ErrorInfo.from_exception(exc)
            )
        return SelectionResponse.from_plan(
            request.task_id,
            plan.describe(),
            pool_version=pool_version,
            elapsed_seconds=time.perf_counter() - start,
        )

    def explain(self, request: SelectionRequest) -> SelectionResponse:
        """Plan a request without executing it (the EXPLAIN surface).

        The request's own ``explain`` flag is irrelevant here; the response
        embeds the physical plan under ``plan``.
        """
        return self._explain_one(request, self._pool_version(request))

    # ------------------------------------------------------------------
    # pool commands
    # ------------------------------------------------------------------
    def pool(self, command: PoolCommand) -> dict:
        """Apply one registry mutation; returns the wire acknowledgement.

        Updates are atomic: the whole ``remove -> add -> set`` plan is
        validated against a simulated membership before the first mutation,
        so a failing command leaves the pool untouched.  Raises
        :class:`~repro.errors.ReproError` subclasses on failure.
        """
        if command.action == "create":
            pool = self._registry.create(
                command.name, command.candidates, replace=command.replace
            )
        elif command.action == "drop":
            pool = self._registry.drop(command.name)
            if pool.size:
                # Symmetric eviction: every parent-side cache keyed by this
                # fingerprint (sweep profile *and* answer frontier) plus,
                # under sharded execution, every worker-local cache via
                # broadcast (older versions' entries age out via LRU).
                self._engine.invalidate_profile(pool.fingerprint)
        else:  # update
            pool = self._registry.get(command.name)
            remove_ids, adds, updates = self._validated_update(pool, command)
            for juror_id in remove_ids:
                pool.remove_juror(juror_id)
            for juror in adds:
                pool.add_juror(juror)
            for juror_id, replacement in updates:
                pool.update_juror(
                    juror_id,
                    error_rate=replacement.error_rate,
                    requirement=replacement.requirement,
                )
        return {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "cmd": "pool",
            "action": command.action,
            "name": command.name,
            "version": pool.version,
            "size": pool.size,
        }

    @staticmethod
    def _validated_update(
        pool: LivePool, command: PoolCommand
    ) -> tuple[list[str], list[Juror], list[tuple[str, Juror]]]:
        """Validate an update fully before any mutation.

        Simulates the membership through remove -> add -> set order (the
        order the update is applied in) and re-validates every value a
        mutation would validate, so applying the returned plan cannot fail
        halfway: the update is atomic from the client's point of view.
        """
        membership = {j.juror_id: j for j in pool.ordered}
        remove_ids: list[str] = []
        for juror_id in command.remove:
            if membership.pop(juror_id, None) is None:
                raise InvalidJuryError(f"juror {juror_id!r} is not in the pool")
            remove_ids.append(juror_id)
        for juror in command.add:
            if juror.juror_id in membership:
                raise InvalidJuryError(
                    f"juror {juror.juror_id!r} is already in the pool"
                )
            membership[juror.juror_id] = juror
        updates: list[tuple[str, Juror]] = []
        for position, (juror_id, error_rate, requirement) in enumerate(
            command.updates
        ):
            current = membership.get(juror_id)
            if current is None:
                raise InvalidJuryError(f"juror {juror_id!r} is not in the pool")
            try:
                replacement = Juror(
                    current.error_rate if error_rate is None else error_rate,
                    current.requirement if requirement is None else requirement,
                    juror_id=juror_id,
                )
            except ReproError as exc:
                raise InvalidJuryError(f"set entry #{position}: {exc}") from exc
            membership[juror_id] = replacement
            updates.append((juror_id, replacement))
        return remove_ids, list(command.add), updates

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Registry, engine and cache counters (the serve ``stats`` payload).

        Safe to call concurrently with running batches and pool commands:
        everything here is a plain counter read, and the pool listing is a
        best-effort snapshot (a pool created or dropped mid-read may be
        missed — liveness probes must never block on the engine).  Every
        cache tier is surfaced: the prefix-sweep cache (``cache``), the
        planner's memoised operator choice (``planner``), the answer
        frontier (``frontier`` — hits/misses plus build/repair/rebuild
        lifecycle) and the engine's work counters (``engine``).  The
        ``kernels`` block reports the compiled-kernel registry
        (:func:`repro.core.kernels.stats_snapshot`): requested/active
        backend, per-kernel dispatch counters, availability and the
        measured crossovers.  The ``scheduler`` block
        (:meth:`~repro.service.batch.BatchSelectionEngine.scheduler_stats`)
        reports the placement policy, per-shard assigned cost / busy
        seconds / steals / split sub-payloads / queue depth, and the
        realized ``assigned_cost_skew`` (max/mean).  Under sharded
        execution the payload additionally gains ``workers`` and the full
        per-shard ``shards`` utilisation table.

        The per-pool listing covers the pools **in memory**: everything for
        an in-memory registry, the LRU-resident subset for a catalog-backed
        one — a stats probe must never page thousands of cold pools off
        disk.  Catalog-backed services additionally report a ``catalog``
        block (WAL appends, fsyncs, snapshots, replays, truncated-tail
        recoveries, residency, recovery milliseconds) whose ``pools`` count
        spans the whole durable namespace.
        """
        registry = self._registry
        engine = self._engine
        pools: dict[str, dict] = {}
        for _ in range(8):
            try:
                resident = registry.resident_pools()
                break
            except RuntimeError:  # registry dict resized under our feet
                continue
        else:  # pragma: no cover - needs pathological sustained churn
            resident = []
        for name, pool in resident:
            pools[name] = {"version": pool.version, "size": pool.size}
        planner_info = planner_cache_info()
        payload = {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "cmd": "stats",
            "pools": pools,
            "queries_run": engine.stats.queries_run,
            "live_profiles": engine.stats.live_profiles,
            "cache": {
                "hits": engine.cache.hits,
                "misses": engine.cache.misses,
                "evictions": engine.cache.evictions,
                "entries": len(engine.cache),
                "maxsize": engine.cache.maxsize,
            },
            "planner": {
                "hits": planner_info.hits,
                "misses": planner_info.misses,
                "entries": planner_info.currsize,
                "maxsize": planner_info.maxsize,
            },
            "frontier": engine.frontier.snapshot(),
            "engine": {
                "queries_run": engine.stats.queries_run,
                "batch_sweeps": engine.stats.batch_sweeps,
                "pools_swept": engine.stats.pools_swept,
                "live_profiles": engine.stats.live_profiles,
                "sharded_queries": engine.stats.sharded_queries,
                "shard_batches": engine.stats.shard_batches,
                "frontier_hits": engine.stats.frontier_hits,
                "kernel_backend": engine.stats.kernel_backend,
                "scheduler_policy": engine.stats.scheduler_policy,
                "split_queries": engine.stats.split_queries,
                "stolen_units": engine.stats.stolen_units,
            },
            "kernels": kernels.stats_snapshot(),
            "scheduler": engine.scheduler_stats(),
        }
        if self._catalog is not None:
            payload["catalog"] = self._catalog.stats_snapshot()
        executor = engine.executor
        if executor is not None:
            payload["workers"] = executor.workers
            payload["in_process"] = executor.in_process
            payload["shards"] = executor.utilisation()
        return payload
