"""``repro.api`` — the typed, versioned public protocol (wire protocol v1).

The paper's workload is a *service*: a platform continuously answering
"whom should we ask?" for streams of decision tasks.  This package is that
service's one public doorway:

:class:`SelectionRequest` / :class:`SelectionResponse` / :class:`PoolCommand`
    Frozen request/response/command dataclasses with canonical
    ``to_dict()``/``from_dict()`` round-trip serialization and a stable
    ``"v": 1`` wire tag (:mod:`repro.api.protocol`).
:class:`ErrorInfo` + :mod:`repro.api.codes`
    Structured errors: every exception in the :mod:`repro.errors` hierarchy
    maps to a stable machine-readable code, carried on the wire instead of
    a bare ``str(exc)``.
:class:`JuryService`
    The façade every surface dispatches through — ``select()``,
    ``select_many()``, ``explain()``, ``pool()``, ``stats()`` — wrapping a
    :class:`~repro.service.BatchSelectionEngine` and a
    :class:`~repro.service.PoolRegistry` (:mod:`repro.api.service`).
:class:`AsyncJuryService`
    The asyncio multiplexer: concurrent callers coalesce into engine
    batches on a bounded queue, so one process serves many simultaneous
    clients at batch-kernel throughput (:mod:`repro.api.aio`).
:class:`HttpServer`
    The network transport: a dependency-free asyncio HTTP/1.1 server
    speaking wire protocol v1 (``POST /v1/select``, ``/v1/select_many``,
    ``/v1/pool``, ``GET /v1/stats``, ``/healthz``), multiplexing every
    connection into one :class:`AsyncJuryService` (:mod:`repro.api.server`).

The older query types (:class:`~repro.service.SelectionQuery`,
:class:`~repro.service.QueryOutcome`) remain importable as the engine's
native interface, but new integrations should speak this protocol; the CLI
(``repro-select``) is a thin transport over :class:`JuryService`.
"""

from repro.api.aio import AsyncJuryService
from repro.api.codes import ERROR_CODES, error_code
from repro.api.protocol import (
    PROTOCOL_VERSION,
    ErrorInfo,
    PoolCommand,
    SelectionRequest,
    SelectionResponse,
)
from repro.api.server import HttpServer, http_call
from repro.api.service import JuryService

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "error_code",
    "ErrorInfo",
    "SelectionRequest",
    "SelectionResponse",
    "PoolCommand",
    "JuryService",
    "AsyncJuryService",
    "HttpServer",
    "http_call",
]
