"""Stable machine-readable error codes for the wire protocol.

Every exception class in the :mod:`repro.errors` hierarchy maps to exactly
one short, kebab-case code that is part of wire protocol v1: messages may be
rephrased between releases, codes may not.  :func:`error_code` resolves an
exception (or exception class) to the code of the nearest registered
ancestor, so new :class:`~repro.errors.ReproError` subclasses degrade to
their parent's code until they are registered — and the test suite asserts
that every subclass *is* registered, so such a fallback never ships.

Exceptions from outside the hierarchy get the generic codes at the bottom of
the registry: ``invalid-argument`` for :class:`ValueError`/:class:`TypeError`
(malformed payloads that slip past the explicit checks) and ``internal`` for
anything else.
"""

from __future__ import annotations

from json import JSONDecodeError

from repro.errors import (
    BudgetError,
    ConvergenceError,
    EmptyCandidateSetError,
    EmptyGraphError,
    EstimationError,
    EvenJurySizeError,
    InfeasibleSelectionError,
    InvalidErrorRateError,
    InvalidJuryError,
    InvalidRequirementError,
    OverloadedError,
    PoolNotFoundError,
    ProtocolError,
    ReproError,
    ServiceClosedError,
    SimulationError,
    StorageError,
)

__all__ = ["ERROR_CODES", "error_code"]

#: The protocol-v1 error-code registry.  Keys are looked up through the
#: exception's MRO, most-derived first, so the most specific registered
#: ancestor wins.  Append-only: removing or renaming a code is a breaking
#: protocol change.
ERROR_CODES: dict[type[BaseException], str] = {
    InvalidErrorRateError: "invalid-error-rate",
    InvalidRequirementError: "invalid-requirement",
    EvenJurySizeError: "even-jury-size",
    InvalidJuryError: "invalid-jury",
    EmptyCandidateSetError: "empty-candidate-set",
    PoolNotFoundError: "pool-not-found",
    BudgetError: "invalid-budget",
    InfeasibleSelectionError: "infeasible-selection",
    EmptyGraphError: "empty-graph",
    ConvergenceError: "no-convergence",
    EstimationError: "estimation-failed",
    SimulationError: "simulation-failed",
    ProtocolError: "bad-request",
    ServiceClosedError: "service-closed",
    OverloadedError: "overloaded",
    StorageError: "storage-corrupt",
    ReproError: "repro-error",
    # Transport-level failures and fallbacks from outside the hierarchy.
    JSONDecodeError: "invalid-json",
    ValueError: "invalid-argument",
    TypeError: "invalid-argument",
    KeyError: "not-found",
    Exception: "internal",
}


def error_code(exc: BaseException | type[BaseException]) -> str:
    """The stable wire code for an exception (instance or class).

    Walks the MRO so the most specific registered ancestor decides; every
    :class:`Exception` resolves to *something* (``"internal"`` at worst).
    """
    cls = exc if isinstance(exc, type) else type(exc)
    for ancestor in cls.__mro__:
        code = ERROR_CODES.get(ancestor)
        if code is not None:
            return code
    return "internal"
