"""``AsyncJuryService`` — multiplex many concurrent callers onto one engine.

The sync :class:`~repro.api.service.JuryService` answers one caller at a
time.  A serving process, however, sees many simultaneous clients (JSONL
sessions, sockets), each submitting single requests — and answering those
one by one forfeits exactly the batch shape the engine is built for: the
vectorized 2-D sweep kernel amortises its prefix loop across every pool in
a batch, so 64 coalesced AltrM requests cost roughly one sweep, not 64.

:class:`AsyncJuryService` recovers the batch shape from concurrent traffic:

* ``select()`` calls enqueue onto a shared pending queue and await their
  individual response; a single drainer task repeatedly takes up to
  ``max_batch`` queued requests and answers them with **one**
  :meth:`JuryService.select_many` call, off-loaded to a worker thread via
  :func:`asyncio.to_thread` so the event loop keeps accepting clients while
  the engine computes.
* Requests arriving while a batch is in flight coalesce into the next
  batch — the busier the service, the bigger (and proportionally cheaper)
  the batches get.
* The queue is bounded (``max_pending``): callers beyond the bound suspend
  at a semaphore, giving natural backpressure instead of unbounded memory.
* An :class:`asyncio.Lock` serialises all engine access (batches, pool
  commands, explains), so the engine and registry are never entered
  concurrently with a registry mutation.
* When the wrapped service shards its execution
  (:class:`~repro.service.shard.ShardedExecutor`, the ``workers=`` knob),
  the drainer **fans each coalesced batch out across the shards**: the
  batch is partitioned by the requests' pool identity and the parts are
  answered by concurrent ``select_many`` worker threads, so parent-side
  planning of one part overlaps with shard compute of another instead of
  funnelling everything through a single ``to_thread`` call.

Responses are **bit-identical** to sequential dispatch: batching and
sharding change only *when* and *where* queries run, and the engine itself
guarantees batched, sharded and scalar execution agree.

Lifecycle: :meth:`AsyncJuryService.aclose` is the graceful-termination
path — new ``select()`` calls are refused, the queued backlog drains
through the drainer, and the wrapped service's worker processes are
reaped.  A request cancelled *while queued* is skipped when the next batch
is assembled, so abandoned clients cost no engine work; ``stats()`` reads
lock-free counters and stays answerable while a long batch holds the
engine lock.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Iterable
from dataclasses import replace

from repro.api.protocol import PoolCommand, SelectionRequest, SelectionResponse
from repro.api.service import JuryService
from repro.errors import ServiceClosedError
from repro.service.sched import balance_groups

__all__ = ["AsyncJuryService"]

#: Default cap on how many queued requests one engine pass answers.
DEFAULT_MAX_BATCH = 128

#: Default bound on in-flight requests before callers feel backpressure.
DEFAULT_MAX_PENDING = 1024


class AsyncJuryService:
    """Asyncio façade coalescing concurrent callers into engine batches.

    Parameters
    ----------
    service:
        The sync service to dispatch through; one is built from
        ``service_options`` (forwarded to :class:`JuryService`) if omitted.
    max_batch:
        Maximum queued requests answered by one ``select_many`` pass.
    max_pending:
        Bound on in-flight requests; further ``select()`` callers suspend
        until capacity frees up.
    **service_options:
        Forwarded to :class:`JuryService` when no service is given —
        notably ``workers=N`` for sharded execution.

    Examples
    --------
    >>> import asyncio
    >>> from repro.api import AsyncJuryService, SelectionRequest
    >>> from repro.core.juror import jurors_from_arrays
    >>> async def demo():
    ...     service = AsyncJuryService()
    ...     cands = tuple(jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3]))
    ...     reqs = [SelectionRequest(task_id=f"t{i}", candidates=cands)
    ...             for i in range(3)]
    ...     responses = await asyncio.gather(*(service.select(r) for r in reqs))
    ...     return [r.size for r in responses]
    >>> asyncio.run(demo())
    [5, 5, 5]
    """

    def __init__(
        self,
        service: JuryService | None = None,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_pending: int = DEFAULT_MAX_PENDING,
        **service_options,
    ) -> None:
        if service is not None and service_options:
            raise ValueError("pass either a service or service options, not both")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._service = service if service is not None else JuryService(**service_options)
        self._max_batch = max_batch
        self._max_pending = max_pending
        self._pending: deque[tuple[SelectionRequest, asyncio.Future]] = deque()
        self._capacity = asyncio.Semaphore(max_pending)
        self._engine_lock = asyncio.Lock()
        self._drainer: asyncio.Task | None = None
        self._closed = False
        # Lock-free liveness counters (read by stats()/healthz without ever
        # touching the engine lock): plain int mutations are atomic enough
        # under the event loop — they only ever change on the loop thread.
        self._accepted = 0
        self._answered = 0
        self._cancelled = 0
        self._batches = 0
        self._in_flight = 0

    @property
    def service(self) -> JuryService:
        """The wrapped synchronous service."""
        return self._service

    @property
    def closed(self) -> bool:
        """True once :meth:`aclose` has begun; new ``select()`` calls fail."""
        return self._closed

    @property
    def queued(self) -> int:
        """Requests waiting in the pending queue right now."""
        return len(self._pending)

    @property
    def saturated(self) -> bool:
        """True when the bounded pending queue is full.

        The next ``select()`` would suspend at the capacity semaphore; a
        transport that prefers shedding load over queueing (the HTTP
        server's 503 path) checks this first.
        """
        return self._capacity.locked()

    # ------------------------------------------------------------------
    # selection dispatch
    # ------------------------------------------------------------------
    async def select(self, request: SelectionRequest) -> SelectionResponse:
        """Answer one request; concurrent callers coalesce into batches.

        Raises :class:`~repro.errors.ServiceClosedError` once
        :meth:`aclose` has begun — already-queued requests still drain, but
        no new ones are accepted.
        """
        if self._closed:
            raise ServiceClosedError("AsyncJuryService is closed")
        async with self._capacity:
            if self._closed:
                raise ServiceClosedError("AsyncJuryService is closed")
            self._accepted += 1
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending.append((request, future))
            self._kick()
            return await future

    async def select_many(
        self, requests: Iterable[SelectionRequest]
    ) -> list[SelectionResponse]:
        """Answer many requests concurrently, in input order."""
        return list(
            await asyncio.gather(*(self.select(request) for request in requests))
        )

    async def explain(self, request: SelectionRequest) -> SelectionResponse:
        """Plan a request without executing it; rides the same batch queue."""
        if not request.explain:
            request = replace(request, explain=True)
        return await self.select(request)

    # ------------------------------------------------------------------
    # registry commands
    # ------------------------------------------------------------------
    async def pool(self, command: PoolCommand) -> dict:
        """Apply one registry mutation (serialised against in-flight batches)."""
        async with self._engine_lock:
            return await asyncio.to_thread(self._service.pool, command)

    async def stats(self) -> dict:
        """Lock-free counter snapshot — never waits on the engine lock.

        A health or stats probe must stay answerable while a long exact-
        enumeration batch holds the engine, so this reads counters directly
        instead of queueing behind :attr:`_engine_lock` like a command.
        """
        return self.stats_snapshot()

    def stats_snapshot(self) -> dict:
        """Synchronous form of :meth:`stats` (shared with ``/healthz``).

        Embeds the full :meth:`JuryService.stats` payload — sweep-cache,
        planner and answer-frontier counters included — plus the transport
        block below.
        """
        snapshot = self._service.stats()
        snapshot["async"] = {
            "accepted": self._accepted,
            "answered": self._answered,
            "cancelled_in_queue": self._cancelled,
            "batches": self._batches,
            "queued": len(self._pending),
            "in_flight": self._in_flight,
            "max_batch": self._max_batch,
            "max_pending": self._max_pending,
            "closed": self._closed,
        }
        return snapshot

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Drain and shut down: the graceful-termination path.

        Stops accepting new ``select()`` calls (they raise
        :class:`~repro.errors.ServiceClosedError`), lets the in-flight
        batch finish and the drainer answer everything still queued, awaits
        the drainer task, then closes the wrapped service — reaping any
        worker shard processes and flushing (and, when service-owned,
        closing) the durable pool catalog so every acknowledged mutation is
        on stable storage before the process exits.  Idempotent; safe to
        call with requests in every state.
        """
        self._closed = True
        drainer = self._drainer
        if drainer is not None and not drainer.done():
            # Wait without re-raising: a drainer cancelled by loop teardown
            # has already failed its waiters; aclose just needs it finished.
            await asyncio.wait({drainer})
        # The drainer exits only on an empty queue, so stragglers exist only
        # if it was cancelled mid-flight — fail them rather than hang them.
        while self._pending:
            _, future = self._pending.popleft()
            if not future.done():
                future.cancel()
        # Worker-pool shutdown joins processes; keep it off the event loop.
        await asyncio.to_thread(self._service.close)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        """Ensure a drainer task is alive while requests are pending."""
        if self._drainer is None or self._drainer.done():
            self._drainer = asyncio.get_running_loop().create_task(self._drain())

    def _shard_fanout(self) -> int:
        """How many concurrent ``select_many`` parts a batch splits into.

        A degraded executor (``in_process``) gets no fan-out: splitting
        would fragment the single-pass stacked sweeps for zero parallelism.
        """
        executor = self._service.engine.executor
        if executor is None or executor.in_process:
            return 1
        return executor.workers

    @staticmethod
    def _pool_key(request: SelectionRequest) -> object:
        """Grouping key keeping same-pool requests in one batch part."""
        if request.pool is not None:
            return request.pool
        return tuple(j.juror_id for j in request.candidates)

    async def _answer_batch(
        self, requests: list[SelectionRequest]
    ) -> list[SelectionResponse]:
        """Answer one coalesced batch, fanning out across shards if any.

        With a sharded engine the batch is partitioned by pool identity
        into up to ``workers`` parts answered by concurrent ``select_many``
        threads (the engine's internal lock makes that safe).  How pools
        map to parts follows the engine's scheduling policy: under ``hash``
        each pool key hashes to a fixed part (the oracle placement); under
        ``cost`` the pool groups are LPT-balanced by request count
        (:func:`repro.service.sched.balance_groups`), so a Zipf-popular
        pool no longer drags its whole hash bucket's tail.  Either way the
        engine's scheduler then places each part's payloads on shards, so
        worker-cache affinity is preserved regardless of the fan-out split.
        """
        fanout = min(self._shard_fanout(), len(requests))
        if fanout <= 1:
            return await asyncio.to_thread(self._service.select_many, requests)
        parts: list[list[tuple[int, SelectionRequest]]] = [[] for _ in range(fanout)]
        if self._service.engine.scheduler_policy == "cost":
            groups: dict[object, list[tuple[int, SelectionRequest]]] = {}
            for position, request in enumerate(requests):
                groups.setdefault(self._pool_key(request), []).append(
                    (position, request)
                )
            grouped = list(groups.values())
            assignment = balance_groups([len(g) for g in grouped], fanout)
            for group, part in zip(grouped, assignment):
                parts[part].extend(group)
        else:
            for position, request in enumerate(requests):
                parts[hash(self._pool_key(request)) % fanout].append(
                    (position, request)
                )
        parts = [part for part in parts if part]
        answered = await asyncio.gather(
            *(
                asyncio.to_thread(
                    self._service.select_many, [request for _, request in part]
                )
                for part in parts
            )
        )
        responses: list[SelectionResponse | None] = [None] * len(requests)
        for part, part_responses in zip(parts, answered):
            for (position, _), response in zip(part, part_responses):
                responses[position] = response
        return responses  # type: ignore[return-value]

    async def _drain(self) -> None:
        # One drainer at a time: it exits only after observing an empty
        # queue, and the check-and-exit runs without an await in between,
        # so a request appended afterwards always sees .done() and kicks a
        # fresh drainer — no lost wakeups.
        while self._pending:
            batch = []
            for _ in range(min(len(self._pending), self._max_batch)):
                entry = self._pending.popleft()
                if entry[1].done():
                    # Cancelled while queued: the caller is gone, so the
                    # request must never be planned or executed.
                    self._cancelled += 1
                    continue
                batch.append(entry)
            if not batch:
                continue
            requests = [request for request, _ in batch]
            self._in_flight += len(batch)
            self._batches += 1
            async with self._engine_lock:
                try:
                    responses = await self._answer_batch(requests)
                except asyncio.CancelledError:
                    # Loop shutdown: cancel the in-flight waiters and honour
                    # the cancellation instead of draining the backlog.
                    self._in_flight -= len(batch)
                    for _, future in batch:
                        if not future.done():
                            future.cancel()
                    raise
                except Exception as exc:  # engine bug — fail the batch loudly
                    self._in_flight -= len(batch)
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(exc)
                    continue
            self._in_flight -= len(batch)
            self._answered += len(batch)
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)
