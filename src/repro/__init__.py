"""repro — Jury Selection for Decision Making Tasks on Micro-blog Services.

A complete, from-scratch reproduction of

    Caleb Chen Cao, Jieying She, Yongxin Tong, Lei Chen.
    "Whom to Ask? Jury Selection for Decision Making Tasks on Micro-blog
    Services."  PVLDB 5(11): 1495-1506, VLDB 2012.

The library answers the question *whom should we ask?* when crowdsourcing a
binary decision to micro-blog users: given candidate jurors with individual
error rates (and, under the pay-as-you-go model, payment requirements), it
selects the jury whose Majority Voting answer has the lowest probability of
being wrong (the Jury Error Rate).

Quickstart
----------
>>> import repro
>>> candidates = repro.jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4])
>>> best = repro.select_jury_altr(candidates)
>>> best.size, round(best.jer, 4)
(5, 0.0704)

Package map
-----------
``repro.core``
    Jurors, juries, Majority Voting, the Poisson-Binomial distribution of the
    carelessness count, JER algorithms (naive / DP / convolution-FFT), bounds,
    and the AltrM / PayM / exact selectors.
``repro.plan``
    The plan-based execution core: :func:`repro.plan.plan_query` normalises
    a query (model strings are parsed once, here), a cost model picks the
    physical operator and numeric backends, and the operators consume
    columnar :class:`repro.plan.PoolView` pools.  Every entry point —
    scalar selectors, batch engine, CLI, experiments — executes through it.
``repro.api``
    The public protocol: typed, versioned request/response dataclasses
    (:class:`repro.api.SelectionRequest` / ``SelectionResponse`` /
    ``PoolCommand`` / ``ErrorInfo``, wire tag ``"v": 1``), a structured
    error-code registry, and the :class:`repro.api.JuryService` /
    :class:`repro.api.AsyncJuryService` façades every surface (library,
    CLI, async serving) dispatches through.
``repro.service``
    The batch selection engine: many queries (mixed AltrM / PayM / exact,
    shared or per-task candidate pools) executed through vectorized prefix
    sweeps with per-pool caching; each query runs the plan->operator path.
    ``SelectionQuery``/``QueryOutcome`` are the engine's native types;
    new integrations should prefer the ``repro.api`` protocol.
``repro.estimation``
    Parameter estimation from raw tweets (paper Section 4): retweet-graph
    construction, from-scratch HITS and PageRank, error-rate normalisation and
    account-age-based payment requirements.
``repro.microblog``
    A synthetic micro-blog service (users, follower network, retweet
    cascades) standing in for the paper's proprietary Twitter dump.
``repro.simulation``
    Monte-Carlo majority-voting simulation used to validate analytic JERs.
``repro.synth``
    Synthetic workload generators matching the paper's Section 5.1 setups.
``repro.experiments``
    One module per paper table/figure, regenerating each evaluation artefact.
"""

from repro.core import (
    IncrementalJury,
    Juror,
    JurorInfluence,
    Jury,
    MajorityVoting,
    PoissonBinomial,
    PrefixJERSweeper,
    SelectionResult,
    SelectionStats,
    Voting,
    WeightedMajorityVoting,
    altr_sweep_profile,
    branch_and_bound_optimal,
    carelessness,
    cantelli_upper_bound,
    chernoff_upper_bound,
    enumerate_optimal,
    gamma_ratio,
    hoeffding_upper_bound,
    jer_cba,
    jer_dp,
    jer_gradient,
    jer_naive,
    juror_influence_report,
    jurors_from_arrays,
    jury_error_rate,
    leave_one_out_pmf,
    majority_threshold,
    markov_upper_bound,
    optimal_log_odds_weights,
    paley_zygmund_lower_bound,
    pivotal_probabilities,
    pmf_conv,
    pmf_dp,
    pmf_naive,
    select_jury_altr,
    select_jury_lagrangian,
    select_jury_optimal,
    select_jury_pay,
    weighted_jury_error_rate,
)
from repro.api import (
    AsyncJuryService,
    ErrorInfo,
    JuryService,
    PoolCommand,
    PROTOCOL_VERSION,
    SelectionRequest,
    SelectionResponse,
    error_code,
)
from repro.plan import (
    PoolView,
    SelectionPlan,
    execute_plan,
    plan_query,
)
from repro.service import (
    BatchSelectionEngine,
    CandidatePool,
    LivePool,
    PoolRegistry,
    PrefixSweepCache,
    QueryOutcome,
    SelectionQuery,
    as_pool,
)
from repro.core.jer import (
    batch_prefix_jer_sweep,
    best_odd_prefix,
    convolve_pmf,
    deconvolve_pmf,
    prefix_jer_profile,
    resume_prefix_sweep,
)
from repro.errors import (
    BudgetError,
    ConvergenceError,
    EmptyCandidateSetError,
    EmptyGraphError,
    EstimationError,
    EvenJurySizeError,
    InfeasibleSelectionError,
    InvalidErrorRateError,
    InvalidJuryError,
    InvalidRequirementError,
    PoolNotFoundError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Juror",
    "Jury",
    "jurors_from_arrays",
    "IncrementalJury",
    "Voting",
    "MajorityVoting",
    "carelessness",
    "PoissonBinomial",
    "pmf_naive",
    "pmf_dp",
    "pmf_conv",
    "jury_error_rate",
    "jer_naive",
    "jer_dp",
    "jer_cba",
    "majority_threshold",
    "PrefixJERSweeper",
    "batch_prefix_jer_sweep",
    "prefix_jer_profile",
    "best_odd_prefix",
    "convolve_pmf",
    "deconvolve_pmf",
    "resume_prefix_sweep",
    # plan layer
    "PoolView",
    "SelectionPlan",
    "execute_plan",
    "plan_query",
    # public protocol + service façade (wire protocol v1)
    "PROTOCOL_VERSION",
    "ErrorInfo",
    "SelectionRequest",
    "SelectionResponse",
    "PoolCommand",
    "JuryService",
    "AsyncJuryService",
    "error_code",
    # batch service + live registry (SelectionQuery/QueryOutcome are the
    # engine's native types; prefer the repro.api protocol in new code)
    "BatchSelectionEngine",
    "SelectionQuery",
    "QueryOutcome",
    "CandidatePool",
    "LivePool",
    "PoolRegistry",
    "PrefixSweepCache",
    "as_pool",
    "paley_zygmund_lower_bound",
    "gamma_ratio",
    "markov_upper_bound",
    "cantelli_upper_bound",
    "hoeffding_upper_bound",
    "chernoff_upper_bound",
    "SelectionResult",
    "SelectionStats",
    "select_jury_altr",
    "altr_sweep_profile",
    "select_jury_pay",
    "select_jury_lagrangian",
    "select_jury_optimal",
    "enumerate_optimal",
    "branch_and_bound_optimal",
    # sensitivity + weighted voting extensions
    "jer_gradient",
    "pivotal_probabilities",
    "leave_one_out_pmf",
    "JurorInfluence",
    "juror_influence_report",
    "WeightedMajorityVoting",
    "optimal_log_odds_weights",
    "weighted_jury_error_rate",
    # errors
    "ReproError",
    "InvalidErrorRateError",
    "InvalidRequirementError",
    "InvalidJuryError",
    "EvenJurySizeError",
    "EmptyCandidateSetError",
    "PoolNotFoundError",
    "BudgetError",
    "InfeasibleSelectionError",
    "EstimationError",
    "EmptyGraphError",
    "ConvergenceError",
    "SimulationError",
]
