"""Durable pool catalog: WAL + columnar snapshots + crash recovery.

Public surface of the storage tier.  :class:`PoolCatalog` is what the
service layer binds (``PoolRegistry(catalog=...)``, ``JuryService(
data_dir=...)``, ``repro serve --data-dir``); the WAL and snapshot
primitives are exported for tests and tooling.
"""

from repro.storage.catalog import (
    DEFAULT_KEEP_SNAPSHOTS,
    DEFAULT_MAX_RESIDENT,
    DEFAULT_SNAPSHOT_INTERVAL,
    CatalogStats,
    PoolCatalog,
    PoolStore,
    pool_slug,
)
from repro.storage.snapshot import (
    SNAPSHOT_PREFIX,
    SnapshotData,
    gc_snapshots,
    list_snapshot_versions,
    load_snapshot,
    snapshot_dir,
    write_snapshot,
)
from repro.storage.wal import MAGIC, WalScan, WalWriter, scan_wal

__all__ = [
    "DEFAULT_KEEP_SNAPSHOTS",
    "DEFAULT_MAX_RESIDENT",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "MAGIC",
    "SNAPSHOT_PREFIX",
    "CatalogStats",
    "PoolCatalog",
    "PoolStore",
    "SnapshotData",
    "WalScan",
    "WalWriter",
    "gc_snapshots",
    "list_snapshot_versions",
    "load_snapshot",
    "pool_slug",
    "scan_wal",
    "snapshot_dir",
    "write_snapshot",
]
