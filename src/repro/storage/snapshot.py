"""Columnar pool snapshots: the analytical half of the durable catalog.

A snapshot freezes one pool version as the same struct-of-arrays layout the
plan layer executes over (:class:`repro.plan.view.PoolView`): ``eps.npy``
and ``reqs.npy`` (float64, Lemma 3 order — bit-exact doubles, no text
round-trip) plus ``ids.npy`` (fixed-width unicode), all inside a directory
named for the pool version and described by a ``MANIFEST.json`` carrying
the pool **fingerprint**, the member count and a CRC per blob.

Write protocol (crash-safe without a journal):

1. materialise the blobs in a hidden ``.tmp-*`` sibling directory,
2. fsync every file,
3. ``os.replace`` the temp directory to its final ``snap-<version>`` name
   and fsync the parent directory.

A crash leaves either no snapshot (temp dirs are garbage-collected on the
next open) or a complete one — never a half-visible one.  Readers defend in
depth anyway: :func:`load_snapshot` re-checksums every blob and recomputes
the content fingerprint of the decoded members, refusing (so the catalog
falls back to an older snapshot + longer WAL replay) rather than serving a
pool that might not be the one that was saved.

The float columns are loaded with ``np.load(..., mmap_mode="r")`` — the
lazy-loading path that lets a catalog of thousands of pools open far more
state than fits in RAM, paying page-ins only for pools actually queried.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import StorageError

__all__ = [
    "SNAPSHOT_PREFIX",
    "SnapshotData",
    "gc_snapshots",
    "list_snapshot_versions",
    "load_snapshot",
    "snapshot_dir",
    "write_snapshot",
]

SNAPSHOT_PREFIX = "snap-"
_TMP_PREFIX = ".tmp-"
_MANIFEST = "MANIFEST.json"
_BLOBS = ("eps.npy", "reqs.npy", "ids.npy")


@dataclass(frozen=True)
class SnapshotData:
    """A decoded, checksum-verified snapshot."""

    version: int
    fingerprint: str
    eps: np.ndarray
    reqs: np.ndarray
    ids: tuple[str, ...]


def snapshot_dir(pool_dir: Path, version: int) -> Path:
    """The on-disk directory of the snapshot at ``version``."""
    return pool_dir / f"{SNAPSHOT_PREFIX}{version:012d}"


def list_snapshot_versions(pool_dir: Path) -> list[int]:
    """Snapshot versions present under ``pool_dir``, newest first."""
    versions: list[int] = []
    try:
        entries = list(pool_dir.iterdir())
    except FileNotFoundError:
        return versions
    for entry in entries:
        name = entry.name
        if name.startswith(SNAPSHOT_PREFIX) and entry.is_dir():
            try:
                versions.append(int(name[len(SNAPSHOT_PREFIX):]))
            except ValueError:
                continue
    versions.sort(reverse=True)
    return versions


def _fsync_file(path: Path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems refusing dir fsync
        pass
    finally:
        os.close(fd)


def write_snapshot(
    pool_dir: Path,
    *,
    version: int,
    fingerprint: str,
    eps: np.ndarray,
    reqs: np.ndarray,
    ids: tuple[str, ...],
) -> Path:
    """Persist one pool version as a columnar snapshot; returns its dir.

    The arrays must already be in Lemma 3 order (they come straight from
    the live pool's cached columns).  Idempotent per version: re-writing an
    existing version replaces it atomically.
    """
    target = snapshot_dir(pool_dir, version)
    tmp = pool_dir / f"{_TMP_PREFIX}{target.name}.{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        arrays = {
            "eps.npy": np.ascontiguousarray(eps, dtype=np.float64),
            "reqs.npy": np.ascontiguousarray(reqs, dtype=np.float64),
            "ids.npy": np.array(ids, dtype=np.str_)
            if ids
            else np.array([], dtype="U1"),
        }
        checksums: dict[str, int] = {}
        for blob, array in arrays.items():
            path = tmp / blob
            np.save(path, array, allow_pickle=False)
            checksums[blob] = zlib.crc32(path.read_bytes())
            _fsync_file(path)
        manifest = {
            "v": 1,
            "version": int(version),
            "fingerprint": fingerprint,
            "count": int(arrays["eps.npy"].size),
            "checksums": checksums,
        }
        manifest_path = tmp / _MANIFEST
        manifest_path.write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        _fsync_file(manifest_path)
        if target.exists():
            shutil.rmtree(target)
        os.replace(tmp, target)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _fsync_dir(pool_dir)
    return target


def load_snapshot(snap_dir: Path) -> SnapshotData:
    """Load and verify one snapshot directory.

    Raises :class:`~repro.errors.StorageError` on any integrity failure —
    missing blob, checksum mismatch, manifest/blob disagreement.  The
    caller (the catalog) treats that as "this snapshot does not exist" and
    falls back to the next older one; the error is never served to a
    client as pool state.
    """
    manifest_path = snap_dir / _MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"{snap_dir}: unreadable manifest: {exc}") from exc
    if manifest.get("v") != 1:
        raise StorageError(
            f"{snap_dir}: unknown snapshot format {manifest.get('v')!r}"
        )
    checksums = manifest.get("checksums", {})
    arrays: dict[str, np.ndarray] = {}
    for blob in _BLOBS:
        path = snap_dir / blob
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise StorageError(f"{snap_dir}: missing blob {blob}") from exc
        if zlib.crc32(raw) != checksums.get(blob):
            raise StorageError(f"{snap_dir}: checksum mismatch on {blob}")
        # Float columns re-open memory-mapped: the checksum pass above has
        # already touched the pages once, but the mapping (not the bytes
        # copy) is what outlives this call inside the rebuilt pool view.
        mmap_mode = "r" if blob != "ids.npy" else None
        try:
            arrays[blob] = np.load(
                path, mmap_mode=mmap_mode, allow_pickle=False
            )
        except (OSError, ValueError) as exc:
            raise StorageError(f"{snap_dir}: undecodable blob {blob}") from exc
    eps, reqs, ids = arrays["eps.npy"], arrays["reqs.npy"], arrays["ids.npy"]
    count = int(manifest.get("count", -1))
    if not (eps.size == reqs.size == ids.size == count):
        raise StorageError(
            f"{snap_dir}: column sizes disagree with manifest "
            f"({eps.size}/{reqs.size}/{ids.size} vs {count})"
        )
    return SnapshotData(
        version=int(manifest["version"]),
        fingerprint=str(manifest["fingerprint"]),
        eps=eps,
        reqs=reqs,
        ids=tuple(str(i) for i in ids),
    )


def gc_snapshots(pool_dir: Path, *, keep: int = 2) -> int:
    """Delete all but the ``keep`` newest snapshots (and any temp debris).

    Returns the number of directories removed.  Older snapshots are pure
    fallback depth: once a newer one has been loaded and verified, anything
    beyond ``keep`` generations is reclaimable.
    """
    removed = 0
    try:
        entries = list(pool_dir.iterdir())
    except FileNotFoundError:
        return removed
    for entry in entries:
        if entry.name.startswith(_TMP_PREFIX):
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
    for version in list_snapshot_versions(pool_dir)[max(keep, 0):]:
        shutil.rmtree(snapshot_dir(pool_dir, version), ignore_errors=True)
        removed += 1
    return removed
