"""Append-only mutation log (WAL) for the durable pool catalog.

One log file per pool records every membership mutation —
``create``/``add``/``remove``/``update``/``drop`` — as a length-prefixed,
CRC-checksummed JSON record.  The format is deliberately boring:

* **File header** — a 6-byte magic ``RWAL1\\n`` naming the format version.
  A future format bumps the digit; readers refuse magics they don't know.
* **Record** — an 8-byte little-endian header ``(payload_len, crc32)``
  followed by ``payload_len`` bytes of compact JSON.  The payload carries
  the operation, the pool version *after* the mutation, and the mutated
  member's fields.  Floats round-trip bit-exactly: ``json`` serialises via
  ``float.__repr__`` (shortest round-trip form), so a replayed error rate
  is the *same double* the live pool held.

Torn-tail discipline (the crash contract)
-----------------------------------------
A crash can leave a half-written final record, or bit rot can flip bytes
anywhere.  :func:`scan_wal` walks records front to back validating lengths
and checksums and stops at the **first** invalid one: everything before it
is the recovered prefix (``valid_bytes``), everything after is discarded —
a record after a corrupt record cannot be trusted because the log has no
per-record framing resynchronisation (by design: resync heuristics are how
logs silently replay garbage).  The scan never raises for tail damage; it
reports ``truncated`` so the catalog can surface a ``recovered_truncated``
counter, and :class:`WalWriter` re-opens the file truncated to the valid
prefix so new records never follow garbage.

Durability is fsync-batched: :class:`WalWriter` issues ``os.fsync`` every
``fsync_batch`` appended records (1 = every record, the default; 0 = only
on explicit :meth:`WalWriter.flush`/:meth:`WalWriter.close`), which is the
group-commit knob the catalog benchmark sweeps.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["MAGIC", "WalScan", "WalWriter", "scan_wal"]

#: File-format magic; the digit is the WAL format version.
MAGIC = b"RWAL1\n"

#: Per-record header: little-endian (payload_length, crc32-of-payload).
_HEADER = struct.Struct("<II")

#: Refuse absurd record lengths up front — a corrupted length field must
#: not make the scanner attempt a multi-gigabyte read.
_MAX_RECORD = 64 * 1024 * 1024


def _encode(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """Result of scanning a WAL file front to back.

    ``records`` is the longest valid prefix of decoded records;
    ``valid_bytes`` is the file offset just past the last valid record
    (i.e. the length a writer should truncate to before appending);
    ``truncated`` is True when bytes beyond the valid prefix were
    discarded, with ``reason`` naming why the scan stopped.
    """

    records: list[dict] = field(default_factory=list)
    valid_bytes: int = 0
    truncated: bool = False
    reason: str | None = None


def scan_wal(path: str | Path) -> WalScan:
    """Read the longest valid record prefix of a WAL file.

    Tolerates every form of tail damage — missing file, empty file, torn
    header, torn payload, checksum mismatch, unparseable JSON — by
    reporting what survived instead of raising.  Only the file *header*
    magic is load-bearing: an unknown magic yields an empty scan with
    ``valid_bytes=0`` so the writer rebuilds the file from scratch.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return WalScan(reason="missing")
    if not data.startswith(MAGIC):
        return WalScan(
            truncated=bool(data), reason="bad-magic" if data else "empty"
        )
    scan = WalScan(valid_bytes=len(MAGIC))
    offset = len(MAGIC)
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            scan.truncated, scan.reason = True, "torn-header"
            return scan
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD:
            scan.truncated, scan.reason = True, "bad-length"
            return scan
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            scan.truncated, scan.reason = True, "torn-payload"
            return scan
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.truncated, scan.reason = True, "bad-checksum"
            return scan
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # A payload that checksums but doesn't parse means the record
            # was *written* corrupt; treat it as the start of the bad tail.
            scan.truncated, scan.reason = True, "bad-payload"
            return scan
        if not isinstance(record, dict):
            scan.truncated, scan.reason = True, "bad-payload"
            return scan
        scan.records.append(record)
        scan.valid_bytes = end
        offset = end
    return scan


class WalWriter:
    """Appends checksummed records to a pool's WAL with batched fsync.

    Parameters
    ----------
    path:
        The log file.  Created (with the format magic) when absent.
    fsync_batch:
        Records per ``os.fsync``: ``1`` syncs every append (strict
        durability, the default), ``N > 1`` group-commits every N records,
        ``0`` never syncs automatically (OS page cache only — the
        "durability off" end of the benchmark).  :meth:`flush`,
        :meth:`reset` and :meth:`close` always sync pending writes.
    valid_bytes:
        Recovered prefix length from a prior :func:`scan_wal`; the file is
        truncated to it before the first append, so fresh records never
        follow a torn tail.  ``None`` appends at the current end of file.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_batch: int = 1,
        valid_bytes: int | None = None,
    ) -> None:
        if fsync_batch < 0:
            raise ValueError(f"fsync_batch must be >= 0, got {fsync_batch}")
        self.path = Path(path)
        self.fsync_batch = fsync_batch
        self.appends = 0
        self.fsyncs = 0
        self._pending = 0
        self._fd = os.open(
            str(self.path), os.O_RDWR | os.O_CREAT, 0o644
        )
        try:
            size = os.fstat(self._fd).st_size
            if valid_bytes is not None and valid_bytes < len(MAGIC):
                valid_bytes = 0
            if valid_bytes is not None and valid_bytes < size:
                os.ftruncate(self._fd, valid_bytes)
                size = valid_bytes
            if size < len(MAGIC):
                os.ftruncate(self._fd, 0)
                os.lseek(self._fd, 0, os.SEEK_SET)
                os.write(self._fd, MAGIC)
            else:
                os.lseek(self._fd, 0, os.SEEK_END)
        except BaseException:
            os.close(self._fd)
            raise
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, record: dict) -> None:
        """Append one record; fsyncs when the batch threshold is reached."""
        if self._closed:
            raise ValueError(f"WAL writer for {self.path} is closed")
        os.write(self._fd, _encode(record))
        self.appends += 1
        self._pending += 1
        if self.fsync_batch and self._pending >= self.fsync_batch:
            self._sync()

    def flush(self) -> None:
        """Force pending appends to stable storage (one fsync, if needed)."""
        if not self._closed and self._pending:
            self._sync()

    def reset(self) -> None:
        """Discard every record (post-snapshot compaction) and sync.

        The file shrinks back to the bare magic; records folded into a
        durable snapshot are dead weight on the next recovery anyway.
        """
        if self._closed:
            raise ValueError(f"WAL writer for {self.path} is closed")
        os.ftruncate(self._fd, len(MAGIC))
        os.lseek(self._fd, 0, os.SEEK_END)
        self._pending += 1  # the truncate itself must reach the platter
        self._sync()

    def close(self) -> None:
        """Flush and release the file descriptor.  Idempotent."""
        if self._closed:
            return
        try:
            if self._pending:
                self._sync()
        finally:
            self._closed = True
            os.close(self._fd)

    def _sync(self) -> None:
        os.fsync(self._fd)
        self.fsyncs += 1
        self._pending = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalWriter({str(self.path)!r}, appends={self.appends}, "
            f"fsyncs={self.fsyncs})"
        )
