"""The durable pool catalog: WAL + snapshots + lazy residency.

:class:`PoolCatalog` is the storage tier under the service layer's
:class:`~repro.service.registry.PoolRegistry`.  It implements the HTAP
split the ROADMAP names (Polynesia's transactional/analytical separation):

* the **mutation path** is an append-only WAL per pool
  (:mod:`repro.storage.wal`) — every ``add``/``remove``/``update`` the live
  pool applies is recorded, checksummed and fsync-batched *after* the
  in-memory mutation succeeds, so the log never contains a mutation the
  pool rejected;
* the **analytical path** is periodic columnar snapshots
  (:mod:`repro.storage.snapshot`) of exactly the struct-of-arrays layout
  the sweep kernels consume, written every ``snapshot_interval`` WAL
  records and on clean close;
* **recovery** loads the newest verifiable snapshot and replays the WAL
  tail through the ordinary :class:`~repro.service.registry.LivePool`
  mutation methods — which means the delta sweep kernels, the churn
  watermark and the answer frontier all resume exactly as they would have
  in the original process.  A recovered pool is **bit-identical** to the
  pre-crash pool: same fingerprint (verified against the snapshot
  manifest), same sweep profile, same selections.

On-disk layout::

    <data_dir>/
      CATALOG.json                  # format marker
      pools/
        <slug>/                     # slug = sanitised name + content hash
          META.json                 # {"v": 1, "name": ..., "dropped": ...}
          wal.log                   # repro.storage.wal format
          snap-000000000042/        # repro.storage.snapshot format
            MANIFEST.json  eps.npy  reqs.npy  ids.npy

Residency is an LRU of at most ``max_resident`` open pools: the catalog
can index far more pools than fit in RAM, opening each on first access
(``lazy_loads`` counter) and evicting the coldest (flushing its WAL) when
the bound is exceeded.  Every counter a fleet operator needs — WAL
appends, fsyncs, snapshots, replays, truncated-tail recoveries, evictions,
recovery milliseconds — is surfaced through :meth:`PoolCatalog.stats_snapshot`
and, one level up, every ``stats()`` tier of the service stack.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.core.juror import Juror
from repro.core.selection.base import pool_fingerprint
from repro.errors import InvalidJuryError, PoolNotFoundError, StorageError
from repro.service.registry import LivePool
from repro.storage.snapshot import (
    SnapshotData,
    gc_snapshots,
    list_snapshot_versions,
    load_snapshot,
    snapshot_dir,
    write_snapshot,
)
from repro.storage.wal import MAGIC, WalWriter, scan_wal

__all__ = [
    "DEFAULT_MAX_RESIDENT",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "CatalogStats",
    "PoolCatalog",
    "PoolStore",
]

#: WAL records between automatic columnar snapshots.
DEFAULT_SNAPSHOT_INTERVAL = 256

#: Resident (open) pools the LRU keeps before evicting the coldest.
DEFAULT_MAX_RESIDENT = 128

#: Snapshot generations kept per pool; the WAL is compacted to the span
#: the *oldest kept* generation still needs, so every kept snapshot is a
#: valid recovery base.
DEFAULT_KEEP_SNAPSHOTS = 2

_WAL_NAME = "wal.log"
_META_NAME = "META.json"
_SLUG_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def pool_slug(name: str) -> str:
    """Deterministic filesystem-safe directory name for a pool.

    A readable sanitised prefix plus a content hash of the exact name, so
    distinct names never share a directory and renames never alias.
    """
    safe = _SLUG_SAFE.sub("_", name)[:40] or "pool"
    digest = hashlib.blake2s(name.encode("utf-8"), digest_size=6).hexdigest()
    return f"{safe}-{digest}"


@dataclass
class CatalogStats:
    """Monotonic counters describing the catalog's durability work."""

    wal_appends: int = 0
    fsyncs: int = 0
    snapshots: int = 0
    snapshot_fallbacks: int = 0
    replays: int = 0
    records_replayed: int = 0
    lazy_loads: int = 0
    recovered_truncated: int = 0
    evictions: int = 0
    tombstones: int = 0
    recovery_ms: float = 0.0
    last_recovery_ms: float = 0.0


def _encode_juror(juror: Juror) -> list:
    return [juror.juror_id, juror.error_rate, juror.requirement]


def _decode_juror(entry: Iterable) -> Juror:
    juror_id, error_rate, requirement = entry
    return Juror(float(error_rate), float(requirement), juror_id=str(juror_id))


class PoolStore:
    """Per-pool durable state: the WAL writer plus snapshot bookkeeping.

    A store is bound to its :class:`LivePool` via
    :meth:`LivePool.bind_store`; the pool calls :meth:`on_add` /
    :meth:`on_remove` / :meth:`on_update` *after* each successful mutation,
    so the log records exactly the mutations the pool accepted, in order,
    tagged with the post-mutation version.
    """

    def __init__(
        self,
        catalog: "PoolCatalog",
        name: str,
        directory: Path,
        writer: WalWriter,
        *,
        records: list[dict] | None = None,
        snapshot_version: int = -1,
    ) -> None:
        self._catalog = catalog
        self.name = name
        self.directory = directory
        self._writer = writer
        self._fsyncs_seen = writer.fsyncs
        # In-memory mirror of the live WAL records, needed so compaction
        # can rewrite the log without re-reading it.  Bounded: compaction
        # trims it in lockstep with the file.
        self._records: list[dict] = list(records or ())
        self._snapshot_version = snapshot_version

    # -- record hooks (called by LivePool after each mutation) ---------
    def on_add(self, pool: LivePool, juror: Juror) -> None:
        self._append(
            pool,
            {
                "v": 1,
                "op": "add",
                "ver": pool.version,
                "id": juror.juror_id,
                "e": juror.error_rate,
                "r": juror.requirement,
            },
        )

    def on_remove(self, pool: LivePool, juror_id: str) -> None:
        self._append(
            pool, {"v": 1, "op": "remove", "ver": pool.version, "id": juror_id}
        )

    def on_update(self, pool: LivePool, juror: Juror) -> None:
        self._append(
            pool,
            {
                "v": 1,
                "op": "update",
                "ver": pool.version,
                "id": juror.juror_id,
                "e": juror.error_rate,
                "r": juror.requirement,
            },
        )

    def record_create(self, pool: LivePool) -> None:
        self._append(
            pool,
            {
                "v": 1,
                "op": "create",
                "ver": pool.version,
                "members": [_encode_juror(j) for j in pool.ordered],
            },
        )
        self._writer.flush()
        self._sync_counters()

    def record_drop(self, version: int) -> None:
        self._writer.append({"v": 1, "op": "drop", "ver": version})
        self._writer.flush()
        self._catalog.stats.wal_appends += 1
        self._sync_counters()

    # -- snapshot / lifecycle ------------------------------------------
    def take_snapshot(self, pool: LivePool) -> None:
        """Freeze the pool's current columns and compact the WAL."""
        write_snapshot(
            self.directory,
            version=pool.version,
            fingerprint=pool.fingerprint,
            eps=pool.error_rates,
            reqs=[j.requirement for j in pool.ordered],
            ids=tuple(j.juror_id for j in pool.ordered),
        )
        self._snapshot_version = pool.version
        self._catalog.stats.snapshots += 1
        gc_snapshots(self.directory, keep=self._catalog.keep_snapshots)
        # Compact: every kept snapshot must stay a usable recovery base,
        # so records are dropped only up to the *oldest kept* generation.
        kept = list_snapshot_versions(self.directory)
        cutoff = min(kept) if len(kept) >= 2 else -1
        survivors = [r for r in self._records if r["ver"] > cutoff]
        if len(survivors) != len(self._records):
            self._records = survivors
            self._rewrite_wal()
        self._sync_counters()

    def flush(self) -> None:
        self._writer.flush()
        self._sync_counters()

    def close(self) -> None:
        self._writer.close()
        self._sync_counters()

    @property
    def wal_records(self) -> int:
        return len(self._records)

    # -- internals ------------------------------------------------------
    def _append(self, pool: LivePool, record: dict) -> None:
        self._writer.append(record)
        self._records.append(record)
        self._catalog.stats.wal_appends += 1
        self._sync_counters()
        if (
            self._catalog.snapshot_interval
            and len(self._records) >= self._catalog.snapshot_interval
        ):
            self.take_snapshot(pool)

    def _rewrite_wal(self) -> None:
        """Rewrite the log to hold exactly ``self._records``, atomically."""
        fsync_batch = self._writer.fsync_batch
        self._writer.close()
        tmp = self.directory / f".tmp-{_WAL_NAME}"
        writer = WalWriter(tmp, fsync_batch=0)
        try:
            for record in self._records:
                writer.append(record)
        finally:
            writer.close()
        (tmp).replace(self.directory / _WAL_NAME)
        self._writer = WalWriter(
            self.directory / _WAL_NAME, fsync_batch=fsync_batch
        )
        self._fsyncs_seen = self._writer.fsyncs

    def _sync_counters(self) -> None:
        delta = self._writer.fsyncs - self._fsyncs_seen
        if delta > 0:
            self._catalog.stats.fsyncs += delta
            self._fsyncs_seen = self._writer.fsyncs


class PoolCatalog:
    """Durable, lazily-loaded namespace of :class:`LivePool` state.

    Parameters
    ----------
    data_dir:
        Root directory (created if absent).  One catalog per directory;
        the layout is documented in the module docstring.
    snapshot_interval:
        WAL records per pool between automatic columnar snapshots
        (``0`` disables automatic snapshots; recovery then replays the
        whole log).
    fsync_batch:
        WAL records per fsync — ``1`` (default) makes every acknowledged
        mutation durable, ``N`` group-commits, ``0`` leaves durability to
        the OS page cache (the benchmark's "durability off" mode).
    max_resident:
        LRU bound on simultaneously open pools; the coldest pool is
        flushed and evicted past it, so a catalog of thousands of pools
        needs memory only for the hot set.
    keep_snapshots:
        Snapshot generations retained per pool (older ones are GC'd).
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
        fsync_batch: int = 1,
        max_resident: int = DEFAULT_MAX_RESIDENT,
        keep_snapshots: int = DEFAULT_KEEP_SNAPSHOTS,
    ) -> None:
        if snapshot_interval < 0:
            raise ValueError(
                f"snapshot_interval must be >= 0, got {snapshot_interval}"
            )
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.data_dir = Path(data_dir)
        self.snapshot_interval = snapshot_interval
        self.fsync_batch = fsync_batch
        self.max_resident = max_resident
        self.keep_snapshots = keep_snapshots
        self.stats = CatalogStats()
        self._lock = threading.RLock()
        self._resident: OrderedDict[str, tuple[LivePool, PoolStore]] = (
            OrderedDict()
        )
        self._closed = False
        self._pools_dir = self.data_dir / "pools"
        self._pools_dir.mkdir(parents=True, exist_ok=True)
        marker = self.data_dir / "CATALOG.json"
        if not marker.exists():
            marker.write_text(
                json.dumps({"v": 1, "format": "repro-pool-catalog"}) + "\n",
                encoding="utf-8",
            )
        self._index: dict[str, Path] = {}
        self._build_index()

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Every pool the catalog knows — resident *and* cold on disk."""
        with self._lock:
            return tuple(self._index)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._index)

    @property
    def resident(self) -> int:
        """Pools currently open in memory."""
        return len(self._resident)

    def resident_items(self) -> list[tuple[str, LivePool]]:
        """Snapshot of the resident (open) pools, coldest first."""
        with self._lock:
            return [(name, pool) for name, (pool, _) in self._resident.items()]

    # ------------------------------------------------------------------
    # lifecycle of individual pools
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        candidates: Iterable[Juror] = (),
        *,
        replace: bool = False,
    ) -> LivePool:
        """Register a new durable pool; same semantics as the registry."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"pool name must be a non-empty string, got {name!r}")
        with self._lock:
            self._check_open()
            if name in self._index:
                if not replace:
                    raise InvalidJuryError(
                        f"pool {name!r} already exists in the registry"
                    )
                self.drop(name)
            pool = LivePool(candidates, pool_id=name)
            directory = self._pools_dir / pool_slug(name)
            if directory.exists():  # leftover debris from a crashed drop
                shutil.rmtree(directory)
            directory.mkdir(parents=True)
            meta = directory / _META_NAME
            meta.write_text(
                json.dumps({"v": 1, "name": name}) + "\n", encoding="utf-8"
            )
            writer = WalWriter(
                directory / _WAL_NAME, fsync_batch=self.fsync_batch
            )
            store = PoolStore(self, name, directory, writer)
            store.record_create(pool)
            pool.bind_store(store)
            self._index[name] = directory
            self._resident[name] = (pool, store)
            self._resident.move_to_end(name)
            self._evict_over_limit()
            return pool

    def open(self, name: str) -> LivePool:
        """The named pool, loading (and recovering) it on first access."""
        with self._lock:
            self._check_open()
            entry = self._resident.get(name)
            if entry is not None:
                self._resident.move_to_end(name)
                return entry[0]
            directory = self._index.get(name)
            if directory is None:
                raise PoolNotFoundError(
                    f"no pool named {name!r} in the registry"
                )
            pool, store = self._recover(name, directory)
            self._resident[name] = (pool, store)
            self._resident.move_to_end(name)
            self._evict_over_limit()
            return pool

    def drop(self, name: str) -> None:
        """Tombstone a pool: durable WAL record, snapshot GC, dir removal.

        The drop record is fsynced *before* any file is deleted, so a
        crash mid-drop can only leave a tombstoned directory — which the
        next open or index build garbage-collects — never a resurrected
        pool.
        """
        with self._lock:
            self._check_open()
            directory = self._index.get(name)
            if directory is None:
                raise PoolNotFoundError(
                    f"no pool named {name!r} in the registry"
                )
            entry = self._resident.pop(name, None)
            if entry is not None:
                pool, store = entry
                store.record_drop(pool.version + 1)
                store.close()
                pool.bind_store(None)
            else:
                scan = scan_wal(directory / _WAL_NAME)
                last_ver = scan.records[-1]["ver"] if scan.records else 0
                writer = WalWriter(
                    directory / _WAL_NAME,
                    fsync_batch=1,
                    valid_bytes=scan.valid_bytes,
                )
                try:
                    writer.append({"v": 1, "op": "drop", "ver": last_ver + 1})
                finally:
                    writer.close()
                self.stats.wal_appends += 1
                self.stats.fsyncs += writer.fsyncs
            # Durable tombstone in place; now reclaim, marking META first
            # so a partially-deleted directory is recognisably dead.
            self._write_tombstone_meta(directory, name)
            gc_snapshots(directory, keep=0)
            shutil.rmtree(directory, ignore_errors=True)
            del self._index[name]
            self.stats.tombstones += 1

    # ------------------------------------------------------------------
    # whole-catalog lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Fsync every resident pool's WAL (the drain/SIGTERM path)."""
        with self._lock:
            for _, store in self._resident.values():
                store.flush()

    def close(self) -> None:
        """Flush and close every resident store.  Idempotent and terminal."""
        with self._lock:
            if self._closed:
                return
            for _, store in self._resident.values():
                store.flush()
                store.close()
            for pool, _ in self._resident.values():
                pool.bind_store(None)
            self._resident.clear()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def stats_snapshot(self) -> dict:
        """The catalog counter block every ``stats()`` tier embeds."""
        s = self.stats
        return {
            "data_dir": str(self.data_dir),
            "pools": len(self._index),
            "resident": len(self._resident),
            "max_resident": self.max_resident,
            "snapshot_interval": self.snapshot_interval,
            "fsync_batch": self.fsync_batch,
            "wal_appends": s.wal_appends,
            "fsyncs": s.fsyncs,
            "snapshots": s.snapshots,
            "snapshot_fallbacks": s.snapshot_fallbacks,
            "replays": s.replays,
            "records_replayed": s.records_replayed,
            "lazy_loads": s.lazy_loads,
            "recovered_truncated": s.recovered_truncated,
            "evictions": s.evictions,
            "tombstones": s.tombstones,
            "recovery_ms": round(s.recovery_ms, 3),
            "last_recovery_ms": round(s.last_recovery_ms, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PoolCatalog({str(self.data_dir)!r}, pools={len(self._index)}, "
            f"resident={len(self._resident)})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"catalog at {self.data_dir} is closed")

    def _build_index(self) -> None:
        for entry in sorted(self._pools_dir.iterdir()):
            if not entry.is_dir():
                continue
            meta_path = entry / _META_NAME
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                # A directory without readable META is debris from a
                # crashed drop (META is the first file deleted state
                # passes through) — reclaim it.
                shutil.rmtree(entry, ignore_errors=True)
                continue
            if meta.get("dropped"):
                shutil.rmtree(entry, ignore_errors=True)
                continue
            name = meta.get("name")
            if isinstance(name, str) and name:
                self._index[name] = entry

    def _write_tombstone_meta(self, directory: Path, name: str) -> None:
        try:
            (directory / _META_NAME).write_text(
                json.dumps({"v": 1, "name": name, "dropped": True}) + "\n",
                encoding="utf-8",
            )
        except OSError:  # pragma: no cover - directory already gone
            pass

    def _evict_over_limit(self) -> None:
        while len(self._resident) > self.max_resident:
            _, (pool, store) = self._resident.popitem(last=False)
            store.flush()
            store.close()
            pool.bind_store(None)
            self.stats.evictions += 1

    def _load_snapshot_base(
        self, directory: Path
    ) -> tuple[SnapshotData | None, int]:
        """Newest verifiable snapshot (or None) + how many failed first."""
        failures = 0
        for version in list_snapshot_versions(directory):
            try:
                return load_snapshot(snapshot_dir(directory, version)), failures
            except StorageError:
                failures += 1
                continue
        return None, failures

    def _recover(self, name: str, directory: Path) -> tuple[LivePool, PoolStore]:
        """Snapshot + WAL-tail replay; the crash-recovery path."""
        started = time.perf_counter()
        base, fallbacks = self._load_snapshot_base(directory)
        self.stats.snapshot_fallbacks += fallbacks
        scan = scan_wal(directory / _WAL_NAME)
        if scan.truncated:
            self.stats.recovered_truncated += 1

        pool: LivePool | None = None
        snapshot_version = -1
        if base is not None:
            members = [
                Juror(float(e), float(r), juror_id=i)
                for e, r, i in zip(base.eps, base.reqs, base.ids)
            ]
            pool = LivePool(members, pool_id=name, start_version=base.version)
            if pool.fingerprint != base.fingerprint:
                raise StorageError(
                    f"pool {name!r}: snapshot fingerprint mismatch "
                    f"({pool.fingerprint} != manifest {base.fingerprint}) — "
                    "refusing to serve unverifiable state"
                )
            snapshot_version = base.version

        replayed = 0
        for record in scan.records:
            version = record.get("ver", -1)
            op = record.get("op")
            if op == "drop":
                # Tombstoned pool whose directory survived a crashed drop.
                self._gc_tombstoned(name, directory)
                raise PoolNotFoundError(
                    f"no pool named {name!r} in the registry"
                )
            if version <= snapshot_version:
                continue  # already folded into the snapshot base
            if op == "create":
                pool = LivePool(
                    [_decode_juror(m) for m in record.get("members", ())],
                    pool_id=name,
                    start_version=version,
                )
                replayed += 1
                continue
            if pool is None:
                raise StorageError(
                    f"pool {name!r}: WAL names version {version} but no "
                    "snapshot or create record provides a base state"
                )
            try:
                if op == "add":
                    pool.add_juror(
                        Juror(
                            float(record["e"]),
                            float(record["r"]),
                            juror_id=str(record["id"]),
                        )
                    )
                elif op == "remove":
                    pool.remove_juror(str(record["id"]))
                elif op == "update":
                    pool.update_juror(
                        str(record["id"]),
                        error_rate=float(record["e"]),
                        requirement=float(record["r"]),
                    )
                else:
                    raise StorageError(
                        f"pool {name!r}: unknown WAL op {op!r}"
                    )
            except (KeyError, InvalidJuryError, TypeError, ValueError) as exc:
                raise StorageError(
                    f"pool {name!r}: WAL record at version {version} cannot "
                    f"be replayed ({exc}) — refusing to serve divergent state"
                ) from exc
            if pool.version != version:
                raise StorageError(
                    f"pool {name!r}: WAL version discontinuity (expected "
                    f"{pool.version}, record says {version})"
                )
            replayed += 1
        if pool is None:
            raise StorageError(
                f"pool {name!r}: no snapshot and no valid WAL records"
            )

        writer = WalWriter(
            directory / _WAL_NAME,
            fsync_batch=self.fsync_batch,
            valid_bytes=max(scan.valid_bytes, len(MAGIC)),
        )
        store = PoolStore(
            self,
            name,
            directory,
            writer,
            records=scan.records,
            snapshot_version=snapshot_version,
        )
        pool.bind_store(store)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        self.stats.lazy_loads += 1
        self.stats.replays += 1
        self.stats.records_replayed += replayed
        self.stats.recovery_ms += elapsed_ms
        self.stats.last_recovery_ms = elapsed_ms
        return pool, store

    def _gc_tombstoned(self, name: str, directory: Path) -> None:
        self._write_tombstone_meta(directory, name)
        shutil.rmtree(directory, ignore_errors=True)
        self._index.pop(name, None)
