"""Cost model: pick physical operators and numeric backends for a plan.

The choices mirror — and now centralise — the crossovers that used to live
scattered across the execution layer:

* ``jer`` backend (:func:`repro.core.jer.jury_error_rate` auto rule):
  the ``O(n^2)`` DP below :data:`~repro.core.jer.AUTO_CBA_THRESHOLD`
  jurors, the FFT-based CBA beyond.
* ``pmf`` backend (:class:`repro.core.poisson_binomial.PoissonBinomial`
  auto rule): sequential DP below :data:`~repro.core.poisson_binomial.FFT_CROSSOVER`,
  divide-and-conquer convolution beyond.
* exact operator: exhaustive enumeration up to
  :data:`ENUMERATION_CROSSOVER` *effective* candidates (those individually
  affordable under the budget — an unaffordable candidate can never join a
  feasible jury, so budget tightness shrinks the enumeration frontier),
  branch and bound beyond.
* ``kernel`` backend (:mod:`repro.core.kernels` registry): which compiled
  implementation the model's *hot* kernel dispatches to at this pool size —
  NumPy below the measured crossovers
  (:data:`~repro.core.kernels.COMPILED_SWEEP_CROSSOVER` for the AltrM
  sweep, :data:`~repro.core.kernels.COMPILED_PAY_CROSSOVER` for the PayALG
  pairing scan, :data:`~repro.core.kernels.COMPILED_BLOCK_CROSSOVER`
  elements for the exact solvers' block kernels), the active compiled
  backend (numba or native) beyond.
* answer frontier (:mod:`repro.plan.frontier`): the build-vs-probe
  crossover — :func:`frontier_eligible` admits AltrM queries over pools of
  at least :data:`FRONTIER_MIN_POOL` candidates, and
  :func:`frontier_break_even` says after how many repeat probes
  materialising the frontier beats re-scanning the profile.

Every function here is pure and deterministic; :mod:`repro.plan.planner`
memoises the combined choice, which is what makes plans cheap to recompute
and trivially cacheable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import kernels as _kernels
from repro.core.jer import AUTO_CBA_THRESHOLD
from repro.core.kernels import (
    COMPILED_BLOCK_CROSSOVER,
    COMPILED_PAY_CROSSOVER,
    COMPILED_SWEEP_CROSSOVER,
)
from repro.core.poisson_binomial import FFT_CROSSOVER

__all__ = [
    "COMPILED_BLOCK_CROSSOVER",
    "COMPILED_PAY_CROSSOVER",
    "COMPILED_SWEEP_CROSSOVER",
    "ENUMERATION_CROSSOVER",
    "FRONTIER_MIN_POOL",
    "PlanCost",
    "jer_backend_for",
    "pmf_backend_for",
    "kernel_backend_for",
    "exact_operator_for",
    "affordable_count",
    "estimate_plan_cost",
    "plan_cost",
    "KERNEL_BACKEND_SPEEDUP",
    "MAX_SCHEDULING_COST",
    "frontier_build_ops",
    "frontier_probe_ops",
    "frontier_scan_ops",
    "frontier_break_even",
    "frontier_eligible",
]

#: Effective candidate count up to which exhaustive enumeration beats branch
#: and bound (the historical ``select_jury_optimal(method="auto")`` rule).
ENUMERATION_CROSSOVER = 14

#: Smallest pool for which the engine materialises an answer frontier.
#: Below this the profile has at most two odd prefixes, where a binary-search
#: probe costs no less than the linear ``best_odd_prefix`` scan it replaces
#: (``frontier_probe_ops == frontier_scan_ops`` at two entries) — the
#: build-vs-probe crossover never favours building.
FRONTIER_MIN_POOL = 5


@dataclass(frozen=True)
class PlanCost:
    """Cost-model inputs and per-operator work estimates for one query.

    Attributes
    ----------
    pool_size:
        Number of candidates ``N`` in the pool.
    affordable:
        Candidates whose individual requirement fits the budget (``N`` when
        the query has no budget).  Only these can appear in any feasible
        jury, so this is the *effective* pool size for exact search.
    budget_tightness:
        ``1 - affordable / pool_size`` — 0 when every candidate is
        individually affordable, approaching 1 as the budget excludes the
        pool.
    estimates:
        ``(operator, estimated kernel operations)`` pairs for the operators
        the model weighed, in preference order; the chosen operator is the
        plan's ``operator`` field.
    """

    pool_size: int
    affordable: int
    budget_tightness: float
    estimates: tuple[tuple[str, float], ...]


def jer_backend_for(pool_size: int) -> str:
    """JER backend ``jury_error_rate(..., method="auto")`` would use."""
    return "cba" if pool_size >= AUTO_CBA_THRESHOLD else "dp"


def pmf_backend_for(pool_size: int) -> str:
    """Pmf backend ``PoissonBinomial(..., method="auto")`` would use."""
    return "conv" if pool_size >= FFT_CROSSOVER else "dp"


def kernel_backend_for(model: str, pool_size: int) -> str:
    """Kernel backend the model's *hot* kernel dispatches to at this size.

    ``altr``'s hot kernel is the prefix sweep and ``pay``'s is the pairing
    scan, both driven directly by pool size.  The exact solvers' hot
    kernels are the block scorers (``batch_jury_jer`` et al.), whose block
    sizes are runtime-dependent; the model uses ``pool_size ** 2`` elements
    as the planning estimate (one enumeration block of ``pool_size``-juries),
    while the actual per-call dispatch re-decides from true block sizes.
    Resolution honours the session mode: forced modes name the forced
    backend (or its fallback), ``auto`` applies the measured crossovers.
    """
    if model == "altr":
        return _kernels.kernel_backend_for("sweep", pool_size)
    if model == "pay":
        return _kernels.kernel_backend_for("pay_scan", pool_size)
    return _kernels.kernel_backend_for("jury_jer", pool_size * pool_size)


def exact_operator_for(n_effective: int) -> str:
    """Exact physical operator for ``n_effective`` affordable candidates."""
    if n_effective <= ENUMERATION_CROSSOVER:
        return "exact-enumerate"
    return "exact-branch-and-bound"


def affordable_count(reqs: np.ndarray, budget: float | None) -> int:
    """Candidates individually affordable under ``budget`` (all when None)."""
    if budget is None:
        return int(reqs.size)
    return int(np.count_nonzero(reqs <= budget))


def _frontier_entries(pool_size: int) -> int:
    """Odd prefixes of a pool — the length of profile and frontier alike."""
    return max(1, (pool_size + 1) // 2)


def frontier_scan_ops(pool_size: int) -> float:
    """Work to answer an AltrM query from a *raw* profile: the linear
    ``best_odd_prefix`` scan over every odd prefix (the kernel-path cost once
    the sweep itself is cached)."""
    return float(_frontier_entries(pool_size))


def frontier_probe_ops(pool_size: int) -> float:
    """Work to answer from a *built* frontier: one binary search."""
    return math.log2(_frontier_entries(pool_size)) + 1.0


def frontier_build_ops(pool_size: int) -> float:
    """Extra work to materialise the frontier when the profile is in hand:
    one running-argmin pass over the odd prefixes."""
    return float(_frontier_entries(pool_size))


def frontier_break_even(pool_size: int) -> int:
    """Repeat probes after which building the frontier amortises.

    The build costs one linear pass; every subsequent query saves
    ``scan - probe`` operations over re-scanning the profile.  For any pool
    at or above :data:`FRONTIER_MIN_POOL` this is a handful of probes — and
    since the hit path *also* skips ``plan_query`` + ``execute_plan``
    dispatch entirely, the model's estimate is conservative.  Below the
    crossover (where scan and probe cost the same) building never pays;
    callers should consult :func:`frontier_eligible` first.
    """
    saved = frontier_scan_ops(pool_size) - frontier_probe_ops(pool_size)
    if saved <= 0.0:
        return int(1e9)  # never amortises; effectively "do not build"
    return max(1, math.ceil(frontier_build_ops(pool_size) / saved))


def frontier_eligible(model: str, pool_size: int) -> bool:
    """Whether the answer frontier may serve queries of this shape.

    Only ``altr`` qualifies: the frontier reproduces ``best_odd_prefix``'s
    smaller-jury-wins tie-break exactly, whereas the exact solvers tie-break
    by size then lexicographic juror ids and label results differently —
    serving those from the frontier would break bit-identity with the oracle
    path.  Pools below :data:`FRONTIER_MIN_POOL` fail the build-vs-probe
    crossover (see :func:`frontier_break_even`).
    """
    return model == "altr" and pool_size >= FRONTIER_MIN_POOL


#: Calibration factors for the scheduling weight: roughly how many times
#: faster than the NumPy reference each compiled kernel backend executes the
#: hot kernels (``BENCH_kernels.json``: ~10x on the PayALG scan, ~14x on the
#: prefix sweep at 1,000-candidate pools; the numba JIT trails the native
#: build slightly).  Only *relative* magnitudes matter — the scheduler
#: bin-packs weights against each other, never against wall-clock.
KERNEL_BACKEND_SPEEDUP = {"numpy": 1.0, "numba": 8.0, "native": 12.0}

#: Ceiling on scheduling weights.  Saturated enumeration estimates are
#: ``math.inf`` (the magnitude *is* the message for the planner), but a
#: bin-packing scheduler needs finite, comparable weights.
MAX_SCHEDULING_COST = 1e15

def plan_cost(plan) -> float:
    """Calibrated scheduling weight of one planned query.

    Collapses a plan's :class:`PlanCost` estimates to a single float the
    shard scheduler (:mod:`repro.service.sched`) can bin-pack: the chosen
    operator's estimated kernel operations, divided by the measured speedup
    of the kernel backend the plan will execute on — so an exact enumeration
    dispatched to the native backend weighs less than the same enumeration
    on NumPy, matching its realized wall-clock share.

    ``plan`` is duck-typed: anything exposing ``operator``,
    ``kernel_backend`` and a :class:`PlanCost` ``cost`` qualifies — both
    :class:`~repro.plan.planner.SelectionPlan` and the shard layer's
    :class:`~repro.service.shard.PlanPayload` do.  Pure and deterministic;
    always finite and >= 1.0.
    """
    cost: PlanCost = plan.cost
    ops = None
    for operator, estimate in cost.estimates:
        if operator == plan.operator:
            ops = estimate
            break
    if ops is None:
        # Operator absent from the estimates (e.g. a frontier-probe plan or
        # a hand-built payload): fall back to the preferred estimate, then
        # to pool size.
        ops = cost.estimates[0][1] if cost.estimates else float(cost.pool_size)
    if not math.isfinite(ops) or ops > MAX_SCHEDULING_COST:
        ops = MAX_SCHEDULING_COST
    speedup = KERNEL_BACKEND_SPEEDUP.get(getattr(plan, "kernel_backend", "numpy"), 1.0)
    return max(1.0, ops / speedup)


def _enumeration_ops(n: int, limit: int) -> float:
    """Multiply-adds to score every odd jury of <= ``limit`` members by
    enumeration: each size-``k`` combination costs ``O(k^2)`` pmf work."""
    total = 0.0
    for k in range(1, limit + 1, 2):
        total += float(math.comb(n, k)) * k * k
        if total > 1e18:  # saturate; beyond this the magnitude is the message
            return math.inf
    return total


def estimate_plan_cost(
    *,
    model: str,
    pool_size: int,
    affordable: int,
    max_size: int | None = None,
    variant: str = "paper",
) -> PlanCost:
    """Work estimates for the operators applicable to this query shape."""
    n = pool_size
    tightness = 0.0 if n == 0 else 1.0 - affordable / n
    limit = n if max_size is None else min(max_size, n)
    estimates: list[tuple[str, float]]
    if model == "altr":
        # One O(N^2) vectorized sweep of the odd prefixes.
        estimates = [("altr-sweep", n * (n + 2) / 2.0)]
        if frontier_eligible(model, n):
            # The repeat-query alternative: once a frontier is materialised
            # for this pool version, a probe answers in O(log n).  The sweep
            # stays first — it is what a cold query must run — but the engine
            # consults the frontier before planning at all.
            estimates.append(("frontier-probe", frontier_probe_ops(n)))
    elif model == "pay":
        if variant == "improved":
            # Steepest descent scores every affordable pair per admission
            # step: O(N^2) trials, each an O(|jury|) extension.
            estimates = [("pay-greedy-improved", float(n) * n * n)]
        else:
            # <= N pair trials, each an O(|jury|) pmf extension; |jury| <= N.
            estimates = [("pay-greedy", float(n) * n)]
    else:  # exact
        n_eff = affordable
        eff_limit = min(limit, n_eff)
        estimates = [
            ("exact-enumerate", _enumeration_ops(n_eff, eff_limit)),
            # Branch and bound visits at most the enumeration frontier; the
            # sound prunings typically cut it by orders of magnitude.
            ("exact-branch-and-bound", _enumeration_ops(n_eff, eff_limit)),
        ]
        if exact_operator_for(n_eff) != "exact-enumerate":
            estimates.reverse()
    return PlanCost(
        pool_size=n,
        affordable=affordable,
        budget_tightness=tightness,
        estimates=tuple(estimates),
    )
