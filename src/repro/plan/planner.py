"""``plan_query`` — the single front door from queries to physical plans.

Every entry point (the scalar ``select_jury_*`` wrappers, the batch engine,
the ``repro-select`` CLI modes, the experiment runners) funnels through
:func:`plan_query`: the model string is parsed **once** here, the candidate
source is normalised to a columnar :class:`~repro.plan.view.PoolView`, and
the cost model (:mod:`repro.plan.cost`) picks the physical operator and
numeric backends.  The result is a :class:`SelectionPlan` that
:func:`repro.plan.operators.execute_plan` can run — or that
``repro-select explain`` can print without running.

Planning is deterministic and memoised: two queries with the same shape
(model, pool size, affordability, method, variant) share one cached
operator/backend choice, so planning the same query twice yields plans that
are equal field for field.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro._validation import validate_budget
from repro.core import kernels as _kernels
from repro.core.jer import JER_IMPROVEMENT_EPS
from repro.plan.cost import (
    PlanCost,
    affordable_count,
    estimate_plan_cost,
    exact_operator_for,
    jer_backend_for,
    kernel_backend_for,
    pmf_backend_for,
)
from repro.plan.view import PoolView, as_view

__all__ = ["SelectionPlan", "normalize_model", "plan_query", "planner_cache_info"]

_MODELS = ("altr", "pay", "exact")

#: Accepted spellings of the three selection models.  ``plan_query`` is the
#: one place model strings are parsed; everything downstream sees the
#: canonical short form.
_MODEL_ALIASES = {
    "altr": "altr",
    "altrm": "altr",
    "altruism": "altr",
    "pay": "pay",
    "paym": "pay",
    "pay-as-you-go": "pay",
    "exact": "exact",
    "opt": "exact",
    "optimal": "exact",
}

_VARIANTS = ("paper", "improved")
_METHODS = ("auto", "enumerate", "branch-and-bound")


def normalize_model(model: object) -> str:
    """Parse a model string to its canonical form (``altr``/``pay``/``exact``).

    Case-insensitive and alias-tolerant (``AltrM``, ``PayM``, ``opt`` ...).
    This is the single model-string parser in the library; raises
    :class:`ValueError` with the canonical names on anything unrecognised.
    """
    if isinstance(model, str):
        canonical = _MODEL_ALIASES.get(model.strip().lower())
        if canonical is not None:
            return canonical
    raise ValueError(f"unknown model {model!r}; expected one of {_MODELS}")


@dataclass(frozen=True)
class SelectionPlan:
    """A normalised selection query bound to a physical execution choice.

    The *logical* half is the normalised query: ``model``, ``budget``,
    ``max_size``, ``variant``, ``method``, the ``view`` (pool reference) and
    the tie-break tolerance.  The *physical* half is what the cost model
    chose: the ``operator`` to run, the ``jer``/``pmf`` backends the
    auto dispatchers resolve to at this pool size, the ``kernel_backend``
    the hot kernel will execute on (``numpy``/``numba``/``native``, see
    :mod:`repro.core.kernels`), plus the
    :class:`~repro.plan.cost.PlanCost` estimates behind the choice.
    """

    task_id: str
    model: str
    view: PoolView
    budget: float | None
    max_size: int | None
    variant: str
    method: str
    operator: str
    jer_backend: str
    pmf_backend: str
    cost: PlanCost
    #: Minimum JER improvement that counts as strictly better (the shared
    #: tie-break tolerance every operator applies).
    jer_tie_eps: float = JER_IMPROVEMENT_EPS
    #: Compiled-kernel backend the hot kernel dispatches to (defaulted for
    #: backward-compatible construction and payload inflation).
    kernel_backend: str = "numpy"

    def describe(self) -> dict:
        """JSON-friendly rendering for ``repro-select explain``."""
        return {
            "task": self.task_id,
            "model": self.model,
            "pool_size": self.view.size,
            "pool_id": self.view.pool_id,
            "budget": self.budget,
            "max_size": self.max_size,
            "variant": self.variant if self.model == "pay" else None,
            "method": self.method if self.model == "exact" else None,
            "operator": self.operator,
            "jer_backend": self.jer_backend,
            "pmf_backend": self.pmf_backend,
            "kernel_backend": self.kernel_backend,
            "jer_tie_eps": self.jer_tie_eps,
            "cost": {
                "pool_size": self.cost.pool_size,
                "affordable": self.cost.affordable,
                "budget_tightness": self.cost.budget_tightness,
                "estimates": [
                    {"operator": op, "ops": ops} for op, ops in self.cost.estimates
                ],
            },
        }


@lru_cache(maxsize=4096)
def _choose(
    model: str,
    pool_size: int,
    affordable: int,
    max_size: int | None,
    variant: str,
    method: str,
    kernel_token: str,
) -> tuple[str, str, str, str, PlanCost]:
    """Memoised (operator, jer/pmf/kernel backends, cost) for a query shape.

    ``kernel_token`` is :func:`repro.core.kernels.resolution_token` — it
    captures the session's kernel-backend mode and what it resolves to, so
    a mode switch (``set_kernel_backend`` / ``--kernel-backend``) can never
    serve a stale ``kernel_backend`` out of this memo.
    """
    del kernel_token  # participates in the cache key only
    if model == "altr":
        operator = "altr-sweep"
    elif model == "pay":
        operator = "pay-greedy" if variant == "paper" else "pay-greedy-improved"
    elif method == "enumerate":
        operator = "exact-enumerate"
    elif method == "branch-and-bound":
        operator = "exact-branch-and-bound"
    else:
        operator = exact_operator_for(affordable)
    cost = estimate_plan_cost(
        model=model,
        pool_size=pool_size,
        affordable=affordable,
        max_size=max_size,
        variant=variant,
    )
    # The PayM operator maintains its pmfs by exact sequential convolution
    # at every jury size (it never dispatches through jury_error_rate), so
    # the jer backend it effectively uses is always the DP arithmetic.
    jer_backend = "dp" if model == "pay" else jer_backend_for(pool_size)
    kernel_backend = kernel_backend_for(model, pool_size)
    return operator, jer_backend, pmf_backend_for(pool_size), kernel_backend, cost


def planner_cache_info():
    """Hit/miss statistics of the memoised operator/backend choice."""
    return _choose.cache_info()


def plan_query(
    candidates=None,
    *,
    pool=None,
    model: str = "altr",
    budget: float | None = None,
    max_size: int | None = None,
    variant: str = "paper",
    method: str = "auto",
    task_id: str = "<query>",
) -> SelectionPlan:
    """Normalise a selection query and bind it to a physical plan.

    Parameters
    ----------
    candidates:
        Candidate jurors (any order; validated and sorted), mutually
        exclusive with ``pool``.
    pool:
        A :class:`~repro.plan.view.PoolView`, or any object exposing one as
        ``.view`` (e.g. :class:`~repro.service.pool.CandidatePool`).
    model:
        Selection model; parsed once here — accepts ``altr``/``pay``/
        ``exact`` and the common aliases (``AltrM``, ``PayM``, ``opt``).
    budget:
        PayM budget (required for ``pay``, optional for ``exact``).
    max_size:
        Optional cap on the jury size (``altr``/``exact``).
    variant:
        PayALG variant: ``paper`` or ``improved``.
    method:
        Exact-solver preference: ``auto`` (cost model decides),
        ``enumerate``, or ``branch-and-bound``.
    task_id:
        Caller label echoed on the plan and in explain output.

    Returns
    -------
    SelectionPlan
        Ready for :func:`repro.plan.operators.execute_plan`.
    """
    canonical = normalize_model(model)
    if (candidates is None) == (pool is None):
        raise ValueError("exactly one of 'candidates' and 'pool' must be provided")
    view = as_view(pool if pool is not None else candidates)
    if canonical == "pay":
        if budget is None:
            raise ValueError("model 'pay' requires a budget")
        if variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected 'paper' or 'improved'"
            )
    if canonical == "exact" and method not in _METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected 'auto', 'enumerate' or "
            "'branch-and-bound'"
        )
    normalized_budget = None if budget is None else validate_budget(budget)
    affordable = affordable_count(view.reqs, normalized_budget)
    operator, jer_backend, pmf_backend, kernel_backend, cost = _choose(
        canonical,
        view.size,
        affordable,
        max_size,
        variant,
        method,
        _kernels.resolution_token(),
    )
    return SelectionPlan(
        task_id=task_id,
        model=canonical,
        view=view,
        budget=normalized_budget,
        max_size=max_size,
        variant=variant,
        method=method,
        operator=operator,
        jer_backend=jer_backend,
        pmf_backend=pmf_backend,
        kernel_backend=kernel_backend,
        cost=cost,
    )
