"""Columnar candidate-pool views (struct-of-arrays) for the plan layer.

A :class:`PoolView` is the physical operators' input format: the candidate
set decomposed into parallel columns in Lemma 3 (ascending error-rate, id
tie-break) order —

* ``eps``  — float64 error-rate vector,
* ``reqs`` — float64 payment-requirement vector,
* ``ids``  — juror-id tie-break keys.

Operators work on these arrays directly; :class:`~repro.core.juror.Juror`
objects survive only at API boundaries, materialised lazily through
:attr:`PoolView.ordered` when a :class:`SelectionResult` needs members.
Views built from an existing :class:`~repro.service.pool.CandidatePool`
share its already-sorted arrays, so planning adds no re-sort or re-hash.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.juror import Juror, ensure_unique_ids
from repro.core.selection.base import pool_fingerprint, sorted_candidates
from repro.errors import EmptyCandidateSetError, InvalidJuryError

__all__ = ["PoolView", "as_view"]


def _read_only(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class PoolView:
    """Struct-of-arrays view of a candidate pool in Lemma 3 order.

    Build one with :meth:`from_jurors` (validates and sorts) or receive one
    from :attr:`repro.service.pool.CandidatePool.view` (shares the pool's
    cached arrays).  The arrays are read-only; a view is immutable and safe
    to share between plans.

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> view = PoolView.from_jurors(jurors_from_arrays([0.3, 0.1, 0.2]))
    >>> view.eps.tolist()
    [0.1, 0.2, 0.3]
    >>> view.size
    3
    """

    __slots__ = ("eps", "reqs", "_ids", "_ordered", "_fingerprint", "pool_id")

    def __init__(
        self,
        eps: np.ndarray,
        reqs: np.ndarray,
        *,
        ordered: tuple[Juror, ...] | None = None,
        ids: tuple[str, ...] | None = None,
        fingerprint: str | None = None,
        pool_id: str | None = None,
    ) -> None:
        if eps.size == 0:
            raise EmptyCandidateSetError("a pool view must not be empty")
        if eps.shape != reqs.shape:
            raise ValueError(
                f"eps and reqs must be parallel vectors, got {eps.shape} vs {reqs.shape}"
            )
        self.eps = _read_only(np.asarray(eps, dtype=np.float64))
        self.reqs = _read_only(np.asarray(reqs, dtype=np.float64))
        self._ids = ids
        self._ordered = ordered
        self._fingerprint = fingerprint
        self.pool_id = pool_id

    # ------------------------------------------------------------------
    @classmethod
    def from_jurors(
        cls, candidates: Iterable[Juror], *, pool_id: str | None = None
    ) -> "PoolView":
        """Validate, sort into Lemma 3 order, and decompose into columns."""
        members = tuple(candidates)
        if not members:
            raise EmptyCandidateSetError("a pool view must not be empty")
        if not all(isinstance(j, Juror) for j in members):
            raise InvalidJuryError("all pool members must be Juror instances")
        ensure_unique_ids(members, where="candidate pool")
        ordered = tuple(sorted_candidates(members))
        return cls(
            np.array([j.error_rate for j in ordered], dtype=np.float64),
            np.array([j.requirement for j in ordered], dtype=np.float64),
            ordered=ordered,
            pool_id=pool_id,
        )

    @classmethod
    def from_sorted(
        cls,
        ordered: Sequence[Juror],
        *,
        error_rates: np.ndarray | None = None,
        fingerprint: str | None = None,
        pool_id: str | None = None,
    ) -> "PoolView":
        """Wrap an already-validated, Lemma-3-sorted member tuple.

        ``error_rates`` (when the caller already holds the sorted vector)
        and ``fingerprint`` are reused instead of recomputed.
        """
        members = tuple(ordered)
        eps = (
            np.array([j.error_rate for j in members], dtype=np.float64)
            if error_rates is None
            else np.asarray(error_rates, dtype=np.float64)
        )
        return cls(
            eps,
            np.array([j.requirement for j in members], dtype=np.float64),
            ordered=members,
            fingerprint=fingerprint,
            pool_id=pool_id,
        )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of candidates ``N``."""
        return int(self.eps.size)

    def __len__(self) -> int:
        return self.size

    @property
    def ids(self) -> tuple[str, ...]:
        """Juror-id tie-break keys, parallel to ``eps``/``reqs``."""
        if self._ids is None:
            self._ids = tuple(j.juror_id for j in self.ordered)
        return self._ids

    @property
    def ordered(self) -> tuple[Juror, ...]:
        """Members as :class:`Juror` objects (materialised lazily)."""
        if self._ordered is None:
            self._ordered = self.members(self.size)
        return self._ordered

    def members(self, count: int) -> tuple[Juror, ...]:
        """The first ``count`` members in Lemma 3 order.

        Unlike slicing :attr:`ordered`, an unmaterialised view builds only
        the ``count`` requested :class:`Juror` objects — the AltrM operator
        uses this to inflate just the winning prefix instead of the whole
        pool (the worker shards never need the rest).
        """
        if self._ordered is not None:
            return self._ordered[:count]
        ids = self._ids or tuple(f"candidate-{i}" for i in range(count))
        return tuple(
            Juror(float(e), float(r), juror_id=i)
            for e, r, i in zip(self.eps[:count], self.reqs[:count], ids)
        )

    @property
    def fingerprint(self) -> str:
        """Content hash (same scheme as :func:`pool_fingerprint`)."""
        if self._fingerprint is None:
            self._fingerprint = pool_fingerprint(self.ordered)
        return self._fingerprint

    def take(self, mask: np.ndarray, *, suffix: str = "subset") -> "PoolView":
        """Sub-view of the rows selected by a boolean mask (order preserved)."""
        ordered = None
        if self._ordered is not None:
            ordered = tuple(j for j, keep in zip(self._ordered, mask) if keep)
        ids = None
        if self._ids is not None:
            ids = tuple(i for i, keep in zip(self._ids, mask) if keep)
        label = f"{self.pool_id}/{suffix}" if self.pool_id else None
        return PoolView(
            self.eps[mask],
            self.reqs[mask],
            ordered=ordered,
            ids=ids,
            pool_id=label,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" id={self.pool_id!r}" if self.pool_id else ""
        return f"PoolView(size={self.size}{label})"


def as_view(source, *, pool_id: str | None = None) -> PoolView:
    """Coerce a candidate source to a :class:`PoolView`.

    Accepts a :class:`PoolView` (returned unchanged), any object exposing a
    ``view`` attribute that is one (e.g. :class:`~repro.service.pool.CandidatePool`),
    or a sequence of :class:`Juror` objects (validated and sorted).
    """
    if isinstance(source, PoolView):
        return source
    candidate_view = getattr(source, "view", None)
    if isinstance(candidate_view, PoolView):
        return candidate_view
    return PoolView.from_jurors(source, pool_id=pool_id)


def as_columns(source) -> tuple[np.ndarray, np.ndarray, tuple[Juror, ...]]:
    """Columnar ``(eps, reqs, ordered members)`` in Lemma 3 order.

    The operator-facing coercion shared by the PayM greedy and the exact
    solvers: a :class:`PoolView` contributes its arrays directly, anything
    else goes through :func:`as_view` (validated, sorted, decomposed).
    """
    eps = getattr(source, "eps", None)
    reqs = getattr(source, "reqs", None)
    if eps is not None and reqs is not None:
        return eps, reqs, source.ordered
    view = as_view(source)
    return view.eps, view.reqs, view.ordered
