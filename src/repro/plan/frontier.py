"""Answer frontier: serve repeat AltrM selections in ``O(log n)``.

The AltrM optimum over a fixed pool is a *function of the size cap alone*:
Lemma 3 pins the candidate order, the odd-prefix JER profile enumerates every
feasible answer, and :func:`repro.core.jer.best_odd_prefix` reduces a query to
"the best odd prefix of size ``<= max_size``".  That reduction is a **running
argmin** over the profile — a monotone step function of the cap — so the full
answer set for a pool version can be materialised once (two columnar arrays)
and every later query answered by binary search, without planning and without
touching the kernels.

:class:`AnswerFrontier`
    The materialised running argmin for one ``(pool fingerprint, version)``:
    ``ns[i]`` is the ``i``-th odd prefix size and ``best_ns[i]`` /
    ``best_jers[i]`` the winning prefix among sizes ``<= ns[i]``, computed
    with *exactly* the :data:`~repro.core.jer.JER_IMPROVEMENT_EPS` tie-break
    of :func:`~repro.core.jer.best_odd_prefix` (prefer the smaller jury on
    ties).  :meth:`AnswerFrontier.probe` is one ``np.searchsorted``;
    :meth:`AnswerFrontier.select` wraps the probe into the same
    :class:`~repro.core.selection.base.SelectionResult` the plan pipeline
    builds, field for field and bit for bit.

    On pool churn the frontier is **delta-repaired**, not rebuilt: a mutation
    at sorted position ``p`` leaves every prefix of size ``<= p`` intact, so
    the first ``(p + 1) // 2`` frontier entries stay valid and
    :meth:`AnswerFrontier.repaired` resumes the running argmin from the first
    dirty entry of the (itself delta-repaired) sweep profile — the exact
    analogue of :func:`repro.core.jer.resume_prefix_sweep` one level up.

:class:`FrontierCache`
    LRU ``fingerprint -> AnswerFrontier`` map with hit/miss/eviction plus
    build/repair/rebuild counters, mirroring
    :class:`repro.service.cache.PrefixSweepCache`.  Content-hash keys make it
    safe under churn (a mutation changes the fingerprint), and ``maxsize=0``
    disables it entirely — the oracle configuration that
    ``REPRO_FRONTIER_CACHE=0`` pins in CI.

Only ``model="altr"`` plans are frontier-eligible.  ``exact`` queries over
the same pool *can* return the same jury, but their tie-break differs (ties
within ``1e-15`` resolve by size then lexicographic juror ids, and the result
is labelled ``OPT-enumerate``/``OPT-bnb``), so serving them from the frontier
would break bit-identity with the oracle path.  The eligibility rule and the
build-vs-probe crossover live in :mod:`repro.plan.cost`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.core.jer import JER_IMPROVEMENT_EPS
from repro.core.juror import Juror, Jury
from repro.core.selection.base import SelectionResult, SelectionStats

__all__ = [
    "AnswerFrontier",
    "FrontierCache",
    "DEFAULT_FRONTIER_CACHE_SIZE",
    "FRONTIER_ENV_FLAG",
    "frontier_cache_enabled",
    "frontier_cache_size_from_env",
]

#: Default number of answer frontiers retained by an engine's cache (one per
#: pool fingerprint; two int64/float64 columns each, a few KiB per pool).
DEFAULT_FRONTIER_CACHE_SIZE = 128

#: Environment flag gating the frontier cache.  Unset or truthy -> enabled;
#: ``0`` / ``false`` / ``no`` / ``off`` (case-insensitive) -> disabled, which
#: forces every query down the plan_query() -> execute_plan() oracle path.
FRONTIER_ENV_FLAG = "REPRO_FRONTIER_CACHE"

_FALSE_VALUES = frozenset({"0", "false", "no", "off"})


def frontier_cache_enabled() -> bool:
    """Whether :data:`FRONTIER_ENV_FLAG` leaves the frontier cache on."""
    raw = os.environ.get(FRONTIER_ENV_FLAG, "").strip().lower()
    if not raw:
        return True
    return raw not in _FALSE_VALUES


def frontier_cache_size_from_env() -> int:
    """Engine default frontier capacity (0 when the env flag disables it)."""
    return DEFAULT_FRONTIER_CACHE_SIZE if frontier_cache_enabled() else 0


class AnswerFrontier:
    """The running argmin over one pool version's odd-prefix JER profile.

    Construct via :meth:`build` (fresh) or :meth:`repaired` (delta repair
    from a previous version's frontier).  All three columns are read-only
    float64/int64 arrays; instances are immutable and safe to share across
    threads.

    Examples
    --------
    >>> import numpy as np
    >>> ns = np.array([1, 3, 5], dtype=np.int64)
    >>> jers = np.array([0.2, 0.1, 0.15])
    >>> frontier = AnswerFrontier.build(ns, jers, fingerprint="fp")
    >>> frontier.probe(4)   # best odd prefix of size <= 4
    (3, 0.1, 2)
    >>> frontier.probe(None)
    (3, 0.1, 3)
    """

    __slots__ = ("ns", "best_ns", "best_jers", "fingerprint", "version")

    def __init__(
        self,
        ns: np.ndarray,
        best_ns: np.ndarray,
        best_jers: np.ndarray,
        *,
        fingerprint: str,
        version: int | None = None,
    ) -> None:
        self.ns = ns
        self.best_ns = best_ns
        self.best_jers = best_jers
        self.fingerprint = fingerprint
        self.version = version

    @property
    def entries(self) -> int:
        """Number of odd prefixes covered (``(pool_size + 1) // 2``)."""
        return int(self.ns.size)

    @classmethod
    def build(
        cls,
        ns: np.ndarray,
        jers: np.ndarray,
        *,
        fingerprint: str,
        version: int | None = None,
    ) -> AnswerFrontier:
        """Materialise the frontier from a full sweep profile (O(entries))."""
        return cls._compute(ns, jers, 0, None, None, fingerprint, version)

    def repaired(
        self,
        ns: np.ndarray,
        jers: np.ndarray,
        clean_entries: int,
        *,
        fingerprint: str,
        version: int | None = None,
    ) -> AnswerFrontier:
        """A new frontier for a churned profile, reusing the clean prefix.

        ``clean_entries`` is the number of leading frontier entries still
        valid — for a mutation burst whose lowest sorted position was ``p``,
        that is ``(p + 1) // 2`` (prefixes of size ``<= p`` are untouched).
        The running argmin resumes from the first dirty entry, so repair cost
        is proportional to the dirty suffix, exactly like the profile repair
        it piggybacks on.
        """
        clean = min(int(clean_entries), self.entries, int(ns.size))
        return type(self)._compute(
            ns, jers, max(clean, 0), self.best_ns, self.best_jers,
            fingerprint, version,
        )

    @classmethod
    def _compute(
        cls,
        ns: np.ndarray,
        jers: np.ndarray,
        clean: int,
        prev_best_ns: np.ndarray | None,
        prev_best_jers: np.ndarray | None,
        fingerprint: str,
        version: int | None,
    ) -> AnswerFrontier:
        ns = np.ascontiguousarray(ns, dtype=np.int64)
        size = int(ns.size)
        best_ns = np.empty(size, dtype=np.int64)
        best_jers = np.empty(size, dtype=np.float64)
        if clean > 0:
            assert prev_best_ns is not None and prev_best_jers is not None
            best_ns[:clean] = prev_best_ns[:clean]
            best_jers[:clean] = prev_best_jers[:clean]
            incumbent_n = int(best_ns[clean - 1])
            incumbent_jer = float(best_jers[clean - 1])
        else:
            incumbent_n, incumbent_jer = -1, float("inf")
        # The scan below is best_odd_prefix's loop verbatim (same comparison,
        # same epsilon), checkpointed at every prefix instead of only at the
        # caller's max_size — that is what makes probes bit-identical.
        for i in range(clean, size):
            value = float(jers[i])
            if value < incumbent_jer - JER_IMPROVEMENT_EPS:
                incumbent_n, incumbent_jer = int(ns[i]), value
            best_ns[i] = incumbent_n
            best_jers[i] = incumbent_jer
        ns.flags.writeable = False
        best_ns.flags.writeable = False
        best_jers.flags.writeable = False
        return cls(ns, best_ns, best_jers, fingerprint=fingerprint, version=version)

    def probe(self, max_size: int | None = None) -> tuple[int, float, int]:
        """Answer ``best_odd_prefix(ns, jers, max_size=max_size)`` in O(log n).

        Returns ``(jury size, jer, prefixes considered)`` — the third element
        is what the plan path reports as ``juries_considered`` /
        ``jer_evaluations``.  Raises the same :class:`ValueError` as
        :func:`~repro.core.jer.best_odd_prefix` when no odd prefix fits under
        ``max_size``.
        """
        if max_size is None:
            index = self.entries - 1
        else:
            index = int(np.searchsorted(self.ns, max_size, side="right")) - 1
        if index < 0:
            raise ValueError("cannot select from an empty sweep profile")
        return int(self.best_ns[index]), float(self.best_jers[index]), index + 1

    def select(
        self,
        ordered: Sequence[Juror],
        *,
        max_size: int | None = None,
    ) -> SelectionResult:
        """Answer an AltrM query from the frontier, plan-pipeline shaped.

        ``ordered`` must be the pool's members in Lemma 3 order (the same
        sequence the plan's :class:`~repro.plan.view.PoolView` wraps), so the
        jury holds the identical :class:`~repro.core.juror.Juror` objects the
        oracle path would have selected.  Field-for-field this mirrors
        :func:`repro.core.selection.altr.result_from_sweep_profile`; the
        caller stamps ``stats.elapsed_seconds``.
        """
        best_n, best_jer, considered = self.probe(max_size)
        stats = SelectionStats(
            juries_considered=considered,
            jer_evaluations=considered,
        )
        return SelectionResult(
            jury=Jury(list(ordered[:best_n])),
            jer=best_jer,
            algorithm="AltrALG",
            model="AltrM",
            budget=None,
            stats=stats,
        )


class FrontierCache:
    """LRU cache ``fingerprint -> AnswerFrontier`` with lifecycle counters.

    ``hits``/``misses``/``evictions`` mirror
    :class:`~repro.service.cache.PrefixSweepCache`; ``builds``/``repairs``/
    ``rebuilds`` count how frontiers entered the cache (fresh build, delta
    repair from a prior version, forced full rebuild).  ``maxsize=0``
    disables storage — every :meth:`get` returns ``None`` without counting,
    so a disabled engine reports all-zero frontier stats.
    """

    __slots__ = (
        "_maxsize", "_entries",
        "hits", "misses", "evictions", "builds", "repairs", "rebuilds",
    )

    def __init__(self, maxsize: int = DEFAULT_FRONTIER_CACHE_SIZE) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[str, AnswerFrontier] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.builds = 0
        self.repairs = 0
        self.rebuilds = 0

    @property
    def maxsize(self) -> int:
        """Capacity in frontiers (0 = disabled)."""
        return self._maxsize

    @property
    def enabled(self) -> bool:
        """Whether the cache stores (and therefore serves) anything at all."""
        return self._maxsize > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> AnswerFrontier | None:
        """The cached frontier, or ``None`` (disabled caches never count)."""
        if self._maxsize == 0:
            return None
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, frontier: AnswerFrontier, *, mode: str = "built") -> None:
        """Store a frontier, recording how it was produced.

        ``mode`` is one of ``"built"`` (fresh), ``"repaired"`` (delta repair)
        or ``"rebuilt"`` (churn threshold exceeded, full recompute);
        ``"cached"`` stores without counting (the frontier was already
        accounted for when first produced).
        """
        if mode == "built":
            self.builds += 1
        elif mode == "repaired":
            self.repairs += 1
        elif mode == "rebuilt":
            self.rebuilds += 1
        elif mode != "cached":
            raise ValueError(f"unknown frontier mode {mode!r}")
        if self._maxsize == 0:
            return
        self._entries[frontier.fingerprint] = frontier
        self._entries.move_to_end(frontier.fingerprint)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, fingerprint: str) -> bool:
        """Explicitly evict one frontier; returns whether it was present.

        Content-keyed entries never go *wrong*, but a dropped registry
        pool's frontier is dead weight — the registry drop path frees it
        here in the same breath as the sweep caches.
        """
        if self._entries.pop(fingerprint, None) is None:
            return False
        self.evictions += 1
        return True

    def clear(self) -> None:
        """Drop all frontiers and reset every counter."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.builds = 0
        self.repairs = 0
        self.rebuilds = 0

    def snapshot(self) -> dict:
        """Counter snapshot for the stats surfaces (plain ints, JSON-ready)."""
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "maxsize": self._maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "builds": self.builds,
            "repairs": self.repairs,
            "rebuilds": self.rebuilds,
        }
