"""Plan-based execution core: one path from every entry point to the kernels.

This package separates the *logical* selection query from the *physical*
operators that answer it, database-style:

:func:`plan_query`
    The single front door.  Normalises the query (model strings are parsed
    once, here), builds a columnar :class:`PoolView`, and asks the cost
    model to pick the physical operator and numeric backends.
:class:`SelectionPlan`
    The normalised query bound to its physical choice — executable via
    :func:`execute_plan`, or printable via ``repro-select explain`` without
    executing.
:class:`PoolView`
    Struct-of-arrays candidate pool (error rates, requirements, id
    tie-break keys) in Lemma 3 order; what every physical operator
    consumes.  :class:`~repro.core.juror.Juror` objects survive only at API
    boundaries.
:mod:`repro.plan.cost`
    The cost model: jer ``dp``/``cba`` and pmf ``dp``/``conv`` crossovers,
    ``enumerate`` vs ``branch-and-bound`` from pool size and budget
    tightness, and the frontier build-vs-probe crossover.
:mod:`repro.plan.frontier`
    The answer frontier: per-(pool fingerprint, version) running argmin over
    the odd-prefix JER profile, probed by binary search so repeat AltrM
    queries skip planning and kernels entirely (consulted by the batch
    engine *before* ``plan_query``).

The scalar selectors (:func:`repro.select_jury_altr`,
:func:`repro.select_jury_pay`, :func:`repro.select_jury_optimal`), the
batch engine (:class:`repro.service.BatchSelectionEngine`), the
``repro-select`` CLI modes and the experiment runners all execute through
``plan_query() -> execute_plan()``, so their answers cannot diverge.
"""

from repro.plan.cost import (
    ENUMERATION_CROSSOVER,
    FRONTIER_MIN_POOL,
    PlanCost,
    estimate_plan_cost,
    frontier_break_even,
    frontier_eligible,
    plan_cost,
)
from repro.plan.frontier import (
    DEFAULT_FRONTIER_CACHE_SIZE,
    FRONTIER_ENV_FLAG,
    AnswerFrontier,
    FrontierCache,
    frontier_cache_enabled,
    frontier_cache_size_from_env,
)
from repro.plan.operators import execute_plan
from repro.plan.planner import (
    SelectionPlan,
    normalize_model,
    plan_query,
    planner_cache_info,
)
from repro.plan.view import PoolView, as_view

__all__ = [
    "DEFAULT_FRONTIER_CACHE_SIZE",
    "ENUMERATION_CROSSOVER",
    "FRONTIER_ENV_FLAG",
    "FRONTIER_MIN_POOL",
    "AnswerFrontier",
    "FrontierCache",
    "PlanCost",
    "PoolView",
    "SelectionPlan",
    "as_view",
    "estimate_plan_cost",
    "execute_plan",
    "frontier_break_even",
    "frontier_cache_enabled",
    "frontier_cache_size_from_env",
    "frontier_eligible",
    "normalize_model",
    "plan_cost",
    "plan_query",
    "planner_cache_info",
]
