"""Physical operators: execute a :class:`~repro.plan.planner.SelectionPlan`.

Each operator consumes the plan's columnar :class:`~repro.plan.view.PoolView`
and returns a :class:`~repro.core.selection.base.SelectionResult`:

``altr-sweep``
    Odd-prefix JER profile via the vectorized sweep kernel
    (:func:`repro.core.jer.batch_prefix_jer_sweep`); accepts a precomputed
    or cached profile so the batch engine's shared sweeps and the live-pool
    delta-maintained profiles plug straight in.
``pay-greedy`` / ``pay-greedy-improved``
    The columnar PayALG greedy (:func:`repro.core.selection.pay.run_pay_greedy`),
    whose pair trials are scored block-wise with
    :func:`repro.core.jer.extend_pmf_block`.
``exact-enumerate``
    Blocked exhaustive enumeration (:func:`repro.core.selection.exact.enumerate_optimal`)
    over the *affordable* sub-view — a candidate individually over budget can
    never join a feasible jury, so the cost model's budget-tightness input
    directly shrinks the frontier.
``exact-branch-and-bound``
    The pruned depth-first search
    (:func:`repro.core.selection.exact.branch_and_bound_optimal`).

Selections are bit-identical to the historical single-query selectors: the
operators *are* those selectors, re-hosted on the columnar layout.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.jer import best_odd_prefix, prefix_jer_profile
from repro.core.selection.altr import result_from_sweep_profile
from repro.core.selection.base import SelectionResult
from repro.core.selection.exact import branch_and_bound_optimal, enumerate_optimal
from repro.core.selection.pay import run_pay_greedy
from repro.errors import InfeasibleSelectionError
from repro.plan.planner import SelectionPlan
from repro.plan.view import PoolView

__all__ = ["execute_plan"]


def _run_altr(
    plan: SelectionPlan, profile: tuple[np.ndarray, np.ndarray] | None
) -> SelectionResult:
    if profile is None:
        profile = prefix_jer_profile(plan.view.eps, backend=plan.kernel_backend)
    ns, jers = profile
    # Pick the winning prefix size first so an unmaterialised view (a shard
    # worker's reconstructed payload) inflates only the selected jurors.
    best = best_odd_prefix(ns, jers, max_size=plan.max_size)
    return result_from_sweep_profile(
        plan.view.members(best[0]), ns, jers, max_size=plan.max_size, best=best
    )


def _affordable_subview(view: PoolView, budget: float | None) -> PoolView:
    """Drop candidates that no feasible jury can contain."""
    if budget is None:
        return view
    mask = view.reqs <= budget
    if not mask.any():
        raise InfeasibleSelectionError(
            f"no odd-sized jury is affordable within budget {budget:g}"
        )
    if mask.all():
        return view
    return view.take(mask, suffix="affordable")


def execute_plan(
    plan: SelectionPlan,
    *,
    profile: tuple[np.ndarray, np.ndarray] | None = None,
) -> SelectionResult:
    """Run a plan's physical operator and return the selection.

    Parameters
    ----------
    plan:
        A plan from :func:`repro.plan.planner.plan_query`.
    profile:
        Optional precomputed ``(ns, jers)`` odd-prefix profile for the
        ``altr-sweep`` operator (cache hits, shared batch sweeps, live-pool
        delta repairs).  Ignored by the other operators.

    The result's ``stats.elapsed_seconds`` covers the operator execution,
    matching what the selectors historically reported.
    """
    start = time.perf_counter()
    if plan.operator == "altr-sweep":
        result = _run_altr(plan, profile)
    elif plan.operator in ("pay-greedy", "pay-greedy-improved"):
        result = run_pay_greedy(
            plan.view,
            plan.budget,
            variant=plan.variant,
            backend=plan.kernel_backend,
        )
    elif plan.operator == "exact-enumerate":
        result = enumerate_optimal(
            _affordable_subview(plan.view, plan.budget),
            plan.budget,
            max_size=plan.max_size,
        )
    elif plan.operator == "exact-branch-and-bound":
        result = branch_and_bound_optimal(
            plan.view, plan.budget, max_size=plan.max_size
        )
    else:  # pragma: no cover - the planner only emits the operators above
        raise ValueError(f"unknown physical operator {plan.operator!r}")
    result.stats.elapsed_seconds = time.perf_counter() - start
    return result
