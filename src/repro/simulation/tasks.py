"""Decision-making tasks with latent ground truth (paper Section 2.1.2).

The paper assumes that "for each discerning task, there exists an objective
and true judgement which is latent for all the participants".  A
:class:`DecisionTask` carries that latent truth; the voting simulator samples
juror votes against it.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["DecisionTask", "generate_tasks"]

_task_counter = itertools.count(1)


@dataclass(frozen=True)
class DecisionTask:
    """A binary decision-making question with a latent ground truth.

    Attributes
    ----------
    question:
        Human-readable statement, e.g. ``"Is Turkey in Europe?"``.
    ground_truth:
        Latent true answer (0 or 1) — unknown to the jury, known to the
        simulator for scoring.
    task_id:
        Stable identifier.
    """

    question: str
    ground_truth: int
    task_id: str = ""

    def __post_init__(self) -> None:
        if self.ground_truth not in (0, 1):
            raise SimulationError(
                f"ground_truth must be 0 or 1, got {self.ground_truth!r}"
            )
        if not self.question:
            raise SimulationError("question must be non-empty")
        if not self.task_id:
            object.__setattr__(self, "task_id", f"task-{next(_task_counter)}")


def generate_tasks(
    count: int,
    *,
    rng: np.random.Generator | None = None,
    truth_probability: float = 0.5,
) -> Iterator[DecisionTask]:
    """Yield ``count`` synthetic decision tasks with random ground truths.

    Parameters
    ----------
    count:
        Number of tasks.
    rng:
        NumPy random generator.
    truth_probability:
        Probability that a task's latent answer is 1.

    >>> tasks = list(generate_tasks(3, rng=np.random.default_rng(0)))
    >>> len(tasks)
    3
    """
    if count < 0:
        raise SimulationError(f"count must be non-negative, got {count!r}")
    if not 0.0 <= truth_probability <= 1.0:
        raise SimulationError(
            f"truth_probability must lie in [0, 1], got {truth_probability!r}"
        )
    generator = rng if rng is not None else np.random.default_rng()
    for index in range(count):
        truth = int(generator.random() < truth_probability)
        yield DecisionTask(
            question=f"synthetic decision question #{index + 1}",
            ground_truth=truth,
            task_id=f"synthetic-{index + 1}",
        )
