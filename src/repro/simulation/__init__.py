"""Monte-Carlo voting simulation (validation substrate).

Samples concrete votings from jurors' Bernoulli error models and aggregates
them with Majority Voting, providing an empirical check of every analytic
JER the library computes.
"""

from repro.simulation.adaptive import (
    AdaptivePollResult,
    adaptive_poll,
    compare_with_static,
)
from repro.simulation.correlated import (
    CorrelationPenalty,
    correlation_penalty,
    empirical_jer_correlated,
    sample_correlated_votes,
)
from repro.simulation.tasks import DecisionTask, generate_tasks
from repro.simulation.voting_sim import (
    JERValidation,
    empirical_jer,
    sample_votes,
    simulate_accuracy_over_tasks,
    simulate_task,
    validate_jer,
)

__all__ = [
    "DecisionTask",
    "generate_tasks",
    "sample_votes",
    "simulate_task",
    "empirical_jer",
    "JERValidation",
    "validate_jer",
    "simulate_accuracy_over_tasks",
    "AdaptivePollResult",
    "adaptive_poll",
    "compare_with_static",
    "CorrelationPenalty",
    "correlation_penalty",
    "empirical_jer_correlated",
    "sample_correlated_votes",
]
