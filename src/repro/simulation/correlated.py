"""Correlated-juror simulation — stress-testing the independence assumption.

Everything in the paper (Definition 6 onward) assumes jurors err
*independently*.  On a real micro-blog the assumption is fragile: jurors
read the same timelines, retweet each other, and share the same misleading
evidence.  This module samples votes whose marginal error rates are exactly
the ``eps_i`` of the jury but whose errors are positively correlated through
a one-factor **Gaussian copula**:

    ``X_i = sqrt(rho) * Z + sqrt(1 - rho) * W_i``,   errs iff
    ``Phi(X_i) < eps_i``

with a common factor ``Z`` and idiosyncratic ``W_i``.  ``rho = 0`` recovers
the independent model (and hence the analytic JER); ``rho -> 1`` makes the
whole jury err in lockstep, collapsing the wisdom of the crowd to the wisdom
of one.  :func:`correlation_penalty` quantifies how quickly the paper's JER
becomes optimistic as ``rho`` grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.jer import jury_error_rate
from repro.core.juror import Jury
from repro.core.voting import MajorityVoting
from repro.errors import SimulationError

__all__ = [
    "sample_correlated_votes",
    "empirical_jer_correlated",
    "CorrelationPenalty",
    "correlation_penalty",
]


def _normal_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


def _normal_quantile(p: np.ndarray) -> np.ndarray:
    # scipy is available in the dev environment, but keep the library
    # dependency-light: use the erfinv-free relationship via numpy only.
    try:
        from scipy.special import ndtri

        return ndtri(p)
    except ImportError:  # pragma: no cover - scipy is a test extra
        from statistics import NormalDist

        dist = NormalDist()
        return np.vectorize(dist.inv_cdf)(p)


def sample_correlated_votes(
    jury: Jury,
    ground_truth: int,
    trials: int,
    rho: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample votings with equicorrelated errors and exact marginals.

    Parameters
    ----------
    jury:
        The jury (marginal error rates ``eps_i`` are preserved exactly).
    ground_truth:
        Latent truth (0/1) of the simulated task.
    trials:
        Number of independent tasks to sample.
    rho:
        Common-factor weight in ``[0, 1)``; pairwise latent correlation of
        the error indicators' underlying Gaussians.

    Returns
    -------
    numpy.ndarray
        0/1 votes of shape ``(trials, n)``.
    """
    if ground_truth not in (0, 1):
        raise SimulationError(f"ground_truth must be 0 or 1, got {ground_truth!r}")
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    if not 0.0 <= rho < 1.0:
        raise SimulationError(f"rho must lie in [0, 1), got {rho!r}")
    generator = rng if rng is not None else np.random.default_rng()
    n = jury.size
    eps = np.asarray(jury.error_rates)
    thresholds = _normal_quantile(eps)

    common = generator.standard_normal((trials, 1))
    idiosyncratic = generator.standard_normal((trials, n))
    latent = math.sqrt(rho) * common + math.sqrt(1.0 - rho) * idiosyncratic
    errs = latent < thresholds  # Pr(latent < Phi^-1(eps)) == eps exactly.
    votes = np.where(errs, 1 - ground_truth, ground_truth)
    return votes.astype(np.int8)


def empirical_jer_correlated(
    jury: Jury,
    rho: float,
    trials: int = 20_000,
    rng: np.random.Generator | None = None,
    ground_truth: int = 1,
) -> float:
    """Empirical JER under the one-factor correlated error model.

    >>> import numpy as np
    >>> jury = Jury.from_error_rates([0.2, 0.3, 0.3])
    >>> independent = empirical_jer_correlated(
    ...     jury, rho=0.0, trials=30000, rng=np.random.default_rng(0))
    >>> abs(independent - 0.174) < 0.01   # rho=0 recovers the analytic JER
    True
    """
    votes = sample_correlated_votes(jury, ground_truth, trials, rho, rng=rng)
    decisions = MajorityVoting().decide_batch(votes)
    return float(np.mean(decisions != ground_truth))


@dataclass(frozen=True)
class CorrelationPenalty:
    """How far the independence-based JER understates the truth.

    Attributes
    ----------
    rho:
        The latent correlation used.
    analytic_independent:
        The paper's JER (Definition 6, independence assumed).
    empirical_correlated:
        Monte-Carlo JER under the correlated model.
    penalty:
        ``empirical_correlated - analytic_independent`` (positive when
        correlation hurts, which it does for better-than-chance juries).
    """

    rho: float
    analytic_independent: float
    empirical_correlated: float
    penalty: float


def correlation_penalty(
    jury: Jury,
    rho: float,
    trials: int = 20_000,
    rng: np.random.Generator | None = None,
) -> CorrelationPenalty:
    """Quantify the JER underestimation caused by assuming independence.

    >>> import numpy as np
    >>> jury = Jury.from_error_rates([0.2] * 9)
    >>> result = correlation_penalty(
    ...     jury, rho=0.5, trials=30000, rng=np.random.default_rng(1))
    >>> result.penalty > 0.02   # correlation erodes the crowd's advantage
    True
    """
    analytic = jury_error_rate(jury)
    empirical = empirical_jer_correlated(jury, rho, trials=trials, rng=rng)
    return CorrelationPenalty(
        rho=rho,
        analytic_independent=analytic,
        empirical_correlated=empirical,
        penalty=empirical - analytic,
    )
