"""Monte-Carlo majority-voting simulation.

Validates the analytic Jury Error Rate (Definition 6) empirically: sample
votings from the jurors' Bernoulli error models, aggregate with Majority
Voting, and measure how often the jury's decision contradicts the latent
ground truth.  By construction the empirical rate converges to
``JER(J_n)``, which the test-suite exploits as a statistical oracle.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.jer import jury_error_rate
from repro.core.juror import Jury
from repro.core.voting import MajorityVoting
from repro.errors import SimulationError
from repro.simulation.tasks import DecisionTask

__all__ = [
    "sample_votes",
    "simulate_task",
    "empirical_jer",
    "JERValidation",
    "validate_jer",
]


def sample_votes(
    jury: Jury,
    ground_truth: int,
    trials: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``trials`` independent votings of ``jury`` on one task.

    Juror ``i`` votes against ``ground_truth`` with probability
    ``epsilon_i`` (Definition 4), independently across jurors and trials.

    Returns
    -------
    numpy.ndarray
        0/1 array of shape ``(trials, n)``.
    """
    if ground_truth not in (0, 1):
        raise SimulationError(f"ground_truth must be 0 or 1, got {ground_truth!r}")
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    generator = rng if rng is not None else np.random.default_rng()
    errors = generator.random((trials, jury.size)) < np.asarray(jury.error_rates)
    votes = np.where(errors, 1 - ground_truth, ground_truth)
    return votes.astype(np.int8)


def simulate_task(
    jury: Jury,
    task: DecisionTask,
    rng: np.random.Generator | None = None,
) -> tuple[int, bool]:
    """One voting of ``jury`` on ``task``; returns (decision, is_correct)."""
    votes = sample_votes(jury, task.ground_truth, trials=1, rng=rng)[0]
    decision = MajorityVoting().decide_votes(votes.tolist())
    return decision, decision == task.ground_truth


def empirical_jer(
    jury: Jury,
    trials: int = 10_000,
    rng: np.random.Generator | None = None,
    ground_truth: int = 1,
) -> float:
    """Empirical Jury Error Rate over ``trials`` simulated votings.

    >>> import numpy as np
    >>> jury = Jury.from_error_rates([0.2, 0.3, 0.3])
    >>> rate = empirical_jer(jury, trials=20000, rng=np.random.default_rng(1))
    >>> abs(rate - 0.174) < 0.01
    True
    """
    votes = sample_votes(jury, ground_truth, trials, rng=rng)
    decisions = MajorityVoting().decide_batch(votes)
    return float(np.mean(decisions != ground_truth))


@dataclass(frozen=True)
class JERValidation:
    """Outcome of an analytic-vs-empirical JER comparison.

    Attributes
    ----------
    analytic:
        Exact JER from :func:`~repro.core.jer.jury_error_rate`.
    empirical:
        Monte-Carlo estimate.
    trials:
        Sample size behind the estimate.
    stderr:
        Binomial standard error of the estimate.
    z_score:
        ``(empirical - analytic) / stderr`` (0 when stderr is 0).
    """

    analytic: float
    empirical: float
    trials: int
    stderr: float
    z_score: float

    def consistent(self, z_threshold: float = 4.0) -> bool:
        """Whether the empirical estimate is within ``z_threshold`` sigmas."""
        return abs(self.z_score) <= z_threshold


def validate_jer(
    jury: Jury,
    trials: int = 50_000,
    rng: np.random.Generator | None = None,
) -> JERValidation:
    """Compare analytic JER against a Monte-Carlo estimate.

    The binomial standard error ``sqrt(p (1-p) / trials)`` calibrates the
    comparison; a healthy implementation keeps ``|z| <= 4`` essentially
    always.
    """
    analytic = jury_error_rate(jury)
    empirical = empirical_jer(jury, trials=trials, rng=rng)
    stderr = math.sqrt(max(analytic * (1.0 - analytic), 1e-12) / trials)
    z_score = 0.0 if stderr == 0.0 else (empirical - analytic) / stderr
    return JERValidation(
        analytic=analytic,
        empirical=empirical,
        trials=trials,
        stderr=stderr,
        z_score=z_score,
    )


def simulate_accuracy_over_tasks(
    jury: Jury,
    tasks: Iterable[DecisionTask],
    rng: np.random.Generator | None = None,
) -> float:
    """Fraction of tasks the jury answers correctly (1 - empirical JER).

    Unlike :func:`empirical_jer` this walks concrete
    :class:`~repro.simulation.tasks.DecisionTask` objects, so examples can
    mix ground truths and inspect per-task outcomes.
    """
    generator = rng if rng is not None else np.random.default_rng()
    outcomes: list[bool] = []
    for task in tasks:
        _, correct = simulate_task(jury, task, rng=generator)
        outcomes.append(correct)
    if not outcomes:
        raise SimulationError("at least one task is required")
    return float(np.mean(outcomes))


__all__.append("simulate_accuracy_over_tasks")
