"""Sequential (adaptive) polling — asking jurors one at a time.

The paper convenes the whole jury at once.  When jurors are queried
sequentially — natural on a micro-blog, where each `@`-mention is a separate
action — one can stop early once the answer is statistically settled,
spending fewer questions for the same reliability.  This module implements
the Bayes-optimal sequential rule for known error rates, a Wald-style
sequential probability ratio test (SPRT):

* maintain the log-likelihood ratio ``L = log Pr(votes | A=1) / Pr(votes | A=0)``;
  a vote ``v_i`` from a juror with error rate ``eps_i`` adds
  ``+log((1-eps_i)/eps_i)`` when ``v_i = 1`` and the negative when ``v_i = 0``;
* stop as soon as ``|L| >= log((1 - delta) / delta)`` (posterior certainty
  ``1 - delta`` under a uniform prior), or when the jury is exhausted;
* answer by the sign of ``L``.

Compared against static Majority Voting over the same jurors, the adaptive
poll reaches comparable accuracy with fewer questions — quantified by
:func:`compare_with_static` and exercised in the bench/ablation suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.jer import jury_error_rate
from repro.core.juror import Jury
from repro.errors import SimulationError

__all__ = ["AdaptivePollResult", "adaptive_poll", "compare_with_static"]


@dataclass(frozen=True)
class AdaptivePollResult:
    """Outcome of one sequential poll.

    Attributes
    ----------
    decision:
        The answer returned (0 or 1).
    questions_asked:
        How many jurors were actually queried.
    log_likelihood_ratio:
        Final evidence ``L`` (positive favours 1).
    stopped_early:
        Whether the certainty threshold fired before the jury ran out.
    """

    decision: int
    questions_asked: int
    log_likelihood_ratio: float
    stopped_early: bool


def adaptive_poll(
    jury: Jury,
    ground_truth: int,
    *,
    delta: float = 0.05,
    rng: np.random.Generator | None = None,
    tie_break: int = 0,
) -> AdaptivePollResult:
    """Run one sequential poll of ``jury`` on a task with ``ground_truth``.

    Jurors are queried in ascending error-rate order (most reliable first,
    which minimises expected queries).  Votes are sampled from each juror's
    Bernoulli error model, exactly as the static simulator does.

    Parameters
    ----------
    jury:
        The jurors available for questioning.
    ground_truth:
        Latent true answer (0/1) used to sample votes.
    delta:
        Stop once the posterior probability of the leading answer reaches
        ``1 - delta``.
    tie_break:
        Decision when the evidence is exactly zero at exhaustion.
    """
    if ground_truth not in (0, 1):
        raise SimulationError(f"ground_truth must be 0 or 1, got {ground_truth!r}")
    if not 0.0 < delta < 0.5:
        raise SimulationError(f"delta must lie in (0, 0.5), got {delta!r}")
    generator = rng if rng is not None else np.random.default_rng()
    threshold = math.log((1.0 - delta) / delta)

    ordered = sorted(jury.jurors, key=lambda j: (j.error_rate, j.juror_id))
    evidence = 0.0
    asked = 0
    stopped_early = False
    for juror in ordered:
        errs = generator.random() < juror.error_rate
        vote = (1 - ground_truth) if errs else ground_truth
        step = math.log((1.0 - juror.error_rate) / juror.error_rate)
        evidence += step if vote == 1 else -step
        asked += 1
        if abs(evidence) >= threshold:
            stopped_early = True
            break
    if evidence > 0:
        decision = 1
    elif evidence < 0:
        decision = 0
    else:
        decision = tie_break
    return AdaptivePollResult(
        decision=decision,
        questions_asked=asked,
        log_likelihood_ratio=evidence,
        stopped_early=stopped_early,
    )


@dataclass(frozen=True)
class AdaptiveComparison:
    """Aggregate statistics of adaptive vs static polling.

    Attributes
    ----------
    adaptive_accuracy:
        Fraction of tasks the sequential poll answered correctly.
    adaptive_mean_questions:
        Mean number of jurors queried per task.
    static_accuracy:
        ``1 - JER`` of the full jury under plain Majority Voting (analytic).
    static_questions:
        Jury size (every static poll asks everyone).
    trials:
        Number of simulated tasks.
    """

    adaptive_accuracy: float
    adaptive_mean_questions: float
    static_accuracy: float
    static_questions: int
    trials: int

    @property
    def question_savings(self) -> float:
        """Fraction of questions saved relative to static polling."""
        if self.static_questions == 0:
            return 0.0
        return 1.0 - self.adaptive_mean_questions / self.static_questions


def compare_with_static(
    jury: Jury,
    *,
    trials: int = 2000,
    delta: float = 0.05,
    rng: np.random.Generator | None = None,
) -> AdaptiveComparison:
    """Simulate ``trials`` tasks and compare sequential vs static polling.

    Ground truths alternate deterministically (the SPRT is symmetric, so the
    mix is irrelevant; alternation removes sampling noise from the truth
    side).
    """
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    generator = rng if rng is not None else np.random.default_rng()
    correct = 0
    questions = 0
    for t in range(trials):
        truth = t % 2
        outcome = adaptive_poll(jury, truth, delta=delta, rng=generator)
        correct += int(outcome.decision == truth)
        questions += outcome.questions_asked
    return AdaptiveComparison(
        adaptive_accuracy=correct / trials,
        adaptive_mean_questions=questions / trials,
        static_accuracy=1.0 - jury_error_rate(jury),
        static_questions=jury.size,
        trials=trials,
    )
