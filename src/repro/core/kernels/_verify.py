"""Activation-time bit-identity self-check for compiled kernel backends.

A compiled backend is only activated after every kernel reproduces the
NumPy reference **bitwise** on a battery that crosses each algorithmic
boundary (pairwise-summation base case at 8, unroll block at 128, the
recursive split, and multi-admission PayALG scans).  A backend that
differs in even one bit on this host is refused, the first divergence is
recorded as its unavailability reason, and dispatch degrades to the
reference backend — so the repo's bit-identity invariant never depends
on compiler or libm behaviour we did not verify.

The battery is deterministic (fixed seed) and cheap (~10 ms), so it runs
on every activation rather than being cached: a changed compiler or
numpy build on the same host is re-checked automatically.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels._reference import NumpyBackend

__all__ = ["KernelSelfCheckError", "verify_backend"]

_CHECK_SEED = 20120827

# Sizes straddling every pairwise-summation regime: sequential (<8),
# unrolled block (<=128), and recursive splits beyond it.
_PAIRWISE_SIZES = (
    0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 127, 128, 129,
    255, 256, 257, 511, 512, 513, 1000, 1001, 1024, 2047, 4096,
)
_SWEEP_SHAPES = ((1, 1), (2, 3), (3, 7), (2, 65), (1, 129), (2, 130), (1, 515))
_JURY_SHAPES = ((1, 1), (4, 5), (7, 13), (3, 129), (2, 401))
_BLOCK_SHAPES = ((1, 1), (2, 7), (5, 64), (3, 129), (2, 400))
_CONVOLVE_SHAPES = ((1, 1), (3, 4), (10, 120), (129, 130))


class KernelSelfCheckError(AssertionError):
    """A compiled kernel diverged bitwise from the NumPy reference."""


def _require(condition: bool, detail: str) -> None:
    if not condition:
        raise KernelSelfCheckError(detail)


def _require_identical(label: str, expected: np.ndarray, actual: np.ndarray) -> None:
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    _require(
        expected.shape == actual.shape,
        f"{label}: shape {actual.shape} != {expected.shape}",
    )
    if expected.size and not np.array_equal(
        expected.view(np.uint64), actual.view(np.uint64)
    ):
        diff = int(np.flatnonzero(expected.view(np.uint64) != actual.view(np.uint64))[0])
        raise KernelSelfCheckError(
            f"{label}: first bit divergence at flat index {diff}: "
            f"{expected.ravel()[diff]!r} != {actual.ravel()[diff]!r}"
        )


def _reference_pay_scan(g_eps, g_req, budget, scan_from, accumulated, pmf, current_jer):
    """Drive the NumPy block-scan path for comparison.

    Imported lazily: ``pay`` imports ``jer`` which imports this package,
    so the import is only safe at call time (activation), never at
    module import time.
    """
    from repro.core.selection.base import SelectionStats
    from repro.core.selection.pay import _paper_pairing

    stats = SelectionStats()
    # The scan's majority threshold is derived from len(selected); seed the
    # list with the pmf's factors (one seed juror here) exactly as
    # run_pay_greedy does, and report only the appended pairs.
    seed = list(range(np.asarray(pmf).size - 1))
    n_seed = len(seed)  # _paper_pairing extends the list in place
    out_selected, out_acc, out_jer = _paper_pairing(
        seed,
        np.asarray(g_eps, dtype=np.float64),
        np.asarray(g_req, dtype=np.float64),
        int(scan_from),
        float(accumulated),
        float(budget),
        np.asarray(pmf, dtype=np.float64),
        float(current_jer),
        stats,
    )
    return (
        np.asarray(out_selected[n_seed:], dtype=np.int64),
        out_acc,
        out_jer,
        stats.juries_considered,
        stats.jer_evaluations,
    )


def _check_pay_scan(backend, rng: np.random.Generator) -> None:
    from repro.core.jer import extend_pmf

    for n, budget_scale in ((3, 4.0), (25, 10.0), (120, 30.0), (311, 80.0)):
        eps = rng.uniform(0.02, 0.48, size=n)
        req = np.round(rng.uniform(0.5, 3.0, size=n), 3)
        order = np.argsort(req, kind="stable")
        eps, req = eps[order], req[order]
        pmf = extend_pmf(np.ones(1), float(eps[0]))
        current = float(np.clip(np.sum(pmf[1:]), 0.0, 1.0))
        acc = float(req[0])
        ref = _reference_pay_scan(eps, req, budget_scale, 1, acc, pmf, current)
        got = backend.pay_scan(eps, req, budget_scale, 1, acc, pmf, current)
        label = f"pay_scan(n={n})"
        _require_identical(f"{label} pairs", ref[0], got[0])
        _require(ref[1] == got[1], f"{label} accumulated {got[1]!r} != {ref[1]!r}")
        _require(ref[2] == got[2], f"{label} jer {got[2]!r} != {ref[2]!r}")
        _require(ref[3] == got[3], f"{label} juries_considered {got[3]} != {ref[3]}")
        _require(ref[4] == got[4], f"{label} jer_evaluations {got[4]} != {ref[4]}")


def verify_backend(backend) -> None:
    """Raise :class:`KernelSelfCheckError` unless ``backend`` matches the
    NumPy reference bitwise across the whole battery."""
    ref = NumpyBackend
    rng = np.random.default_rng(_CHECK_SEED)

    for size in _PAIRWISE_SIZES:
        values = rng.uniform(0.0, 1e-2, size=size)
        expected = np.float64(ref.pairwise(values))
        actual = np.float64(backend.pairwise(values))
        _require_identical(f"pairwise(n={size})", expected, actual)

    for b, n in _SWEEP_SHAPES:
        eps = rng.uniform(1e-6, 1.0 - 1e-6, size=(b, n))
        _require_identical(f"sweep{(b, n)}", ref.sweep(eps), backend.sweep(eps))

    for b, k in _JURY_SHAPES:
        eps = rng.uniform(1e-6, 1.0 - 1e-6, size=(b, k))
        threshold = (k + 1) // 2
        _require_identical(
            f"jury_jer{(b, k)}",
            ref.jury_jer(eps, threshold),
            backend.jury_jer(eps, threshold),
        )

    for k, n in _BLOCK_SHAPES:
        base = rng.dirichlet(np.ones(n))
        eps = rng.uniform(1e-6, 1.0 - 1e-6, size=k)
        threshold = (n + 1) // 2
        _require_identical(
            f"extend_block(k={k}, n={n})",
            ref.extend_block(base, eps),
            backend.extend_block(base, eps),
        )
        exp_jers, exp_rows = ref.score_block(base, eps, threshold)
        got_jers, got_rows = backend.score_block(base, eps, threshold)
        _require_identical(f"score_block jers(k={k}, n={n})", exp_jers, got_jers)
        _require_identical(f"score_block rows(k={k}, n={n})", exp_rows, got_rows)

    for n, k in _CONVOLVE_SHAPES:
        base = rng.dirichlet(np.ones(n))
        eps = rng.uniform(1e-6, 1.0 - 1e-6, size=k)
        _require_identical(
            f"convolve(n={n}, k={k})",
            ref.convolve(base, eps),
            backend.convolve(base, eps),
        )

    _check_pay_scan(backend, rng)
