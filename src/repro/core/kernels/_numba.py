"""Numba ``@njit`` kernel backend (optional, ``pip install .[compiled]``).

Import of this module raises ``ImportError`` when numba is absent; the
registry records that as the backend's unavailability reason and falls
back.  The jitted kernels mirror the C backend in
:mod:`repro.core.kernels._native` operation-for-operation — including
NumPy's pairwise tail summation — so the same activation self-check
(:mod:`._verify`) holds them to bit-identity with the NumPy reference.
``cache=True`` persists compiled artifacts on disk so only the first
process on a host pays the JIT cost; the registry's warmup triggers
compilation eagerly so first-query latencies stay honest.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401  (ImportError here marks the backend unavailable)

__all__ = ["NumbaBackend", "load_numba_backend"]


@njit(cache=True)
def _pairwise(a: np.ndarray, lo: int, n: int) -> float:
    """NumPy's scalar pairwise summation (see _native.py for the shape)."""
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    if n <= 128:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        limit = n - (n % 8)
        while i < limit:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res
    n2 = (n // 2) - ((n // 2) % 8)
    return _pairwise(a, lo, n2) + _pairwise(a, lo + n2, n - n2)


@njit(cache=True)
def _clip01(t: float) -> float:
    if t < 0.0:
        return 0.0
    if t > 1.0:
        return 1.0
    return t


@njit(cache=True)
def _fold_factor(pmf: np.ndarray, top: int, e: float) -> None:
    c = 1.0 - e
    for j in range(top + 1, 0, -1):
        pmf[j] = pmf[j] * c + pmf[j - 1] * e
    pmf[0] = pmf[0] * c


@njit(cache=True)
def _sweep(eps: np.ndarray) -> np.ndarray:
    b, n = eps.shape
    jers = np.empty((b, (n + 1) // 2), dtype=np.float64)
    work = np.empty(n + 1, dtype=np.float64)
    for r in range(b):
        work[:] = 0.0
        work[0] = 1.0
        for idx in range(n):
            _fold_factor(work, idx, eps[r, idx])
            if idx % 2 == 0:
                m = idx + 1
                th = (m + 1) // 2
                jers[r, idx // 2] = _clip01(_pairwise(work, th, m + 1 - th))
    return jers


@njit(cache=True)
def _jury_jer(eps: np.ndarray, threshold: int) -> np.ndarray:
    b, k = eps.shape
    out = np.empty(b, dtype=np.float64)
    work = np.empty(k + 1, dtype=np.float64)
    for r in range(b):
        work[:] = 0.0
        work[0] = 1.0
        for idx in range(k):
            _fold_factor(work, idx, eps[r, idx])
        out[r] = _clip01(_pairwise(work, threshold, k + 1 - threshold))
    return out


@njit(cache=True)
def _extend_block(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
    n = base.size
    rows = np.empty((eps.size, n + 1), dtype=np.float64)
    for r in range(eps.size):
        e = eps[r]
        c = 1.0 - e
        rows[r, 0] = base[0] * c
        for j in range(1, n):
            rows[r, j] = base[j] * c + base[j - 1] * e
        rows[r, n] = base[n - 1] * e
    return rows


@njit(cache=True)
def _score_block(base: np.ndarray, eps: np.ndarray, threshold: int):
    rows = _extend_block(base, eps)
    n1 = base.size + 1
    jers = np.empty(eps.size, dtype=np.float64)
    for r in range(eps.size):
        jers[r] = _clip01(_pairwise(rows[r], threshold, n1 - threshold))
    return jers, rows


@njit(cache=True)
def _convolve(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
    out = np.zeros(base.size + eps.size, dtype=np.float64)
    out[: base.size] = base
    top = base.size - 1
    for f in range(eps.size):
        _fold_factor(out, top, eps[f])
        top += 1
    return out


@njit(cache=True)
def _pay_scan(
    g_eps: np.ndarray,
    g_req: np.ndarray,
    budget: float,
    scan_from: int,
    pmf: np.ndarray,
    pmf_len: int,
    state: np.ndarray,
    pairs: np.ndarray,
    counters: np.ndarray,
) -> int:
    """Paper pairing scan; see k_pay_scan in _native.py for the contract."""
    n = g_eps.size
    acc = state[0]
    cur = state[1]
    base2 = np.empty(n + 3, dtype=np.float64)
    row = np.empty(n + 3, dtype=np.float64)
    i = scan_from
    partner = -1
    base2_valid = False
    npairs = 0
    considered = 0
    evals = 0
    while i < n:
        if partner < 0:
            if g_req[i] + acc <= budget:
                partner = i
            i += 1
            continue
        cost = (g_req[i] + g_req[partner]) + acc
        if cost <= budget:
            if not base2_valid:
                e = g_eps[partner]
                c = 1.0 - e
                base2[0] = pmf[0] * c
                for j in range(1, pmf_len):
                    base2[j] = pmf[j] * c + pmf[j - 1] * e
                base2[pmf_len] = pmf[pmf_len - 1] * e
                base2_valid = True
            e = g_eps[i]
            c = 1.0 - e
            row[0] = base2[0] * c
            for j in range(1, pmf_len + 1):
                row[j] = base2[j] * c + base2[j - 1] * e
            row[pmf_len + 1] = base2[pmf_len] * e
            rowlen = pmf_len + 2
            threshold = rowlen // 2
            t = _clip01(_pairwise(row, threshold, rowlen - threshold))
            considered += 1
            evals += 1
            if t <= cur:
                pairs[2 * npairs] = partner
                pairs[2 * npairs + 1] = i
                npairs += 1
                acc = (g_req[i] + g_req[partner]) + acc
                for j in range(rowlen):
                    pmf[j] = row[j]
                pmf_len = rowlen
                cur = t
                partner = -1
                base2_valid = False
        i += 1
    state[0] = acc
    state[1] = cur
    counters[0] = considered
    counters[1] = evals
    return npairs


class NumbaBackend:
    name = "numba"
    compiled = True

    def __init__(self) -> None:
        self.warmed = False

    @staticmethod
    def sweep(eps: np.ndarray) -> np.ndarray:
        return _sweep(np.ascontiguousarray(eps, dtype=np.float64))

    @staticmethod
    def jury_jer(eps: np.ndarray, threshold: int) -> np.ndarray:
        return _jury_jer(np.ascontiguousarray(eps, dtype=np.float64), threshold)

    @staticmethod
    def extend_block(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        return _extend_block(
            np.ascontiguousarray(base, dtype=np.float64),
            np.ascontiguousarray(eps, dtype=np.float64),
        )

    @staticmethod
    def score_block(base: np.ndarray, eps: np.ndarray, threshold: int):
        return _score_block(
            np.ascontiguousarray(base, dtype=np.float64),
            np.ascontiguousarray(eps, dtype=np.float64),
            threshold,
        )

    @staticmethod
    def convolve(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        return _convolve(
            np.ascontiguousarray(base, dtype=np.float64),
            np.ascontiguousarray(eps, dtype=np.float64),
        )

    @staticmethod
    def pay_scan(
        g_eps: np.ndarray,
        g_req: np.ndarray,
        budget: float,
        scan_from: int,
        accumulated: float,
        pmf: np.ndarray,
        current_jer: float,
    ) -> tuple[np.ndarray, float, float, int, int]:
        g_eps = np.ascontiguousarray(g_eps, dtype=np.float64)
        g_req = np.ascontiguousarray(g_req, dtype=np.float64)
        n = g_eps.size
        buf = np.zeros(n + 2, dtype=np.float64)
        buf[: pmf.size] = pmf
        state = np.array([accumulated, current_jer], dtype=np.float64)
        pairs = np.empty(max(2 * n, 2), dtype=np.int64)
        counters = np.zeros(2, dtype=np.int64)
        npairs = _pay_scan(
            g_eps, g_req, float(budget), int(scan_from), buf, int(pmf.size),
            state, pairs, counters,
        )
        return (
            pairs[: 2 * npairs].copy(),
            float(state[0]),
            float(state[1]),
            int(counters[0]),
            int(counters[1]),
        )

    @staticmethod
    def pairwise(values: np.ndarray) -> float:
        values = np.ascontiguousarray(values, dtype=np.float64)
        return float(_pairwise(values, 0, values.size))

    def warmup(self) -> None:
        """Force JIT compilation of every kernel now, not on first query."""
        eps = np.full((1, 3), 0.25)
        self.sweep(eps)
        self.jury_jer(eps, 2)
        base = self.convolve(np.ones(1), np.full(2, 0.25))
        self.score_block(base, np.full(2, 0.25), 2)
        self.extend_block(base, np.full(2, 0.25))
        self.pay_scan(
            np.full(3, 0.25), np.ones(3), 10.0, 1, 1.0,
            np.array([0.75, 0.25]), 0.25,
        )
        self.pairwise(np.ones(4))
        self.warmed = True


def load_numba_backend() -> NumbaBackend:
    return NumbaBackend()
