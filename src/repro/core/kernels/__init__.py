"""Compiled kernel backends for the hot JER/PMF kernels.

This package gives the four hottest kernels of the engine — the batch
prefix-JER sweep, the batch jury-JER scorer, the pmf extend/convolve
family, and the PayALG pair-trial scan — optional *compiled* execution
backends behind one registry:

``numpy``
    The reference implementations (:mod:`._reference`): the exact NumPy
    loops the engine has always run.  Always available.
``numba``
    ``@njit(cache=True)`` mirrors (:mod:`._numba`).  Available when
    numba is importable (``pip install .[compiled]``).
``native``
    C kernels compiled at activation with the system compiler and bound
    via ctypes (:mod:`._native`).  Available when a C compiler is on
    PATH — no Python build dependencies.

Selection is by ``REPRO_KERNEL_BACKEND`` (or
:func:`set_kernel_backend` / the CLI ``--kernel-backend`` flag):

``auto`` (default)
    Prefer ``numba``, then ``native``; dispatch each call through the
    cost-model crossovers below so tiny inputs keep the low-overhead
    NumPy path and large inputs take the compiled path.
``numpy`` / ``numba`` / ``native``
    Force one backend for *every* call regardless of size (the forced
    modes the cross-backend test suites run under).  Requesting a
    backend that is unavailable on this host **degrades gracefully** to
    ``numpy``; the reason is recorded and surfaced in
    :func:`stats_snapshot` (and from there in ``JuryService.stats()``
    and ``GET /v1/stats``).

Activation discipline: a compiled backend only becomes dispatchable
after :mod:`._verify` reproduces the NumPy reference **bitwise** on a
battery crossing every algorithmic boundary, so every execution path
stays bit-identical to the scalar oracles — the repo's standing
invariant (tolerance pinned as ``KERNEL_EQUIVALENCE_ULPS`` in
:mod:`repro.testing`).  A host where that fails simply keeps the
reference backend.

The crossover constants were measured on the build host like
``AUTO_CBA_THRESHOLD`` / ``FFT_CROSSOVER`` (see
``benchmarks/bench_kernels.py``); :mod:`repro.plan.cost` re-exports
them so ``explain`` output can name the backend a query will take.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.core.kernels._reference import NumpyBackend

__all__ = [
    "BACKEND_CHOICES",
    "COMPILED_BACKEND_PREFERENCE",
    "COMPILED_SWEEP_CROSSOVER",
    "COMPILED_PAY_CROSSOVER",
    "COMPILED_BLOCK_CROSSOVER",
    "KERNEL_NAMES",
    "available_backends",
    "backend_for",
    "backend_status",
    "ensure_ready",
    "kernel_backend_for",
    "lazy_activations",
    "requested_backend",
    "reset_dispatch_counters",
    "resolution_token",
    "set_kernel_backend",
    "stats_snapshot",
    "use_backend",
]

#: Valid values of ``REPRO_KERNEL_BACKEND`` / ``--kernel-backend``.
BACKEND_CHOICES = ("auto", "numpy", "numba", "native")

#: Probe order under ``auto``: numba is the first-class compiled backend
#: (portable, pip-installable); the cc-built native backend is the
#: zero-dependency fallback.
COMPILED_BACKEND_PREFERENCE = ("numba", "native")

#: Kernels that dispatch through the registry.  ``sweep`` is
#: ``batch_prefix_jer_sweep``, ``jury_jer`` is ``batch_jury_jer``,
#: ``extend_block``/``score_block`` are the ``extend_pmf_block`` family,
#: ``convolve`` is ``convolve_pmf``, and ``pay_scan`` is the whole
#: PayALG paper pairing scan.
KERNEL_NAMES = ("sweep", "jury_jer", "extend_block", "score_block", "convolve", "pay_scan")

# -- measured crossovers (build host: 1-CPU container, numpy 2.4.6) ----------
#
# Below these sizes the compiled call's fixed overhead (ctypes/numba entry,
# argument marshalling) exceeds the win over the vectorized NumPy path;
# above them the compiled path wins and keeps widening (the NumPy sweep
# pays one Python-level loop iteration per juror, the compiled sweep does
# not).  Measured against the native backend with best-of timing loops
# (same method as benchmarks/bench_kernels.py and the historical
# AUTO_CBA_THRESHOLD / FFT_CROSSOVER calibrations).

#: Pool size at which the compiled prefix sweep overtakes NumPy: always.
#: The NumPy sweep pays one Python-level fold iteration per juror, so the
#: compiled path already wins at 2 candidates (11us vs 18us) and never
#: falls behind — there is no size below which NumPy is preferable.
COMPILED_SWEEP_CROSSOVER = 0

#: Pool size at which the compiled PayALG pairing scan overtakes the
#: blocked NumPy scan.  Measured: NumPy edges ahead at 4 candidates
#: (57us vs 61us), compiled wins from 8 on (73us vs 176us) and widens to
#: ~10x at 1,000.
COMPILED_PAY_CROSSOVER = 8

#: Matrix *elements* (rows x width) at which the compiled block kernels
#: (jury_jer / extend_block / score_block / convolve) overtake NumPy's
#: 2-D vectorized forms, which amortise per-call overhead much better
#: than the Python-loop sweep does.  Measured on extend_pmf_block, the
#: tightest case: NumPy wins below ~1k elements (6.8us vs 8.6us at 40),
#: ties near 1,100 and loses from there (140us vs 17us at 16.6k).
#: batch_jury_jer crosses far earlier (its NumPy form loops per juror),
#: so this shared bound is conservative for it.
COMPILED_BLOCK_CROSSOVER = 1024

_lock = threading.RLock()
_numpy_backend = NumpyBackend()
_requested: str | None = None  # None -> not yet read from the environment
_env_note: str | None = None
_probed: dict[str, object | None] = {}
_probing: set[str] = set()  # activations in flight (re-entrancy guard)
_reasons: dict[str, str] = {}
_dispatch_counts: dict[tuple[str, str], int] = {}
_lazy_activations = 0


def _read_env() -> str:
    global _env_note
    raw = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower() or "auto"
    if raw not in BACKEND_CHOICES:
        _env_note = f"ignored invalid REPRO_KERNEL_BACKEND={raw!r}; using 'auto'"
        return "auto"
    _env_note = None
    return raw


def _probe(name: str, *, lazy: bool) -> object | None:
    """Load + warm + bitwise-verify backend ``name``, memoised.

    On any failure the backend is marked unavailable with the exception
    as its reason; dispatch then falls back to the reference backend.
    """
    global _lazy_activations
    if name == "numpy":
        return _numpy_backend
    with _lock:
        if name in _probed:
            return _probed[name]
        if name in _probing:
            # Re-entrant dispatch: the verify battery runs reference
            # implementations that call the public kernel wrappers, which
            # would otherwise re-activate the backend mid-activation (and
            # let the backend under test compute its own "reference").
            # During activation every dispatch degrades to NumPy.
            return None
        _probing.add(name)
        try:
            if name == "numba":
                from repro.core.kernels._numba import load_numba_backend

                backend = load_numba_backend()
            elif name == "native":
                from repro.core.kernels._native import load_native_backend

                backend = load_native_backend()
            else:
                raise ValueError(f"unknown kernel backend {name!r}")
            backend.warmup()
            from repro.core.kernels._verify import verify_backend

            verify_backend(backend)
        except Exception as exc:  # noqa: BLE001 - any failure means "unavailable"
            _probed[name] = None
            _reasons[name] = f"{type(exc).__name__}: {exc}"
        else:
            _probed[name] = backend
            if lazy:
                # A compile happened inside a dispatch, not at startup —
                # the cold-start test asserts this stays zero when
                # services call ensure_ready() up front.
                _lazy_activations += 1
        finally:
            _probing.discard(name)
        return _probed[name]


def _mode() -> str:
    global _requested
    with _lock:
        if _requested is None:
            _requested = _read_env()
        return _requested


def _active_compiled(*, lazy: bool) -> object | None:
    """The compiled backend the current mode resolves to, or None."""
    mode = _mode()
    if mode == "numpy":
        return None
    if mode in ("numba", "native"):
        return _probe(mode, lazy=lazy)
    for name in COMPILED_BACKEND_PREFERENCE:
        backend = _probe(name, lazy=lazy)
        if backend is not None:
            return backend
    return None


def _crossed(kernel: str, size: int) -> bool:
    if kernel == "sweep":
        return size >= COMPILED_SWEEP_CROSSOVER
    if kernel == "pay_scan":
        return size >= COMPILED_PAY_CROSSOVER
    return size >= COMPILED_BLOCK_CROSSOVER


def backend_for(kernel: str, size: int, *, forced: str | None = None):
    """Resolve the backend a kernel call dispatches to, counting it.

    ``size`` is the kernel's cost driver: pool size for ``sweep`` and
    ``pay_scan``, matrix elements for the block kernels.  ``forced``
    overrides the session mode with a concrete backend name — how a
    :class:`~repro.plan.planner.SelectionPlan` threads its chosen
    backend into execution.  Forced modes (session-level or via
    ``forced``) bypass the size crossovers so a forced-on test run
    exercises the compiled path everywhere; ``auto`` applies them.
    """
    mode = forced if forced is not None else _mode()
    if mode == "numpy":
        backend = _numpy_backend
    elif mode in ("numba", "native"):
        backend = _probe(mode, lazy=True) or _numpy_backend
    else:
        backend = None
        if _crossed(kernel, size):
            backend = _active_compiled(lazy=True)
        backend = backend or _numpy_backend
    with _lock:
        key = (kernel, backend.name)
        _dispatch_counts[key] = _dispatch_counts.get(key, 0) + 1
    return backend


def kernel_backend_for(kernel: str, size: int) -> str:
    """Predict (without counting) the backend :func:`backend_for` would
    choose under the current mode — the cost model's planning view."""
    mode = _mode()
    if mode == "numpy":
        return "numpy"
    if mode in ("numba", "native"):
        backend = _probe(mode, lazy=False)
        return backend.name if backend is not None else "numpy"
    if not _crossed(kernel, size):
        return "numpy"
    backend = _active_compiled(lazy=False)
    return backend.name if backend is not None else "numpy"


def requested_backend() -> str:
    """The session's requested mode (``auto``/``numpy``/``numba``/``native``)."""
    return _mode()


def set_kernel_backend(name: str | None) -> None:
    """Set the session's backend mode; ``None`` re-reads the environment."""
    global _requested
    if name is not None and name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_CHOICES}"
        )
    with _lock:
        _requested = name  # None -> lazily re-read from env on next use


def available_backends() -> tuple[str, ...]:
    """Names of backends that pass activation on this host (probes all)."""
    names = ["numpy"]
    for name in COMPILED_BACKEND_PREFERENCE:
        if _probe(name, lazy=False) is not None:
            names.append(name)
    return tuple(sorted(names))


def backend_status() -> dict[str, str | None]:
    """Probe result per backend: ``None`` when usable, else the reason."""
    status: dict[str, str | None] = {"numpy": None}
    for name in COMPILED_BACKEND_PREFERENCE:
        backend = _probe(name, lazy=False)
        status[name] = None if backend is not None else _reasons.get(name)
    return status


def ensure_ready() -> str:
    """Probe and warm the session's backend eagerly (service startup).

    Returns the name of the backend large inputs will dispatch to, so
    callers (``EngineStats``, benchmarks) can record the active backend.
    Calling this before serving queries is what keeps JIT/cc compile
    time out of per-query timings — the cold-start guarantee.
    """
    backend = _active_compiled(lazy=False)
    return backend.name if backend is not None else "numpy"


def resolution_token() -> str:
    """Cache key fragment capturing everything backend resolution depends
    on: the requested mode and the backend it currently resolves to.  The
    planner's memo includes this so cached plans can never carry a stale
    ``kernel_backend``."""
    return f"{_mode()}|{ensure_ready()}"


def lazy_activations() -> int:
    """How many compiled-backend activations happened inside a dispatch
    (i.e. NOT via :func:`ensure_ready` at startup).  Zero on every
    well-behaved service path."""
    return _lazy_activations


def reset_dispatch_counters() -> None:
    with _lock:
        _dispatch_counts.clear()


def dispatch_counts() -> dict[str, dict[str, int]]:
    """Per-kernel dispatch counters: ``{kernel: {backend: calls}}``."""
    with _lock:
        out: dict[str, dict[str, int]] = {}
        for (kernel, backend), count in sorted(_dispatch_counts.items()):
            out.setdefault(kernel, {})[backend] = count
        return out


def stats_snapshot() -> dict:
    """The observability payload surfaced by ``JuryService.stats()``,
    the serve ``stats`` verb, and ``GET /v1/stats``."""
    snapshot = {
        "requested": _mode(),
        "active": ensure_ready(),
        "available": list(available_backends()),
        "unavailable": {
            name: reason
            for name, reason in backend_status().items()
            if reason is not None
        },
        "dispatch": dispatch_counts(),
        "lazy_activations": lazy_activations(),
        "crossovers": {
            "sweep_pool_size": COMPILED_SWEEP_CROSSOVER,
            "pay_scan_pool_size": COMPILED_PAY_CROSSOVER,
            "block_elements": COMPILED_BLOCK_CROSSOVER,
        },
    }
    if _env_note:
        snapshot["env_note"] = _env_note
    return snapshot


@contextmanager
def use_backend(name: str | None):
    """Temporarily force a backend mode (test helper)."""
    global _requested
    with _lock:
        previous = _requested
    set_kernel_backend(name)
    try:
        yield
    finally:
        with _lock:
            _requested = previous


def _reset_for_tests() -> None:
    """Forget mode, probes, and counters so env changes take effect."""
    global _requested, _lazy_activations, _env_note
    with _lock:
        _requested = None
        _env_note = None
        _probed.clear()
        _probing.clear()
        _reasons.clear()
        _dispatch_counts.clear()
        _lazy_activations = 0
