/* Native kernel source for the repro compiled backend.
 *
 * Compiled at activation time by repro/core/kernels/_native.py with
 * whatever system compiler is present (cc/gcc/clang) and bound via
 * ctypes.  Shipped as package data so installed trees (not just source
 * checkouts) can build the backend.
 *
 * Bit-identity discipline: every recurrence is written as the same
 * sequence of individually-rounded multiplies and adds the NumPy
 * reference performs, and the build uses -ffp-contract=off (never
 * -ffast-math) so no FMA contraction or reassociation changes rounding.
 * The activation self-check compares every kernel bitwise against the
 * NumPy reference before the backend is allowed to serve.
 */
#include <stdint.h>
#include <string.h>

/* NumPy's pairwise summation, scalar form: 8-way unrolled base case up
 * to 128 elements, recursive split at n/2 rounded down to a multiple of
 * 8.  Must stay bit-identical to np.sum on the host (checked at
 * activation). */
static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i = 8;
        for (; i < n - (n % 8); i += 8) {
            r0 += a[i + 0]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
}

static double clip01(double t)
{
    return t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
}

/* Exposed for the activation self-check's summation battery. */
double k_pairwise(const double *a, int64_t n)
{
    return pairwise_sum(a, n);
}

/* In-place Poisson-binomial factor fold: pmf[0..top] gains one factor e.
 * Descending update reads only pre-update values, matching the NumPy
 * whole-slice assignment; entry top+1 is zero beforehand so the new top
 * entry rounds as pmf[top]*e exactly (0*(1-e) + x*e == x*e bitwise for
 * finite x >= 0). */
static void fold_factor(double *pmf, int64_t top, double e)
{
    double c = 1.0 - e;
    for (int64_t j = top + 1; j >= 1; j--)
        pmf[j] = pmf[j] * c + pmf[j - 1] * e;
    pmf[0] = pmf[0] * c;
}

/* Odd-prefix JER sweep.  eps: (b, n) row-major; jers: (b, (n+1)/2);
 * work: n+1 scratch doubles. */
void k_sweep(const double *eps, int64_t b, int64_t n, double *jers,
             double *work)
{
    int64_t kcols = (n + 1) / 2;
    for (int64_t r = 0; r < b; r++) {
        const double *row = eps + r * n;
        memset(work, 0, (size_t)(n + 1) * sizeof(double));
        work[0] = 1.0;
        for (int64_t idx = 0; idx < n; idx++) {
            fold_factor(work, idx, row[idx]);
            if ((idx & 1) == 0) {
                int64_t m = idx + 1;            /* prefix length, odd */
                int64_t th = (m + 1) / 2;       /* majority threshold */
                double t = pairwise_sum(work + th, m + 1 - th);
                jers[r * kcols + idx / 2] = clip01(t);
            }
        }
    }
}

/* Batch jury JER.  eps: (b, k); out: (b,); work: k+1 scratch. */
void k_jury_jer(const double *eps, int64_t b, int64_t k, int64_t threshold,
                double *out, double *work)
{
    for (int64_t r = 0; r < b; r++) {
        const double *row = eps + r * k;
        memset(work, 0, (size_t)(k + 1) * sizeof(double));
        work[0] = 1.0;
        for (int64_t idx = 0; idx < k; idx++)
            fold_factor(work, idx, row[idx]);
        out[r] = clip01(pairwise_sum(work + threshold, k + 1 - threshold));
    }
}

/* Extend one pmf (length n) by each of k alternative factors.
 * rows: (k, n+1). */
void k_extend_block(const double *base, int64_t n, const double *eps,
                    int64_t k, double *rows)
{
    for (int64_t r = 0; r < k; r++) {
        double e = eps[r];
        double c = 1.0 - e;
        double *row = rows + r * (n + 1);
        row[0] = base[0] * c;
        for (int64_t j = 1; j < n; j++)
            row[j] = base[j] * c + base[j - 1] * e;
        row[n] = base[n - 1] * e;
    }
}

/* extend_block fused with per-row clipped tail sums. */
void k_score_block(const double *base, int64_t n, const double *eps,
                   int64_t k, int64_t threshold, double *rows, double *jers)
{
    k_extend_block(base, n, eps, k, rows);
    for (int64_t r = 0; r < k; r++) {
        const double *row = rows + r * (n + 1);
        jers[r] = clip01(pairwise_sum(row + threshold, (n + 1) - threshold));
    }
}

/* Fold k factors into out in place.  out has length top0+1+k with the
 * base pmf in out[0..top0] and zeros above. */
void k_convolve(double *out, int64_t top0, const double *eps, int64_t k)
{
    int64_t top = top0;
    for (int64_t f = 0; f < k; f++) {
        fold_factor(out, top, eps[f]);
        top++;
    }
}

/* PayALG paper-variant pairing scan (Algorithm 4 inner loop).
 *
 * Replicates the block-scan in core/selection/pay.py exactly: walk
 * candidates in requirement order from scan_from; the first affordable
 * candidate becomes the buffered partner; each later candidate q is
 * tried as the pair (partner, q) when (req[q] + req[partner]) + acc fits
 * the budget (left-associated adds, matching the NumPy broadcast order);
 * the trial extends the incumbent pmf by both error rates and compares
 * the clipped majority tail against the incumbent JER.  Admission
 * adopts the trial pmf, accumulates cost in the same float order, and
 * resets the partner; scanning resumes at q+1.
 *
 * eps/req: (n,) candidate columns.  pmf: in/out incumbent pmf buffer of
 * capacity n+1 with pmf_len valid entries.  state: in/out
 * {accumulated, current_jer}.  pairs: out, capacity n int64s, receives
 * admitted (partner, q) index pairs.  counters: out
 * {pairs_considered, jer_evaluations} (counting trials actually
 * scored, exactly like the NumPy block path).  base2/row: scratch, each
 * of capacity n+2.  Returns the number of admitted pairs. */
int64_t k_pay_scan(const double *eps, const double *req, int64_t n,
                   double budget, int64_t scan_from, double *pmf,
                   int64_t pmf_len, double *state, int64_t *pairs,
                   int64_t *counters, double *base2, double *row)
{
    double acc = state[0];
    double cur = state[1];
    int64_t i = scan_from;
    int64_t partner = -1;
    int base2_valid = 0;
    int64_t npairs = 0;
    int64_t considered = 0, evals = 0;

    while (i < n) {
        if (partner < 0) {
            if (req[i] + acc <= budget)
                partner = i;
            i++;
            continue;
        }
        double cost = (req[i] + req[partner]) + acc;
        if (cost <= budget) {
            if (!base2_valid) {
                k_extend_block(pmf, pmf_len, eps + partner, 1, base2);
                base2_valid = 1;
            }
            k_extend_block(base2, pmf_len + 1, eps + i, 1, row);
            int64_t rowlen = pmf_len + 2;
            /* threshold = (len(selected) + 3) // 2 with
             * len(selected) = pmf_len - 1. */
            int64_t threshold = rowlen / 2;
            double t = clip01(pairwise_sum(row + threshold,
                                           rowlen - threshold));
            considered++;
            evals++;
            if (t <= cur) {
                pairs[2 * npairs + 0] = partner;
                pairs[2 * npairs + 1] = i;
                npairs++;
                acc = (req[i] + req[partner]) + acc;
                memcpy(pmf, row, (size_t)rowlen * sizeof(double));
                pmf_len = rowlen;
                cur = t;
                partner = -1;
                base2_valid = 0;
            }
        }
        i++;
    }
    state[0] = acc;
    state[1] = cur;
    counters[0] = considered;
    counters[1] = evals;
    return npairs;
}
