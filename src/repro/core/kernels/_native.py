"""Native (cc-compiled, ctypes-loaded) kernel backend.

Builds a small shared library from the shipped C source
(``repro_kernels.c``, installed as package data next to this module) at
activation time using whatever system compiler is present
(``cc``/``gcc``/``clang``), caches the ``.so`` keyed by a hash of the
source + flags, and binds it via :mod:`ctypes` — stdlib only, no
build-time dependencies.

Bit-identity discipline
-----------------------
The repo's invariant is that every execution path is *bit-identical* to
the scalar oracles.  Two things make that achievable in C:

1. **Elementwise arithmetic order.**  Every recurrence is written as the
   same sequence of individually-rounded multiplies and adds the NumPy
   reference performs (``x*(1-e)`` rounded, ``y*e`` rounded, sum
   rounded).  Compiling with ``-ffp-contract=off`` (and never
   ``-ffast-math``) forbids FMA contraction and reassociation, so each
   C expression rounds exactly like the NumPy ufunc chain.

2. **Pairwise tail summation.**  ``np.sum`` is not sequential — it uses
   pairwise (cascade) summation with an 8-way unrolled base case.
   ``pairwise_sum`` below replicates NumPy's exact algorithm (block size
   128, unrolled partials combined ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``,
   recursive split at ``n//2`` rounded down to a multiple of 8), which
   was verified on this host to match ``np.sum`` bitwise across sizes
   crossing every recursion boundary.

Neither property is *assumed* to hold on a given host/compiler: the
activation self-check (:mod:`._verify`) compares every kernel bitwise
against the NumPy reference and refuses to activate the backend if any
bit differs, recording the reason.  A host where NumPy dispatches to a
different summation (or the compiler misbehaves) simply degrades to the
reference backend — correctness never rides on the optimisation.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["NativeBackend", "load_native_backend"]

#: The C source ships as package data next to this module, so installed
#: trees (pip/wheel installs, not just source checkouts) can build the
#: backend; the compile cache is keyed by a hash of its exact contents.
_C_SOURCE_PATH = Path(__file__).with_name("repro_kernels.c")


def _read_source() -> str:
    return _C_SOURCE_PATH.read_text(encoding="utf-8")

# No -ffast-math ever; -ffp-contract=off forbids FMA fusing multiply-adds
# so every C expression rounds exactly like the NumPy ufunc sequence.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_F64 = ctypes.POINTER(ctypes.c_double)
_I64 = ctypes.POINTER(ctypes.c_int64)


def _find_compiler() -> str | None:
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    if override:
        return Path(override)
    uid = getattr(os, "getuid", lambda: "na")()
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _build_library(compiler: str) -> Path:
    """Compile the shipped source to a cached .so, atomically."""
    source = _read_source()
    tag = hashlib.sha256(
        (source + "\x00" + " ".join(_CFLAGS) + "\x00" + compiler).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    lib_path = cache / f"repro_kernels_{tag}.so"
    if lib_path.exists():
        return lib_path
    src_path = cache / f"repro_kernels_{tag}.c"
    src_path.write_text(source, encoding="utf-8")
    tmp_path = cache / f".repro_kernels_{tag}.{os.getpid()}.so"
    cmd = [compiler, *_CFLAGS, "-o", str(tmp_path), str(src_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        raise RuntimeError(
            f"kernel compile failed ({compiler}): {proc.stderr.strip()[:500]}"
        )
    os.replace(tmp_path, lib_path)
    return lib_path


def _as_f64(arr: np.ndarray) -> ctypes.Array:
    return arr.ctypes.data_as(_F64)


class NativeBackend:
    """ctypes bindings over the compiled kernel library."""

    name = "native"
    compiled = True

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self.warmed = False
        lib.k_pairwise.restype = ctypes.c_double
        lib.k_pairwise.argtypes = [_F64, ctypes.c_int64]
        lib.k_sweep.restype = None
        lib.k_sweep.argtypes = [_F64, ctypes.c_int64, ctypes.c_int64, _F64, _F64]
        lib.k_jury_jer.restype = None
        lib.k_jury_jer.argtypes = [
            _F64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _F64, _F64,
        ]
        lib.k_extend_block.restype = None
        lib.k_extend_block.argtypes = [
            _F64, ctypes.c_int64, _F64, ctypes.c_int64, _F64,
        ]
        lib.k_score_block.restype = None
        lib.k_score_block.argtypes = [
            _F64, ctypes.c_int64, _F64, ctypes.c_int64, ctypes.c_int64,
            _F64, _F64,
        ]
        lib.k_convolve.restype = None
        lib.k_convolve.argtypes = [_F64, ctypes.c_int64, _F64, ctypes.c_int64]
        lib.k_pay_scan.restype = ctypes.c_int64
        lib.k_pay_scan.argtypes = [
            _F64, _F64, ctypes.c_int64, ctypes.c_double, ctypes.c_int64,
            _F64, ctypes.c_int64, _F64, _I64, _I64, _F64, _F64,
        ]

    # -- kernel entry points -------------------------------------------------

    def sweep(self, eps: np.ndarray) -> np.ndarray:
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        b, n = eps.shape
        jers = np.empty((b, (n + 1) // 2), dtype=np.float64)
        work = np.empty(n + 1, dtype=np.float64)
        self._lib.k_sweep(_as_f64(eps), b, n, _as_f64(jers), _as_f64(work))
        return jers

    def jury_jer(self, eps: np.ndarray, threshold: int) -> np.ndarray:
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        b, k = eps.shape
        out = np.empty(b, dtype=np.float64)
        work = np.empty(k + 1, dtype=np.float64)
        self._lib.k_jury_jer(
            _as_f64(eps), b, k, int(threshold), _as_f64(out), _as_f64(work)
        )
        return out

    def extend_block(self, base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        base = np.ascontiguousarray(base, dtype=np.float64)
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        rows = np.empty((eps.size, base.size + 1), dtype=np.float64)
        self._lib.k_extend_block(
            _as_f64(base), base.size, _as_f64(eps), eps.size, _as_f64(rows)
        )
        return rows

    def score_block(
        self, base: np.ndarray, eps: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        base = np.ascontiguousarray(base, dtype=np.float64)
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        rows = np.empty((eps.size, base.size + 1), dtype=np.float64)
        jers = np.empty(eps.size, dtype=np.float64)
        self._lib.k_score_block(
            _as_f64(base), base.size, _as_f64(eps), eps.size, int(threshold),
            _as_f64(rows), _as_f64(jers),
        )
        return jers, rows

    def convolve(self, base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        base = np.ascontiguousarray(base, dtype=np.float64)
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        out = np.zeros(base.size + eps.size, dtype=np.float64)
        out[: base.size] = base
        self._lib.k_convolve(_as_f64(out), base.size - 1, _as_f64(eps), eps.size)
        return out

    def pay_scan(
        self,
        g_eps: np.ndarray,
        g_req: np.ndarray,
        budget: float,
        scan_from: int,
        accumulated: float,
        pmf: np.ndarray,
        current_jer: float,
    ) -> tuple[np.ndarray, float, float, int, int]:
        """Run the paper pairing scan to exhaustion.

        Returns ``(pairs, accumulated, jer, juries_considered,
        jer_evaluations)`` where ``pairs`` is a flat int64 array of
        admitted (partner, candidate) index pairs in admission order —
        exactly the elements ``_paper_pairing`` appends to ``selected``.
        """
        g_eps = np.ascontiguousarray(g_eps, dtype=np.float64)
        g_req = np.ascontiguousarray(g_req, dtype=np.float64)
        n = g_eps.size
        buf = np.zeros(n + 2, dtype=np.float64)
        buf[: pmf.size] = pmf
        state = np.array([accumulated, current_jer], dtype=np.float64)
        pairs = np.empty(max(2 * n, 2), dtype=np.int64)
        counters = np.zeros(2, dtype=np.int64)
        base2 = np.empty(n + 3, dtype=np.float64)
        row = np.empty(n + 3, dtype=np.float64)
        npairs = self._lib.k_pay_scan(
            _as_f64(g_eps), _as_f64(g_req), n, float(budget), int(scan_from),
            _as_f64(buf), int(pmf.size), _as_f64(state),
            pairs.ctypes.data_as(_I64), counters.ctypes.data_as(_I64),
            _as_f64(base2), _as_f64(row),
        )
        return (
            pairs[: 2 * npairs].copy(),
            float(state[0]),
            float(state[1]),
            int(counters[0]),
            int(counters[1]),
        )

    def pairwise(self, values: np.ndarray) -> float:
        values = np.ascontiguousarray(values, dtype=np.float64)
        return float(self._lib.k_pairwise(_as_f64(values), values.size))

    def warmup(self) -> None:
        """Touch every entry point once (activation already does)."""
        eps = np.full((1, 3), 0.25)
        self.sweep(eps)
        self.jury_jer(eps, 2)
        base = self.convolve(np.ones(1), np.full(2, 0.25))
        self.score_block(base, np.full(2, 0.25), 2)
        self.warmed = True


def load_native_backend() -> NativeBackend:
    """Find a compiler, build (or reuse) the library, and bind it.

    Raises on any failure — the registry records the message as the
    backend's unavailability reason.
    """
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried cc, gcc, clang)")
    lib_path = _build_library(compiler)
    return NativeBackend(ctypes.CDLL(str(lib_path)))
