"""Native (cc-compiled, ctypes-loaded) kernel backend.

Builds a small shared library from embedded C at activation time using
whatever system compiler is present (``cc``/``gcc``/``clang``), caches the
``.so`` keyed by a hash of the source + flags, and binds it via
:mod:`ctypes` — stdlib only, no build-time dependencies.

Bit-identity discipline
-----------------------
The repo's invariant is that every execution path is *bit-identical* to
the scalar oracles.  Two things make that achievable in C:

1. **Elementwise arithmetic order.**  Every recurrence is written as the
   same sequence of individually-rounded multiplies and adds the NumPy
   reference performs (``x*(1-e)`` rounded, ``y*e`` rounded, sum
   rounded).  Compiling with ``-ffp-contract=off`` (and never
   ``-ffast-math``) forbids FMA contraction and reassociation, so each
   C expression rounds exactly like the NumPy ufunc chain.

2. **Pairwise tail summation.**  ``np.sum`` is not sequential — it uses
   pairwise (cascade) summation with an 8-way unrolled base case.
   ``pairwise_sum`` below replicates NumPy's exact algorithm (block size
   128, unrolled partials combined ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``,
   recursive split at ``n//2`` rounded down to a multiple of 8), which
   was verified on this host to match ``np.sum`` bitwise across sizes
   crossing every recursion boundary.

Neither property is *assumed* to hold on a given host/compiler: the
activation self-check (:mod:`._verify`) compares every kernel bitwise
against the NumPy reference and refuses to activate the backend if any
bit differs, recording the reason.  A host where NumPy dispatches to a
different summation (or the compiler misbehaves) simply degrades to the
reference backend — correctness never rides on the optimisation.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["NativeBackend", "load_native_backend"]

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* NumPy's pairwise summation, scalar form: 8-way unrolled base case up
 * to 128 elements, recursive split at n/2 rounded down to a multiple of
 * 8.  Must stay bit-identical to np.sum on the host (checked at
 * activation). */
static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i = 8;
        for (; i < n - (n % 8); i += 8) {
            r0 += a[i + 0]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
}

static double clip01(double t)
{
    return t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
}

/* Exposed for the activation self-check's summation battery. */
double k_pairwise(const double *a, int64_t n)
{
    return pairwise_sum(a, n);
}

/* In-place Poisson-binomial factor fold: pmf[0..top] gains one factor e.
 * Descending update reads only pre-update values, matching the NumPy
 * whole-slice assignment; entry top+1 is zero beforehand so the new top
 * entry rounds as pmf[top]*e exactly (0*(1-e) + x*e == x*e bitwise for
 * finite x >= 0). */
static void fold_factor(double *pmf, int64_t top, double e)
{
    double c = 1.0 - e;
    for (int64_t j = top + 1; j >= 1; j--)
        pmf[j] = pmf[j] * c + pmf[j - 1] * e;
    pmf[0] = pmf[0] * c;
}

/* Odd-prefix JER sweep.  eps: (b, n) row-major; jers: (b, (n+1)/2);
 * work: n+1 scratch doubles. */
void k_sweep(const double *eps, int64_t b, int64_t n, double *jers,
             double *work)
{
    int64_t kcols = (n + 1) / 2;
    for (int64_t r = 0; r < b; r++) {
        const double *row = eps + r * n;
        memset(work, 0, (size_t)(n + 1) * sizeof(double));
        work[0] = 1.0;
        for (int64_t idx = 0; idx < n; idx++) {
            fold_factor(work, idx, row[idx]);
            if ((idx & 1) == 0) {
                int64_t m = idx + 1;            /* prefix length, odd */
                int64_t th = (m + 1) / 2;       /* majority threshold */
                double t = pairwise_sum(work + th, m + 1 - th);
                jers[r * kcols + idx / 2] = clip01(t);
            }
        }
    }
}

/* Batch jury JER.  eps: (b, k); out: (b,); work: k+1 scratch. */
void k_jury_jer(const double *eps, int64_t b, int64_t k, int64_t threshold,
                double *out, double *work)
{
    for (int64_t r = 0; r < b; r++) {
        const double *row = eps + r * k;
        memset(work, 0, (size_t)(k + 1) * sizeof(double));
        work[0] = 1.0;
        for (int64_t idx = 0; idx < k; idx++)
            fold_factor(work, idx, row[idx]);
        out[r] = clip01(pairwise_sum(work + threshold, k + 1 - threshold));
    }
}

/* Extend one pmf (length n) by each of k alternative factors.
 * rows: (k, n+1). */
void k_extend_block(const double *base, int64_t n, const double *eps,
                    int64_t k, double *rows)
{
    for (int64_t r = 0; r < k; r++) {
        double e = eps[r];
        double c = 1.0 - e;
        double *row = rows + r * (n + 1);
        row[0] = base[0] * c;
        for (int64_t j = 1; j < n; j++)
            row[j] = base[j] * c + base[j - 1] * e;
        row[n] = base[n - 1] * e;
    }
}

/* extend_block fused with per-row clipped tail sums. */
void k_score_block(const double *base, int64_t n, const double *eps,
                   int64_t k, int64_t threshold, double *rows, double *jers)
{
    k_extend_block(base, n, eps, k, rows);
    for (int64_t r = 0; r < k; r++) {
        const double *row = rows + r * (n + 1);
        jers[r] = clip01(pairwise_sum(row + threshold, (n + 1) - threshold));
    }
}

/* Fold k factors into out in place.  out has length top0+1+k with the
 * base pmf in out[0..top0] and zeros above. */
void k_convolve(double *out, int64_t top0, const double *eps, int64_t k)
{
    int64_t top = top0;
    for (int64_t f = 0; f < k; f++) {
        fold_factor(out, top, eps[f]);
        top++;
    }
}

/* PayALG paper-variant pairing scan (Algorithm 4 inner loop).
 *
 * Replicates the block-scan in core/selection/pay.py exactly: walk
 * candidates in requirement order from scan_from; the first affordable
 * candidate becomes the buffered partner; each later candidate q is
 * tried as the pair (partner, q) when (req[q] + req[partner]) + acc fits
 * the budget (left-associated adds, matching the NumPy broadcast order);
 * the trial extends the incumbent pmf by both error rates and compares
 * the clipped majority tail against the incumbent JER.  Admission
 * adopts the trial pmf, accumulates cost in the same float order, and
 * resets the partner; scanning resumes at q+1.
 *
 * eps/req: (n,) candidate columns.  pmf: in/out incumbent pmf buffer of
 * capacity n+1 with pmf_len valid entries.  state: in/out
 * {accumulated, current_jer}.  pairs: out, capacity n int64s, receives
 * admitted (partner, q) index pairs.  counters: out
 * {pairs_considered, jer_evaluations} (counting trials actually
 * scored, exactly like the NumPy block path).  base2/row: scratch, each
 * of capacity n+2.  Returns the number of admitted pairs. */
int64_t k_pay_scan(const double *eps, const double *req, int64_t n,
                   double budget, int64_t scan_from, double *pmf,
                   int64_t pmf_len, double *state, int64_t *pairs,
                   int64_t *counters, double *base2, double *row)
{
    double acc = state[0];
    double cur = state[1];
    int64_t i = scan_from;
    int64_t partner = -1;
    int base2_valid = 0;
    int64_t npairs = 0;
    int64_t considered = 0, evals = 0;

    while (i < n) {
        if (partner < 0) {
            if (req[i] + acc <= budget)
                partner = i;
            i++;
            continue;
        }
        double cost = (req[i] + req[partner]) + acc;
        if (cost <= budget) {
            if (!base2_valid) {
                k_extend_block(pmf, pmf_len, eps + partner, 1, base2);
                base2_valid = 1;
            }
            k_extend_block(base2, pmf_len + 1, eps + i, 1, row);
            int64_t rowlen = pmf_len + 2;
            /* threshold = (len(selected) + 3) // 2 with
             * len(selected) = pmf_len - 1. */
            int64_t threshold = rowlen / 2;
            double t = clip01(pairwise_sum(row + threshold,
                                           rowlen - threshold));
            considered++;
            evals++;
            if (t <= cur) {
                pairs[2 * npairs + 0] = partner;
                pairs[2 * npairs + 1] = i;
                npairs++;
                acc = (req[i] + req[partner]) + acc;
                memcpy(pmf, row, (size_t)rowlen * sizeof(double));
                pmf_len = rowlen;
                cur = t;
                partner = -1;
                base2_valid = 0;
            }
        }
        i++;
    }
    state[0] = acc;
    state[1] = cur;
    counters[0] = considered;
    counters[1] = evals;
    return npairs;
}
"""

# No -ffast-math ever; -ffp-contract=off forbids FMA fusing multiply-adds
# so every C expression rounds exactly like the NumPy ufunc sequence.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_F64 = ctypes.POINTER(ctypes.c_double)
_I64 = ctypes.POINTER(ctypes.c_int64)


def _find_compiler() -> str | None:
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    if override:
        return Path(override)
    uid = getattr(os, "getuid", lambda: "na")()
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _build_library(compiler: str) -> Path:
    """Compile the embedded source to a cached .so, atomically."""
    tag = hashlib.sha256(
        (_C_SOURCE + "\x00" + " ".join(_CFLAGS) + "\x00" + compiler).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    lib_path = cache / f"repro_kernels_{tag}.so"
    if lib_path.exists():
        return lib_path
    src_path = cache / f"repro_kernels_{tag}.c"
    src_path.write_text(_C_SOURCE, encoding="utf-8")
    tmp_path = cache / f".repro_kernels_{tag}.{os.getpid()}.so"
    cmd = [compiler, *_CFLAGS, "-o", str(tmp_path), str(src_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        raise RuntimeError(
            f"kernel compile failed ({compiler}): {proc.stderr.strip()[:500]}"
        )
    os.replace(tmp_path, lib_path)
    return lib_path


def _as_f64(arr: np.ndarray) -> ctypes.Array:
    return arr.ctypes.data_as(_F64)


class NativeBackend:
    """ctypes bindings over the compiled kernel library."""

    name = "native"
    compiled = True

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self.warmed = False
        lib.k_pairwise.restype = ctypes.c_double
        lib.k_pairwise.argtypes = [_F64, ctypes.c_int64]
        lib.k_sweep.restype = None
        lib.k_sweep.argtypes = [_F64, ctypes.c_int64, ctypes.c_int64, _F64, _F64]
        lib.k_jury_jer.restype = None
        lib.k_jury_jer.argtypes = [
            _F64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _F64, _F64,
        ]
        lib.k_extend_block.restype = None
        lib.k_extend_block.argtypes = [
            _F64, ctypes.c_int64, _F64, ctypes.c_int64, _F64,
        ]
        lib.k_score_block.restype = None
        lib.k_score_block.argtypes = [
            _F64, ctypes.c_int64, _F64, ctypes.c_int64, ctypes.c_int64,
            _F64, _F64,
        ]
        lib.k_convolve.restype = None
        lib.k_convolve.argtypes = [_F64, ctypes.c_int64, _F64, ctypes.c_int64]
        lib.k_pay_scan.restype = ctypes.c_int64
        lib.k_pay_scan.argtypes = [
            _F64, _F64, ctypes.c_int64, ctypes.c_double, ctypes.c_int64,
            _F64, ctypes.c_int64, _F64, _I64, _I64, _F64, _F64,
        ]

    # -- kernel entry points -------------------------------------------------

    def sweep(self, eps: np.ndarray) -> np.ndarray:
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        b, n = eps.shape
        jers = np.empty((b, (n + 1) // 2), dtype=np.float64)
        work = np.empty(n + 1, dtype=np.float64)
        self._lib.k_sweep(_as_f64(eps), b, n, _as_f64(jers), _as_f64(work))
        return jers

    def jury_jer(self, eps: np.ndarray, threshold: int) -> np.ndarray:
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        b, k = eps.shape
        out = np.empty(b, dtype=np.float64)
        work = np.empty(k + 1, dtype=np.float64)
        self._lib.k_jury_jer(
            _as_f64(eps), b, k, int(threshold), _as_f64(out), _as_f64(work)
        )
        return out

    def extend_block(self, base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        base = np.ascontiguousarray(base, dtype=np.float64)
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        rows = np.empty((eps.size, base.size + 1), dtype=np.float64)
        self._lib.k_extend_block(
            _as_f64(base), base.size, _as_f64(eps), eps.size, _as_f64(rows)
        )
        return rows

    def score_block(
        self, base: np.ndarray, eps: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        base = np.ascontiguousarray(base, dtype=np.float64)
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        rows = np.empty((eps.size, base.size + 1), dtype=np.float64)
        jers = np.empty(eps.size, dtype=np.float64)
        self._lib.k_score_block(
            _as_f64(base), base.size, _as_f64(eps), eps.size, int(threshold),
            _as_f64(rows), _as_f64(jers),
        )
        return jers, rows

    def convolve(self, base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        base = np.ascontiguousarray(base, dtype=np.float64)
        eps = np.ascontiguousarray(eps, dtype=np.float64)
        out = np.zeros(base.size + eps.size, dtype=np.float64)
        out[: base.size] = base
        self._lib.k_convolve(_as_f64(out), base.size - 1, _as_f64(eps), eps.size)
        return out

    def pay_scan(
        self,
        g_eps: np.ndarray,
        g_req: np.ndarray,
        budget: float,
        scan_from: int,
        accumulated: float,
        pmf: np.ndarray,
        current_jer: float,
    ) -> tuple[np.ndarray, float, float, int, int]:
        """Run the paper pairing scan to exhaustion.

        Returns ``(pairs, accumulated, jer, juries_considered,
        jer_evaluations)`` where ``pairs`` is a flat int64 array of
        admitted (partner, candidate) index pairs in admission order —
        exactly the elements ``_paper_pairing`` appends to ``selected``.
        """
        g_eps = np.ascontiguousarray(g_eps, dtype=np.float64)
        g_req = np.ascontiguousarray(g_req, dtype=np.float64)
        n = g_eps.size
        buf = np.zeros(n + 2, dtype=np.float64)
        buf[: pmf.size] = pmf
        state = np.array([accumulated, current_jer], dtype=np.float64)
        pairs = np.empty(max(2 * n, 2), dtype=np.int64)
        counters = np.zeros(2, dtype=np.int64)
        base2 = np.empty(n + 3, dtype=np.float64)
        row = np.empty(n + 3, dtype=np.float64)
        npairs = self._lib.k_pay_scan(
            _as_f64(g_eps), _as_f64(g_req), n, float(budget), int(scan_from),
            _as_f64(buf), int(pmf.size), _as_f64(state),
            pairs.ctypes.data_as(_I64), counters.ctypes.data_as(_I64),
            _as_f64(base2), _as_f64(row),
        )
        return (
            pairs[: 2 * npairs].copy(),
            float(state[0]),
            float(state[1]),
            int(counters[0]),
            int(counters[1]),
        )

    def pairwise(self, values: np.ndarray) -> float:
        values = np.ascontiguousarray(values, dtype=np.float64)
        return float(self._lib.k_pairwise(_as_f64(values), values.size))

    def warmup(self) -> None:
        """Touch every entry point once (activation already does)."""
        eps = np.full((1, 3), 0.25)
        self.sweep(eps)
        self.jury_jer(eps, 2)
        base = self.convolve(np.ones(1), np.full(2, 0.25))
        self.score_block(base, np.full(2, 0.25), 2)
        self.warmed = True


def load_native_backend() -> NativeBackend:
    """Find a compiler, build (or reuse) the library, and bind it.

    Raises on any failure — the registry records the message as the
    backend's unavailability reason.
    """
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried cc, gcc, clang)")
    lib_path = _build_library(compiler)
    return NativeBackend(ctypes.CDLL(str(lib_path)))
