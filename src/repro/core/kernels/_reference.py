"""Reference NumPy implementations of the hot kernels.

These are the *exact* inner loops that historically lived inline in
:mod:`repro.core.jer` (and the block-trial scoring of
:mod:`repro.core.selection.pay`), hoisted behind the backend interface so
the compiled backends have one canonical definition to be verified
against.  Every compiled backend is held to **bit-identity** with the
functions in this module by the activation self-check
(:mod:`repro.core.kernels._verify`); the arithmetic here must therefore
never change without re-deriving the equivalence argument in
``core/jer.py``.

All functions receive validated, float64 inputs — validation (shape, open
interval bounds, odd jury sizes) stays with the public wrappers in
:mod:`repro.core.jer`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyBackend"]


def _sweep(eps: np.ndarray) -> np.ndarray:
    """Odd-prefix JER matrix of a ``(B, N)`` error-rate matrix.

    Returns the ``(B, (N + 1) // 2)`` JER matrix; the caller builds the
    matching ``ns`` vector.  This is the historical inner loop of
    :func:`repro.core.jer.batch_prefix_jer_sweep`, verbatim.
    """
    n_batch, n_total = eps.shape
    jers = np.empty((n_batch, (n_total + 1) // 2), dtype=np.float64)
    pmf = np.zeros((n_batch, n_total + 1), dtype=np.float64)
    pmf[:, 0] = 1.0
    for idx in range(n_total):
        e = eps[:, idx : idx + 1]
        upper = idx + 1
        # Same multiply-add as the scalar sweeper, vectorized across rows;
        # entry ``upper`` is still 0 so it becomes ``pmf[:, idx] * e`` exactly.
        pmf[:, 1 : upper + 1] = pmf[:, 1 : upper + 1] * (1.0 - e) + pmf[:, 0:upper] * e
        pmf[:, 0:1] = pmf[:, 0:1] * (1.0 - e)
        n = idx + 1
        if n % 2 == 1:
            threshold = (n + 1) // 2
            tail = np.sum(pmf[:, threshold : n + 1], axis=1)
            jers[:, idx // 2] = np.clip(tail, 0.0, 1.0)
    return jers


def _jury_jer(eps: np.ndarray, threshold: int) -> np.ndarray:
    """Clipped tail probabilities of a ``(B, K)`` jury matrix.

    The historical inner loop of :func:`repro.core.jer.batch_jury_jer`.
    """
    n_batch, size = eps.shape
    pmf = np.zeros((n_batch, size + 1), dtype=np.float64)
    pmf[:, 0] = 1.0
    for idx in range(size):
        e = eps[:, idx : idx + 1]
        upper = idx + 1
        pmf[:, 1 : upper + 1] = pmf[:, 1 : upper + 1] * (1.0 - e) + pmf[:, 0:upper] * e
        pmf[:, 0:1] = pmf[:, 0:1] * (1.0 - e)
    tails = np.sum(pmf[:, threshold:], axis=1)
    return np.clip(tails, 0.0, 1.0)


def _extend_block(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
    """Fan one pmf out by ``k`` alternative single factors.

    The historical inner expression of
    :func:`repro.core.jer.extend_pmf_block`, verbatim.
    """
    width = base.size
    out = np.empty((eps.size, width + 1), dtype=np.float64)
    col = eps[:, np.newaxis]
    out[:, 0] = base[0] * (1.0 - eps)
    out[:, 1:width] = base[np.newaxis, 1:] * (1.0 - col) + base[np.newaxis, :-1] * col
    out[:, width] = base[-1] * eps
    return out


def _score_block(
    base: np.ndarray, eps: np.ndarray, threshold: int
) -> tuple[np.ndarray, np.ndarray]:
    """Extend ``base`` by each factor and score the tails — the PayALG trial.

    Mirrors ``_block_trial_jers`` in :mod:`repro.core.selection.pay`:
    returns ``(jers, rows)`` where the admitted row becomes the next
    incumbent pmf.
    """
    rows = _extend_block(base, eps)
    tails = np.sum(rows[:, threshold:], axis=1)
    return np.clip(tails, 0.0, 1.0), rows


def _convolve(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
    """Fold ``k`` factors into a pmf — the historical
    :func:`repro.core.jer.convolve_pmf` loop, verbatim."""
    out = np.zeros(base.size + eps.size, dtype=np.float64)
    out[: base.size] = base
    top = base.size - 1
    for e in eps:
        upper = top + 1
        out[1 : upper + 1] = out[1 : upper + 1] * (1.0 - e) + out[0:upper] * e
        out[0] *= 1.0 - e
        top += 1
    return out


class NumpyBackend:
    """The always-available reference backend.

    ``compiled`` is False: callers that dispatch a *whole scalar loop*
    (the PayALG pairing scan) keep their existing NumPy block path when
    this backend is chosen, instead of calling :meth:`pay_scan` (which the
    reference backend does not provide — the block loop *is* the
    reference).
    """

    name = "numpy"
    compiled = False
    warmed = True

    @staticmethod
    def sweep(eps: np.ndarray) -> np.ndarray:
        return _sweep(eps)

    @staticmethod
    def jury_jer(eps: np.ndarray, threshold: int) -> np.ndarray:
        return _jury_jer(eps, threshold)

    @staticmethod
    def extend_block(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        return _extend_block(base, eps)

    @staticmethod
    def score_block(
        base: np.ndarray, eps: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return _score_block(base, eps, threshold)

    @staticmethod
    def convolve(base: np.ndarray, eps: np.ndarray) -> np.ndarray:
        return _convolve(base, eps)

    @staticmethod
    def pairwise(values: np.ndarray) -> float:
        """Tail-summation semantics of this backend (``np.sum``)."""
        return float(np.sum(values))

    @staticmethod
    def warmup() -> None:
        """Nothing to compile."""
